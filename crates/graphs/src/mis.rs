//! Maximal independent set (Luby's algorithm) on the SpMSpV primitive.
//!
//! Each round, every undecided vertex draws a random priority; a vertex
//! joins the independent set if its priority is strictly larger than the
//! priorities of all its undecided neighbours. "Largest neighbouring
//! priority" is exactly one SpMSpV under the `(max, select2nd)` semiring
//! restricted to the still-undecided vertices — the same frontier-style
//! sparsity the paper's BFS experiments exploit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_substrate::{CscMatrix, SparseVec};
use spmspv::{AlgorithmKind, SpMSpV, SpMSpVBucket, SpMSpVOptions};

use crate::semirings::Select2ndMax;

/// Computes a maximal independent set of the undirected graph `a`
/// (symmetric adjacency matrix) with Luby's randomized algorithm.
/// Returns the selected vertices in increasing order.
pub fn maximal_independent_set(
    a: &CscMatrix<f64>,
    kind: AlgorithmKind,
    options: SpMSpVOptions,
    seed: u64,
) -> Vec<usize> {
    assert_eq!(a.nrows(), a.ncols(), "adjacency matrix must be square");
    let n = a.ncols();
    // Only the bucket algorithm and the sequential reference are commonly
    // used here; other kinds fall back to the bucket implementation since the
    // semiring type differs from the BFS factory.
    let _ = kind;
    let mut alg: SpMSpVBucket<'_, f64, f64, Select2ndMax> = SpMSpVBucket::new(a, options);

    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Undecided,
        InSet,
        Excluded,
    }
    let mut state = vec![State::Undecided; n];
    let mut rng = StdRng::seed_from_u64(seed);
    let semiring = Select2ndMax;

    loop {
        let undecided: Vec<usize> = (0..n).filter(|&v| state[v] == State::Undecided).collect();
        if undecided.is_empty() {
            break;
        }
        // Draw priorities for undecided vertices.
        let mut priorities = vec![0.0f64; n];
        let mut frontier = SparseVec::new(n);
        for &v in &undecided {
            let p: f64 = rng.gen_range(0.0..1.0);
            priorities[v] = p;
            frontier.push(v, p);
        }
        // Largest undecided-neighbour priority per vertex.
        let neighbour_max = alg.multiply(&frontier, &semiring);
        for &v in &undecided {
            let max_nbr = neighbour_max.get(v).copied().unwrap_or(f64::NEG_INFINITY);
            if priorities[v] > max_nbr {
                state[v] = State::InSet;
            }
        }
        // Exclude neighbours of newly selected vertices.
        for v in 0..n {
            if state[v] == State::InSet {
                for &u in a.column(v).0 {
                    if state[u] == State::Undecided {
                        state[u] = State::Excluded;
                    }
                }
            }
        }
    }

    (0..n).filter(|&v| state[v] == State::InSet).collect()
}

/// Checks that `set` is an independent set of `a` and that it is maximal
/// (every vertex outside the set has a neighbour inside). Used by tests and
/// by the example binaries to validate results.
pub fn is_maximal_independent_set(a: &CscMatrix<f64>, set: &[usize]) -> bool {
    let n = a.ncols();
    let mut in_set = vec![false; n];
    for &v in set {
        in_set[v] = true;
    }
    // independence
    for &v in set {
        for &u in a.column(v).0 {
            if u != v && in_set[u] {
                return false;
            }
        }
    }
    // maximality
    for v in 0..n {
        if !in_set[v] {
            let has_selected_neighbour = a.column(v).0.iter().any(|&u| in_set[u]);
            if !has_selected_neighbour && !a.column(v).0.is_empty() {
                return false;
            }
            if a.column(v).0.is_empty() {
                // isolated vertex must be in the set
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{grid2d, rmat, RmatParams};

    #[test]
    fn grid_mis_is_valid_and_maximal() {
        let a = grid2d(10, 10);
        let set =
            maximal_independent_set(&a, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(2), 42);
        assert!(!set.is_empty());
        assert!(is_maximal_independent_set(&a, &set));
    }

    #[test]
    fn scale_free_mis_is_valid_for_multiple_seeds() {
        let a = rmat(8, 6, RmatParams::graph500(), 3);
        for seed in [1u64, 7, 99] {
            let set = maximal_independent_set(
                &a,
                AlgorithmKind::Bucket,
                SpMSpVOptions::with_threads(4),
                seed,
            );
            assert!(is_maximal_independent_set(&a, &set), "seed {seed} produced invalid MIS");
        }
    }

    #[test]
    fn validator_rejects_non_independent_and_non_maximal_sets() {
        let a = grid2d(3, 3);
        // adjacent vertices 0 and 1 -> not independent
        assert!(!is_maximal_independent_set(&a, &[0, 1]));
        // empty set is not maximal for a non-empty graph
        assert!(!is_maximal_independent_set(&a, &[]));
    }
}
