//! Connected components via SpMSpV-driven label propagation.
//!
//! Every vertex starts with its own id as label; each iteration propagates
//! labels to neighbours with one SpMSpV under the `(min, select2nd)` semiring
//! and keeps the frontier sparse by only re-activating vertices whose label
//! improved. This is the classic data-driven formulation the paper cites
//! (Shiloach–Vishkin-style label propagation implemented with matrix
//! primitives).

use sparse_substrate::{CscMatrix, Select2ndMin, SparseVec};
use spmspv::ops::{Mxv, PreparedMxv};
use spmspv::{AlgorithmKind, SpMSpVOptions};

/// Computes connected-component labels for an undirected graph given by a
/// symmetric adjacency matrix. Returns `labels[v]` = smallest vertex id in
/// `v`'s component.
///
/// The propagation runs unmasked: unlike BFS's monotone visited set, a
/// vertex's label can improve several times, so no output row can be
/// permanently excluded.
pub fn connected_components(
    a: &CscMatrix<f64>,
    kind: AlgorithmKind,
    options: SpMSpVOptions,
) -> Vec<usize> {
    assert_eq!(a.nrows(), a.ncols(), "adjacency matrix must be square");
    let n = a.ncols();
    let mut labels: Vec<usize> = (0..n).collect();

    // One descriptor for the whole propagation, so the algorithm instance
    // and its workspaces are recycled across iterations.
    let mut op = Mxv::over(a).semiring(&Select2ndMin).algorithm(kind).options(options).prepare();
    propagate(&mut op, n, &mut labels);
    labels
}

fn propagate(op: &mut PreparedMxv<'_, f64, usize, Select2ndMin>, n: usize, labels: &mut [usize]) {
    // Initially every vertex is active and proposes its own label.
    let mut frontier =
        SparseVec::from_pairs(n, (0..n).map(|v| (v, v)).collect()).expect("valid init");
    while !frontier.is_empty() {
        let proposals = op.run(&frontier);
        let mut next = SparseVec::new(n);
        for (v, &label) in proposals.iter() {
            if label < labels[v] {
                labels[v] = label;
                next.push(v, label);
            }
        }
        frontier = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::grid2d;
    use sparse_substrate::CooMatrix;

    fn two_triangles() -> CscMatrix<f64> {
        // component {0,1,2} and component {3,4,5}
        let mut coo = CooMatrix::new(6, 6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        CscMatrix::from_coo(coo, |a, _| a)
    }

    #[test]
    fn two_components_get_two_labels() {
        let a = two_triangles();
        let labels =
            connected_components(&a, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(2));
        assert_eq!(&labels[0..3], &[0, 0, 0]);
        assert_eq!(&labels[3..6], &[3, 3, 3]);
    }

    #[test]
    fn connected_grid_has_one_component() {
        let a = grid2d(9, 11);
        let labels =
            connected_components(&a, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(4));
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let mut coo = CooMatrix::new(5, 5);
        coo.push(1, 2, 1.0);
        coo.push(2, 1, 1.0);
        let a = CscMatrix::from_coo(coo, |x, _| x);
        let labels =
            connected_components(&a, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(1));
        assert_eq!(labels, vec![0, 1, 1, 3, 4]);
    }

    #[test]
    fn agrees_across_algorithms() {
        let a = two_triangles();
        let expected =
            connected_components(&a, AlgorithmKind::Sequential, SpMSpVOptions::with_threads(1));
        for kind in [AlgorithmKind::CombBlasSpa, AlgorithmKind::GraphMat, AlgorithmKind::SortBased]
        {
            let labels = connected_components(&a, kind, SpMSpVOptions::with_threads(3));
            assert_eq!(labels, expected, "{kind} labels differ");
        }
    }
}
