//! # spmspv-graphs
//!
//! Graph algorithms expressed on top of the SpMSpV primitive, mirroring the
//! applications the paper motivates SpMSpV with (§I): breadth-first search,
//! connected components, maximal independent set, data-driven PageRank and
//! bipartite matching. BFS is also the workload of the paper's headline
//! experiments (Figures 4 and 5 time the SpMSpV calls inside a BFS).
//!
//! All algorithms take an [`spmspv::AlgorithmKind`] so the benchmark harness
//! can swap the underlying SpMSpV implementation exactly as the paper does.
//!
//! The batched workloads — [`multi_bfs`] (k-source BFS with lane retirement)
//! and [`pagerank_personalized_batch`] (one personalized rank vector per
//! teleport target) — run on `spmspv::batch::SpMSpVBucketBatch`, amortizing
//! each iteration's matrix traversal across every still-active lane.

#![warn(missing_docs)]

pub mod bfs;
pub mod components;
pub mod matching;
pub mod mis;
pub mod multi_bfs;
pub mod pagerank;
pub mod pseudo_diameter;
pub mod semirings;

pub use bfs::{bfs, bfs_frontiers, BfsResult};
pub use components::connected_components;
pub use matching::bipartite_matching;
pub use mis::maximal_independent_set;
pub use multi_bfs::{multi_bfs, MultiBfsResult};
pub use pagerank::{
    pagerank_datadriven, pagerank_personalized_batch, PageRankOptions, PersonalizedPageRankResult,
};
pub use pseudo_diameter::pseudo_diameter;

use sparse_substrate::{CscMatrix, Select2ndMin};
use spmspv::baselines::{CombBlasHeap, CombBlasSpa, GraphMatSpMSpV, SequentialSpa, SortBased};
use spmspv::{AlgorithmKind, SpMSpV, SpMSpVBucket, SpMSpVOptions};

/// Builds a boxed SpMSpV instance specialized to the `(min, select2nd)`
/// semiring used by BFS, connected components and bipartite matching, for
/// the requested algorithm family.
pub fn bfs_algorithm<'a>(
    a: &'a CscMatrix<f64>,
    kind: AlgorithmKind,
    options: SpMSpVOptions,
) -> Box<dyn SpMSpV<f64, usize, Select2ndMin> + 'a> {
    match kind {
        AlgorithmKind::Bucket => Box::new(SpMSpVBucket::new(a, options)),
        AlgorithmKind::CombBlasSpa => Box::new(CombBlasSpa::new(a, options)),
        AlgorithmKind::CombBlasHeap => Box::new(CombBlasHeap::new(a, options)),
        AlgorithmKind::GraphMat => Box::new(GraphMatSpMSpV::new(a, options)),
        AlgorithmKind::SortBased => Box::new(SortBased::new(a, options)),
        AlgorithmKind::Sequential => Box::new(SequentialSpa::new(a, options)),
    }
}

/// Builds a boxed SpMSpV instance for the numerical `(+, ×)` semiring over
/// `f64`, used by data-driven PageRank and the benchmark harness.
pub fn numeric_algorithm<'a>(
    a: &'a CscMatrix<f64>,
    kind: AlgorithmKind,
    options: SpMSpVOptions,
) -> Box<dyn SpMSpV<f64, f64, sparse_substrate::PlusTimes> + 'a> {
    match kind {
        AlgorithmKind::Bucket => Box::new(SpMSpVBucket::new(a, options)),
        AlgorithmKind::CombBlasSpa => Box::new(CombBlasSpa::new(a, options)),
        AlgorithmKind::CombBlasHeap => Box::new(CombBlasHeap::new(a, options)),
        AlgorithmKind::GraphMat => Box::new(GraphMatSpMSpV::new(a, options)),
        AlgorithmKind::SortBased => Box::new(SortBased::new(a, options)),
        AlgorithmKind::Sequential => Box::new(SequentialSpa::new(a, options)),
    }
}
