//! # spmspv-graphs
//!
//! Graph algorithms expressed on top of the SpMSpV primitive, mirroring the
//! applications the paper motivates SpMSpV with (§I): breadth-first search,
//! connected components, maximal independent set, data-driven PageRank and
//! bipartite matching. BFS is also the workload of the paper's headline
//! experiments (Figures 4 and 5 time the SpMSpV calls inside a BFS).
//!
//! The workloads program against the unified [`spmspv::ops::Mxv`] operation
//! descriptor: [`bfs()`] describes one search as a masked single-vector
//! operation (¬visited applied inside the kernel), [`multi_bfs()`] the same
//! with one mask per lane, and [`pagerank_datadriven`] /
//! [`pagerank_personalized_batch`] numeric operations over the transition
//! matrix. All take an [`spmspv::AlgorithmKind`] (and the batched workloads
//! a [`spmspv::BatchAlgorithmKind`], see [`multi_bfs_using`]) so the
//! benchmark harness can swap the underlying SpMSpV implementation exactly
//! as the paper does.

#![warn(missing_docs)]

pub mod bfs;
pub mod components;
pub mod matching;
pub mod mis;
pub mod multi_bfs;
pub mod pagerank;
pub mod pseudo_diameter;
pub mod semirings;

pub use bfs::{bfs, bfs_frontiers, bfs_prepared, BfsResult};
pub use components::connected_components;
pub use matching::bipartite_matching;
pub use mis::maximal_independent_set;
pub use multi_bfs::{multi_bfs, multi_bfs_routed, multi_bfs_using, MultiBfsResult};
pub use pagerank::{
    pagerank_datadriven, pagerank_personalized_batch, PageRankOptions, PersonalizedPageRankResult,
};
pub use pseudo_diameter::pseudo_diameter;
