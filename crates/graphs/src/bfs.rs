//! Breadth-first search via SpMSpV frontier expansion.
//!
//! One BFS level is exactly one SpMSpV: the current frontier is the sparse
//! input vector `x` (carrying, for every frontier vertex, its own id), the
//! graph's adjacency matrix is `A`, and `y ← Aᵀ·x` under the
//! `(min, select2nd)` semiring yields, for every vertex adjacent to the
//! frontier, the id of a frontier vertex that discovered it. Masking out
//! already-visited vertices turns `y` into the next frontier.
//!
//! The search is expressed on the [`Mxv`] descriptor with a
//! [`MaskMode::Complement`] mask over the visited set, so the kernel drops
//! already-visited vertices **during its SPA merge** — the next frontier
//! comes straight out of the multiplication, with no separate filtering
//! pass over `y`.
//!
//! Figures 4 and 5 of the paper time *only* the SpMSpV calls of a BFS run;
//! [`BfsResult::spmspv_time`] reports exactly that quantity.

use std::time::{Duration, Instant};

use sparse_substrate::{CscMatrix, Select2ndMin, SparseVec};
use spmspv::ops::{Mxv, PreparedMxv};
use spmspv::{AlgorithmKind, MaskMode, SpMSpVOptions};

/// Result of a breadth-first search.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `parents[v]` is the BFS parent of `v` (`parents[source] == source`),
    /// or `None` when `v` was not reached.
    pub parents: Vec<Option<usize>>,
    /// `levels[v]` is the BFS level (distance in hops from the source).
    pub levels: Vec<Option<usize>>,
    /// Number of vertices reached, including the source.
    pub num_visited: usize,
    /// Number of BFS levels executed (= number of SpMSpV calls).
    pub iterations: usize,
    /// Sum of wall-clock time spent inside SpMSpV across all levels —
    /// the quantity the paper's Figures 4 and 5 report.
    pub spmspv_time: Duration,
    /// `nnz(x)` of the frontier fed to each SpMSpV call.
    pub frontier_sizes: Vec<usize>,
}

/// Runs BFS from `source` using the requested SpMSpV algorithm.
///
/// The adjacency matrix is interpreted column-wise: `a.column(v)` lists the
/// out-neighbours of `v` (for the symmetric matrices produced by the
/// generators the distinction does not matter).
pub fn bfs(
    a: &CscMatrix<f64>,
    source: usize,
    kind: AlgorithmKind,
    options: SpMSpVOptions,
) -> BfsResult {
    let mut op = Mxv::over(a)
        .semiring(&Select2ndMin)
        .algorithm(kind)
        .masked(MaskMode::Complement)
        .options(options)
        .prepare();
    bfs_prepared(&mut op, source)
}

/// Runs BFS from `source` on a caller-prepared [`Mxv`] descriptor — the
/// reuse idiom for running many searches over one graph: the descriptor's
/// workspaces and mask allocation survive across calls.
///
/// The descriptor must carry a shared [`MaskMode::Complement`] mask (build
/// with `.masked(MaskMode::Complement)`); it is cleared on entry and holds
/// the visited set of this search on return.
pub fn bfs_prepared(
    op: &mut PreparedMxv<'_, f64, usize, Select2ndMin>,
    source: usize,
) -> BfsResult {
    let a = op.matrix();
    let n = a.ncols();
    assert!(source < n, "source vertex {source} out of range for {n} vertices");
    assert_eq!(a.nrows(), a.ncols(), "BFS expects a square adjacency matrix");
    assert!(
        op.mask_mode() == Some(MaskMode::Complement) && op.lane_mask_count().is_none(),
        "BFS needs a shared ¬visited mask; build the descriptor with .masked(MaskMode::Complement)"
    );

    let mut parents: Vec<Option<usize>> = vec![None; n];
    let mut levels: Vec<Option<usize>> = vec![None; n];
    parents[source] = Some(source);
    levels[source] = Some(0);

    op.mask_clear();
    op.mask_mut().insert(source);
    let mut frontier = SparseVec::from_pairs(n, vec![(source, source)]).expect("valid source");
    let mut num_visited = 1usize;
    let mut iterations = 0usize;
    let mut spmspv_time = Duration::ZERO;
    let mut frontier_sizes = Vec::new();

    let mut level = 0usize;
    while !frontier.is_empty() {
        frontier_sizes.push(frontier.nnz());
        let t = Instant::now();
        let reached = op.run(&frontier);
        spmspv_time += t.elapsed();
        iterations += 1;
        level += 1;

        // The ¬visited mask already dropped known vertices inside the
        // kernel, so everything that comes back is a fresh discovery.
        let mut next = SparseVec::new(n);
        for (v, &parent) in reached.iter() {
            debug_assert!(parents[v].is_none(), "in-kernel mask admits only unvisited vertices");
            parents[v] = Some(parent);
            levels[v] = Some(level);
            num_visited += 1;
            next.push(v, v);
            op.mask_mut().insert(v);
        }
        frontier = next;
    }

    BfsResult { parents, levels, num_visited, iterations, spmspv_time, frontier_sizes }
}

/// Runs a plain BFS and returns, for every level, the frontier as a sparse
/// `f64` vector (unit values). Figure 3 of the paper sweeps `nnz(x)` by
/// taking real BFS frontiers of different sizes; this helper produces them.
pub fn bfs_frontiers(a: &CscMatrix<f64>, source: usize) -> Vec<SparseVec<f64>> {
    let n = a.ncols();
    let mut visited = vec![false; n];
    visited[source] = true;
    let mut frontier = vec![source];
    let mut out = Vec::new();
    while !frontier.is_empty() {
        let sv = SparseVec::from_pairs(n, frontier.iter().map(|&v| (v, 1.0)).collect())
            .expect("frontier indices are in range");
        out.push(sv);
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in a.column(v).0 {
                if !visited[u] {
                    visited[u] = true;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{grid2d, rmat, RmatParams};
    use sparse_substrate::CooMatrix;
    use spmspv::SpMSpV;

    fn path_graph(n: usize) -> CscMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        CscMatrix::from_coo(coo, |a, _| a)
    }

    #[test]
    fn bfs_on_a_path_gives_exact_levels() {
        let a = path_graph(10);
        let r = bfs(&a, 0, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(2));
        assert_eq!(r.num_visited, 10);
        assert_eq!(r.iterations, 10); // 9 productive levels + 1 empty-frontier check is folded; levels 1..=9
        for v in 0..10 {
            assert_eq!(r.levels[v], Some(v));
        }
        assert_eq!(r.parents[0], Some(0));
        assert_eq!(r.parents[5], Some(4));
    }

    #[test]
    fn all_algorithms_produce_identical_levels() {
        let a = rmat(8, 8, RmatParams::graph500(), 5);
        let source = 0;
        let reference = bfs(&a, source, AlgorithmKind::Sequential, SpMSpVOptions::with_threads(1));
        for kind in [
            AlgorithmKind::Bucket,
            AlgorithmKind::CombBlasSpa,
            AlgorithmKind::CombBlasHeap,
            AlgorithmKind::GraphMat,
            AlgorithmKind::SortBased,
        ] {
            let r = bfs(&a, source, kind, SpMSpVOptions::with_threads(4));
            assert_eq!(r.num_visited, reference.num_visited, "{kind} visited count differs");
            assert_eq!(r.levels, reference.levels, "{kind} levels differ");
        }
    }

    #[test]
    fn mxv_path_is_bit_identical_to_a_post_filter_loop() {
        // The acceptance bar of the Mxv migration, kept alive after the
        // removal of the old `bfs_with` entry point: the in-kernel-masked
        // descriptor run reproduces a multiply-then-filter frontier loop
        // exactly — same parents, same levels, same telemetry counts.
        let a = rmat(8, 8, RmatParams::graph500(), 21);
        for source in [0usize, 9, 77] {
            let new = bfs(&a, source, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(3));

            let mut alg = spmspv::SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(3));
            let n = a.ncols();
            let mut parents: Vec<Option<usize>> = vec![None; n];
            let mut levels: Vec<Option<usize>> = vec![None; n];
            parents[source] = Some(source);
            levels[source] = Some(0);
            let mut frontier =
                SparseVec::from_pairs(n, vec![(source, source)]).expect("valid source");
            let mut num_visited = 1usize;
            let mut iterations = 0usize;
            let mut frontier_sizes = Vec::new();
            let mut level = 0usize;
            while !frontier.is_empty() {
                frontier_sizes.push(frontier.nnz());
                let reached = SpMSpV::multiply(&mut alg, &frontier, &Select2ndMin);
                iterations += 1;
                level += 1;
                let mut next = SparseVec::new(n);
                for (v, &parent) in reached.iter() {
                    if parents[v].is_none() {
                        parents[v] = Some(parent);
                        levels[v] = Some(level);
                        num_visited += 1;
                        next.push(v, v);
                    }
                }
                frontier = next;
            }

            assert_eq!(new.parents, parents, "parents differ for source {source}");
            assert_eq!(new.levels, levels, "levels differ for source {source}");
            assert_eq!(new.num_visited, num_visited);
            assert_eq!(new.iterations, iterations);
            assert_eq!(new.frontier_sizes, frontier_sizes);
        }
    }

    #[test]
    fn prepared_descriptor_is_reusable_across_sources() {
        let a = grid2d(7, 9);
        let mut op = Mxv::over(&a)
            .semiring(&Select2ndMin)
            .masked(MaskMode::Complement)
            .options(SpMSpVOptions::with_threads(2))
            .prepare();
        for source in [0usize, 30, 62] {
            let reused = bfs_prepared(&mut op, source);
            let fresh = bfs(&a, source, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(2));
            assert_eq!(reused.levels, fresh.levels, "reused descriptor diverged at {source}");
        }
    }

    #[test]
    fn parents_form_a_valid_bfs_tree() {
        let a = grid2d(12, 17);
        let r = bfs(&a, 5, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(3));
        for v in 0..a.ncols() {
            match (r.parents[v], r.levels[v]) {
                (Some(p), Some(l)) => {
                    if v == 5 {
                        assert_eq!(p, 5);
                        assert_eq!(l, 0);
                    } else {
                        // parent is a real neighbour one level closer
                        assert!(a.get(v, p).is_some() || a.get(p, v).is_some());
                        assert_eq!(r.levels[p], Some(l - 1));
                    }
                }
                (None, None) => {}
                other => panic!("inconsistent parent/level for {v}: {other:?}"),
            }
        }
        // grid is connected
        assert_eq!(r.num_visited, a.ncols());
    }

    #[test]
    fn disconnected_vertices_stay_unvisited() {
        // two disjoint edges: 0-1 and 2-3
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(3, 2, 1.0);
        let a = CscMatrix::from_coo(coo, |x, _| x);
        let r = bfs(&a, 0, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(2));
        assert_eq!(r.num_visited, 2);
        assert_eq!(r.levels[1], Some(1));
        assert_eq!(r.levels[2], None);
        assert_eq!(r.parents[3], None);
    }

    #[test]
    fn frontier_sizes_sum_to_visited_count() {
        let a = rmat(9, 6, RmatParams::graph500(), 12);
        let r = bfs(&a, 1, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(2));
        let total: usize = r.frontier_sizes.iter().sum();
        assert_eq!(total, r.num_visited);
        assert_eq!(r.frontier_sizes.len(), r.iterations);
    }

    #[test]
    fn bfs_frontiers_match_bfs_levels() {
        let a = grid2d(8, 8);
        let frontiers = bfs_frontiers(&a, 0);
        let r = bfs(&a, 0, AlgorithmKind::Sequential, SpMSpVOptions::with_threads(1));
        // one frontier per level, sizes agree with the level histogram
        let mut level_counts = std::collections::BTreeMap::new();
        for l in r.levels.iter().flatten() {
            *level_counts.entry(*l).or_insert(0usize) += 1;
        }
        assert_eq!(frontiers.len(), level_counts.len());
        for (level, frontier) in frontiers.iter().enumerate() {
            assert_eq!(frontier.nnz(), level_counts[&level]);
        }
    }
}
