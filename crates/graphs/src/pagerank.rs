//! Data-driven (push-style) PageRank on the SpMSpV primitive.
//!
//! §I of the paper: "Even seemingly more regular graph algorithms, such as
//! PageRank, are better implemented in a data-driven way using the SpMSpV
//! primitive … because SpMSpV allows marking vertices inactive using the
//! sparsity of the input vector, as soon as its value converges."
//!
//! The implementation expands the power series
//! `π = (1−α)/n · Σ_{k≥0} (α·P)ᵏ · e`: each round multiplies the current
//! *contribution* vector by `α·P` with one SpMSpV and adds it into the rank
//! estimate, dropping entries whose contribution fell below `tolerance`.
//! Because contributions decay geometrically, the active frontier shrinks as
//! the computation proceeds — vertices are "marked inactive using the
//! sparsity of the input vector, as soon as \[their\] value converges", which
//! is precisely the behaviour the paper describes. Mass parked on dangling
//! vertices is not redistributed (the truncation the tolerance introduces
//! anyway); the final vector is renormalized to sum to one.

use sparse_substrate::{CooMatrix, CscMatrix, PlusTimes, SparseVec};
use spmspv::ops::Mxv;
use spmspv::{AlgorithmKind, SpMSpVOptions};

/// Tuning parameters for [`pagerank_datadriven`].
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Damping factor α (0.85 in the classic formulation).
    pub damping: f64,
    /// Per-vertex change below which a vertex is considered converged and
    /// dropped from the active frontier.
    pub tolerance: f64,
    /// Hard cap on the number of iterations.
    pub max_iterations: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions { damping: 0.85, tolerance: 1e-8, max_iterations: 100 }
    }
}

/// Result of a PageRank run.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Final rank per vertex (sums to ≈ 1 for graphs without dangling mass
    /// loss; dangling mass is redistributed uniformly).
    pub ranks: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Number of active vertices fed to the SpMSpV in each iteration — the
    /// quantity that demonstrates the data-driven shrinkage.
    pub active_per_iteration: Vec<usize>,
}

/// Builds the column-stochastic transition matrix `P` where
/// `P(u, v) = 1/outdeg(v)` for every edge `v → u` (columns are sources).
pub fn transition_matrix(a: &CscMatrix<f64>) -> CscMatrix<f64> {
    let n = a.ncols();
    let mut coo = CooMatrix::with_capacity(a.nrows(), n, a.nnz());
    for v in 0..n {
        let (rows, _) = a.column(v);
        if rows.is_empty() {
            continue;
        }
        let w = 1.0 / rows.len() as f64;
        for &u in rows {
            coo.push(u, v, w);
        }
    }
    CscMatrix::from_coo(coo, |x, y| x + y)
}

/// Runs data-driven PageRank with the requested SpMSpV algorithm.
pub fn pagerank_datadriven(
    a: &CscMatrix<f64>,
    kind: AlgorithmKind,
    spmspv_options: SpMSpVOptions,
    options: PageRankOptions,
) -> PageRankResult {
    assert_eq!(a.nrows(), a.ncols(), "PageRank expects a square adjacency matrix");
    let n = a.ncols();
    if n == 0 {
        return PageRankResult {
            ranks: Vec::new(),
            iterations: 0,
            active_per_iteration: Vec::new(),
        };
    }
    let p = transition_matrix(a);
    let mut op =
        Mxv::over(&p).semiring(&PlusTimes).algorithm(kind).options(spmspv_options).prepare::<f64>();
    let alpha = options.damping;

    let mut ranks = vec![0.0f64; n];
    // Round-0 contribution: the uniform teleport mass (1-α)/n everywhere.
    let mut contrib =
        SparseVec::from_pairs(n, (0..n).map(|v| (v, (1.0 - alpha) / n as f64)).collect())
            .expect("initial contributions are in range");
    let mut active_per_iteration = Vec::new();
    let mut iterations = 0usize;

    while !contrib.is_empty() && iterations < options.max_iterations {
        active_per_iteration.push(contrib.nnz());
        iterations += 1;

        // Absorb this round's contributions into the rank estimate.
        for (v, &c) in contrib.iter() {
            ranks[v] += c;
        }

        // Next round: α · P · contrib, dropping negligible entries so the
        // frontier keeps shrinking.
        let propagated = op.run(&contrib);
        let mut next = SparseVec::new(n);
        for (u, &c) in propagated.iter() {
            let scaled = alpha * c;
            if scaled > options.tolerance {
                next.push(u, scaled);
            }
        }
        contrib = next;
    }

    // Mass truncated by the tolerance or parked on dangling vertices is
    // restored by normalization.
    let total: f64 = ranks.iter().sum();
    if total > 0.0 {
        for r in ranks.iter_mut() {
            *r /= total;
        }
    }

    PageRankResult { ranks, iterations, active_per_iteration }
}

/// Result of a batched personalized PageRank run.
#[derive(Debug, Clone)]
pub struct PersonalizedPageRankResult {
    /// `ranks[l]` is the personalized rank vector of lane `l` (teleporting
    /// to `sources[l]`), normalized to sum to one.
    pub ranks: Vec<Vec<f64>>,
    /// Iterations executed (batched SpMSpV calls).
    pub iterations: usize,
    /// Still-active lanes fed to each iteration's batched SpMSpV — lanes
    /// retire as their contribution vector converges below tolerance.
    pub active_lanes_per_iteration: Vec<usize>,
    /// The serving engine's coalescing telemetry: every iteration's active
    /// teleport targets collapsed into one fused batch.
    pub engine_stats: spmspv::stats::EngineStats,
}

/// Batched personalized PageRank: one rank vector per teleport target in
/// `sources`, computed with a **single** batched SpMSpV per iteration —
/// expressed as `k` client sessions of a serving [`spmspv::engine::Engine`],
/// one request per still-active lane per iteration, one
/// [`spmspv::engine::Engine::flush`] per iteration.
///
/// Same power-series expansion as [`pagerank_datadriven`], but the teleport
/// mass of lane `l` is concentrated on `sources[l]` instead of spread
/// uniformly: `π_l = (1−α) · Σ_{t≥0} (α·P)ᵗ · e_{sources[l]}`. All lanes
/// share each iteration's traversal of `P`'s column structure; a lane whose
/// surviving contributions drop below `tolerance` everywhere closes its
/// session and stops submitting. Lane `l`'s result is identical to running
/// the function with `sources == [sources[l]]` alone — lanes never
/// interact.
pub fn pagerank_personalized_batch(
    a: &CscMatrix<f64>,
    sources: &[usize],
    spmspv_options: spmspv::SpMSpVOptions,
    options: PageRankOptions,
) -> PersonalizedPageRankResult {
    assert_eq!(a.nrows(), a.ncols(), "PageRank expects a square adjacency matrix");
    let n = a.ncols();
    let k = sources.len();
    for &s in sources {
        assert!(s < n, "personalization vertex {s} out of range for {n} vertices");
    }
    if n == 0 || k == 0 {
        return PersonalizedPageRankResult {
            ranks: vec![Vec::new(); k],
            iterations: 0,
            active_lanes_per_iteration: Vec::new(),
            engine_stats: spmspv::stats::EngineStats::default(),
        };
    }

    let p = transition_matrix(a);
    // One serving engine per computation; every teleport target is one
    // client session. `max_lanes(0)` keeps each iteration one fused call.
    let engine: spmspv::engine::Engine<'_, f64, f64, PlusTimes> = spmspv::engine::Engine::over_with(
        &p,
        PlusTimes,
        spmspv::engine::EngineConfig::default().options(spmspv_options).max_lanes(0),
    );
    let alpha = options.damping;

    let mut ranks = vec![vec![0.0f64; n]; k];
    // active[lane] = source index this batch lane serves.
    let mut active: Vec<usize> = (0..k).collect();
    let mut sessions: Vec<Option<spmspv::engine::Session<'_, '_, f64, f64, PlusTimes>>> =
        (0..k).map(|_| Some(engine.session())).collect();
    let mut contribs: Vec<SparseVec<f64>> = sources
        .iter()
        .map(|&s| {
            SparseVec::from_pairs(n, vec![(s, 1.0 - alpha)])
                .expect("personalization index in range")
        })
        .collect();
    let mut active_lanes_per_iteration = Vec::new();
    let mut iterations = 0usize;

    while !active.is_empty() && iterations < options.max_iterations {
        active_lanes_per_iteration.push(active.len());
        iterations += 1;

        for (lane, &s) in active.iter().enumerate() {
            for (v, &c) in contribs[lane].iter() {
                ranks[s][v] += c;
            }
        }

        let tickets: Vec<_> = active
            .iter()
            .zip(contribs.iter())
            .map(|(&s, contrib)| {
                sessions[s]
                    .as_ref()
                    .expect("active lane keeps its session")
                    .submit(spmspv::engine::MxvRequest::new(contrib.clone()))
            })
            .collect();
        engine.flush();

        let mut next_active = Vec::with_capacity(active.len());
        let mut next_contribs = Vec::with_capacity(active.len());
        for (&s, ticket) in active.iter().zip(tickets) {
            let propagated = ticket
                .try_take()
                .expect("flush served every live request")
                .expect("in-process PageRank requests cannot fail");
            let mut next = SparseVec::new(n);
            for (u, &c) in propagated.iter() {
                let scaled = alpha * c;
                if scaled > options.tolerance {
                    next.push(u, scaled);
                }
            }
            if !next.is_empty() {
                next_active.push(s);
                next_contribs.push(next);
            } else if let Some(session) = sessions[s].take() {
                session.close();
            }
        }
        active = next_active;
        contribs = next_contribs;
    }

    for lane_ranks in ranks.iter_mut() {
        let total: f64 = lane_ranks.iter().sum();
        if total > 0.0 {
            for r in lane_ranks.iter_mut() {
                *r /= total;
            }
        }
    }

    PersonalizedPageRankResult {
        ranks,
        iterations,
        active_lanes_per_iteration,
        engine_stats: engine.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{grid2d, rmat, RmatParams};
    use sparse_substrate::CooMatrix;

    #[test]
    fn transition_matrix_columns_sum_to_one() {
        let a = rmat(7, 4, RmatParams::graph500(), 2);
        let p = transition_matrix(&a);
        for j in 0..p.ncols() {
            let (_, vals) = p.column(j);
            if !vals.is_empty() {
                let s: f64 = vals.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "column {j} sums to {s}");
            }
        }
    }

    #[test]
    fn uniform_rank_on_a_cycle() {
        // On a directed cycle every vertex has the same rank 1/n.
        let n = 12;
        let mut coo = CooMatrix::new(n, n);
        for v in 0..n {
            coo.push((v + 1) % n, v, 1.0);
        }
        let a = CscMatrix::from_coo(coo, |x, _| x);
        let r = pagerank_datadriven(
            &a,
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(2),
            PageRankOptions::default(),
        );
        for &rank in &r.ranks {
            assert!((rank - 1.0 / n as f64).abs() < 1e-6, "rank {rank} not uniform");
        }
        let total: f64 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hub_receives_more_rank_than_leaves() {
        // Star graph: all leaves point to the hub (vertex 0).
        let n = 20;
        let mut coo = CooMatrix::new(n, n);
        for v in 1..n {
            coo.push(0, v, 1.0);
        }
        let a = CscMatrix::from_coo(coo, |x, _| x);
        let r = pagerank_datadriven(
            &a,
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(2),
            PageRankOptions::default(),
        );
        assert!(r.ranks[0] > r.ranks[1] * 5.0, "hub rank {} vs leaf {}", r.ranks[0], r.ranks[1]);
    }

    #[test]
    fn active_set_shrinks_over_time() {
        // A scale-free graph has heterogeneous degrees, so vertices converge
        // at different iterations and the active frontier shrinks instead of
        // staying dense — the data-driven behaviour §I describes. (On a
        // perfectly regular grid every vertex converges simultaneously, so a
        // mesh would not demonstrate the effect.)
        let a = rmat(9, 4, RmatParams::web_like(), 13);
        let r = pagerank_datadriven(
            &a,
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(2),
            PageRankOptions { tolerance: 1e-6, ..Default::default() },
        );
        assert!(r.iterations > 2);
        let first = r.active_per_iteration[0];
        assert!(
            r.active_per_iteration.iter().any(|&c| c < first),
            "active set never shrank below the initial {first}: {:?}",
            r.active_per_iteration
        );
        // The grid case must still terminate and keep its ranks normalized,
        // just without the shrinkage claim.
        let mesh = pagerank_datadriven(
            &grid2d(12, 12),
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(2),
            PageRankOptions { tolerance: 1e-4, ..Default::default() },
        );
        let total: f64 = mesh.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-2, "mesh ranks sum to {total}");
    }

    #[test]
    fn personalized_batch_lane_equals_single_source_run() {
        let a = rmat(7, 5, RmatParams::web_like(), 8);
        let sources = [0usize, 5, 40];
        let batch = pagerank_personalized_batch(
            &a,
            &sources,
            spmspv::SpMSpVOptions::with_threads(3),
            PageRankOptions::default(),
        );
        for (l, &s) in sources.iter().enumerate() {
            let single = pagerank_personalized_batch(
                &a,
                &[s],
                spmspv::SpMSpVOptions::with_threads(2),
                PageRankOptions::default(),
            );
            assert_eq!(
                batch.ranks[l], single.ranks[0],
                "lane {l} (source {s}) differs from its single-source run"
            );
        }
    }

    #[test]
    fn personalized_rank_concentrates_near_the_source() {
        // On a directed cycle, personalized PageRank from s decays
        // geometrically with distance from s, so s itself has the top rank.
        let n = 16;
        let mut coo = CooMatrix::new(n, n);
        for v in 0..n {
            coo.push((v + 1) % n, v, 1.0);
        }
        let a = CscMatrix::from_coo(coo, |x, _| x);
        let r = pagerank_personalized_batch(
            &a,
            &[3],
            spmspv::SpMSpVOptions::with_threads(2),
            PageRankOptions::default(),
        );
        let ranks = &r.ranks[0];
        let argmax = (0..n).max_by(|&i, &j| ranks[i].total_cmp(&ranks[j])).unwrap();
        assert_eq!(argmax, 3, "teleport target should hold the largest rank");
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn personalized_lanes_retire_independently() {
        // A dangling source (no out-edges beyond itself) converges in one
        // step while a well-connected source keeps propagating.
        let n = 12;
        let mut coo = CooMatrix::new(n, n);
        for v in 0..n - 1 {
            coo.push(v + 1, v, 1.0);
            coo.push(v, v + 1, 1.0);
        }
        let a = CscMatrix::from_coo(coo, |x, _| x);
        let r = pagerank_personalized_batch(
            &a,
            &[0, n / 2],
            spmspv::SpMSpVOptions::with_threads(2),
            PageRankOptions { tolerance: 1e-6, ..Default::default() },
        );
        assert!(r.iterations > 1);
        assert_eq!(r.active_lanes_per_iteration[0], 2);
        // every iteration's lane count is non-increasing
        assert!(r.active_lanes_per_iteration.windows(2).all(|w| w[0] >= w[1]));
        // serving telemetry: one fused batch per iteration, one request per
        // active lane per iteration
        assert_eq!(r.engine_stats.fused_batches, r.iterations);
        assert_eq!(r.engine_stats.requests, r.active_lanes_per_iteration.iter().sum::<usize>());
    }

    #[test]
    fn personalized_batch_handles_empty_sources() {
        let a = grid2d(4, 4);
        let r = pagerank_personalized_batch(
            &a,
            &[],
            spmspv::SpMSpVOptions::default(),
            PageRankOptions::default(),
        );
        assert_eq!(r.iterations, 0);
        assert!(r.ranks.is_empty());
    }

    #[test]
    fn algorithms_agree_on_final_ranks() {
        let a = rmat(7, 6, RmatParams::web_like(), 5);
        let bucket = pagerank_datadriven(
            &a,
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(3),
            PageRankOptions::default(),
        );
        let seq = pagerank_datadriven(
            &a,
            AlgorithmKind::Sequential,
            SpMSpVOptions::with_threads(1),
            PageRankOptions::default(),
        );
        for (x, y) in bucket.ranks.iter().zip(seq.ranks.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
