//! Data-driven (push-style) PageRank on the SpMSpV primitive.
//!
//! §I of the paper: "Even seemingly more regular graph algorithms, such as
//! PageRank, are better implemented in a data-driven way using the SpMSpV
//! primitive … because SpMSpV allows marking vertices inactive using the
//! sparsity of the input vector, as soon as its value converges."
//!
//! The implementation expands the power series
//! `π = (1−α)/n · Σ_{k≥0} (α·P)ᵏ · e`: each round multiplies the current
//! *contribution* vector by `α·P` with one SpMSpV and adds it into the rank
//! estimate, dropping entries whose contribution fell below `tolerance`.
//! Because contributions decay geometrically, the active frontier shrinks as
//! the computation proceeds — vertices are "marked inactive using the
//! sparsity of the input vector, as soon as [their] value converges", which
//! is precisely the behaviour the paper describes. Mass parked on dangling
//! vertices is not redistributed (the truncation the tolerance introduces
//! anyway); the final vector is renormalized to sum to one.

use sparse_substrate::{CooMatrix, CscMatrix, PlusTimes, SparseVec};
use spmspv::{AlgorithmKind, SpMSpVOptions};

/// Tuning parameters for [`pagerank_datadriven`].
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Damping factor α (0.85 in the classic formulation).
    pub damping: f64,
    /// Per-vertex change below which a vertex is considered converged and
    /// dropped from the active frontier.
    pub tolerance: f64,
    /// Hard cap on the number of iterations.
    pub max_iterations: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions { damping: 0.85, tolerance: 1e-8, max_iterations: 100 }
    }
}

/// Result of a PageRank run.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Final rank per vertex (sums to ≈ 1 for graphs without dangling mass
    /// loss; dangling mass is redistributed uniformly).
    pub ranks: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Number of active vertices fed to the SpMSpV in each iteration — the
    /// quantity that demonstrates the data-driven shrinkage.
    pub active_per_iteration: Vec<usize>,
}

/// Builds the column-stochastic transition matrix `P` where
/// `P(u, v) = 1/outdeg(v)` for every edge `v → u` (columns are sources).
pub fn transition_matrix(a: &CscMatrix<f64>) -> CscMatrix<f64> {
    let n = a.ncols();
    let mut coo = CooMatrix::with_capacity(a.nrows(), n, a.nnz());
    for v in 0..n {
        let (rows, _) = a.column(v);
        if rows.is_empty() {
            continue;
        }
        let w = 1.0 / rows.len() as f64;
        for &u in rows {
            coo.push(u, v, w);
        }
    }
    CscMatrix::from_coo(coo, |x, y| x + y)
}

/// Runs data-driven PageRank with the requested SpMSpV algorithm.
pub fn pagerank_datadriven(
    a: &CscMatrix<f64>,
    kind: AlgorithmKind,
    spmspv_options: SpMSpVOptions,
    options: PageRankOptions,
) -> PageRankResult {
    assert_eq!(a.nrows(), a.ncols(), "PageRank expects a square adjacency matrix");
    let n = a.ncols();
    if n == 0 {
        return PageRankResult { ranks: Vec::new(), iterations: 0, active_per_iteration: Vec::new() };
    }
    let p = transition_matrix(a);
    let mut alg = crate::numeric_algorithm(&p, kind, spmspv_options);
    let semiring = PlusTimes;
    let alpha = options.damping;

    let mut ranks = vec![0.0f64; n];
    // Round-0 contribution: the uniform teleport mass (1-α)/n everywhere.
    let mut contrib =
        SparseVec::from_pairs(n, (0..n).map(|v| (v, (1.0 - alpha) / n as f64)).collect())
            .expect("initial contributions are in range");
    let mut active_per_iteration = Vec::new();
    let mut iterations = 0usize;

    while !contrib.is_empty() && iterations < options.max_iterations {
        active_per_iteration.push(contrib.nnz());
        iterations += 1;

        // Absorb this round's contributions into the rank estimate.
        for (v, &c) in contrib.iter() {
            ranks[v] += c;
        }

        // Next round: α · P · contrib, dropping negligible entries so the
        // frontier keeps shrinking.
        let propagated = alg.multiply(&contrib, &semiring);
        let mut next = SparseVec::new(n);
        for (u, &c) in propagated.iter() {
            let scaled = alpha * c;
            if scaled > options.tolerance {
                next.push(u, scaled);
            }
        }
        contrib = next;
    }

    // Mass truncated by the tolerance or parked on dangling vertices is
    // restored by normalization.
    let total: f64 = ranks.iter().sum();
    if total > 0.0 {
        for r in ranks.iter_mut() {
            *r /= total;
        }
    }

    PageRankResult { ranks, iterations, active_per_iteration }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{grid2d, rmat, RmatParams};
    use sparse_substrate::CooMatrix;

    #[test]
    fn transition_matrix_columns_sum_to_one() {
        let a = rmat(7, 4, RmatParams::graph500(), 2);
        let p = transition_matrix(&a);
        for j in 0..p.ncols() {
            let (_, vals) = p.column(j);
            if !vals.is_empty() {
                let s: f64 = vals.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "column {j} sums to {s}");
            }
        }
    }

    #[test]
    fn uniform_rank_on_a_cycle() {
        // On a directed cycle every vertex has the same rank 1/n.
        let n = 12;
        let mut coo = CooMatrix::new(n, n);
        for v in 0..n {
            coo.push((v + 1) % n, v, 1.0);
        }
        let a = CscMatrix::from_coo(coo, |x, _| x);
        let r = pagerank_datadriven(
            &a,
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(2),
            PageRankOptions::default(),
        );
        for &rank in &r.ranks {
            assert!((rank - 1.0 / n as f64).abs() < 1e-6, "rank {rank} not uniform");
        }
        let total: f64 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hub_receives_more_rank_than_leaves() {
        // Star graph: all leaves point to the hub (vertex 0).
        let n = 20;
        let mut coo = CooMatrix::new(n, n);
        for v in 1..n {
            coo.push(0, v, 1.0);
        }
        let a = CscMatrix::from_coo(coo, |x, _| x);
        let r = pagerank_datadriven(
            &a,
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(2),
            PageRankOptions::default(),
        );
        assert!(r.ranks[0] > r.ranks[1] * 5.0, "hub rank {} vs leaf {}", r.ranks[0], r.ranks[1]);
    }

    #[test]
    fn active_set_shrinks_over_time() {
        // A scale-free graph has heterogeneous degrees, so vertices converge
        // at different iterations and the active frontier shrinks instead of
        // staying dense — the data-driven behaviour §I describes. (On a
        // perfectly regular grid every vertex converges simultaneously, so a
        // mesh would not demonstrate the effect.)
        let a = rmat(9, 4, RmatParams::web_like(), 13);
        let r = pagerank_datadriven(
            &a,
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(2),
            PageRankOptions { tolerance: 1e-6, ..Default::default() },
        );
        assert!(r.iterations > 2);
        let first = r.active_per_iteration[0];
        assert!(
            r.active_per_iteration.iter().any(|&c| c < first),
            "active set never shrank below the initial {first}: {:?}",
            r.active_per_iteration
        );
        // The grid case must still terminate and keep its ranks normalized,
        // just without the shrinkage claim.
        let mesh = pagerank_datadriven(
            &grid2d(12, 12),
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(2),
            PageRankOptions { tolerance: 1e-4, ..Default::default() },
        );
        let total: f64 = mesh.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-2, "mesh ranks sum to {total}");
    }

    #[test]
    fn algorithms_agree_on_final_ranks() {
        let a = rmat(7, 6, RmatParams::web_like(), 5);
        let bucket = pagerank_datadriven(
            &a,
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(3),
            PageRankOptions::default(),
        );
        let seq = pagerank_datadriven(
            &a,
            AlgorithmKind::Sequential,
            SpMSpVOptions::with_threads(1),
            PageRankOptions::default(),
        );
        for (x, y) in bucket.ranks.iter().zip(seq.ranks.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
