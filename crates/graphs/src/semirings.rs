//! Additional semirings needed by the graph algorithms.

use sparse_substrate::{Scalar, Semiring};

/// `(max, select2nd)` over `f64`: propagates the input-vector value and keeps
/// the maximum on collisions. Used by Luby's maximal-independent-set
/// algorithm to ask "what is the largest priority among my undecided
/// neighbours?".
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Select2ndMax;

impl<A: Scalar> Semiring<A, f64> for Select2ndMax {
    type Output = f64;
    #[inline]
    fn zero(&self) -> f64 {
        f64::NEG_INFINITY
    }
    #[inline]
    fn multiply(&self, _a: &A, x: &f64) -> f64 {
        *x
    }
    #[inline]
    fn add(&self, lhs: f64, rhs: f64) -> f64 {
        lhs.max(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagates_vector_value_and_takes_max() {
        let s = Select2ndMax;
        assert_eq!(Semiring::<f64, f64>::multiply(&s, &123.0, &0.25), 0.25);
        assert_eq!(Semiring::<f64, f64>::add(&s, 0.25, 0.75), 0.75);
        assert_eq!(Semiring::<f64, f64>::add(&s, Semiring::<f64, f64>::zero(&s), 0.1), 0.1);
    }
}
