//! Pseudo-diameter estimation, used to classify the synthetic datasets
//! exactly as Table IV of the paper classifies the real ones
//! (low-diameter scale-free vs. high-diameter meshes).

use sparse_substrate::CscMatrix;
use spmspv::{AlgorithmKind, SpMSpVOptions};

use crate::bfs::bfs;

/// Estimates the pseudo-diameter of a graph by the standard double-sweep
/// heuristic: BFS from `start`, then BFS again from the farthest vertex
/// found, repeating while the eccentricity keeps growing (at most `sweeps`
/// rounds). Returns the largest BFS level observed, a lower bound on the
/// true diameter of the vertex's component.
pub fn pseudo_diameter(a: &CscMatrix<f64>, start: usize, sweeps: usize) -> usize {
    let mut source = start;
    let mut best = 0usize;
    for _ in 0..sweeps.max(1) {
        let r = bfs(a, source, AlgorithmKind::Sequential, SpMSpVOptions::with_threads(1));
        let (far_v, far_level) = r
            .levels
            .iter()
            .enumerate()
            .filter_map(|(v, l)| l.map(|l| (v, l)))
            .max_by_key(|&(_, l)| l)
            .unwrap_or((source, 0));
        if far_level <= best {
            break;
        }
        best = far_level;
        source = far_v;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{grid2d, rmat, RmatParams};
    use sparse_substrate::CooMatrix;

    #[test]
    fn path_graph_diameter_is_exact() {
        let n = 30;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        let a = CscMatrix::from_coo(coo, |x, _| x);
        // starting from the middle, the double sweep should still find 29
        assert_eq!(pseudo_diameter(&a, n / 2, 4), n - 1);
    }

    #[test]
    fn grid_diameter_matches_manhattan_distance() {
        let a = grid2d(7, 9);
        // true diameter of a 7x9 grid is (7-1)+(9-1) = 14
        assert_eq!(pseudo_diameter(&a, 0, 4), 14);
    }

    #[test]
    fn scale_free_graphs_have_small_diameter_compared_to_meshes() {
        let scale_free = rmat(10, 16, RmatParams::graph500(), 7);
        let mesh = grid2d(32, 32);
        let d_sf = pseudo_diameter(&scale_free, 0, 3);
        let d_mesh = pseudo_diameter(&mesh, 0, 3);
        assert!(
            d_sf < d_mesh,
            "scale-free pseudo-diameter {d_sf} should be below mesh pseudo-diameter {d_mesh}"
        );
    }
}
