//! Multi-source breadth-first search, expressed as `k` clients of the
//! serving [`Engine`].
//!
//! `k` BFS traversals (one per source) advance in lock step: each source is
//! one engine [`Session`] that submits its current frontier — with its own
//! `¬visited` mask — as an [`MxvRequest`] every level, and **one**
//! [`Engine::flush`] per level coalesces every still-active source into a
//! single fused batched SpMSpV. The matrix's column structure is traversed
//! once per level for the whole batch instead of once per source. This is
//! the workload batched SpMSpV exists for — betweenness centrality,
//! all-pairs-ish reachability probes and landmark selection all run many
//! BFSs from different sources over one graph.
//!
//! Each request's mask becomes its lane's in-kernel
//! [`MaskMode::Complement`] mask, so the batched kernel drops
//! already-visited `(vertex, lane)` pairs during its merge step and each
//! lane's output is exactly its next frontier.
//!
//! Sources finish at different levels; a source whose frontier empties
//! simply closes its session and stops submitting, so later levels' fused
//! batches only carry the still-active sources.
//! [`MultiBfsResult::active_lanes_per_level`] records that shrinkage.
//!
//! The lock-step driver is generic over the serving front door: the same
//! traversal runs against a single [`Engine`] ([`multi_bfs`]) or a
//! column-partitioned [`ShardedEngine`] fleet ([`multi_bfs_sharded`]) —
//! BFS's `(min, select2nd)` semiring is exactly associative, so the
//! sharded scatter/merge is bit-identical to the unsharded run.

use std::sync::Arc;
use std::time::Duration;

use sparse_substrate::{CscMatrix, MaskBits, Select2ndMin, SparseVec};
use spmspv::engine::{Engine, EngineConfig, MxvRequest, Session, Ticket};
use spmspv::obs::TraceKind;
use spmspv::shard::{ShardPlan, ShardSession, ShardedEngine};
use spmspv::stats::EngineStats;
use spmspv::{BatchAlgorithmKind, MaskMode, SpMSpVOptions};

/// Result of a multi-source BFS: one parent/level map per source, plus the
/// batched-execution telemetry.
#[derive(Debug, Clone)]
pub struct MultiBfsResult {
    /// The sources, in the order the per-source results are stored.
    pub sources: Vec<usize>,
    /// `parents[s][v]`: BFS parent of `v` in the tree rooted at
    /// `sources[s]` (`parents[s][sources[s]] == sources[s]`), or `None`.
    pub parents: Vec<Vec<Option<usize>>>,
    /// `levels[s][v]`: hop distance of `v` from `sources[s]`, or `None`.
    pub levels: Vec<Vec<Option<usize>>>,
    /// Vertices reached per source, including the source itself.
    pub num_visited: Vec<usize>,
    /// Number of levels executed (= batched SpMSpV calls).
    pub iterations: usize,
    /// Wall-clock time spent inside the batched SpMSpV across all levels.
    pub spmspv_time: Duration,
    /// Number of still-active lanes fed to each level's batched SpMSpV —
    /// demonstrates lane retirement.
    pub active_lanes_per_level: Vec<usize>,
    /// The serving engine's coalescing telemetry for this traversal: every
    /// level's `active` requests collapsed into one fused batch. For a
    /// sharded run this is the **sum** over the shard engines.
    pub engine_stats: EngineStats,
}

/// What the lock-step BFS driver needs from a serving front door. Both
/// [`Engine`] and [`ShardedEngine`] qualify: per-client sessions submitting
/// masked [`MxvRequest`]s, one flush per level, and engine-shaped stats.
trait BfsFrontDoor {
    /// The per-source client handle.
    type Client<'e>
    where
        Self: 'e;

    fn open(&self) -> Self::Client<'_>;
    fn submit_via(&self, client: &Self::Client<'_>, request: MxvRequest<usize>) -> Ticket<usize>;
    fn close_client(&self, client: Self::Client<'_>);
    /// Flushes one level; returns the wall time spent executing kernels and
    /// records the level trace event.
    fn flush_level(&self, level: usize, active_lanes: usize) -> Duration;
    fn final_stats(&self) -> EngineStats;
}

impl<'m> BfsFrontDoor for Engine<'m, f64, usize, Select2ndMin> {
    type Client<'e>
        = Session<'e, 'm, f64, usize, Select2ndMin>
    where
        Self: 'e;

    fn open(&self) -> Self::Client<'_> {
        self.session()
    }

    fn submit_via(&self, client: &Self::Client<'_>, request: MxvRequest<usize>) -> Ticket<usize> {
        client.submit(request)
    }

    fn close_client(&self, client: Self::Client<'_>) {
        client.close();
    }

    fn flush_level(&self, level: usize, active_lanes: usize) -> Duration {
        let outcome = self.flush();
        debug_assert_eq!(outcome.lanes, active_lanes);
        // Per-level trace into the engine's ring: the traversal's shrinking
        // batch width is the story the flush events alone don't tell.
        self.obs().trace(TraceKind::Level { level, active_lanes });
        outcome.timings.execute
    }

    fn final_stats(&self) -> EngineStats {
        self.stats()
    }
}

impl BfsFrontDoor for ShardedEngine<f64, usize, Select2ndMin> {
    type Client<'e>
        = ShardSession<'e, f64, usize, Select2ndMin>
    where
        Self: 'e;

    fn open(&self) -> Self::Client<'_> {
        self.session()
    }

    fn submit_via(&self, client: &Self::Client<'_>, request: MxvRequest<usize>) -> Ticket<usize> {
        client.submit(request)
    }

    fn close_client(&self, client: Self::Client<'_>) {
        client.close();
    }

    fn flush_level(&self, level: usize, active_lanes: usize) -> Duration {
        let outcome = self.flush();
        // One lane per (active source, owning shard) pair — ≥ active_lanes
        // whenever a frontier straddles a shard boundary.
        debug_assert!(outcome.lanes >= active_lanes || outcome.requests == 0);
        self.obs().trace(TraceKind::Level { level, active_lanes });
        outcome.execute_time
    }

    fn final_stats(&self) -> EngineStats {
        self.stats()
    }
}

/// Runs BFS from every vertex in `sources` simultaneously through the
/// adaptive batched dispatch: each level picks the kernel family (and SPA
/// backend) from that level's width and frontier density, so early seed
/// levels, bulk middle levels, and retiring tail levels each run the
/// configuration that wins for their shape.
///
/// Equivalent to calling [`crate::bfs()`] once per source (the property tests
/// assert exactly that), but amortizing each level's matrix traversal over
/// all still-active sources.
pub fn multi_bfs(a: &CscMatrix<f64>, sources: &[usize], options: SpMSpVOptions) -> MultiBfsResult {
    multi_bfs_using(a, sources, BatchAlgorithmKind::Adaptive, options)
}

/// [`multi_bfs`] with an explicit batched algorithm family, so callers (and
/// the benchmark harness) can swap the fused kernel for the naive per-lane
/// fallback the same way single-vector workloads swap [`spmspv::AlgorithmKind`].
pub fn multi_bfs_using(
    a: &CscMatrix<f64>,
    sources: &[usize],
    batch_kind: BatchAlgorithmKind,
    options: SpMSpVOptions,
) -> MultiBfsResult {
    check_bfs_inputs(a, sources);
    // One serving engine per traversal; every source is one client session.
    // `max_lanes(0)` lifts the width budget so each level stays exactly one
    // fused multiplication, preserving the pre-engine execution shape.
    let engine: Engine<'_, f64, usize, Select2ndMin> = Engine::over_with(
        a,
        Select2ndMin,
        EngineConfig::default().batch_algorithm(batch_kind).options(options).max_lanes(0),
    );
    drive_lockstep(&engine, a.ncols(), sources)
}

/// [`multi_bfs`] over a [`ShardedEngine`]: the matrix is 1D
/// column-partitioned into `shards` nnz-balanced ranges and every level's
/// frontiers are scatter/merged through the shard router. Results are
/// **identical** to [`multi_bfs`] — BFS's `(min, select2nd)` reduction is
/// exactly associative, so the per-shard fold order cannot show.
pub fn multi_bfs_sharded(
    a: &CscMatrix<f64>,
    sources: &[usize],
    shards: usize,
    options: SpMSpVOptions,
) -> MultiBfsResult {
    check_bfs_inputs(a, sources);
    let engine = ShardedEngine::partition_with(
        a,
        Select2ndMin,
        ShardPlan::balanced(a, shards),
        EngineConfig::default().options(options).max_lanes(0),
    );
    drive_lockstep(&engine, a.ncols(), sources)
}

/// [`multi_bfs`] through an **existing** router front door, whatever its
/// transport: the caller builds (and owns the lifecycle of) the
/// [`ShardedEngine`] — e.g. one connected to remote
/// [`ShardHost`](spmspv::net::ShardHost) daemons via
/// [`ShardedEngine::connect`] — and this drives the same lock-step
/// traversal over it. With an in-process router this is exactly
/// [`multi_bfs_sharded`]; with a socket transport every level's frontiers
/// travel the wire and the results are still bit-identical (the remote
/// shard property suite holds the transport to that).
pub fn multi_bfs_routed(
    engine: &ShardedEngine<f64, usize, Select2ndMin>,
    sources: &[usize],
) -> MultiBfsResult {
    let n = engine.ncols();
    assert_eq!(engine.nrows(), n, "BFS expects a square adjacency matrix");
    for &s in sources {
        assert!(s < n, "source vertex {s} out of range for {n} vertices");
    }
    drive_lockstep(engine, n, sources)
}

fn check_bfs_inputs(a: &CscMatrix<f64>, sources: &[usize]) {
    assert_eq!(a.nrows(), a.ncols(), "BFS expects a square adjacency matrix");
    for &s in sources {
        assert!(s < a.ncols(), "source vertex {s} out of range for {} vertices", a.ncols());
    }
}

/// The lock-step traversal over any [`BfsFrontDoor`].
fn drive_lockstep<E: BfsFrontDoor>(engine: &E, n: usize, sources: &[usize]) -> MultiBfsResult {
    let k = sources.len();
    let mut parents: Vec<Vec<Option<usize>>> = vec![vec![None; n]; k];
    let mut levels: Vec<Vec<Option<usize>>> = vec![vec![None; n]; k];
    let mut num_visited = vec![0usize; k];

    // active[lane] = source index this batch lane serves; a finished source
    // closes its session and stops submitting, so the fused batch width
    // tracks the number of unfinished sources.
    let mut active: Vec<usize> = Vec::with_capacity(k);
    let mut sessions: Vec<Option<E::Client<'_>>> = Vec::with_capacity(k);
    // One Arc-shared visited set per source: each level's request carries a
    // refcount bump instead of an O(n)-bit copy, and between flushes the
    // engine has dropped its reference, so `Arc::make_mut` updates below
    // stay zero-copy.
    let mut visited: Vec<Arc<MaskBits>> = (0..k).map(|_| Arc::new(MaskBits::new(n))).collect();
    let mut frontiers: Vec<SparseVec<usize>> = Vec::with_capacity(k);
    for (s, &src) in sources.iter().enumerate() {
        parents[s][src] = Some(src);
        levels[s][src] = Some(0);
        num_visited[s] = 1;
        active.push(s);
        sessions.push(Some(engine.open()));
        Arc::make_mut(&mut visited[s]).insert(src);
        frontiers.push(SparseVec::from_pairs(n, vec![(src, src)]).expect("source index in range"));
    }

    let mut iterations = 0usize;
    let mut spmspv_time = Duration::ZERO;
    let mut active_lanes_per_level = Vec::new();
    let mut level = 0usize;

    while !active.is_empty() {
        active_lanes_per_level.push(active.len());
        // Every still-active source submits its frontier with its own
        // ¬visited mask; one flush fuses them all.
        let tickets: Vec<_> = active
            .iter()
            .zip(frontiers.iter())
            .map(|(&s, frontier)| {
                let request = MxvRequest::new(frontier.clone())
                    .mask(Arc::clone(&visited[s]), MaskMode::Complement);
                let session = sessions[s].as_ref().expect("active source keeps its session");
                engine.submit_via(session, request)
            })
            .collect();
        spmspv_time += engine.flush_level(level, active.len());
        iterations += 1;
        level += 1;

        let mut next_active = Vec::with_capacity(active.len());
        let mut next_frontiers = Vec::with_capacity(active.len());
        for (&s, ticket) in active.iter().zip(tickets) {
            let reached = ticket
                .try_take()
                .expect("flush served every live request")
                .expect("BFS requests cannot fail on a healthy fleet");
            // The lane's ¬visited mask already dropped known vertices in the
            // kernel; everything that comes back is a fresh discovery.
            let mut next = SparseVec::new(n);
            // The engine released its mask references when the flush
            // returned, so this make_mut never copies the bitmap.
            let visited_s = Arc::make_mut(&mut visited[s]);
            for (v, &parent) in reached.iter() {
                debug_assert!(
                    parents[s][v].is_none(),
                    "in-kernel lane mask admits only unvisited vertices"
                );
                parents[s][v] = Some(parent);
                levels[s][v] = Some(level);
                num_visited[s] += 1;
                next.push(v, v);
                visited_s.insert(v);
            }
            if !next.is_empty() {
                next_active.push(s);
                next_frontiers.push(next);
            } else if let Some(session) = sessions[s].take() {
                engine.close_client(session);
            }
        }
        active = next_active;
        frontiers = next_frontiers;
    }

    MultiBfsResult {
        sources: sources.to_vec(),
        parents,
        levels,
        num_visited,
        iterations,
        spmspv_time,
        active_lanes_per_level,
        engine_stats: engine.final_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use sparse_substrate::gen::{grid2d, rmat, RmatParams};
    use sparse_substrate::CooMatrix;
    use spmspv::AlgorithmKind;

    #[test]
    fn agrees_with_independent_single_source_bfs() {
        let a = rmat(8, 8, RmatParams::graph500(), 5);
        let sources = [0usize, 3, 17, 99];
        let multi = multi_bfs(&a, &sources, SpMSpVOptions::with_threads(4));
        for (s, &src) in sources.iter().enumerate() {
            let single = bfs(&a, src, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(2));
            assert_eq!(multi.levels[s], single.levels, "levels differ for source {src}");
            assert_eq!(
                multi.num_visited[s], single.num_visited,
                "visited count differs for source {src}"
            );
        }
        // Serving telemetry: each level's requests fused into one batch.
        assert_eq!(multi.engine_stats.fused_batches, multi.iterations);
        assert_eq!(
            multi.engine_stats.requests,
            multi.active_lanes_per_level.iter().sum::<usize>(),
            "one request per active source per level"
        );
        assert_eq!(multi.engine_stats.widest_flush, sources.len());
    }

    #[test]
    fn row_split_batch_family_agrees_too() {
        let a = rmat(7, 6, RmatParams::graph500(), 29);
        let sources = [1usize, 40];
        let fused = multi_bfs(&a, &sources, SpMSpVOptions::with_threads(2));
        let rowsplit = multi_bfs_using(
            &a,
            &sources,
            BatchAlgorithmKind::CombBlasRowSplit,
            SpMSpVOptions::with_threads(3),
        );
        assert_eq!(fused.parents, rowsplit.parents);
        assert_eq!(fused.levels, rowsplit.levels);
    }

    #[test]
    fn batch_families_agree() {
        let a = rmat(7, 7, RmatParams::graph500(), 19);
        let sources = [0usize, 5, 63];
        let fused = multi_bfs_using(
            &a,
            &sources,
            BatchAlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(3),
        );
        let naive = multi_bfs_using(
            &a,
            &sources,
            BatchAlgorithmKind::Naive,
            SpMSpVOptions::with_threads(2),
        );
        assert_eq!(fused.parents, naive.parents);
        assert_eq!(fused.levels, naive.levels);
        assert_eq!(fused.active_lanes_per_level, naive.active_lanes_per_level);
    }

    #[test]
    fn sharded_traversal_is_identical_across_shard_counts() {
        let a = rmat(8, 8, RmatParams::graph500(), 11);
        let sources = [0usize, 3, 17, 99];
        let base = multi_bfs(&a, &sources, SpMSpVOptions::with_threads(3));
        for shards in [1usize, 2, 3, 7] {
            let sharded = multi_bfs_sharded(&a, &sources, shards, SpMSpVOptions::with_threads(2));
            assert_eq!(base.parents, sharded.parents, "{shards} shards: parents differ");
            assert_eq!(base.levels, sharded.levels, "{shards} shards: levels differ");
            assert_eq!(base.num_visited, sharded.num_visited);
            assert_eq!(base.iterations, sharded.iterations);
            assert_eq!(base.active_lanes_per_level, sharded.active_lanes_per_level);
            // Per-shard engines saw at least one lane per level overall, and
            // the summed stats stay engine-shaped.
            assert!(sharded.engine_stats.lanes_executed >= base.engine_stats.lanes_executed);
        }
    }

    #[test]
    fn parents_form_valid_trees_per_source() {
        let a = grid2d(9, 14);
        let sources = [0usize, 60, 125];
        let r = multi_bfs(&a, &sources, SpMSpVOptions::with_threads(3));
        for (s, &src) in sources.iter().enumerate() {
            for v in 0..a.ncols() {
                match (r.parents[s][v], r.levels[s][v]) {
                    (Some(p), Some(l)) => {
                        if v == src {
                            assert_eq!(p, src);
                            assert_eq!(l, 0);
                        } else {
                            assert!(a.get(v, p).is_some() || a.get(p, v).is_some());
                            assert_eq!(r.levels[s][p], Some(l - 1));
                        }
                    }
                    (None, None) => {}
                    other => panic!("inconsistent parent/level for {v}: {other:?}"),
                }
            }
            assert_eq!(r.num_visited[s], a.ncols(), "grid is connected");
        }
    }

    #[test]
    fn lanes_retire_as_sources_finish() {
        // A path graph: BFS from one end takes n-1 levels, from the middle
        // n/2, so lanes must retire at different times.
        let n = 24;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        let a = CscMatrix::from_coo(coo, |v, _| v);
        let r = multi_bfs(&a, &[0, n / 2], SpMSpVOptions::with_threads(2));
        assert_eq!(r.active_lanes_per_level.first(), Some(&2));
        assert_eq!(r.active_lanes_per_level.last(), Some(&1));
        // from the end: n-1 productive levels + the final empty expansion
        assert_eq!(r.iterations, n);
        assert_eq!(r.num_visited, vec![n, n]);
    }

    #[test]
    fn duplicate_sources_produce_identical_lanes() {
        let a = grid2d(6, 6);
        let r = multi_bfs(&a, &[7, 7], SpMSpVOptions::with_threads(2));
        assert_eq!(r.levels[0], r.levels[1]);
        assert_eq!(r.parents[0], r.parents[1]);
    }

    #[test]
    fn no_sources_is_a_noop() {
        let a = grid2d(4, 4);
        let r = multi_bfs(&a, &[], SpMSpVOptions::default());
        assert_eq!(r.iterations, 0);
        assert!(r.parents.is_empty());
        assert!(r.active_lanes_per_level.is_empty());

        let sharded = multi_bfs_sharded(&a, &[], 3, SpMSpVOptions::default());
        assert_eq!(sharded.iterations, 0);
    }
}
