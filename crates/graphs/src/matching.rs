//! Maximal bipartite matching via rounds of SpMSpV proposals.
//!
//! Bipartite matching is one of the motivating applications in §I (the
//! authors' own distributed matching algorithms are built on SpMSpV). This
//! module implements the simple Karp–Sipser-flavoured *maximal* matching:
//! every round, all still-unmatched columns propose to their unmatched
//! neighbouring rows in one SpMSpV under the `(min, select2nd)` semiring
//! (each row accepts the smallest proposing column), matched vertices drop
//! out, and the process repeats until no proposals succeed. The result is a
//! maximal (not necessarily maximum) matching.

use sparse_substrate::{CscMatrix, Select2ndMin, SparseVec};
use spmspv::{AlgorithmKind, SpMSpVOptions};

/// A matching between the rows and columns of a (rectangular) matrix.
#[derive(Debug, Clone)]
pub struct Matching {
    /// `row_match[i]` is the column matched to row `i`, if any.
    pub row_match: Vec<Option<usize>>,
    /// `col_match[j]` is the row matched to column `j`, if any.
    pub col_match: Vec<Option<usize>>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn cardinality(&self) -> usize {
        self.row_match.iter().filter(|m| m.is_some()).count()
    }

    /// Checks consistency (mutual pointers) and that every matched pair is an
    /// actual edge of `a`.
    pub fn is_valid(&self, a: &CscMatrix<f64>) -> bool {
        for (i, &mj) in self.row_match.iter().enumerate() {
            if let Some(j) = mj {
                if self.col_match[j] != Some(i) || a.get(i, j).is_none() {
                    return false;
                }
            }
        }
        for (j, &mi) in self.col_match.iter().enumerate() {
            if let Some(i) = mi {
                if self.row_match[i] != Some(j) {
                    return false;
                }
            }
        }
        true
    }

    /// Checks maximality: no edge has both endpoints unmatched.
    pub fn is_maximal(&self, a: &CscMatrix<f64>) -> bool {
        for j in 0..a.ncols() {
            if self.col_match[j].is_some() {
                continue;
            }
            for &i in a.column(j).0 {
                if self.row_match[i].is_none() {
                    return false;
                }
            }
        }
        true
    }
}

/// Computes a maximal matching of the bipartite graph whose biadjacency
/// matrix is `a` (rows on one side, columns on the other).
pub fn bipartite_matching(
    a: &CscMatrix<f64>,
    kind: AlgorithmKind,
    options: SpMSpVOptions,
) -> Matching {
    let m = a.nrows();
    let n = a.ncols();
    let mut alg = spmspv::build_algorithm(a, kind, options);
    let semiring = Select2ndMin;

    let mut row_match: Vec<Option<usize>> = vec![None; m];
    let mut col_match: Vec<Option<usize>> = vec![None; n];

    loop {
        // Unmatched columns propose (value = their own id).
        let proposals: Vec<(usize, usize)> = (0..n)
            .filter(|&j| col_match[j].is_none() && a.column_nnz(j) > 0)
            .map(|j| (j, j))
            .collect();
        if proposals.is_empty() {
            break;
        }
        let x = SparseVec::from_pairs(n, proposals).expect("column ids are in range");
        let offers = alg.multiply(&x, &semiring);

        // Every unmatched row accepts the smallest proposing column that is
        // still unmatched.
        let mut progress = false;
        for (i, &j) in offers.iter() {
            if row_match[i].is_none() && col_match[j].is_none() {
                row_match[i] = Some(j);
                col_match[j] = Some(i);
                progress = true;
            }
        }
        if !progress {
            // Remaining unmatched columns only neighbour matched rows: the
            // matching is maximal.
            break;
        }
    }

    Matching { row_match, col_match }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::erdos_renyi;
    use sparse_substrate::CooMatrix;

    #[test]
    fn perfect_matching_on_the_identity() {
        let a = CscMatrix::identity(6, 1.0);
        let m = bipartite_matching(&a, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(2));
        assert_eq!(m.cardinality(), 6);
        assert!(m.is_valid(&a));
        assert!(m.is_maximal(&a));
        for i in 0..6 {
            assert_eq!(m.row_match[i], Some(i));
        }
    }

    #[test]
    fn maximal_matching_on_random_bipartite_graph() {
        let a = erdos_renyi(250, 4.0, 77);
        let m = bipartite_matching(&a, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(4));
        assert!(m.cardinality() > 0);
        assert!(m.is_valid(&a));
        assert!(m.is_maximal(&a));
    }

    #[test]
    fn star_graph_matches_exactly_one_pair() {
        // Column 0 is connected to every row; all other columns are empty.
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, 0, 1.0);
        }
        let a = CscMatrix::from_coo(coo, |x, _| x);
        let m = bipartite_matching(&a, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(1));
        assert_eq!(m.cardinality(), 1);
        assert!(m.is_valid(&a));
        assert!(m.is_maximal(&a));
    }

    #[test]
    fn agrees_in_cardinality_with_sequential_on_structured_input() {
        let a = CscMatrix::identity(40, 2.0);
        let par = bipartite_matching(&a, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(4));
        let seq = bipartite_matching(&a, AlgorithmKind::Sequential, SpMSpVOptions::with_threads(1));
        assert_eq!(par.cardinality(), seq.cardinality());
    }
}
