//! Synthetic matrix and vector generators.
//!
//! The paper evaluates on eleven matrices from the University of Florida
//! collection (Table IV), split into *low-diameter scale-free* graphs and
//! *high-diameter* graphs. Those files are not redistributable here, so the
//! benchmark harness substitutes deterministic synthetic generators that
//! reproduce the properties the algorithms are sensitive to:
//!
//! * average column degree `d` (drives the `O(d·f)` work term),
//! * degree skew (scale-free vs. near-regular),
//! * diameter (drives how sparse BFS frontiers stay, which is what separates
//!   vector-driven from matrix-driven algorithms in Figures 3–5).
//!
//! | paper dataset | generator used here |
//! |---|---|
//! | amazon0312, web-Google, wikipedia, ljournal-2008, wb-edu | [`rmat()`] (scale-free, low diameter) |
//! | dielFilterV3real, G3_circuit | [`grid::grid2d`] / [`grid::grid3d`] (near-regular, medium-high diameter) |
//! | hugetric/hugetrace, delaunay_n24 | [`grid::triangular_mesh`] (planar, high diameter) |
//! | rgg_n_2_24_s0 | [`rgg::random_geometric`] (geometric, high diameter) |
//! | analysis model | [`erdos_renyi()`] |
//!
//! All generators take an explicit RNG seed and are deterministic for a given
//! seed, so experiments are reproducible run to run.

pub mod erdos_renyi;
pub mod grid;
pub mod rgg;
pub mod rmat;
pub mod vectors;

pub use erdos_renyi::erdos_renyi;
pub use grid::{grid2d, grid3d, triangular_mesh};
pub use rgg::random_geometric;
pub use rmat::{rmat, RmatParams};
pub use vectors::{random_sparse_vec, random_sparse_vec_with};
