//! Random sparse-vector generators used for the fixed-`nnz(x)` experiments
//! (Figures 2 and 6 sweep `nnz(x)` ∈ {200, 10K, 2.5M}).

use crate::spvec::SparseVec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates a sparse vector of dimension `n` with exactly
/// `min(nnz, n)` distinct nonzero positions and values uniform in `(0, 1]`.
/// The returned vector is **unsorted** (positions in random order); call
/// [`SparseVec::sort_by_index`] for the sorted variant.
pub fn random_sparse_vec(n: usize, nnz: usize, seed: u64) -> SparseVec<f64> {
    random_sparse_vec_with(n, nnz, seed, |rng| 1.0 - rng.gen::<f64>())
}

/// Like [`random_sparse_vec`] but with a caller-supplied value generator, so
/// tests can create boolean or integer-valued vectors.
pub fn random_sparse_vec_with<T: crate::Scalar>(
    n: usize,
    nnz: usize,
    seed: u64,
    mut value: impl FnMut(&mut StdRng) -> T,
) -> SparseVec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nnz = nnz.min(n);
    let indices: Vec<usize> = if nnz * 4 >= n {
        // Dense-ish request: shuffle the whole index range.
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(&mut rng);
        all.truncate(nnz);
        all
    } else {
        // Sparse request: rejection-sample distinct indices.
        let mut seen = std::collections::HashSet::with_capacity(nnz * 2);
        let mut out = Vec::with_capacity(nnz);
        while out.len() < nnz {
            let i = rng.gen_range(0..n);
            if seen.insert(i) {
                out.push(i);
            }
        }
        out
    };
    let mut v = SparseVec::new(n);
    for i in indices {
        v.push(i, value(&mut rng));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_nnz_and_distinct_indices() {
        for &(n, f) in &[(1000usize, 10usize), (1000, 500), (1000, 1000), (50, 200)] {
            let v = random_sparse_vec(n, f, 7);
            assert_eq!(v.nnz(), f.min(n));
            let mut idx = v.indices().to_vec();
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), v.nnz(), "indices must be distinct");
            assert!(idx.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_sparse_vec(500, 50, 1), random_sparse_vec(500, 50, 1));
        assert_ne!(random_sparse_vec(500, 50, 1), random_sparse_vec(500, 50, 2));
    }

    #[test]
    fn custom_value_generator() {
        let v = random_sparse_vec_with(100, 20, 3, |_| true);
        assert_eq!(v.nnz(), 20);
        assert!(v.values().iter().all(|&b| b));
    }

    #[test]
    fn values_nonzero() {
        let v = random_sparse_vec(200, 100, 11);
        assert!(v.values().iter().all(|&x| x > 0.0));
    }
}
