//! Mesh-like generators for the paper's high-diameter matrices.
//!
//! `grid2d`/`grid3d` stand in for the circuit-simulation and finite-element
//! matrices (G3_circuit, dielFilterV3real); `triangular_mesh` stands in for
//! the hugetric/hugetrace/delaunay family. All three produce near-regular
//! degree distributions and diameters of `Θ(√n)` or `Θ(∛n)`, so a BFS from
//! any source runs for thousands of levels with very sparse frontiers —
//! exactly the regime where the paper's algorithm dominates matrix-driven
//! baselines.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;

/// 5-point-stencil 2D grid graph on `rows × cols` vertices with unit weights.
pub fn grid2d(rows: usize, cols: usize) -> CscMatrix<f64> {
    let n = rows * cols;
    let id = |r: usize, c: usize| r * cols + c;
    let mut coo = CooMatrix::with_capacity(n, n, 4 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                coo.push(id(r, c), id(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                coo.push(id(r, c), id(r + 1, c), 1.0);
            }
        }
    }
    coo.symmetrize();
    CscMatrix::from_coo(coo, |a, _| a)
}

/// 7-point-stencil 3D grid graph on `nx × ny × nz` vertices.
pub fn grid3d(nx: usize, ny: usize, nz: usize) -> CscMatrix<f64> {
    let n = nx * ny * nz;
    let id = |x: usize, y: usize, z: usize| (x * ny + y) * nz + z;
    let mut coo = CooMatrix::with_capacity(n, n, 6 * n);
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                if x + 1 < nx {
                    coo.push(id(x, y, z), id(x + 1, y, z), 1.0);
                }
                if y + 1 < ny {
                    coo.push(id(x, y, z), id(x, y + 1, z), 1.0);
                }
                if z + 1 < nz {
                    coo.push(id(x, y, z), id(x, y, z + 1), 1.0);
                }
            }
        }
    }
    coo.symmetrize();
    CscMatrix::from_coo(coo, |a, _| a)
}

/// Triangulated 2D mesh: the 2D grid plus one diagonal per cell, giving
/// average degree ≈ 6 like the paper's hugetric / delaunay matrices.
pub fn triangular_mesh(rows: usize, cols: usize) -> CscMatrix<f64> {
    let n = rows * cols;
    let id = |r: usize, c: usize| r * cols + c;
    let mut coo = CooMatrix::with_capacity(n, n, 6 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                coo.push(id(r, c), id(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                coo.push(id(r, c), id(r + 1, c), 1.0);
            }
            if r + 1 < rows && c + 1 < cols {
                coo.push(id(r, c), id(r + 1, c + 1), 1.0);
            }
        }
    }
    coo.symmetrize();
    CscMatrix::from_coo(coo, |a, _| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_shape_and_degree() {
        let a = grid2d(10, 20);
        assert_eq!(a.nrows(), 200);
        // interior vertex has degree 4
        assert_eq!(a.max_column_degree(), 4);
        // 2*rows*cols - rows - cols undirected edges, stored twice
        assert_eq!(a.nnz(), 2 * (2 * 10 * 20 - 10 - 20));
        a.validate().unwrap();
    }

    #[test]
    fn grid2d_is_symmetric() {
        let a = grid2d(5, 7);
        for (i, j, _) in a.iter() {
            assert!(a.get(j, i).is_some());
        }
    }

    #[test]
    fn grid3d_shape_and_degree() {
        let a = grid3d(4, 5, 6);
        assert_eq!(a.nrows(), 120);
        assert_eq!(a.max_column_degree(), 6);
        a.validate().unwrap();
    }

    #[test]
    fn triangular_mesh_has_degree_six_interior() {
        let a = triangular_mesh(10, 10);
        assert_eq!(a.nrows(), 100);
        assert_eq!(a.max_column_degree(), 6);
        assert!(a.avg_column_degree() > 4.0);
        a.validate().unwrap();
    }

    #[test]
    fn single_row_grid_is_a_path() {
        let a = grid2d(1, 5);
        assert_eq!(a.nnz(), 8); // 4 undirected edges
        assert_eq!(a.max_column_degree(), 2);
    }
}
