//! Random geometric graph generator, standing in for `rgg_n_2_24_s0`.
//!
//! Vertices are points in the unit square; two vertices are adjacent when
//! their Euclidean distance is below a connection radius. With the radius at
//! the connectivity threshold `r ≈ sqrt(ln n / (π n))` scaled by
//! `radius_factor`, the graph is connected with high probability but has a
//! very large diameter (`Θ(1/r)` hops), the property that matters for the
//! BFS experiments.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random geometric graph on `n` points in the unit square with
/// connection radius `radius_factor · sqrt(ln n / (π n))`.
///
/// Uses a uniform grid of cells of side `r` so expected generation time is
/// `O(n)` rather than `O(n²)`.
pub fn random_geometric(n: usize, radius_factor: f64, seed: u64) -> CscMatrix<f64> {
    assert!(n > 1, "need at least two points");
    let mut rng = StdRng::seed_from_u64(seed);
    let r = radius_factor * ((n as f64).ln() / (std::f64::consts::PI * n as f64)).sqrt();
    let r = r.min(1.0);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();

    // Bucket points into an ncell × ncell grid with cell side >= r.
    let ncell = ((1.0 / r).floor() as usize).clamp(1, 4096);
    let cell_of = |x: f64| ((x * ncell as f64) as usize).min(ncell - 1);
    let mut cells: Vec<Vec<usize>> = vec![Vec::new(); ncell * ncell];
    for (idx, &(x, y)) in points.iter().enumerate() {
        cells[cell_of(x) * ncell + cell_of(y)].push(idx);
    }

    let mut coo = CooMatrix::new(n, n);
    let r2 = r * r;
    for (idx, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= ncell as i64 || ny >= ncell as i64 {
                    continue;
                }
                for &other in &cells[nx as usize * ncell + ny as usize] {
                    if other <= idx {
                        continue; // each unordered pair once
                    }
                    let (ox, oy) = points[other];
                    let d2 = (x - ox) * (x - ox) + (y - oy) * (y - oy);
                    if d2 <= r2 {
                        coo.push(idx, other, 1.0);
                    }
                }
            }
        }
    }
    coo.symmetrize();
    CscMatrix::from_coo(coo, |a, _| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_determinism_and_symmetry() {
        let a = random_geometric(2000, 1.5, 17);
        assert_eq!(a.nrows(), 2000);
        assert!(a.nnz() > 0);
        a.validate().unwrap();
        assert_eq!(a, random_geometric(2000, 1.5, 17));
        for (i, j, _) in a.iter().take(500) {
            assert_ne!(i, j);
            assert!(a.get(j, i).is_some());
        }
    }

    #[test]
    fn larger_radius_gives_more_edges() {
        let small = random_geometric(1500, 1.0, 3);
        let large = random_geometric(1500, 2.0, 3);
        assert!(large.nnz() > small.nnz());
    }

    #[test]
    fn degrees_are_modest_compared_to_scale_free() {
        let a = random_geometric(3000, 1.5, 9);
        let avg = a.avg_column_degree();
        let max = a.max_column_degree() as f64;
        assert!(max < 10.0 * (avg + 1.0), "geometric graphs should not have huge hubs");
    }
}
