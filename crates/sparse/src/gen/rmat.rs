//! R-MAT / Kronecker generator for scale-free, low-diameter graphs.
//!
//! Stands in for the paper's social-network and web-crawl matrices
//! (ljournal-2008, web-Google, wikipedia, wb-edu, amazon0312): heavy-tailed
//! degree distribution, small pseudo-diameter, so BFS reaches dense frontiers
//! within a few levels.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities of the recursive R-MAT subdivision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 parameters (a=0.57, b=c=0.19, d=0.05), producing strongly
    /// skewed, scale-free graphs.
    pub fn graph500() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19 }
    }

    /// Milder skew, closer to web-crawl graphs.
    pub fn web_like() -> Self {
        RmatParams { a: 0.45, b: 0.22, c: 0.22 }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and roughly
/// `edge_factor · 2^scale` edges, symmetrized (undirected) and with unit
/// values — the shape the BFS experiments use.
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> CscMatrix<f64> {
    assert!(scale < 32, "scale {scale} too large for this generator");
    assert!(params.d() > -1e-12, "quadrant probabilities must sum to at most 1");
    let n = 1usize << scale;
    let nedges = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, 2 * nedges);
    for _ in 0..nedges {
        let (mut r0, mut r1, mut c0, mut c1) = (0usize, n, 0usize, n);
        while r1 - r0 > 1 {
            let p: f64 = rng.gen();
            // Add a little per-level noise so the quadrant boundaries do not
            // produce artificial striping (standard R-MAT practice).
            let noise = 0.1 * (rng.gen::<f64>() - 0.5);
            let a = (params.a + noise).clamp(0.0, 1.0);
            let b = params.b;
            let c = params.c;
            let rm = (r0 + r1) / 2;
            let cm = (c0 + c1) / 2;
            if p < a {
                r1 = rm;
                c1 = cm;
            } else if p < a + b {
                r1 = rm;
                c0 = cm;
            } else if p < a + b + c {
                r0 = rm;
                c1 = cm;
            } else {
                r0 = rm;
                c0 = cm;
            }
        }
        coo.push(r0, c0, 1.0);
    }
    coo.drop_diagonal();
    coo.symmetrize();
    // Duplicate edges collapse to a single unit entry, like an unweighted
    // adjacency matrix.
    CscMatrix::from_coo(coo, |a, _b| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = rmat(10, 8, RmatParams::graph500(), 3);
        assert_eq!(a.nrows(), 1024);
        assert_eq!(a.ncols(), 1024);
        assert!(a.nnz() > 1024, "graph should have a healthy number of edges");
        a.validate().unwrap();
        let b = rmat(10, 8, RmatParams::graph500(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn is_symmetric_and_loop_free() {
        let a = rmat(8, 6, RmatParams::graph500(), 11);
        for (i, j, _v) in a.iter() {
            assert_ne!(i, j, "self-loops must have been dropped");
            assert!(a.get(j, i).is_some(), "entry ({j},{i}) missing: not symmetric");
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let a = rmat(12, 8, RmatParams::graph500(), 5);
        let avg = a.avg_column_degree();
        let max = a.max_column_degree();
        // Scale-free: the hub degree dwarfs the average degree.
        assert!((max as f64) > 4.0 * avg, "max degree {max} not much larger than average {avg}");
    }

    #[test]
    fn unit_values() {
        let a = rmat(7, 4, RmatParams::web_like(), 9);
        assert!(a.values().iter().all(|&v| v == 1.0));
    }
}
