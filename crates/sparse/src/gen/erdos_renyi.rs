//! Erdős–Rényi G(n, d/n) generator — the model used in the paper's
//! complexity analysis (§II-A and §III-B).

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates the adjacency matrix of an Erdős–Rényi graph with `n` vertices
/// and an expected `d` nonzeros per column.
///
/// Instead of flipping `n²` coins, the generator draws `n·d` entries with
/// uniformly random coordinates (the standard sparse-sampling shortcut, which
/// matches G(n, d/n) in expectation and keeps generation `O(n·d)`).
/// Duplicate coordinates are summed; self-loops are allowed as the model
/// permits them. Values are uniform in `(0, 1]`.
pub fn erdos_renyi(n: usize, d: f64, seed: u64) -> CscMatrix<f64> {
    assert!(n > 0, "matrix dimension must be positive");
    assert!(d >= 0.0, "expected degree must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let nnz_target = (n as f64 * d).round() as usize;
    let idx = Uniform::from(0..n);
    let val = Uniform::from(0.0f64..1.0);
    let mut coo = CooMatrix::with_capacity(n, n, nnz_target);
    for _ in 0..nnz_target {
        let i = idx.sample(&mut rng);
        let j = idx.sample(&mut rng);
        coo.push(i, j, 1.0 - val.sample(&mut rng));
    }
    CscMatrix::from_coo(coo, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_degree_is_close_to_requested() {
        let n = 2000;
        let d = 8.0;
        let a = erdos_renyi(n, d, 1);
        let avg = a.avg_column_degree();
        // duplicates shave off a little; stay within 15 % of the target
        assert!(avg > d * 0.85 && avg <= d, "avg degree {avg} too far from {d}");
        assert_eq!(a.nrows(), n);
        assert_eq!(a.ncols(), n);
        a.validate().unwrap();
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = erdos_renyi(500, 4.0, 42);
        let b = erdos_renyi(500, 4.0, 42);
        let c = erdos_renyi(500, 4.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_degree_yields_empty_matrix() {
        let a = erdos_renyi(100, 0.0, 7);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn values_are_positive() {
        let a = erdos_renyi(300, 3.0, 5);
        assert!(a.values().iter().all(|&v| v > 0.0));
    }
}
