//! A thin dense-vector wrapper used by reference kernels and by the SPA.

use crate::spvec::SparseVec;
use crate::Scalar;

/// A dense vector with a handful of convenience methods; mostly a `Vec<T>`
/// with the shape checks the reference SpMV/SpMSpV kernels need.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVec<T> {
    data: Vec<T>,
}

impl<T: Scalar> DenseVec<T> {
    /// A dense vector of length `n` filled with `fill`.
    pub fn filled(n: usize, fill: T) -> Self {
        DenseVec { data: vec![fill; n] }
    }

    /// Wraps an existing `Vec`.
    pub fn from_vec(data: Vec<T>) -> Self {
        DenseVec { data }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Converts to the list format, keeping entries for which `keep` holds.
    pub fn to_sparse(&self, keep: impl Fn(&T) -> bool) -> SparseVec<T> {
        SparseVec::from_dense_filtered(&self.data, keep)
    }

    /// Consumes the wrapper and returns the underlying `Vec`.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Scalar> std::ops::Index<usize> for DenseVec<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T: Scalar> std::ops::IndexMut<usize> for DenseVec<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_index() {
        let mut v = DenseVec::filled(3, 1.5);
        assert_eq!(v.len(), 3);
        v[1] = 2.5;
        assert_eq!(v[1], 2.5);
        assert_eq!(v.as_slice(), &[1.5, 2.5, 1.5]);
    }

    #[test]
    fn to_sparse_roundtrip() {
        let v = DenseVec::from_vec(vec![0.0, 2.0, 0.0, 4.0]);
        let s = v.to_sparse(|&x| x != 0.0);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.to_dense(0.0), v);
    }

    #[test]
    fn empty_vector() {
        let v: DenseVec<f64> = DenseVec::filled(0, 0.0);
        assert!(v.is_empty());
        assert_eq!(v.to_sparse(|_| true).nnz(), 0);
    }
}
