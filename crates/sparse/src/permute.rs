//! Symmetric row/column permutations (vertex relabelings).
//!
//! Relabeling the vertices of a graph changes the memory-access pattern of
//! the bucketing step without changing the amount of work, which is useful
//! for the cache-locality ablations (§III-A discusses how sortedness and
//! access order affect the bucketing step).

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::spvec::SparseVec;
use crate::Scalar;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A permutation of `0..n`, stored as `perm[old] = new`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation { forward: (0..n).collect() }
    }

    /// A uniformly random permutation of `0..n`, deterministic per seed.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut forward: Vec<usize> = (0..n).collect();
        forward.shuffle(&mut StdRng::seed_from_u64(seed));
        Permutation { forward }
    }

    /// Builds from an explicit mapping, verifying it is a bijection.
    pub fn from_vec(forward: Vec<usize>) -> Option<Self> {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &p in &forward {
            if p >= n || seen[p] {
                return None;
            }
            seen[p] = true;
        }
        Some(Permutation { forward })
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Image of `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.forward[i]
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.forward.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new] = old;
        }
        Permutation { forward: inv }
    }

    /// Applies the permutation symmetrically to a square matrix:
    /// `B(p(i), p(j)) = A(i, j)`.
    pub fn permute_matrix<T: Scalar>(&self, a: &CscMatrix<T>) -> CscMatrix<T> {
        assert_eq!(a.nrows(), a.ncols(), "symmetric permutation needs a square matrix");
        assert_eq!(a.nrows(), self.len(), "permutation size must match the matrix");
        let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
        for (i, j, v) in a.iter() {
            coo.push(self.apply(i), self.apply(j), *v);
        }
        CscMatrix::from_coo(coo, |x, _| x)
    }

    /// Applies the permutation to the indices of a sparse vector.
    pub fn permute_vector<T: Scalar>(&self, x: &SparseVec<T>) -> SparseVec<T> {
        assert_eq!(x.len(), self.len(), "permutation size must match the vector");
        let mut out = SparseVec::new(x.len());
        for (i, v) in x.iter() {
            out.push(self.apply(i), *v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_matrix, figure1_vector};
    use crate::ops::spmspv_reference;
    use crate::semiring::PlusTimes;

    #[test]
    fn identity_round_trips() {
        let a = figure1_matrix();
        let p = Permutation::identity(8);
        assert_eq!(p.permute_matrix(&a), a);
    }

    #[test]
    fn random_permutation_is_a_bijection() {
        let p = Permutation::random(100, 4);
        let mut image: Vec<usize> = (0..100).map(|i| p.apply(i)).collect();
        image.sort_unstable();
        assert_eq!(image, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn inverse_undoes_apply() {
        let p = Permutation::random(50, 8);
        let inv = p.inverse();
        for i in 0..50 {
            assert_eq!(inv.apply(p.apply(i)), i);
        }
    }

    #[test]
    fn from_vec_rejects_non_bijections() {
        assert!(Permutation::from_vec(vec![0, 0, 1]).is_none());
        assert!(Permutation::from_vec(vec![0, 3, 1]).is_none());
        assert!(Permutation::from_vec(vec![2, 0, 1]).is_some());
    }

    #[test]
    fn spmspv_commutes_with_relabeling() {
        // P·(A x) == (P A P^T)(P x): relabeling before or after multiplication
        // gives the same answer. This is the invariant the cache ablation
        // relies on.
        let a = figure1_matrix();
        let x = figure1_vector();
        let p = Permutation::random(8, 123);
        let y_then_permute = p.permute_vector(&spmspv_reference(&a, &x, &PlusTimes));
        let permute_then_y =
            spmspv_reference(&p.permute_matrix(&a), &p.permute_vector(&x), &PlusTimes);
        assert!(y_then_permute.same_entries(&permute_then_y));
    }
}
