//! The bitvector sparse-vector format used by GraphMat.
//!
//! §II-C of the paper: "The alternative bitvector format is composed of a
//! O(n)-length bitmap that signals whether or not a particular index is
//! nonzero, and an O(nnz) list of values." The matrix-driven baseline needs
//! constant-time membership tests (`is x(j) nonzero?`) while iterating over
//! all non-empty matrix columns.
//!
//! This implementation stores the bitmap as `u64` words plus a per-word rank
//! (prefix popcount) so the position of an index's value within the compact
//! value list is found in O(1).

use crate::error::SparseError;
use crate::spvec::SparseVec;
use crate::Scalar;

/// A sparse vector stored as a bitmap plus a compact list of values.
#[derive(Debug, Clone, PartialEq)]
pub struct BitVec<T> {
    len: usize,
    words: Vec<u64>,
    /// `ranks[w]` = number of set bits in `words[..w]`.
    ranks: Vec<usize>,
    /// Values of the set positions, ordered by index.
    values: Vec<T>,
}

impl<T: Scalar> BitVec<T> {
    /// Builds a bitvector from a sparse list vector. The list does not need
    /// to be sorted.
    pub fn from_sparse(v: &SparseVec<T>) -> Self {
        let sorted = v.sorted();
        let len = sorted.len();
        let nwords = len.div_ceil(64);
        let mut words = vec![0u64; nwords];
        let mut values = Vec::with_capacity(sorted.nnz());
        for (i, val) in sorted.iter() {
            words[i / 64] |= 1u64 << (i % 64);
            values.push(*val);
        }
        let mut ranks = vec![0usize; nwords + 1];
        for w in 0..nwords {
            ranks[w + 1] = ranks[w] + words[w].count_ones() as usize;
        }
        BitVec { len, words, ranks, values }
    }

    /// Builds a bitvector directly from `(index, value)` pairs.
    pub fn from_pairs(len: usize, pairs: Vec<(usize, T)>) -> Result<Self, SparseError> {
        Ok(Self::from_sparse(&SparseVec::from_pairs(len, pairs)?))
    }

    /// Logical dimension.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bits are set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of set positions.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Constant-time membership test, the operation GraphMat's inner loop
    /// performs for every non-empty matrix column.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Value stored at position `i`, found by rank in O(1).
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if !self.contains(i) {
            return None;
        }
        let word = i / 64;
        let bit = i % 64;
        let below = (self.words[word] & ((1u64 << bit) - 1)).count_ones() as usize;
        Some(&self.values[self.ranks[word] + below])
    }

    /// Iterates `(index, &value)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        let mut value_pos = 0usize;
        (0..self.len).filter_map(move |i| {
            if self.contains(i) {
                let v = &self.values[value_pos];
                value_pos += 1;
                Some((i, v))
            } else {
                None
            }
        })
    }

    /// Converts back to the list format (sorted by index).
    pub fn to_sparse(&self) -> SparseVec<T> {
        let mut out = SparseVec::new(self.len);
        for (i, v) in self.iter() {
            out.push(i, *v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BitVec<f64> {
        BitVec::from_pairs(200, vec![(0, 1.0), (63, 2.0), (64, 3.0), (130, 4.0), (199, 5.0)])
            .unwrap()
    }

    #[test]
    fn contains_and_get() {
        let b = sample();
        assert_eq!(b.nnz(), 5);
        assert!(b.contains(63));
        assert!(b.contains(64));
        assert!(!b.contains(65));
        assert!(!b.contains(1000));
        assert_eq!(b.get(130).copied(), Some(4.0));
        assert_eq!(b.get(131), None);
        assert_eq!(b.get(0).copied(), Some(1.0));
        assert_eq!(b.get(199).copied(), Some(5.0));
    }

    #[test]
    fn rank_lookup_matches_iteration_order() {
        let b = sample();
        let via_iter: Vec<_> = b.iter().map(|(i, &v)| (i, v)).collect();
        assert_eq!(via_iter, vec![(0, 1.0), (63, 2.0), (64, 3.0), (130, 4.0), (199, 5.0)]);
        for (i, v) in &via_iter {
            assert_eq!(b.get(*i).copied(), Some(*v));
        }
    }

    #[test]
    fn roundtrip_with_sparse_list() {
        let v = SparseVec::from_pairs(100, vec![(7, 7.0), (99, 9.0), (42, 4.2)]).unwrap();
        let b = BitVec::from_sparse(&v);
        assert!(b.to_sparse().same_entries(&v));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let v = SparseVec::from_pairs(10, vec![(9, 9.0), (0, 0.5), (4, 4.0)]).unwrap();
        let b = BitVec::from_sparse(&v);
        assert_eq!(b.get(9).copied(), Some(9.0));
        assert_eq!(b.get(0).copied(), Some(0.5));
        assert_eq!(b.get(4).copied(), Some(4.0));
    }

    #[test]
    fn empty_and_full_edge_cases() {
        let empty: BitVec<f64> = BitVec::from_pairs(0, vec![]).unwrap();
        assert!(empty.is_empty());
        assert!(!empty.contains(0));

        let full = BitVec::from_pairs(3, vec![(0, 1.0), (1, 2.0), (2, 3.0)]).unwrap();
        assert_eq!(full.nnz(), 3);
        assert_eq!(full.get(2).copied(), Some(3.0));
    }
}
