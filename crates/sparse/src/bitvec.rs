//! The bitvector sparse-vector format used by GraphMat.
//!
//! §II-C of the paper: "The alternative bitvector format is composed of a
//! O(n)-length bitmap that signals whether or not a particular index is
//! nonzero, and an O(nnz) list of values." The matrix-driven baseline needs
//! constant-time membership tests (`is x(j) nonzero?`) while iterating over
//! all non-empty matrix columns.
//!
//! This implementation stores the bitmap as `u64` words plus a per-word rank
//! (prefix popcount) so the position of an index's value within the compact
//! value list is found in O(1).

use crate::error::SparseError;
use crate::spvec::SparseVec;
use crate::Scalar;

/// A sparse vector stored as a bitmap plus a compact list of values.
#[derive(Debug, Clone, PartialEq)]
pub struct BitVec<T> {
    len: usize,
    words: Vec<u64>,
    /// `ranks[w]` = number of set bits in `words[..w]`.
    ranks: Vec<usize>,
    /// Values of the set positions, ordered by index.
    values: Vec<T>,
}

impl<T: Scalar> BitVec<T> {
    /// Builds a bitvector from a sparse list vector. The list does not need
    /// to be sorted.
    pub fn from_sparse(v: &SparseVec<T>) -> Self {
        let sorted = v.sorted();
        let len = sorted.len();
        let nwords = len.div_ceil(64);
        let mut words = vec![0u64; nwords];
        let mut values = Vec::with_capacity(sorted.nnz());
        for (i, val) in sorted.iter() {
            words[i / 64] |= 1u64 << (i % 64);
            values.push(*val);
        }
        let mut ranks = vec![0usize; nwords + 1];
        for w in 0..nwords {
            ranks[w + 1] = ranks[w] + words[w].count_ones() as usize;
        }
        BitVec { len, words, ranks, values }
    }

    /// Builds a bitvector directly from `(index, value)` pairs.
    pub fn from_pairs(len: usize, pairs: Vec<(usize, T)>) -> Result<Self, SparseError> {
        Ok(Self::from_sparse(&SparseVec::from_pairs(len, pairs)?))
    }

    /// Logical dimension.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bits are set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of set positions.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Constant-time membership test, the operation GraphMat's inner loop
    /// performs for every non-empty matrix column.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Value stored at position `i`, found by rank in O(1).
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if !self.contains(i) {
            return None;
        }
        let word = i / 64;
        let bit = i % 64;
        let below = (self.words[word] & ((1u64 << bit) - 1)).count_ones() as usize;
        Some(&self.values[self.ranks[word] + below])
    }

    /// Iterates `(index, &value)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        let mut value_pos = 0usize;
        (0..self.len).filter_map(move |i| {
            if self.contains(i) {
                let v = &self.values[value_pos];
                value_pos += 1;
                Some((i, v))
            } else {
                None
            }
        })
    }

    /// Converts back to the list format (sorted by index).
    pub fn to_sparse(&self) -> SparseVec<T> {
        let mut out = SparseVec::new(self.len);
        for (i, v) in self.iter() {
            out.push(i, *v);
        }
        out
    }
}

/// A mutable bitmap over the index space `0..len`, the value-less sibling of
/// [`BitVec`] used as an **output mask** by the masked SpMSpV kernels.
///
/// Where [`BitVec`] is a frozen snapshot of a sparse vector (bitmap + rank +
/// values), `MaskBits` is the evolving membership set graph algorithms
/// maintain between multiplications — BFS inserts every newly visited vertex
/// after each level. Storage is the same `u64`-word bitmap, so membership
/// tests cost one shift and mask, and [`MaskBits::clear`] reuses the
/// allocation across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskBits {
    len: usize,
    words: Vec<u64>,
    count: usize,
}

impl MaskBits {
    /// An empty mask over `0..len`.
    pub fn new(len: usize) -> Self {
        MaskBits { len, words: vec![0u64; len.div_ceil(64)], count: 0 }
    }

    /// Builds a mask with the listed positions set.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut mask = Self::new(len);
        for i in indices {
            mask.insert(i);
        }
        mask
    }

    /// Builds a mask from the set positions of a [`BitVec`] (values ignored).
    pub fn from_bitvec<T>(b: &BitVec<T>) -> Self {
        let count = b.values.len();
        MaskBits { len: b.len, words: b.words.clone(), count }
    }

    /// The raw bitmap words (`len.div_ceil(64)` of them, LSB-first). This is
    /// the wire representation of a mask: together with
    /// [`MaskBits::from_words`] it lets a transport ship the membership set
    /// without re-enumerating positions.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a mask from its raw bitmap words (the inverse of
    /// [`MaskBits::words`]). The word count must match `len.div_ceil(64)`
    /// and no bit past `len` may be set — a decoder feeding this from
    /// untrusted bytes gets an error, never an inconsistent mask.
    pub fn from_words(len: usize, words: Vec<u64>) -> Result<Self, SparseError> {
        if words.len() != len.div_ceil(64) {
            return Err(SparseError::InvalidStructure(format!(
                "mask of dimension {len} needs {} words, got {}",
                len.div_ceil(64),
                words.len()
            )));
        }
        if !len.is_multiple_of(64) {
            if let Some(&tail) = words.last() {
                if tail >> (len % 64) != 0 {
                    return Err(SparseError::InvalidStructure(format!(
                        "mask word {} has bits set past dimension {len}",
                        words.len() - 1
                    )));
                }
            }
        }
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(MaskBits { len, words, count })
    }

    /// Logical dimension of the index space.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no position is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of set positions.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Constant-time membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "mask index {i} out of range for {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets position `i`; returns `true` when it was previously unset.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "mask index {i} out of range for {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Unsets position `i`; returns `true` when it was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "mask index {i} out of range for {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Sets every listed position.
    pub fn extend(&mut self, indices: impl IntoIterator<Item = usize>) {
        for i in indices {
            self.insert(i);
        }
    }

    /// Unsets every position, keeping the allocation (so a BFS wrapper can be
    /// reused across runs without reallocating).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.count = 0;
    }

    /// Iterates the set positions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + tz)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BitVec<f64> {
        BitVec::from_pairs(200, vec![(0, 1.0), (63, 2.0), (64, 3.0), (130, 4.0), (199, 5.0)])
            .unwrap()
    }

    #[test]
    fn contains_and_get() {
        let b = sample();
        assert_eq!(b.nnz(), 5);
        assert!(b.contains(63));
        assert!(b.contains(64));
        assert!(!b.contains(65));
        assert!(!b.contains(1000));
        assert_eq!(b.get(130).copied(), Some(4.0));
        assert_eq!(b.get(131), None);
        assert_eq!(b.get(0).copied(), Some(1.0));
        assert_eq!(b.get(199).copied(), Some(5.0));
    }

    #[test]
    fn rank_lookup_matches_iteration_order() {
        let b = sample();
        let via_iter: Vec<_> = b.iter().map(|(i, &v)| (i, v)).collect();
        assert_eq!(via_iter, vec![(0, 1.0), (63, 2.0), (64, 3.0), (130, 4.0), (199, 5.0)]);
        for (i, v) in &via_iter {
            assert_eq!(b.get(*i).copied(), Some(*v));
        }
    }

    #[test]
    fn roundtrip_with_sparse_list() {
        let v = SparseVec::from_pairs(100, vec![(7, 7.0), (99, 9.0), (42, 4.2)]).unwrap();
        let b = BitVec::from_sparse(&v);
        assert!(b.to_sparse().same_entries(&v));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let v = SparseVec::from_pairs(10, vec![(9, 9.0), (0, 0.5), (4, 4.0)]).unwrap();
        let b = BitVec::from_sparse(&v);
        assert_eq!(b.get(9).copied(), Some(9.0));
        assert_eq!(b.get(0).copied(), Some(0.5));
        assert_eq!(b.get(4).copied(), Some(4.0));
    }

    #[test]
    fn empty_and_full_edge_cases() {
        let empty: BitVec<f64> = BitVec::from_pairs(0, vec![]).unwrap();
        assert!(empty.is_empty());
        assert!(!empty.contains(0));

        let full = BitVec::from_pairs(3, vec![(0, 1.0), (1, 2.0), (2, 3.0)]).unwrap();
        assert_eq!(full.nnz(), 3);
        assert_eq!(full.get(2).copied(), Some(3.0));
    }

    #[test]
    fn mask_insert_remove_contains() {
        let mut m = MaskBits::new(130);
        assert!(m.is_empty());
        assert!(m.insert(0));
        assert!(m.insert(64));
        assert!(m.insert(129));
        assert!(!m.insert(64), "second insert reports already-set");
        assert_eq!(m.count(), 3);
        assert!(m.contains(64));
        assert!(!m.contains(63));
        assert!(m.remove(64));
        assert!(!m.remove(64));
        assert_eq!(m.count(), 2);
        assert!(!m.contains(64));
    }

    #[test]
    fn mask_clear_keeps_capacity_and_empties() {
        let mut m = MaskBits::from_indices(100, [1, 50, 99]);
        assert_eq!(m.count(), 3);
        m.clear();
        assert!(m.is_empty());
        assert!(!m.contains(50));
        assert_eq!(m.len(), 100);
        m.insert(50);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn mask_iter_ascending() {
        let m = MaskBits::from_indices(200, [199, 0, 63, 64, 130]);
        let got: Vec<usize> = m.iter().collect();
        assert_eq!(got, vec![0, 63, 64, 130, 199]);
    }

    #[test]
    fn mask_from_bitvec_shares_membership() {
        let b = sample();
        let m = MaskBits::from_bitvec(&b);
        assert_eq!(m.count(), b.nnz());
        assert_eq!(m.len(), b.len());
        for i in 0..b.len() {
            assert_eq!(m.contains(i), b.contains(i), "membership differs at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_insert_out_of_range_panics() {
        let mut m = MaskBits::new(10);
        m.insert(10);
    }
}
