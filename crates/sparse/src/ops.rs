//! Reference (sequential, obviously-correct) kernels.
//!
//! Every parallel SpMSpV implementation in the `spmspv` crate is tested
//! against [`spmspv_reference`], a direct transcription of the mathematical
//! definition of `y ← A ⊕.⊗ x` with no regard for performance.

use crate::csc::CscMatrix;
use crate::dense::DenseVec;
use crate::semiring::Semiring;
use crate::spvec::SparseVec;
use crate::Scalar;

/// Sequential, definition-level SpMSpV: gathers the selected columns into a
/// dense accumulator of size `m` and compacts the result. `O(m + d·f)` time
/// and `O(m)` extra space — deliberately naive; use the `spmspv` crate for
/// the real algorithms.
///
/// The output is sorted by index.
pub fn spmspv_reference<A, X, S>(
    a: &CscMatrix<A>,
    x: &SparseVec<X>,
    semiring: &S,
) -> SparseVec<S::Output>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    assert_eq!(
        a.ncols(),
        x.len(),
        "matrix has {} columns but vector has dimension {}",
        a.ncols(),
        x.len()
    );
    let m = a.nrows();
    let mut acc: Vec<Option<S::Output>> = vec![None; m];
    for (j, xv) in x.iter() {
        let (rows, vals) = a.column(j);
        for (&i, av) in rows.iter().zip(vals.iter()) {
            let prod = semiring.multiply(av, xv);
            acc[i] = Some(match acc[i] {
                Some(existing) => semiring.add(existing, prod),
                None => prod,
            });
        }
    }
    let mut y = SparseVec::new(m);
    for (i, slot) in acc.into_iter().enumerate() {
        if let Some(v) = slot {
            y.push(i, v);
        }
    }
    y
}

/// Column-oriented sparse matrix–dense vector product, used to cross-check
/// SpMSpV against SpMV when the input vector happens to be fully dense.
pub fn spmv_dense_reference<A, X, S>(
    a: &CscMatrix<A>,
    x: &DenseVec<X>,
    semiring: &S,
) -> DenseVec<S::Output>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    assert_eq!(a.ncols(), x.len(), "dimension mismatch in SpMV");
    let mut y = vec![semiring.zero(); a.nrows()];
    for j in 0..a.ncols() {
        let (rows, vals) = a.column(j);
        for (&i, av) in rows.iter().zip(vals.iter()) {
            y[i] = semiring.add(y[i], semiring.multiply(av, &x[j]));
        }
    }
    DenseVec::from_vec(y)
}

/// Reference batched SpMSpV: `k` independent [`spmspv_reference`] calls,
/// one per lane. Every batched kernel is tested against this.
pub fn spmspv_batch_reference<A, X, S>(
    a: &CscMatrix<A>,
    x: &crate::batch::SparseVecBatch<X>,
    semiring: &S,
) -> crate::batch::SparseVecBatch<S::Output>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    let lanes: Vec<SparseVec<S::Output>> =
        x.to_lanes().iter().map(|lane| spmspv_reference(a, lane, semiring)).collect();
    crate::batch::SparseVecBatch::from_lanes(&lanes)
        .expect("reference lanes share the matrix's row dimension")
}

/// Number of scalar multiplications SpMSpV must perform for this operand
/// pair: `Σ_{j : x(j) ≠ 0} nnz(A(:, j))`. This is the paper's lower-bound
/// quantity `d·f` computed exactly, used by the work-efficiency experiments.
pub fn required_multiplications<A: Scalar, X: Scalar>(a: &CscMatrix<A>, x: &SparseVec<X>) -> usize {
    x.iter().map(|(j, _)| a.column_nnz(j)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_matrix, figure1_vector, tridiagonal};
    use crate::semiring::{PlusTimes, Select2ndMin};

    #[test]
    fn figure1_example_matches_the_paper() {
        // Figure 1: y = A(:,2) + A(:,5) + A(:,7) with unit x values.
        let a = figure1_matrix();
        let x = figure1_vector();
        let y = spmspv_reference(&a, &x, &PlusTimes);
        // Selected columns 2, 5, 7 contribute:
        //   col 2: rows {0:e=5, 2:p=16, 3:f=6, 4:q=17}
        //   col 5: rows {0:s=19, 6:n=14}
        //   col 7: rows {4:t=20}
        let expect: Vec<(usize, f64)> =
            vec![(0, 5.0 + 19.0), (2, 16.0), (3, 6.0), (4, 17.0 + 20.0), (6, 14.0)];
        let got: Vec<(usize, f64)> = y.iter().map(|(i, &v)| (i, v)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_vector_gives_empty_result() {
        let a = figure1_matrix();
        let x = SparseVec::new(8);
        let y = spmspv_reference(&a, &x, &PlusTimes);
        assert!(y.is_empty());
        assert_eq!(y.len(), 8);
    }

    #[test]
    fn dense_vector_matches_spmv() {
        let a = tridiagonal(30);
        let xd = DenseVec::from_vec((0..30).map(|i| i as f64 + 1.0).collect());
        let xs = xd.to_sparse(|_| true);
        let via_spmspv = spmspv_reference(&a, &xs, &PlusTimes).to_dense(0.0);
        let via_spmv = spmv_dense_reference(&a, &xd, &PlusTimes);
        for i in 0..30 {
            assert!((via_spmspv[i] - via_spmv[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn select2nd_semiring_propagates_parents() {
        let a = figure1_matrix();
        let x = SparseVec::from_pairs(8, vec![(2, 2usize), (5, 5usize)]).unwrap();
        let y = spmspv_reference(&a, &x, &Select2ndMin);
        // Row 0 is reachable from both columns 2 and 5; min parent = 2.
        assert_eq!(y.get(0).copied(), Some(2));
    }

    #[test]
    fn required_multiplications_counts_selected_columns() {
        let a = figure1_matrix();
        let x = figure1_vector();
        // columns 2, 5, 7 have 4, 2, 1 entries
        assert_eq!(required_multiplications(&a, &x), 7);
    }

    #[test]
    #[should_panic(expected = "matrix has")]
    fn dimension_mismatch_panics() {
        let a = figure1_matrix();
        let x = SparseVec::<f64>::new(9);
        let _ = spmspv_reference(&a, &x, &PlusTimes);
    }
}
