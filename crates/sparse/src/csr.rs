//! Compressed Sparse Rows — used for reference SpMV and for row-oriented
//! sanity checks of the column-oriented kernels.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::dense::DenseVec;
use crate::error::SparseError;
use crate::semiring::Semiring;
use crate::Scalar;

/// A sparse matrix in Compressed Sparse Rows format.
///
/// Invariants mirror [`CscMatrix`] with the roles of rows and columns
/// swapped: `rowptr.len() == nrows + 1`, column ids sorted and unique inside
/// each row.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colids: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds a CSR matrix from triples, collapsing duplicates with `add`.
    pub fn from_coo(mut coo: CooMatrix<T>, add: impl Fn(T, T) -> T) -> Self {
        coo.sum_duplicates(add);
        coo.sort_row_major();
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let nnz = coo.nnz();
        let (rows, cols, vals) = coo.into_parts();
        let mut rowptr = vec![0usize; nrows + 1];
        for &r in &rows {
            rowptr[r + 1] += 1;
        }
        for i in 0..nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colids = vec![0usize; nnz];
        colids.copy_from_slice(&cols);
        CsrMatrix { nrows, ncols, rowptr, colids, values: vals }
    }

    /// Converts a CSC matrix to CSR (transposition of the storage only; the
    /// logical matrix is unchanged).
    pub fn from_csc(csc: &CscMatrix<T>) -> Self {
        let t = csc.transpose();
        // The transpose's columns are the original's rows, already sorted.
        CsrMatrix {
            nrows: csc.nrows(),
            ncols: csc.ncols(),
            rowptr: t.colptr().to_vec(),
            colids: t.rowids().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Builds from raw parts with validation.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colids: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        // Reuse the CSC validator by viewing the arrays as a transposed CSC.
        let as_csc = CscMatrix::from_parts(ncols, nrows, rowptr, colids, values)?;
        let (nrows_chk, ncols_chk) = (as_csc.ncols(), as_csc.nrows());
        debug_assert_eq!((nrows_chk, ncols_chk), (nrows, ncols));
        Ok(CsrMatrix {
            nrows,
            ncols,
            rowptr: as_csc.colptr().to_vec(),
            colids: as_csc.rowids().to_vec(),
            values: as_csc.values().to_vec(),
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column ids and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        let lo = self.rowptr[i];
        let hi = self.rowptr[i + 1];
        (&self.colids[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(i, j)` if stored.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|k| &vals[k])
    }

    /// Row-oriented sparse matrix–dense vector product under a semiring:
    /// the classical SpMV used as ground truth for dense comparisons.
    pub fn spmv_dense<X: Scalar, S: Semiring<T, X>>(
        &self,
        x: &DenseVec<X>,
        semiring: &S,
    ) -> DenseVec<S::Output> {
        assert_eq!(x.len(), self.ncols, "dimension mismatch in SpMV");
        let mut y = Vec::with_capacity(self.nrows);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut acc = semiring.zero();
            for (&j, a) in cols.iter().zip(vals.iter()) {
                acc = semiring.add(acc, semiring.multiply(a, &x[j]));
            }
            y.push(acc);
        }
        DenseVec::from_vec(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_matrix, tridiagonal};
    use crate::semiring::PlusTimes;

    #[test]
    fn from_csc_preserves_entries() {
        let a = figure1_matrix();
        let r = CsrMatrix::from_csc(&a);
        assert_eq!(r.nnz(), a.nnz());
        for (i, j, v) in a.iter() {
            assert_eq!(r.get(i, j), Some(v));
        }
    }

    #[test]
    fn from_coo_matches_from_csc() {
        let a = figure1_matrix();
        let via_coo = CsrMatrix::from_coo(a.to_coo(), |x, y| x + y);
        let via_csc = CsrMatrix::from_csc(&a);
        assert_eq!(via_coo, via_csc);
    }

    #[test]
    fn spmv_dense_on_tridiagonal() {
        let a = tridiagonal(5);
        let r = CsrMatrix::from_csc(&a);
        let x = DenseVec::from_vec(vec![1.0; 5]);
        let y = r.spmv_dense(&x, &PlusTimes);
        // interior rows: -1 + 2 - 1 = 0; boundary rows: 2 - 1 = 1
        assert_eq!(y.as_slice(), &[1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn row_access_is_sorted() {
        let r = CsrMatrix::from_csc(&figure1_matrix());
        for i in 0..r.nrows() {
            let (cols, _) = r.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn from_parts_validates() {
        assert!(CsrMatrix::<f64>::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_parts(2, 3, vec![0, 1, 2], vec![2, 0], vec![1.0, 2.0]).is_ok());
    }
}
