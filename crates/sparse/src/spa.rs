//! The sparse accumulator (SPA) with partial initialization — single-vector
//! and batched (lane-aware) variants behind one [`BatchAccumulator`] trait.
//!
//! The SPA (Gilbert, Moler & Schreiber, 1992) is a dense array of values plus
//! a list of the indices that are currently occupied. The paper's key
//! requirement (§II-F) is that a work-efficient SpMSpV algorithm must **not**
//! initialize the whole `O(m)` SPA on every multiplication: only the entries
//! actually touched may be initialized, bringing initialization cost down to
//! `O(nnz(y))`.
//!
//! Every accumulator here uses a *generation counter*: a `stamp` array
//! records the generation at which each slot was last written, so "resetting"
//! is a single counter increment — no backend ever pays an `O(m·k)` clear
//! between multiplications, and the big allocation is paid once and reused.
//!
//! The batched kernels pick between three [`BatchAccumulator`] backends (see
//! [`SpaBackend`]):
//!
//! * [`LaneSpa`] — dense, **index-major** (`slot = index·k + lane`): the `k`
//!   lane slots of one row are adjacent, so a column that activates many
//!   lanes merges its run of `(row, lane)` triples into one cache line;
//! * [`LaneMajorSpa`] — dense, **lane-major** (`slot = lane·m + index`): each
//!   lane's rows are contiguous, so the per-lane output gather is a
//!   sequential walk and lanes that never share rows stay out of each
//!   other's cache lines;
//! * [`HashLaneSpa`] — open-addressing hash on `(index, lane)` keys: memory
//!   and initialization proportional to the *occupied* slots (`O(flops)`),
//!   the work-efficient choice when the output is much sparser than `m × k`.

use std::ops::Range;

use crate::Scalar;

/// A reusable sparse accumulator over a dense index space of size `m`.
#[derive(Debug, Clone)]
pub struct Spa<T> {
    values: Vec<Option<T>>,
    stamp: Vec<u64>,
    generation: u64,
    occupied: Vec<usize>,
}

impl<T: Scalar> Spa<T> {
    /// Allocates a SPA for index space `0..m`. This is the only `O(m)` cost;
    /// subsequent resets are `O(1)` plus the entries previously occupied.
    pub fn new(m: usize) -> Self {
        Spa { values: vec![None; m], stamp: vec![0; m], generation: 1, occupied: Vec::new() }
    }

    /// Size of the underlying dense index space.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Number of currently occupied slots.
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// `true` when no slot is occupied in the current generation.
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Forgets all occupied entries in O(1) (plus clearing the occupied
    /// list), without touching the dense arrays.
    pub fn reset(&mut self) {
        self.generation += 1;
        self.occupied.clear();
    }

    /// Whether slot `i` holds a value in the current generation.
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        self.stamp[i] == self.generation
    }

    /// Current value of slot `i`, if occupied.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if self.is_set(i) {
            self.values[i].as_ref()
        } else {
            None
        }
    }

    /// Inserts `value` at slot `i` if unoccupied, otherwise combines the old
    /// and new values with `add`. Returns `true` when the slot was freshly
    /// occupied (i.e. `i` is a new unique index).
    #[inline]
    pub fn accumulate(&mut self, i: usize, value: T, add: impl FnOnce(T, T) -> T) -> bool {
        if self.is_set(i) {
            let old = self.values[i].take().expect("occupied slot holds a value");
            self.values[i] = Some(add(old, value));
            false
        } else {
            self.stamp[i] = self.generation;
            self.values[i] = Some(value);
            self.occupied.push(i);
            true
        }
    }

    /// Indices occupied in the current generation, in first-touch order.
    pub fn occupied(&self) -> &[usize] {
        &self.occupied
    }

    /// Drains the accumulator into `(index, value)` pairs in first-touch
    /// order and resets it.
    pub fn drain(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::with_capacity(self.occupied.len());
        for &i in &self.occupied {
            out.push((i, self.values[i].expect("occupied slot holds a value")));
        }
        self.reset();
        out
    }
}

/// Identifier for the batch-accumulator backends the batched kernels can
/// merge through. See the [module docs](self) for when each wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpaBackend {
    /// Dense `m × k` accumulator in index-major layout ([`LaneSpa`]).
    DenseIndexMajor,
    /// Dense `m × k` accumulator in lane-major layout ([`LaneMajorSpa`]).
    DenseLaneMajor,
    /// Open-addressing hashed accumulator ([`HashLaneSpa`]) — `O(flops)`
    /// memory traffic, for outputs much sparser than `m × k`.
    Hashed,
    /// Let the kernel pick per call from the measured triple count, `m`, `k`
    /// and the mask (the adaptive dispatch this crate layer exists for).
    Auto,
}

impl SpaBackend {
    /// Display name matching the `batch_scaling` bench legends and the
    /// `BENCH_batch_scaling.json` report.
    pub fn label(&self) -> &'static str {
        match self {
            SpaBackend::DenseIndexMajor => "dense-index-major",
            SpaBackend::DenseLaneMajor => "dense-lane-major",
            SpaBackend::Hashed => "hashed",
            SpaBackend::Auto => "auto",
        }
    }

    /// The three concrete backends (everything but [`SpaBackend::Auto`]),
    /// in bench-legend order. `const` so downstream telemetry tables derive
    /// from this single source.
    pub const fn concrete() -> [SpaBackend; 3] {
        [SpaBackend::DenseIndexMajor, SpaBackend::DenseLaneMajor, SpaBackend::Hashed]
    }
}

impl std::fmt::Display for SpaBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One disjoint mutable window of a [`BatchAccumulator`], covering a
/// contiguous index range across all lanes. Windows of different ranges may
/// be merged into from different threads simultaneously.
pub trait AccumulatorWindow<T: Scalar> {
    /// Inserts or combines at `(index, lane)` (global index; must fall in
    /// this window's range). Returns `true` when the slot was freshly
    /// occupied this generation.
    fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool;
}

/// A lane-aware sparse accumulator usable by the batched SpMSpV kernels:
/// one logical slot per `(index, lane)` pair, generation-stamped so a
/// logical reset never costs more than `O(1)`.
///
/// Two access styles:
///
/// * **windowed** ([`BatchAccumulator::split_windows`]) — the fused bucket
///   kernel hands each bucket a disjoint window over its row range and
///   merges all buckets in parallel, then gathers through
///   [`BatchAccumulator::value_at`];
/// * **direct** ([`BatchAccumulator::accumulate`]) — the row-split baseline
///   merges into one private accumulator per matrix piece sequentially.
///
/// The trait is deliberately not object-safe (`accumulate` takes a closure
/// generically so semiring adds inline); callers dispatch over the concrete
/// backends with a `match` on [`SpaBackend`]. `Sync` is required because
/// the output gather reads `value_at` from many threads after the windows
/// are dropped.
pub trait BatchAccumulator<T: Scalar>: Send + Sync {
    /// The window type [`BatchAccumulator::split_windows`] hands out.
    type Window<'w>: AccumulatorWindow<T> + Send
    where
        Self: 'w;

    /// Which backend this accumulator implements.
    fn backend(&self) -> SpaBackend;

    /// Reshapes the accumulator to cover `m` indices and `k` lanes and
    /// logically empties it. Allocation is high-water: shrinking (or
    /// reshaping within) a previously seen capacity reuses the existing
    /// arrays, so a serving engine whose batch width varies between flushes
    /// never reallocates on the narrow ones.
    fn ensure_shape(&mut self, m: usize, k: usize);

    /// Logically empties every slot in `O(1)`.
    fn reset(&mut self);

    /// Inserts or combines at `(index, lane)`; returns `true` when the slot
    /// was freshly occupied this generation.
    fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool;

    /// Current value at `(index, lane)`, if occupied this generation.
    fn get(&self, index: usize, lane: usize) -> Option<&T>;

    /// Value at an occupied `(index, lane)` slot — the gather-step read that
    /// runs after all windows are merged and dropped. Callers must only pass
    /// slots whose `accumulate` returned `true` this generation.
    fn value_at(&self, index: usize, lane: usize) -> &T;

    /// [`BatchAccumulator::value_at`] with the window (bucket) id the slot
    /// was merged through, when the caller knows it — the fused kernel's
    /// gather walks per-bucket unique lists, so it always does. Dense
    /// backends ignore the hint; the hashed backend uses it to address the
    /// bucket's sub-table directly instead of locating it by binary search.
    fn value_at_window(&self, window: usize, index: usize, lane: usize) -> &T {
        let _ = window;
        self.value_at(index, lane)
    }

    /// Splits the accumulator into disjoint mutable windows, one per index
    /// range (ranges must be contiguous from 0 and cover `0..m`, like bucket
    /// row ranges). `max_entries[b]` bounds how many `accumulate` calls
    /// window `b` will receive — dense backends ignore it, the hashed
    /// backend sizes each window's table from it.
    fn split_windows<'w>(
        &'w mut self,
        ranges: &[Range<usize>],
        max_entries: &[usize],
    ) -> Vec<Self::Window<'w>>;
}

/// A lane-aware sparse accumulator: one SPA slot per `(index, lane)` pair,
/// for merging `k` sparse vectors at once.
///
/// Layout is index-major (`slot = index * k + lane`), so the slots of a
/// contiguous *index* range form a contiguous memory range — exactly what a
/// bucketed merge needs to hand each bucket a disjoint mutable window via
/// [`LaneSpa::split_index_ranges`]. Like [`Spa`], initialization is partial:
/// a per-slot generation stamp makes the `O(m·k)` dense arrays logically
/// empty again with a single counter bump ([`LaneSpa::reset`]), so the big
/// allocation is paid once and reused across every batched multiplication.
///
/// Allocation is high-water: [`LaneSpa::ensure_shape`] reallocates only when
/// `m · k` exceeds every shape seen before, so shrinking `k` between flushes
/// (a serving engine's narrow batch after a wide one) reuses the arrays.
#[derive(Debug, Clone)]
pub struct LaneSpa<T> {
    /// Dense storage; `len()` is the capacity high-water mark (`≥ m·k`).
    values: Vec<T>,
    stamp: Vec<u64>,
    generation: u64,
    m: usize,
    k: usize,
}

impl<T: Scalar> LaneSpa<T> {
    /// Allocates the accumulator for index space `0..m` with `k` lanes.
    pub fn new(m: usize, k: usize) -> Self {
        LaneSpa {
            values: vec![T::default(); m * k],
            stamp: vec![0; m * k],
            // Stamps start at 0, so generation 1 makes every slot logically
            // empty from the first use.
            generation: 1,
            m,
            k,
        }
    }

    /// Index-space size `m`.
    #[inline]
    pub fn index_len(&self) -> usize {
        self.m
    }

    /// Lane count `k`.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.k
    }

    /// Allocated slots (the high-water mark of every `m · k` seen so far).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Reshapes the accumulator to exactly `m` indices and `k` lanes, then
    /// resets. The allocation is a high-water mark: it grows only when
    /// `m · k` exceeds every earlier shape, so shrinking `k` between flushes
    /// reuses the existing arrays (stale stamps are invalidated by the
    /// generation bump, never rewritten).
    pub fn ensure_shape(&mut self, m: usize, k: usize) {
        let needed = m * k;
        if needed > self.values.len() {
            self.values.resize(needed, T::default());
            self.stamp.resize(needed, 0);
        }
        self.m = m;
        self.k = k;
        self.reset();
    }

    /// Logically empties every slot in `O(1)`.
    pub fn reset(&mut self) {
        self.generation += 1;
    }

    /// The flat slot of `(index, lane)`.
    #[inline]
    pub fn slot(&self, index: usize, lane: usize) -> usize {
        debug_assert!(index < self.m && lane < self.k);
        index * self.k + lane
    }

    /// Current value at `(index, lane)`, if occupied this generation.
    #[inline]
    pub fn get(&self, index: usize, lane: usize) -> Option<&T> {
        let s = self.slot(index, lane);
        if self.stamp[s] == self.generation {
            Some(&self.values[s])
        } else {
            None
        }
    }

    /// Inserts or combines at `(index, lane)`; returns `true` when the slot
    /// was freshly occupied this generation.
    #[inline]
    pub fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool {
        let s = self.slot(index, lane);
        if self.stamp[s] == self.generation {
            self.values[s] = add(self.values[s], value);
            false
        } else {
            self.stamp[s] = self.generation;
            self.values[s] = value;
            true
        }
    }

    /// Splits the accumulator into disjoint mutable windows, one per index
    /// range (ranges must be contiguous from 0 and cover `0..m`, like bucket
    /// row ranges). Each window can be merged into concurrently.
    pub fn split_index_ranges<'a>(
        &'a mut self,
        ranges: &[std::ops::Range<usize>],
    ) -> Vec<LaneSpaWindow<'a, T>> {
        let k = self.k;
        let live = self.m * k;
        let generation = self.generation;
        let mut out = Vec::with_capacity(ranges.len());
        // Only the logically live prefix is handed out; the high-water tail
        // beyond m·k stays untouched.
        let mut values: &'a mut [T] = &mut self.values[..live];
        let mut stamps: &'a mut [u64] = &mut self.stamp[..live];
        let mut consumed = 0usize;
        for r in ranges {
            assert_eq!(r.start, consumed, "ranges must be contiguous from 0");
            let take = (r.end - r.start) * k;
            let (v_head, v_tail) = values.split_at_mut(take);
            let (s_head, s_tail) = stamps.split_at_mut(take);
            out.push(LaneSpaWindow {
                values: v_head,
                stamps: s_head,
                base_index: r.start,
                k,
                generation,
            });
            values = v_tail;
            stamps = s_tail;
            consumed = r.end;
        }
        assert_eq!(consumed, self.m, "ranges must cover the whole index space");
        out
    }

    /// Read-only access to the value at a flat slot (for the gather step
    /// that runs after all windows are merged and dropped).
    #[inline]
    pub fn value_at(&self, index: usize, lane: usize) -> &T {
        &self.values[index * self.k + lane]
    }
}

impl<T: Scalar> BatchAccumulator<T> for LaneSpa<T> {
    type Window<'w>
        = LaneSpaWindow<'w, T>
    where
        T: 'w;

    fn backend(&self) -> SpaBackend {
        SpaBackend::DenseIndexMajor
    }

    fn ensure_shape(&mut self, m: usize, k: usize) {
        LaneSpa::ensure_shape(self, m, k);
    }

    fn reset(&mut self) {
        LaneSpa::reset(self);
    }

    fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool {
        LaneSpa::accumulate(self, index, lane, value, add)
    }

    fn get(&self, index: usize, lane: usize) -> Option<&T> {
        LaneSpa::get(self, index, lane)
    }

    fn value_at(&self, index: usize, lane: usize) -> &T {
        LaneSpa::value_at(self, index, lane)
    }

    fn split_windows<'w>(
        &'w mut self,
        ranges: &[Range<usize>],
        _max_entries: &[usize],
    ) -> Vec<Self::Window<'w>> {
        self.split_index_ranges(ranges)
    }
}

/// A disjoint mutable window of a [`LaneSpa`] covering one contiguous index
/// range across all lanes. Handed to one merge task; windows of different
/// ranges can be used from different threads simultaneously.
#[derive(Debug)]
pub struct LaneSpaWindow<'a, T> {
    values: &'a mut [T],
    stamps: &'a mut [u64],
    base_index: usize,
    k: usize,
    generation: u64,
}

impl<T: Scalar> LaneSpaWindow<'_, T> {
    /// First index this window covers.
    #[inline]
    pub fn base_index(&self) -> usize {
        self.base_index
    }

    /// Inserts or combines at `(index, lane)` (index is global; must fall in
    /// this window's range). Returns `true` when the slot was freshly
    /// occupied this generation.
    #[inline]
    pub fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool {
        let s = (index - self.base_index) * self.k + lane;
        if self.stamps[s] == self.generation {
            self.values[s] = add(self.values[s], value);
            false
        } else {
            self.stamps[s] = self.generation;
            self.values[s] = value;
            true
        }
    }
}

impl<T: Scalar> AccumulatorWindow<T> for LaneSpaWindow<'_, T> {
    #[inline]
    fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool {
        LaneSpaWindow::accumulate(self, index, lane, value, add)
    }
}

/// The lane-major sibling of [`LaneSpa`]: dense `m × k` storage with
/// `slot = lane · m + index`, so each lane's rows are contiguous.
///
/// Wins over index-major when lanes rarely activate the same rows (each lane
/// then works a private contiguous strip instead of interleaving with `k−1`
/// cold neighbors) and in the output gather, which walks one lane's unique
/// rows in ascending order — a stride-1 scan here versus stride-`k` in the
/// index-major layout. Index-major wins when many lanes share rows, because
/// a fused column's run of `(row, lane)` triples lands on one cache line.
#[derive(Debug, Clone)]
pub struct LaneMajorSpa<T> {
    values: Vec<T>,
    stamp: Vec<u64>,
    generation: u64,
    m: usize,
    k: usize,
}

impl<T: Scalar> LaneMajorSpa<T> {
    /// Allocates the accumulator for index space `0..m` with `k` lanes.
    pub fn new(m: usize, k: usize) -> Self {
        LaneMajorSpa {
            values: vec![T::default(); m * k],
            stamp: vec![0; m * k],
            generation: 1,
            m,
            k,
        }
    }

    /// Index-space size `m`.
    #[inline]
    pub fn index_len(&self) -> usize {
        self.m
    }

    /// Lane count `k`.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.k
    }

    /// Allocated slots (high-water mark).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn slot(&self, index: usize, lane: usize) -> usize {
        debug_assert!(index < self.m && lane < self.k);
        lane * self.m + index
    }
}

impl<T: Scalar> BatchAccumulator<T> for LaneMajorSpa<T> {
    type Window<'w>
        = LaneMajorWindow<'w, T>
    where
        T: 'w;

    fn backend(&self) -> SpaBackend {
        SpaBackend::DenseLaneMajor
    }

    fn ensure_shape(&mut self, m: usize, k: usize) {
        let needed = m * k;
        if needed > self.values.len() {
            self.values.resize(needed, T::default());
            self.stamp.resize(needed, 0);
        }
        self.m = m;
        self.k = k;
        self.reset();
    }

    fn reset(&mut self) {
        self.generation += 1;
    }

    fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool {
        let s = self.slot(index, lane);
        if self.stamp[s] == self.generation {
            self.values[s] = add(self.values[s], value);
            false
        } else {
            self.stamp[s] = self.generation;
            self.values[s] = value;
            true
        }
    }

    fn get(&self, index: usize, lane: usize) -> Option<&T> {
        let s = self.slot(index, lane);
        if self.stamp[s] == self.generation {
            Some(&self.values[s])
        } else {
            None
        }
    }

    fn value_at(&self, index: usize, lane: usize) -> &T {
        &self.values[lane * self.m + index]
    }

    fn split_windows<'w>(
        &'w mut self,
        ranges: &[Range<usize>],
        _max_entries: &[usize],
    ) -> Vec<Self::Window<'w>> {
        let mut consumed = 0usize;
        for r in ranges {
            assert_eq!(r.start, consumed, "ranges must be contiguous from 0");
            consumed = r.end;
        }
        assert_eq!(consumed, self.m, "ranges must cover the whole index space");
        let values = self.values.as_mut_ptr();
        let stamps = self.stamp.as_mut_ptr();
        ranges
            .iter()
            .map(|r| LaneMajorWindow {
                values,
                stamps,
                range: r.clone(),
                m: self.m,
                k: self.k,
                generation: self.generation,
                _marker: std::marker::PhantomData,
            })
            .collect()
    }
}

/// A disjoint mutable window of a [`LaneMajorSpa`]. An index range is *not*
/// contiguous in the lane-major layout (each lane contributes one strip), so
/// the window carries raw base pointers; disjointness of the ranges makes
/// the windows' slot sets disjoint, which is what makes concurrent use
/// sound.
#[derive(Debug)]
pub struct LaneMajorWindow<'a, T> {
    values: *mut T,
    stamps: *mut u64,
    range: Range<usize>,
    m: usize,
    k: usize,
    generation: u64,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: a window only dereferences slots `lane·m + index` with `index` in
// its private range; windows produced by one `split_windows` call have
// pairwise-disjoint ranges, so no two windows can alias a slot, and the
// parent accumulator is mutably borrowed for the windows' whole lifetime.
unsafe impl<T: Send> Send for LaneMajorWindow<'_, T> {}

impl<T: Scalar> AccumulatorWindow<T> for LaneMajorWindow<'_, T> {
    #[inline]
    fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool {
        assert!(
            self.range.contains(&index) && lane < self.k,
            "(index {index}, lane {lane}) outside window {:?} × {} lanes",
            self.range,
            self.k
        );
        let s = lane * self.m + index;
        // SAFETY: `s < m·k` (asserted above via `index < m`, `lane < k`) and
        // `index` lies in this window's exclusive range — see the `Send`
        // rationale for why no other window can touch slot `s`.
        unsafe {
            if *self.stamps.add(s) == self.generation {
                let v = &mut *self.values.add(s);
                *v = add(*v, value);
                false
            } else {
                *self.stamps.add(s) = self.generation;
                *self.values.add(s) = value;
                true
            }
        }
    }
}

/// Multiply-shift spread of an `(index, lane)` key before masking to a
/// power-of-two table (Fibonacci hashing; the high product bits carry the
/// mix, so take them before the mask).
#[inline]
fn hash_key(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
}

/// Per-bucket sub-table of a [`HashLaneSpa`] in windowed mode: the row range
/// it serves, its offset into the flat slot pool, and its power-of-two
/// capacity.
#[derive(Debug, Clone)]
struct HashTableSpec {
    rows: Range<usize>,
    offset: usize,
    cap: usize,
}

/// An open-addressing hashed lane-aware accumulator: slots are allocated
/// per *occupied* `(index, lane)` pair, not per possible pair, so both the
/// memory footprint and the initialization cost are `O(flops)` — the paper's
/// work-efficiency argument applied to the accumulator itself.
///
/// Keys are `index · k + lane`; tables are power-of-two sized with linear
/// probing at load factor ≤ ½, and every slot carries a generation stamp so
/// reset (and even re-layouting the bucket sub-tables between calls) is a
/// single counter bump — a stale slot from any earlier call simply carries
/// an old stamp.
///
/// Two modes, matching the two [`BatchAccumulator`] access styles:
///
/// * **windowed**: [`BatchAccumulator::split_windows`] carves one sub-table
///   per bucket out of a flat slot pool, sized from the bucket's entry
///   count (an upper bound on its uniques, so probes always terminate);
/// * **direct**: a single growable table serving
///   [`BatchAccumulator::accumulate`], doubling (with rehash) at load ½.
#[derive(Debug, Clone)]
pub struct HashLaneSpa<T> {
    keys: Vec<u64>,
    stamps: Vec<u64>,
    values: Vec<T>,
    generation: u64,
    m: usize,
    k: usize,
    /// Windowed-mode layout; empty means single-table (direct) mode.
    tables: Vec<HashTableSpec>,
    /// Single-table capacity (power of two) and live count.
    cap: usize,
    live: usize,
}

/// Initial single-table capacity (power of two).
const HASH_SPA_MIN_CAP: usize = 64;

impl<T: Scalar> HashLaneSpa<T> {
    /// Creates an accumulator for index space `0..m` with `k` lanes. No
    /// `O(m·k)` allocation happens, ever — storage tracks occupancy.
    pub fn new(m: usize, k: usize) -> Self {
        HashLaneSpa {
            keys: Vec::new(),
            stamps: Vec::new(),
            values: Vec::new(),
            generation: 1,
            m,
            k,
            tables: Vec::new(),
            cap: 0,
            live: 0,
        }
    }

    /// Index-space size `m`.
    #[inline]
    pub fn index_len(&self) -> usize {
        self.m
    }

    /// Lane count `k`.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.k
    }

    /// Allocated slots across all tables (high-water mark).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn key_of(&self, index: usize, lane: usize) -> u64 {
        debug_assert!(index < self.m && lane < self.k);
        index as u64 * self.k as u64 + lane as u64
    }

    fn grow_arrays(&mut self, total: usize) {
        if total > self.keys.len() {
            self.keys.resize(total, 0);
            self.stamps.resize(total, 0);
            self.values.resize(total, T::default());
        }
    }

    /// Probes `[offset, offset + cap)` for `key`; returns `Ok(pos)` when the
    /// key is occupied there this generation, `Err(pos)` with the insertion
    /// position otherwise.
    #[inline]
    fn probe(&self, offset: usize, cap: usize, key: u64) -> Result<usize, usize> {
        let mask = cap - 1;
        let mut pos = hash_key(key) & mask;
        loop {
            let s = offset + pos;
            if self.stamps[s] != self.generation {
                return Err(s);
            }
            if self.keys[s] == key {
                return Ok(s);
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Doubles the single-mode table and re-inserts the live entries.
    fn grow_single(&mut self) {
        let old_cap = self.cap;
        let old_gen = self.generation;
        let new_cap = (old_cap * 2).max(HASH_SPA_MIN_CAP);
        // Collect the live entries before invalidating the old layout.
        let mut entries: Vec<(u64, T)> = Vec::with_capacity(self.live);
        for s in 0..old_cap {
            if self.stamps[s] == old_gen {
                entries.push((self.keys[s], self.values[s]));
            }
        }
        self.grow_arrays(new_cap);
        self.cap = new_cap;
        self.generation += 1;
        for (key, value) in entries {
            match self.probe(0, new_cap, key) {
                // Keys were unique in the old table, so every probe misses.
                Ok(_) => unreachable!("duplicate key during rehash"),
                Err(s) => {
                    self.stamps[s] = self.generation;
                    self.keys[s] = key;
                    self.values[s] = value;
                }
            }
        }
    }

    /// The windowed-mode sub-table covering `index`, found by binary search
    /// over the (sorted, contiguous) row ranges.
    fn table_of(&self, index: usize) -> &HashTableSpec {
        let t = self.tables.partition_point(|spec| spec.rows.end <= index);
        debug_assert!(t < self.tables.len() && self.tables[t].rows.contains(&index));
        &self.tables[t]
    }
}

impl<T: Scalar> BatchAccumulator<T> for HashLaneSpa<T> {
    type Window<'w>
        = HashSpaWindow<'w, T>
    where
        T: 'w;

    fn backend(&self) -> SpaBackend {
        SpaBackend::Hashed
    }

    fn ensure_shape(&mut self, m: usize, k: usize) {
        self.m = m;
        self.k = k;
        // Back to single-table mode with the high-water capacity.
        self.tables.clear();
        self.cap = self.cap.max(HASH_SPA_MIN_CAP);
        let cap = self.cap;
        self.grow_arrays(cap);
        self.reset();
    }

    fn reset(&mut self) {
        self.generation += 1;
        self.live = 0;
    }

    fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool {
        // Hard assert (one O(1) branch): in windowed mode a direct insert
        // would land outside the bucket sub-tables and silently vanish from
        // later probes — misuse of the public trait must panic, not corrupt.
        assert!(
            self.tables.is_empty(),
            "direct accumulate requires single-table mode; call ensure_shape after split_windows"
        );
        // Keep load factor ≤ ½ so probes stay short and always terminate.
        if (self.live + 1) * 2 > self.cap {
            self.grow_single();
        }
        let key = self.key_of(index, lane);
        match self.probe(0, self.cap, key) {
            Ok(s) => {
                self.values[s] = add(self.values[s], value);
                false
            }
            Err(s) => {
                self.stamps[s] = self.generation;
                self.keys[s] = key;
                self.values[s] = value;
                self.live += 1;
                true
            }
        }
    }

    fn get(&self, index: usize, lane: usize) -> Option<&T> {
        let key = self.key_of(index, lane);
        let (offset, cap) = if self.tables.is_empty() {
            if self.cap == 0 {
                return None;
            }
            (0, self.cap)
        } else {
            let spec = self.table_of(index);
            (spec.offset, spec.cap)
        };
        match self.probe(offset, cap, key) {
            Ok(s) => Some(&self.values[s]),
            Err(_) => None,
        }
    }

    fn value_at(&self, index: usize, lane: usize) -> &T {
        self.get(index, lane).expect("value_at requires an occupied (index, lane) slot")
    }

    fn value_at_window(&self, window: usize, index: usize, lane: usize) -> &T {
        let spec = &self.tables[window];
        debug_assert!(spec.rows.contains(&index));
        let key = self.key_of(index, lane);
        match self.probe(spec.offset, spec.cap, key) {
            Ok(s) => &self.values[s],
            Err(_) => panic!("value_at_window requires an occupied (index, lane) slot"),
        }
    }

    fn split_windows<'w>(
        &'w mut self,
        ranges: &[Range<usize>],
        max_entries: &[usize],
    ) -> Vec<Self::Window<'w>> {
        assert_eq!(ranges.len(), max_entries.len(), "one entry bound per range");
        let k = self.k;
        let mut consumed = 0usize;
        let mut total = 0usize;
        self.tables.clear();
        for (r, &bound) in ranges.iter().zip(max_entries) {
            assert_eq!(r.start, consumed, "ranges must be contiguous from 0");
            consumed = r.end;
            // Uniques in this bucket are bounded both by the entries it will
            // receive and by its dense slot count; capacity 2× that bound
            // (min 8) keeps the load factor ≤ ½.
            let uniques = bound.min((r.end - r.start).saturating_mul(k));
            let cap = (uniques * 2).next_power_of_two().max(8);
            self.tables.push(HashTableSpec { rows: r.clone(), offset: total, cap });
            total += cap;
        }
        assert_eq!(consumed, self.m, "ranges must cover the whole index space");
        self.grow_arrays(total);
        // One bump invalidates every stale slot, whatever layout wrote it.
        self.generation += 1;
        let generation = self.generation;

        let mut out = Vec::with_capacity(self.tables.len());
        let mut keys: &'w mut [u64] = &mut self.keys[..total];
        let mut stamps: &'w mut [u64] = &mut self.stamps[..total];
        let mut values: &'w mut [T] = &mut self.values[..total];
        for spec in &self.tables {
            let (k_head, k_tail) = keys.split_at_mut(spec.cap);
            let (s_head, s_tail) = stamps.split_at_mut(spec.cap);
            let (v_head, v_tail) = values.split_at_mut(spec.cap);
            out.push(HashSpaWindow {
                keys: k_head,
                stamps: s_head,
                values: v_head,
                k: k as u64,
                generation,
            });
            keys = k_tail;
            stamps = s_tail;
            values = v_tail;
        }
        out
    }
}

/// A disjoint window of a [`HashLaneSpa`]: one bucket's private open-
/// addressing sub-table. The caller guarantees at most the advertised entry
/// bound is accumulated, which keeps the load factor ≤ ½.
#[derive(Debug)]
pub struct HashSpaWindow<'a, T> {
    keys: &'a mut [u64],
    stamps: &'a mut [u64],
    values: &'a mut [T],
    k: u64,
    generation: u64,
}

impl<T: Scalar> AccumulatorWindow<T> for HashSpaWindow<'_, T> {
    #[inline]
    fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool {
        let key = index as u64 * self.k + lane as u64;
        let mask = self.keys.len() - 1;
        let start = hash_key(key) & mask;
        let mut pos = start;
        loop {
            if self.stamps[pos] != self.generation {
                self.stamps[pos] = self.generation;
                self.keys[pos] = key;
                self.values[pos] = value;
                return true;
            }
            if self.keys[pos] == key {
                self.values[pos] = add(self.values[pos], value);
                return false;
            }
            pos = (pos + 1) & mask;
            // The split sized this window for at most `max_entries` distinct
            // keys at load ≤ ½; a full wrap means the caller under-declared
            // the bound — panic instead of probing forever.
            assert!(
                pos != start,
                "hashed SPA window overflow: more distinct (index, lane) keys than the \
                 max_entries bound it was split with"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_combines_duplicates() {
        let mut spa = Spa::new(10);
        assert!(spa.accumulate(3, 1.0, |a, b| a + b));
        assert!(!spa.accumulate(3, 2.5, |a, b| a + b));
        assert!(spa.accumulate(7, 4.0, |a, b| a + b));
        assert_eq!(spa.get(3).copied(), Some(3.5));
        assert_eq!(spa.get(7).copied(), Some(4.0));
        assert_eq!(spa.get(0), None);
        assert_eq!(spa.len(), 2);
        assert_eq!(spa.occupied(), &[3, 7]);
    }

    #[test]
    fn reset_is_logical_not_physical() {
        let mut spa = Spa::new(5);
        spa.accumulate(1, 10.0, |a, b| a + b);
        spa.reset();
        assert!(spa.is_empty());
        assert_eq!(spa.get(1), None);
        // Slot can be reused in the next generation.
        assert!(spa.accumulate(1, 2.0, |a, b| a + b));
        assert_eq!(spa.get(1).copied(), Some(2.0));
    }

    #[test]
    fn drain_returns_first_touch_order_and_resets() {
        let mut spa = Spa::new(8);
        spa.accumulate(5, 1.0, |a, b| a + b);
        spa.accumulate(2, 2.0, |a, b| a + b);
        spa.accumulate(5, 3.0, |a, b| a + b);
        let drained = spa.drain();
        assert_eq!(drained, vec![(5, 4.0), (2, 2.0)]);
        assert!(spa.is_empty());
        assert_eq!(spa.get(5), None);
    }

    #[test]
    fn many_generations_do_not_interfere() {
        let mut spa = Spa::new(4);
        for gen in 0..100u64 {
            spa.accumulate(gen as usize % 4, gen as f64, |_, b| b);
            assert_eq!(spa.len(), 1);
            spa.reset();
        }
        assert!(spa.is_empty());
    }

    #[test]
    fn min_reduction_works_through_closure() {
        let mut spa = Spa::new(3);
        spa.accumulate(0, 9usize, |a, b| a.min(b));
        spa.accumulate(0, 4usize, |a, b| a.min(b));
        spa.accumulate(0, 7usize, |a, b| a.min(b));
        assert_eq!(spa.get(0).copied(), Some(4));
    }

    #[test]
    fn lane_spa_keeps_lanes_independent() {
        let mut spa = LaneSpa::new(5, 3);
        assert!(spa.accumulate(2, 0, 1.0, |a, b| a + b));
        assert!(spa.accumulate(2, 1, 10.0, |a, b| a + b));
        assert!(!spa.accumulate(2, 0, 2.0, |a, b| a + b));
        assert_eq!(spa.get(2, 0).copied(), Some(3.0));
        assert_eq!(spa.get(2, 1).copied(), Some(10.0));
        assert_eq!(spa.get(2, 2), None);
        assert_eq!(spa.get(3, 0), None);
    }

    #[test]
    fn lane_spa_reset_is_logical() {
        let mut spa = LaneSpa::new(4, 2);
        spa.accumulate(1, 1, 7.0, |a, b| a + b);
        spa.reset();
        assert_eq!(spa.get(1, 1), None);
        assert!(spa.accumulate(1, 1, 2.0, |a, b| a + b));
        assert_eq!(spa.get(1, 1).copied(), Some(2.0));
    }

    #[test]
    fn lane_spa_fresh_allocation_is_empty() {
        let spa: LaneSpa<f64> = LaneSpa::new(3, 2);
        for i in 0..3 {
            for l in 0..2 {
                assert_eq!(spa.get(i, l), None);
            }
        }
    }

    #[test]
    fn lane_spa_ensure_shape_reuses_the_high_water_allocation() {
        let mut spa: LaneSpa<usize> = LaneSpa::new(4, 1);
        spa.accumulate(0, 0, 9, |a, b| a + b);
        spa.ensure_shape(4, 1); // same shape, just reset
        assert_eq!(spa.get(0, 0), None);
        spa.ensure_shape(6, 3); // grows: capacity becomes 18
        assert_eq!(spa.index_len(), 6);
        assert_eq!(spa.lanes(), 3);
        assert_eq!(spa.capacity(), 18);
        assert!(spa.accumulate(5, 2, 1, |a, b| a + b));
        // Shrinking k (and m) keeps the allocation but takes the new
        // logical shape — the serving-engine narrow-after-wide flush.
        spa.ensure_shape(2, 2);
        assert_eq!(spa.index_len(), 2);
        assert_eq!(spa.lanes(), 2);
        assert_eq!(spa.capacity(), 18, "shrinking must not reallocate");
        // Slots remapped by the new k are logically empty (generation bump).
        for i in 0..2 {
            for l in 0..2 {
                assert_eq!(spa.get(i, l), None);
            }
        }
        assert!(spa.accumulate(1, 1, 5, |a, b| a + b));
        assert_eq!(spa.get(1, 1).copied(), Some(5));
        // Growing again within capacity still does not reallocate.
        spa.ensure_shape(9, 2);
        assert_eq!(spa.capacity(), 18);
        spa.ensure_shape(10, 2);
        assert_eq!(spa.capacity(), 20);
    }

    #[test]
    fn lane_spa_windows_merge_disjoint_ranges_in_parallel() {
        let mut spa = LaneSpa::new(10, 2);
        spa.reset();
        let ranges = [0..4, 4..10];
        let mut windows = spa.split_index_ranges(&ranges);
        assert_eq!(windows.len(), 2);
        std::thread::scope(|s| {
            let mut it = windows.drain(..);
            let mut w0 = it.next().unwrap();
            let mut w1 = it.next().unwrap();
            s.spawn(move || {
                assert!(w0.accumulate(1, 0, 5.0, |a, b| a + b));
                assert!(!w0.accumulate(1, 0, 2.0, |a, b| a + b));
            });
            s.spawn(move || {
                assert!(w1.accumulate(9, 1, 3.0, |a, b| a + b));
            });
        });
        assert_eq!(spa.get(1, 0).copied(), Some(7.0));
        assert_eq!(spa.get(9, 1).copied(), Some(3.0));
        assert_eq!(spa.get(1, 1), None);
    }

    /// Drives any backend through the same scripted workload (direct mode).
    fn exercise_direct<Acc: BatchAccumulator<f64>>(spa: &mut Acc) {
        spa.ensure_shape(50, 4);
        assert!(spa.accumulate(10, 0, 1.0, |a, b| a + b));
        assert!(spa.accumulate(10, 3, 30.0, |a, b| a + b));
        assert!(!spa.accumulate(10, 0, 2.0, |a, b| a + b));
        assert!(spa.accumulate(49, 1, 7.0, |a, b| a + b));
        assert_eq!(spa.get(10, 0).copied(), Some(3.0));
        assert_eq!(spa.get(10, 3).copied(), Some(30.0));
        assert_eq!(spa.get(10, 1), None);
        assert_eq!(spa.get(49, 1).copied(), Some(7.0));
        assert_eq!(*spa.value_at(10, 0), 3.0);
        spa.reset();
        assert_eq!(spa.get(10, 0), None);
        assert!(spa.accumulate(10, 0, 4.0, |a, b| a + b));
        assert_eq!(spa.get(10, 0).copied(), Some(4.0));
        // Reshape narrower: allocation reused, contents gone.
        spa.ensure_shape(20, 2);
        assert_eq!(spa.get(10, 0), None);
        assert!(spa.accumulate(19, 1, 9.0, |a, b| a + b));
        assert_eq!(*spa.value_at(19, 1), 9.0);
    }

    #[test]
    fn every_backend_supports_the_direct_protocol() {
        exercise_direct(&mut LaneSpa::new(0, 0));
        exercise_direct(&mut LaneMajorSpa::new(0, 0));
        exercise_direct(&mut HashLaneSpa::new(0, 0));
    }

    /// Drives any backend through the windowed (bucketed-merge) protocol
    /// from two threads, then gathers through `value_at`.
    fn exercise_windows<Acc: BatchAccumulator<f64>>(spa: &mut Acc) {
        spa.ensure_shape(10, 2);
        let ranges = [0..4, 4..10];
        let counts = [3usize, 2];
        {
            let mut windows = spa.split_windows(&ranges, &counts);
            assert_eq!(windows.len(), 2);
            std::thread::scope(|s| {
                let mut it = windows.drain(..);
                let mut w0 = it.next().unwrap();
                let mut w1 = it.next().unwrap();
                s.spawn(move || {
                    assert!(w0.accumulate(1, 0, 5.0, |a, b| a + b));
                    assert!(!w0.accumulate(1, 0, 2.0, |a, b| a + b));
                    assert!(w0.accumulate(3, 1, 1.5, |a, b| a + b));
                });
                s.spawn(move || {
                    assert!(w1.accumulate(9, 1, 3.0, |a, b| a + b));
                    assert!(w1.accumulate(4, 0, 4.0, |a, b| a + b));
                });
            });
        }
        assert_eq!(spa.get(1, 0).copied(), Some(7.0));
        assert_eq!(spa.get(3, 1).copied(), Some(1.5));
        assert_eq!(spa.get(9, 1).copied(), Some(3.0));
        assert_eq!(*spa.value_at(4, 0), 4.0);
        assert_eq!(spa.get(1, 1), None);
        assert_eq!(spa.get(4, 1), None);
    }

    #[test]
    fn every_backend_supports_the_windowed_protocol() {
        exercise_windows(&mut LaneSpa::new(0, 0));
        exercise_windows(&mut LaneMajorSpa::new(0, 0));
        exercise_windows(&mut HashLaneSpa::new(0, 0));
    }

    #[test]
    fn hashed_spa_grows_past_its_initial_capacity() {
        let mut spa: HashLaneSpa<usize> = HashLaneSpa::new(10_000, 3);
        BatchAccumulator::ensure_shape(&mut spa, 10_000, 3);
        // Insert far more uniques than HASH_SPA_MIN_CAP to force rehashes.
        for i in 0..2_000usize {
            for l in 0..3 {
                assert!(spa.accumulate(i, l, i * 10 + l, |a, b| a + b));
            }
        }
        for i in 0..2_000usize {
            for l in 0..3 {
                assert_eq!(spa.get(i, l).copied(), Some(i * 10 + l), "lost ({i}, {l})");
            }
        }
        // Duplicates combine, not re-insert.
        assert!(!spa.accumulate(1234, 1, 1, |a, b| a + b));
        assert_eq!(spa.get(1234, 1).copied(), Some(12341 + 1));
        // Reset is logical; capacity is retained.
        let cap = spa.capacity();
        assert!(cap >= 2 * 6_000);
        BatchAccumulator::reset(&mut spa);
        assert_eq!(spa.get(0, 0), None);
        assert_eq!(spa.capacity(), cap);
    }

    #[test]
    fn hashed_spa_relayout_between_windowed_calls_is_clean() {
        let mut spa: HashLaneSpa<f64> = HashLaneSpa::new(0, 0);
        spa.ensure_shape(8, 2);
        {
            let one_bucket = std::slice::from_ref(&(0..8));
            let mut w = spa.split_windows(one_bucket, &[4]);
            w[0].accumulate(7, 1, 1.0, |a, b| a + b);
            w[0].accumulate(0, 0, 2.0, |a, b| a + b);
        }
        assert_eq!(spa.get(7, 1).copied(), Some(1.0));
        // New call, different bucketing: stale slots must not resurface.
        spa.ensure_shape(8, 2);
        {
            let mut w = spa.split_windows(&[0..3, 3..8], &[2, 2]);
            assert!(w[1].accumulate(7, 1, 9.0, |a, b| a + b), "stale slot resurfaced");
            assert!(w[0].accumulate(2, 0, 3.0, |a, b| a + b));
        }
        assert_eq!(spa.get(7, 1).copied(), Some(9.0));
        assert_eq!(spa.get(2, 0).copied(), Some(3.0));
        assert_eq!(spa.get(0, 0), None, "previous layout's entry leaked");
    }

    #[test]
    fn backends_report_their_kind_and_labels() {
        assert_eq!(LaneSpa::<f64>::new(1, 1).backend(), SpaBackend::DenseIndexMajor);
        assert_eq!(LaneMajorSpa::<f64>::new(1, 1).backend(), SpaBackend::DenseLaneMajor);
        assert_eq!(HashLaneSpa::<f64>::new(1, 1).backend(), SpaBackend::Hashed);
        assert_eq!(SpaBackend::Hashed.label(), "hashed");
        assert_eq!(SpaBackend::Auto.to_string(), "auto");
        assert_eq!(SpaBackend::concrete().len(), 3);
    }

    #[test]
    fn dense_backends_agree_with_each_other_on_a_random_script() {
        // A deterministic pseudo-random accumulate script must leave all
        // three backends with identical logical contents.
        let m = 97usize;
        let k = 5usize;
        let mut a = LaneSpa::new(0, 0);
        let mut b = LaneMajorSpa::new(0, 0);
        let mut c = HashLaneSpa::new(0, 0);
        BatchAccumulator::ensure_shape(&mut a, m, k);
        BatchAccumulator::ensure_shape(&mut b, m, k);
        BatchAccumulator::ensure_shape(&mut c, m, k);
        let mut state = 0x1234_5678_u64;
        for _ in 0..800 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (state >> 16) as usize % m;
            let l = (state >> 40) as usize % k;
            let v = (state % 100) as f64;
            let fa = BatchAccumulator::accumulate(&mut a, i, l, v, |x, y| x + y);
            let fb = BatchAccumulator::accumulate(&mut b, i, l, v, |x, y| x + y);
            let fc = BatchAccumulator::accumulate(&mut c, i, l, v, |x, y| x + y);
            assert_eq!(fa, fb);
            assert_eq!(fa, fc);
        }
        for i in 0..m {
            for l in 0..k {
                assert_eq!(BatchAccumulator::get(&a, i, l), BatchAccumulator::get(&b, i, l));
                assert_eq!(BatchAccumulator::get(&a, i, l), BatchAccumulator::get(&c, i, l));
            }
        }
    }
}
