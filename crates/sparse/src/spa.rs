//! The sparse accumulator (SPA) with partial initialization.
//!
//! The SPA (Gilbert, Moler & Schreiber, 1992) is a dense array of values plus
//! a list of the indices that are currently occupied. The paper's key
//! requirement (§II-F) is that a work-efficient SpMSpV algorithm must **not**
//! initialize the whole `O(m)` SPA on every multiplication: only the entries
//! actually touched may be initialized, bringing initialization cost down to
//! `O(nnz(y))`.
//!
//! This implementation uses a *generation counter*: the dense `stamp` array
//! records the generation at which each slot was last written, so "resetting"
//! the SPA is a single counter increment. The `O(m)` allocation happens once
//! and is reused across multiplications and across BFS iterations, exactly as
//! the paper's pre-allocated workspace does.

use crate::Scalar;

/// A reusable sparse accumulator over a dense index space of size `m`.
#[derive(Debug, Clone)]
pub struct Spa<T> {
    values: Vec<Option<T>>,
    stamp: Vec<u64>,
    generation: u64,
    occupied: Vec<usize>,
}

impl<T: Scalar> Spa<T> {
    /// Allocates a SPA for index space `0..m`. This is the only `O(m)` cost;
    /// subsequent resets are `O(1)` plus the entries previously occupied.
    pub fn new(m: usize) -> Self {
        Spa { values: vec![None; m], stamp: vec![0; m], generation: 1, occupied: Vec::new() }
    }

    /// Size of the underlying dense index space.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Number of currently occupied slots.
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// `true` when no slot is occupied in the current generation.
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Forgets all occupied entries in O(1) (plus clearing the occupied
    /// list), without touching the dense arrays.
    pub fn reset(&mut self) {
        self.generation += 1;
        self.occupied.clear();
    }

    /// Whether slot `i` holds a value in the current generation.
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        self.stamp[i] == self.generation
    }

    /// Current value of slot `i`, if occupied.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if self.is_set(i) {
            self.values[i].as_ref()
        } else {
            None
        }
    }

    /// Inserts `value` at slot `i` if unoccupied, otherwise combines the old
    /// and new values with `add`. Returns `true` when the slot was freshly
    /// occupied (i.e. `i` is a new unique index).
    #[inline]
    pub fn accumulate(&mut self, i: usize, value: T, add: impl FnOnce(T, T) -> T) -> bool {
        if self.is_set(i) {
            let old = self.values[i].take().expect("occupied slot holds a value");
            self.values[i] = Some(add(old, value));
            false
        } else {
            self.stamp[i] = self.generation;
            self.values[i] = Some(value);
            self.occupied.push(i);
            true
        }
    }

    /// Indices occupied in the current generation, in first-touch order.
    pub fn occupied(&self) -> &[usize] {
        &self.occupied
    }

    /// Drains the accumulator into `(index, value)` pairs in first-touch
    /// order and resets it.
    pub fn drain(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::with_capacity(self.occupied.len());
        for &i in &self.occupied {
            out.push((i, self.values[i].expect("occupied slot holds a value")));
        }
        self.reset();
        out
    }
}

/// A lane-aware sparse accumulator: one SPA slot per `(index, lane)` pair,
/// for merging `k` sparse vectors at once.
///
/// Layout is row-major (`slot = index * k + lane`), so the slots of a
/// contiguous *index* range form a contiguous memory range — exactly what a
/// bucketed merge needs to hand each bucket a disjoint mutable window via
/// [`LaneSpa::split_index_ranges`]. Like [`Spa`], initialization is partial:
/// a per-slot generation stamp makes the `O(m·k)` dense arrays logically
/// empty again with a single counter bump ([`LaneSpa::reset`]), so the big
/// allocation is paid once and reused across every batched multiplication.
#[derive(Debug, Clone)]
pub struct LaneSpa<T> {
    values: Vec<T>,
    stamp: Vec<u64>,
    generation: u64,
    m: usize,
    k: usize,
}

impl<T: Scalar> LaneSpa<T> {
    /// Allocates the accumulator for index space `0..m` with `k` lanes.
    pub fn new(m: usize, k: usize) -> Self {
        LaneSpa {
            values: vec![T::default(); m * k],
            stamp: vec![0; m * k],
            // Stamps start at 0, so generation 1 makes every slot logically
            // empty from the first use.
            generation: 1,
            m,
            k,
        }
    }

    /// Index-space size `m`.
    #[inline]
    pub fn index_len(&self) -> usize {
        self.m
    }

    /// Lane count `k`.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.k
    }

    /// Grows (never shrinks) the accumulator to cover at least `m` indices
    /// and `k` lanes, then resets. Reallocates only when the shape actually
    /// grows, so a batch kernel can serve varying `k` while keeping the
    /// amortized-allocation property.
    pub fn ensure_shape(&mut self, m: usize, k: usize) {
        if m > self.m || k > self.k {
            let new_m = m.max(self.m);
            let new_k = k.max(self.k);
            self.values = vec![T::default(); new_m * new_k];
            self.stamp = vec![0; new_m * new_k];
            self.generation = 0;
            self.m = new_m;
            self.k = new_k;
        }
        self.reset();
    }

    /// Logically empties every slot in `O(1)`.
    pub fn reset(&mut self) {
        self.generation += 1;
    }

    /// The flat slot of `(index, lane)`.
    #[inline]
    pub fn slot(&self, index: usize, lane: usize) -> usize {
        debug_assert!(index < self.m && lane < self.k);
        index * self.k + lane
    }

    /// Current value at `(index, lane)`, if occupied this generation.
    #[inline]
    pub fn get(&self, index: usize, lane: usize) -> Option<&T> {
        let s = self.slot(index, lane);
        if self.stamp[s] == self.generation {
            Some(&self.values[s])
        } else {
            None
        }
    }

    /// Inserts or combines at `(index, lane)`; returns `true` when the slot
    /// was freshly occupied this generation.
    #[inline]
    pub fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool {
        let s = self.slot(index, lane);
        if self.stamp[s] == self.generation {
            self.values[s] = add(self.values[s], value);
            false
        } else {
            self.stamp[s] = self.generation;
            self.values[s] = value;
            true
        }
    }

    /// Splits the accumulator into disjoint mutable windows, one per index
    /// range (ranges must be contiguous from 0 and cover `0..m`, like bucket
    /// row ranges). Each window can be merged into concurrently.
    pub fn split_index_ranges<'a>(
        &'a mut self,
        ranges: &[std::ops::Range<usize>],
    ) -> Vec<LaneSpaWindow<'a, T>> {
        let k = self.k;
        let generation = self.generation;
        let mut out = Vec::with_capacity(ranges.len());
        let mut values: &'a mut [T] = &mut self.values;
        let mut stamps: &'a mut [u64] = &mut self.stamp;
        let mut consumed = 0usize;
        for r in ranges {
            assert_eq!(r.start, consumed, "ranges must be contiguous from 0");
            let take = (r.end - r.start) * k;
            let (v_head, v_tail) = values.split_at_mut(take);
            let (s_head, s_tail) = stamps.split_at_mut(take);
            out.push(LaneSpaWindow {
                values: v_head,
                stamps: s_head,
                base_index: r.start,
                k,
                generation,
            });
            values = v_tail;
            stamps = s_tail;
            consumed = r.end;
        }
        assert_eq!(consumed, self.m, "ranges must cover the whole index space");
        out
    }

    /// Read-only access to the value at a flat slot (for the gather step
    /// that runs after all windows are merged and dropped).
    #[inline]
    pub fn value_at(&self, index: usize, lane: usize) -> &T {
        &self.values[index * self.k + lane]
    }
}

/// A disjoint mutable window of a [`LaneSpa`] covering one contiguous index
/// range across all lanes. Handed to one merge task; windows of different
/// ranges can be used from different threads simultaneously.
#[derive(Debug)]
pub struct LaneSpaWindow<'a, T> {
    values: &'a mut [T],
    stamps: &'a mut [u64],
    base_index: usize,
    k: usize,
    generation: u64,
}

impl<T: Scalar> LaneSpaWindow<'_, T> {
    /// First index this window covers.
    #[inline]
    pub fn base_index(&self) -> usize {
        self.base_index
    }

    /// Inserts or combines at `(index, lane)` (index is global; must fall in
    /// this window's range). Returns `true` when the slot was freshly
    /// occupied this generation.
    #[inline]
    pub fn accumulate(
        &mut self,
        index: usize,
        lane: usize,
        value: T,
        add: impl FnOnce(T, T) -> T,
    ) -> bool {
        let s = (index - self.base_index) * self.k + lane;
        if self.stamps[s] == self.generation {
            self.values[s] = add(self.values[s], value);
            false
        } else {
            self.stamps[s] = self.generation;
            self.values[s] = value;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_combines_duplicates() {
        let mut spa = Spa::new(10);
        assert!(spa.accumulate(3, 1.0, |a, b| a + b));
        assert!(!spa.accumulate(3, 2.5, |a, b| a + b));
        assert!(spa.accumulate(7, 4.0, |a, b| a + b));
        assert_eq!(spa.get(3).copied(), Some(3.5));
        assert_eq!(spa.get(7).copied(), Some(4.0));
        assert_eq!(spa.get(0), None);
        assert_eq!(spa.len(), 2);
        assert_eq!(spa.occupied(), &[3, 7]);
    }

    #[test]
    fn reset_is_logical_not_physical() {
        let mut spa = Spa::new(5);
        spa.accumulate(1, 10.0, |a, b| a + b);
        spa.reset();
        assert!(spa.is_empty());
        assert_eq!(spa.get(1), None);
        // Slot can be reused in the next generation.
        assert!(spa.accumulate(1, 2.0, |a, b| a + b));
        assert_eq!(spa.get(1).copied(), Some(2.0));
    }

    #[test]
    fn drain_returns_first_touch_order_and_resets() {
        let mut spa = Spa::new(8);
        spa.accumulate(5, 1.0, |a, b| a + b);
        spa.accumulate(2, 2.0, |a, b| a + b);
        spa.accumulate(5, 3.0, |a, b| a + b);
        let drained = spa.drain();
        assert_eq!(drained, vec![(5, 4.0), (2, 2.0)]);
        assert!(spa.is_empty());
        assert_eq!(spa.get(5), None);
    }

    #[test]
    fn many_generations_do_not_interfere() {
        let mut spa = Spa::new(4);
        for gen in 0..100u64 {
            spa.accumulate(gen as usize % 4, gen as f64, |_, b| b);
            assert_eq!(spa.len(), 1);
            spa.reset();
        }
        assert!(spa.is_empty());
    }

    #[test]
    fn min_reduction_works_through_closure() {
        let mut spa = Spa::new(3);
        spa.accumulate(0, 9usize, |a, b| a.min(b));
        spa.accumulate(0, 4usize, |a, b| a.min(b));
        spa.accumulate(0, 7usize, |a, b| a.min(b));
        assert_eq!(spa.get(0).copied(), Some(4));
    }

    #[test]
    fn lane_spa_keeps_lanes_independent() {
        let mut spa = LaneSpa::new(5, 3);
        assert!(spa.accumulate(2, 0, 1.0, |a, b| a + b));
        assert!(spa.accumulate(2, 1, 10.0, |a, b| a + b));
        assert!(!spa.accumulate(2, 0, 2.0, |a, b| a + b));
        assert_eq!(spa.get(2, 0).copied(), Some(3.0));
        assert_eq!(spa.get(2, 1).copied(), Some(10.0));
        assert_eq!(spa.get(2, 2), None);
        assert_eq!(spa.get(3, 0), None);
    }

    #[test]
    fn lane_spa_reset_is_logical() {
        let mut spa = LaneSpa::new(4, 2);
        spa.accumulate(1, 1, 7.0, |a, b| a + b);
        spa.reset();
        assert_eq!(spa.get(1, 1), None);
        assert!(spa.accumulate(1, 1, 2.0, |a, b| a + b));
        assert_eq!(spa.get(1, 1).copied(), Some(2.0));
    }

    #[test]
    fn lane_spa_fresh_allocation_is_empty() {
        let spa: LaneSpa<f64> = LaneSpa::new(3, 2);
        for i in 0..3 {
            for l in 0..2 {
                assert_eq!(spa.get(i, l), None);
            }
        }
    }

    #[test]
    fn lane_spa_ensure_shape_grows_and_resets() {
        let mut spa: LaneSpa<usize> = LaneSpa::new(4, 1);
        spa.accumulate(0, 0, 9, |a, b| a + b);
        spa.ensure_shape(4, 1); // no growth, just reset
        assert_eq!(spa.get(0, 0), None);
        spa.ensure_shape(6, 3);
        assert_eq!(spa.index_len(), 6);
        assert_eq!(spa.lanes(), 3);
        assert!(spa.accumulate(5, 2, 1, |a, b| a + b));
        spa.ensure_shape(2, 2); // never shrinks
        assert_eq!(spa.index_len(), 6);
        assert_eq!(spa.lanes(), 3);
    }

    #[test]
    fn lane_spa_windows_merge_disjoint_ranges_in_parallel() {
        let mut spa = LaneSpa::new(10, 2);
        spa.reset();
        let ranges = [0..4, 4..10];
        let mut windows = spa.split_index_ranges(&ranges);
        assert_eq!(windows.len(), 2);
        std::thread::scope(|s| {
            let mut it = windows.drain(..);
            let mut w0 = it.next().unwrap();
            let mut w1 = it.next().unwrap();
            s.spawn(move || {
                assert!(w0.accumulate(1, 0, 5.0, |a, b| a + b));
                assert!(!w0.accumulate(1, 0, 2.0, |a, b| a + b));
            });
            s.spawn(move || {
                assert!(w1.accumulate(9, 1, 3.0, |a, b| a + b));
            });
        });
        assert_eq!(spa.get(1, 0).copied(), Some(7.0));
        assert_eq!(spa.get(9, 1).copied(), Some(3.0));
        assert_eq!(spa.get(1, 1), None);
    }
}
