//! The sparse accumulator (SPA) with partial initialization.
//!
//! The SPA (Gilbert, Moler & Schreiber, 1992) is a dense array of values plus
//! a list of the indices that are currently occupied. The paper's key
//! requirement (§II-F) is that a work-efficient SpMSpV algorithm must **not**
//! initialize the whole `O(m)` SPA on every multiplication: only the entries
//! actually touched may be initialized, bringing initialization cost down to
//! `O(nnz(y))`.
//!
//! This implementation uses a *generation counter*: the dense `stamp` array
//! records the generation at which each slot was last written, so "resetting"
//! the SPA is a single counter increment. The `O(m)` allocation happens once
//! and is reused across multiplications and across BFS iterations, exactly as
//! the paper's pre-allocated workspace does.

use crate::Scalar;

/// A reusable sparse accumulator over a dense index space of size `m`.
#[derive(Debug, Clone)]
pub struct Spa<T> {
    values: Vec<Option<T>>,
    stamp: Vec<u64>,
    generation: u64,
    occupied: Vec<usize>,
}

impl<T: Scalar> Spa<T> {
    /// Allocates a SPA for index space `0..m`. This is the only `O(m)` cost;
    /// subsequent resets are `O(1)` plus the entries previously occupied.
    pub fn new(m: usize) -> Self {
        Spa {
            values: vec![None; m],
            stamp: vec![0; m],
            generation: 1,
            occupied: Vec::new(),
        }
    }

    /// Size of the underlying dense index space.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Number of currently occupied slots.
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// `true` when no slot is occupied in the current generation.
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Forgets all occupied entries in O(1) (plus clearing the occupied
    /// list), without touching the dense arrays.
    pub fn reset(&mut self) {
        self.generation += 1;
        self.occupied.clear();
    }

    /// Whether slot `i` holds a value in the current generation.
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        self.stamp[i] == self.generation
    }

    /// Current value of slot `i`, if occupied.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if self.is_set(i) {
            self.values[i].as_ref()
        } else {
            None
        }
    }

    /// Inserts `value` at slot `i` if unoccupied, otherwise combines the old
    /// and new values with `add`. Returns `true` when the slot was freshly
    /// occupied (i.e. `i` is a new unique index).
    #[inline]
    pub fn accumulate(&mut self, i: usize, value: T, add: impl FnOnce(T, T) -> T) -> bool {
        if self.is_set(i) {
            let old = self.values[i].take().expect("occupied slot holds a value");
            self.values[i] = Some(add(old, value));
            false
        } else {
            self.stamp[i] = self.generation;
            self.values[i] = Some(value);
            self.occupied.push(i);
            true
        }
    }

    /// Indices occupied in the current generation, in first-touch order.
    pub fn occupied(&self) -> &[usize] {
        &self.occupied
    }

    /// Drains the accumulator into `(index, value)` pairs in first-touch
    /// order and resets it.
    pub fn drain(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::with_capacity(self.occupied.len());
        for &i in &self.occupied {
            out.push((i, self.values[i].expect("occupied slot holds a value")));
        }
        self.reset();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_combines_duplicates() {
        let mut spa = Spa::new(10);
        assert!(spa.accumulate(3, 1.0, |a, b| a + b));
        assert!(!spa.accumulate(3, 2.5, |a, b| a + b));
        assert!(spa.accumulate(7, 4.0, |a, b| a + b));
        assert_eq!(spa.get(3).copied(), Some(3.5));
        assert_eq!(spa.get(7).copied(), Some(4.0));
        assert_eq!(spa.get(0), None);
        assert_eq!(spa.len(), 2);
        assert_eq!(spa.occupied(), &[3, 7]);
    }

    #[test]
    fn reset_is_logical_not_physical() {
        let mut spa = Spa::new(5);
        spa.accumulate(1, 10.0, |a, b| a + b);
        spa.reset();
        assert!(spa.is_empty());
        assert_eq!(spa.get(1), None);
        // Slot can be reused in the next generation.
        assert!(spa.accumulate(1, 2.0, |a, b| a + b));
        assert_eq!(spa.get(1).copied(), Some(2.0));
    }

    #[test]
    fn drain_returns_first_touch_order_and_resets() {
        let mut spa = Spa::new(8);
        spa.accumulate(5, 1.0, |a, b| a + b);
        spa.accumulate(2, 2.0, |a, b| a + b);
        spa.accumulate(5, 3.0, |a, b| a + b);
        let drained = spa.drain();
        assert_eq!(drained, vec![(5, 4.0), (2, 2.0)]);
        assert!(spa.is_empty());
        assert_eq!(spa.get(5), None);
    }

    #[test]
    fn many_generations_do_not_interfere() {
        let mut spa = Spa::new(4);
        for gen in 0..100u64 {
            spa.accumulate(gen as usize % 4, gen as f64, |_, b| b);
            assert_eq!(spa.len(), 1);
            spa.reset();
        }
        assert!(spa.is_empty());
    }

    #[test]
    fn min_reduction_works_through_closure() {
        let mut spa = Spa::new(3);
        spa.accumulate(0, 9usize, |a, b| a.min(b));
        spa.accumulate(0, 4usize, |a, b| a.min(b));
        spa.accumulate(0, 7usize, |a, b| a.min(b));
        assert_eq!(spa.get(0).copied(), Some(4));
    }
}
