//! Small deterministic fixture matrices used throughout the workspace's
//! tests, examples and documentation.
//!
//! The centerpiece is [`figure1_matrix`], the 8×8 example from Figure 1 of
//! the paper, which every SpMSpV implementation is tested against.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::spvec::SparseVec;

/// The 8×8 matrix of Figure 1 in the paper.
///
/// The lettered entries `a..t` of the figure are mapped to the numeric values
/// `1..20` (`a = 1`, `b = 2`, …). Columns 1, 4 and 6 (0-based) are the
/// columns selected by [`figure1_vector`], mirroring the figure where the
/// input vector has nonzeros at positions 2, 5 and 7 (1-based).
pub fn figure1_matrix() -> CscMatrix<f64> {
    let mut coo = CooMatrix::new(8, 8);
    let entries = [
        (0usize, 1usize, 'd'),
        (0, 2, 'e'),
        (0, 5, 's'),
        (1, 0, 'a'),
        (1, 3, 'l'),
        (1, 6, 'r'),
        (2, 2, 'p'),
        (3, 0, 'b'),
        (3, 2, 'f'),
        (3, 4, 'm'),
        (4, 2, 'q'),
        (4, 7, 't'),
        (5, 3, 'g'),
        (6, 1, 'h'),
        (6, 4, 'j'),
        (6, 5, 'n'),
        (7, 0, 'c'),
        (7, 3, 'k'),
        (7, 6, 'o'),
    ];
    for (r, c, ch) in entries {
        coo.push(r, c, (ch as u8 - b'a' + 1) as f64);
    }
    CscMatrix::from_coo(coo, |a, b| a + b)
}

/// A sparse input vector selecting columns 2, 5 and 7 (0-based) of
/// [`figure1_matrix`], with values 1.0 so the expected output is simply the
/// sum of the selected columns.
pub fn figure1_vector() -> SparseVec<f64> {
    SparseVec::from_pairs(8, vec![(2, 1.0), (5, 1.0), (7, 1.0)]).expect("valid fixture")
}

/// A tiny pentadiagonal-ish matrix handy for quick doctests: `n × n`, with
/// `A(i,i) = 2`, `A(i,i±1) = -1`.
pub fn tridiagonal(n: usize) -> CscMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0);
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
        }
    }
    CscMatrix::from_coo(coo, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matrix_shape_and_nnz() {
        let a = figure1_matrix();
        assert_eq!((a.nrows(), a.ncols(), a.nnz()), (8, 8, 19));
        a.validate().unwrap();
    }

    #[test]
    fn figure1_vector_selects_three_columns() {
        let x = figure1_vector();
        assert_eq!(x.nnz(), 3);
        assert_eq!(x.indices(), &[2, 5, 7]);
    }

    #[test]
    fn tridiagonal_has_3n_minus_2_entries() {
        let a = tridiagonal(10);
        assert_eq!(a.nnz(), 28);
        assert_eq!(a.get(0, 0).copied(), Some(2.0));
        assert_eq!(a.get(0, 1).copied(), Some(-1.0));
        assert_eq!(a.get(0, 2), None);
    }
}
