//! Coordinate (triple) format — the construction and interchange format.
//!
//! Every generator and the Matrix Market reader produce a [`CooMatrix`];
//! the compressed formats ([`crate::CscMatrix`], [`crate::DcscMatrix`],
//! [`crate::CsrMatrix`]) are built from it.

use crate::error::SparseError;
use crate::Scalar;

/// A sparse matrix stored as a list of `(row, col, value)` triples.
///
/// Duplicates are allowed until [`CooMatrix::sum_duplicates`] (or a
/// conversion that calls it) collapses them. The triples are in arbitrary
/// order unless [`CooMatrix::sort_column_major`] has been called.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Creates an empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, rows: Vec::new(), cols: Vec::new(), values: Vec::new() }
    }

    /// Creates an empty matrix with room for `cap` triples.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Builds a matrix from parallel triple arrays, validating bounds.
    pub fn from_triples(
        nrows: usize,
        ncols: usize,
        rows: Vec<usize>,
        cols: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if rows.len() != cols.len() || rows.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "triple arrays have mismatched lengths: {} rows, {} cols, {} values",
                rows.len(),
                cols.len(),
                values.len()
            )));
        }
        for (&r, &c) in rows.iter().zip(cols.iter()) {
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds { row: r, col: c, nrows, ncols });
            }
        }
        Ok(CooMatrix { nrows, ncols, rows, cols, values })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triples (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Whether no triples are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends one entry. Panics in debug builds if out of bounds; use
    /// [`CooMatrix::try_push`] for checked insertion.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        debug_assert!(row < self.nrows && col < self.ncols, "({row},{col}) out of bounds");
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
    }

    /// Appends one entry, returning an error when it is out of bounds.
    pub fn try_push(&mut self, row: usize, col: usize, value: T) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.push(row, col, value);
        Ok(())
    }

    /// Iterates over `(row, col, value)` triples in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.values.iter())
            .map(|((&r, &c), v)| (r, c, v))
    }

    /// Borrow of the underlying triple arrays `(rows, cols, values)`.
    pub fn parts(&self) -> (&[usize], &[usize], &[T]) {
        (&self.rows, &self.cols, &self.values)
    }

    /// Sorts triples by `(col, row)`, the order required by CSC construction.
    pub fn sort_column_major(&mut self) {
        let mut perm: Vec<usize> = (0..self.nnz()).collect();
        perm.sort_unstable_by_key(|&k| (self.cols[k], self.rows[k]));
        self.apply_permutation(&perm);
    }

    /// Sorts triples by `(row, col)`, the order required by CSR construction.
    pub fn sort_row_major(&mut self) {
        let mut perm: Vec<usize> = (0..self.nnz()).collect();
        perm.sort_unstable_by_key(|&k| (self.rows[k], self.cols[k]));
        self.apply_permutation(&perm);
    }

    fn apply_permutation(&mut self, perm: &[usize]) {
        self.rows = perm.iter().map(|&k| self.rows[k]).collect();
        self.cols = perm.iter().map(|&k| self.cols[k]).collect();
        self.values = perm.iter().map(|&k| self.values[k]).collect();
    }

    /// Collapses duplicate `(row, col)` entries with the reducer `add`.
    ///
    /// After this call the triples are sorted column-major and unique.
    pub fn sum_duplicates(&mut self, add: impl Fn(T, T) -> T) {
        if self.is_empty() {
            return;
        }
        self.sort_column_major();
        let mut out_r = Vec::with_capacity(self.nnz());
        let mut out_c = Vec::with_capacity(self.nnz());
        let mut out_v: Vec<T> = Vec::with_capacity(self.nnz());
        for k in 0..self.nnz() {
            let (r, c, v) = (self.rows[k], self.cols[k], self.values[k]);
            if let (Some(&lr), Some(&lc)) = (out_r.last(), out_c.last()) {
                if lr == r && lc == c {
                    let last = out_v.last_mut().expect("values tracks rows");
                    *last = add(*last, v);
                    continue;
                }
            }
            out_r.push(r);
            out_c.push(c);
            out_v.push(v);
        }
        self.rows = out_r;
        self.cols = out_c;
        self.values = out_v;
    }

    /// Returns the transpose (rows and columns swapped), preserving values.
    pub fn transpose(&self) -> Self {
        CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            values: self.values.clone(),
        }
    }

    /// Adds the transpose of every entry, producing a structurally symmetric
    /// pattern. Diagonal entries are kept once. Useful for turning directed
    /// generator output into undirected adjacency matrices like the paper's
    /// test graphs.
    pub fn symmetrize(&mut self) {
        let n = self.nnz();
        for k in 0..n {
            let (r, c) = (self.rows[k], self.cols[k]);
            if r != c {
                self.rows.push(c);
                self.cols.push(r);
                self.values.push(self.values[k]);
            }
        }
    }

    /// Removes entries on the main diagonal.
    pub fn drop_diagonal(&mut self) {
        let mut keep = Vec::with_capacity(self.nnz());
        for k in 0..self.nnz() {
            keep.push(self.rows[k] != self.cols[k]);
        }
        let mut idx = 0;
        self.rows.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        idx = 0;
        self.cols.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        idx = 0;
        self.values.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Consumes the matrix and returns the triple arrays.
    pub fn into_parts(self) -> (Vec<usize>, Vec<usize>, Vec<T>) {
        (self.rows, self.cols, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix<f64> {
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 0, 1.0);
        m.push(2, 1, 2.0);
        m.push(1, 1, 3.0);
        m.push(0, 3, 4.0);
        m
    }

    #[test]
    fn push_and_iter_roundtrip() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        let triples: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(triples[0], (0, 0, 1.0));
        assert_eq!(triples[3], (0, 3, 4.0));
    }

    #[test]
    fn try_push_rejects_out_of_bounds() {
        let mut m = sample();
        assert!(m.try_push(3, 0, 1.0).is_err());
        assert!(m.try_push(0, 4, 1.0).is_err());
        assert!(m.try_push(2, 3, 1.0).is_ok());
    }

    #[test]
    fn from_triples_validates() {
        let err = CooMatrix::from_triples(2, 2, vec![0, 5], vec![0, 1], vec![1.0, 2.0]);
        assert!(err.is_err());
        let mismatch = CooMatrix::from_triples(2, 2, vec![0], vec![0, 1], vec![1.0, 2.0]);
        assert!(mismatch.is_err());
        let ok = CooMatrix::from_triples(2, 2, vec![0, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(ok.is_ok());
    }

    #[test]
    fn sort_column_major_orders_by_col_then_row() {
        let mut m = sample();
        m.sort_column_major();
        let triples: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(triples, vec![(0, 0, 1.0), (1, 1, 3.0), (2, 1, 2.0), (0, 3, 4.0)]);
    }

    #[test]
    fn sum_duplicates_collapses_and_adds() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, 2.5);
        m.push(1, 1, 3.0);
        m.push(0, 0, 0.5);
        m.sum_duplicates(|a, b| a + b);
        assert_eq!(m.nnz(), 2);
        let triples: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(triples, vec![(0, 0, 4.0), (1, 1, 3.0)]);
    }

    #[test]
    fn transpose_swaps_shape_and_indices() {
        let t = sample().transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        let triples: Vec<_> = t.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert!(triples.contains(&(3, 0, 4.0)));
        assert!(triples.contains(&(1, 2, 2.0)));
    }

    #[test]
    fn symmetrize_mirrors_off_diagonal_entries() {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 1, 1.0);
        m.push(2, 2, 5.0);
        m.symmetrize();
        assert_eq!(m.nnz(), 3); // (0,1), (2,2), (1,0)
        let triples: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert!(triples.contains(&(1, 0, 1.0)));
    }

    #[test]
    fn drop_diagonal_removes_only_diagonal() {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(1, 2, 2.0);
        m.push(2, 2, 3.0);
        m.drop_diagonal();
        assert_eq!(m.nnz(), 1);
        let triples: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(triples, vec![(1, 2, 2.0)]);
    }

    #[test]
    fn empty_matrix_operations_are_noops() {
        let mut m: CooMatrix<f64> = CooMatrix::new(5, 5);
        m.sum_duplicates(|a, b| a + b);
        m.sort_column_major();
        m.drop_diagonal();
        assert_eq!(m.nnz(), 0);
        assert!(m.is_empty());
    }
}
