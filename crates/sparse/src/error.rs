//! Error type shared by the construction and I/O paths of the substrate.

use std::fmt;

/// Errors produced while constructing sparse objects or reading them from
/// disk.
#[derive(Debug)]
pub enum SparseError {
    /// An `(row, col)` entry was outside the declared matrix dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows of the target matrix.
        nrows: usize,
        /// Number of columns of the target matrix.
        ncols: usize,
    },
    /// A vector entry index was outside the declared dimension.
    VectorIndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Vector dimension.
        len: usize,
    },
    /// The dimensions of two operands do not agree.
    DimensionMismatch {
        /// Human-readable description of the two shapes.
        context: String,
    },
    /// Structural arrays are inconsistent (e.g. `colptr` not monotone).
    InvalidStructure(String),
    /// A Matrix Market (or other) file could not be parsed.
    Parse {
        /// 1-based line at which parsing failed (0 when unknown).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => {
                write!(f, "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix")
            }
            SparseError::VectorIndexOutOfBounds { index, len } => {
                write!(f, "index {index} is outside the length-{len} vector")
            }
            SparseError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            SparseError::InvalidStructure(msg) => write!(f, "invalid structure: {msg}"),
            SparseError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            SparseError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_index_out_of_bounds() {
        let e = SparseError::IndexOutOfBounds { row: 5, col: 7, nrows: 3, ncols: 4 };
        assert_eq!(e.to_string(), "entry (5, 7) is outside the 3x4 matrix");
    }

    #[test]
    fn display_parse_with_and_without_line() {
        let with = SparseError::Parse { line: 12, message: "bad token".into() };
        assert!(with.to_string().contains("line 12"));
        let without = SparseError::Parse { line: 0, message: "empty file".into() };
        assert_eq!(without.to_string(), "parse error: empty file");
    }

    #[test]
    fn io_error_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e = SparseError::from(io);
        assert!(std::error::Error::source(&e).is_some());
    }
}
