//! Compressed Sparse Columns — the matrix format consumed by SpMSpV-bucket.
//!
//! CSC stores three arrays (`colptr`, `rowids`, `values`) exactly as
//! described in §II-C of the paper. Random access to the start of a column is
//! O(1), which is the property a vector-driven SpMSpV algorithm needs: only
//! the columns `A(:, j)` with `x(j) ≠ 0` are ever touched.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::Scalar;

/// A sparse matrix in Compressed Sparse Columns format.
///
/// Invariants (checked by [`CscMatrix::validate`] and by construction):
///
/// * `colptr.len() == ncols + 1`, `colptr[0] == 0`,
///   `colptr[ncols] == nnz`, and `colptr` is non-decreasing;
/// * `rowids.len() == values.len() == nnz`;
/// * every `rowids[k] < nrows`;
/// * row ids inside each column are sorted ascending and unique
///   (this implementation always keeps columns sorted, matching what
///   CombBLAS produces and what the sorted-output experiments assume).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowids: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Builds a CSC matrix from raw parts, validating every invariant.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowids: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        let m = CscMatrix { nrows, ncols, colptr, rowids, values };
        m.validate()?;
        Ok(m)
    }

    /// Builds a CSC matrix from triples. Duplicate entries are collapsed with
    /// the reducer `add` and columns are sorted by row id.
    pub fn from_coo(mut coo: CooMatrix<T>, add: impl Fn(T, T) -> T) -> Self {
        coo.sum_duplicates(add);
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let nnz = coo.nnz();
        let (rows, cols, vals) = coo.into_parts();

        let mut colptr = vec![0usize; ncols + 1];
        for &c in &cols {
            colptr[c + 1] += 1;
        }
        for j in 0..ncols {
            colptr[j + 1] += colptr[j];
        }
        // `sum_duplicates` left the triples sorted column-major, so a single
        // linear copy preserves sorted row ids within each column.
        let mut rowids = vec![0usize; nnz];
        let mut values = Vec::with_capacity(nnz);
        rowids.copy_from_slice(&rows);
        values.extend_from_slice(&vals);
        CscMatrix { nrows, ncols, colptr, rowids, values }
    }

    /// An `nrows × ncols` matrix with no stored entries.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowids: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The identity pattern: `I(i,i) = value` for square dimension `n`.
    pub fn identity(n: usize, value: T) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowids: (0..n).collect(),
            values: vec![value; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of columns that contain at least one entry (`nzc` in the
    /// paper). Matrix-driven algorithms pay `O(nzc)` per multiplication.
    pub fn nonempty_cols(&self) -> usize {
        (0..self.ncols).filter(|&j| self.colptr[j + 1] > self.colptr[j]).count()
    }

    /// Structural fingerprint: FNV-1a over dimensions, column pointers, and
    /// row ids. Two matrices with the same sparsity pattern (values ignored
    /// — the element type carries no byte representation hook) hash equal;
    /// any structural drift — a shard serving the wrong column slice, a
    /// stale reload after the matrix changed shape — flips the digest.
    /// Remote shard hosts advertise this at dial time so the router can
    /// reject a misconfigured peer before it pollutes a merge.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.nrows as u64);
        mix(self.ncols as u64);
        for &p in &self.colptr {
            mix(p as u64);
        }
        for &r in &self.rowids {
            mix(r as u64);
        }
        h
    }

    /// Borrow of the column pointer array (`ncols + 1` entries).
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Borrow of the row-id array (`nnz` entries).
    #[inline]
    pub fn rowids(&self) -> &[usize] {
        &self.rowids
    }

    /// Borrow of the value array (`nnz` entries).
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn column_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Row ids and values of column `j`, in ascending row order.
    #[inline]
    pub fn column(&self, j: usize) -> (&[usize], &[T]) {
        let lo = self.colptr[j];
        let hi = self.colptr[j + 1];
        (&self.rowids[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(i, j)` if stored.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        let (rows, vals) = self.column(j);
        rows.binary_search(&i).ok().map(|k| &vals[k])
    }

    /// Iterates over all stored entries as `(row, col, &value)` in
    /// column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            let (rows, vals) = self.column(j);
            rows.iter().zip(vals.iter()).map(move |(&i, v)| (i, j, v))
        })
    }

    /// Average number of entries per column (`d` in the paper's analysis).
    pub fn avg_column_degree(&self) -> f64 {
        if self.ncols == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.ncols as f64
        }
    }

    /// Maximum number of entries in any single column.
    pub fn max_column_degree(&self) -> usize {
        (0..self.ncols).map(|j| self.column_nnz(j)).max().unwrap_or(0)
    }

    /// Converts back to triples (column-major order).
    pub fn to_coo(&self) -> CooMatrix<T> {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (i, j, v) in self.iter() {
            coo.push(i, j, *v);
        }
        coo
    }

    /// Returns the transpose as a new CSC matrix.
    ///
    /// Implemented as a linear-time bucket scatter (Gustavson's
    /// "permuted transposition"), not via COO sorting.
    pub fn transpose(&self) -> CscMatrix<T> {
        let mut colptr = vec![0usize; self.nrows + 1];
        for &i in &self.rowids {
            colptr[i + 1] += 1;
        }
        for i in 0..self.nrows {
            colptr[i + 1] += colptr[i];
        }
        let mut rowids = vec![0usize; self.nnz()];
        let mut values: Vec<T> = Vec::with_capacity(self.nnz());
        // SAFETY-free approach: fill with placeholder copies of first value.
        if let Some(&first) = self.values.first() {
            values.resize(self.nnz(), first);
        }
        let mut cursor = colptr.clone();
        for j in 0..self.ncols {
            let (rows, vals) = self.column(j);
            for (&i, &v) in rows.iter().zip(vals.iter()) {
                let dst = cursor[i];
                rowids[dst] = j;
                values[dst] = v;
                cursor[i] += 1;
            }
        }
        CscMatrix { nrows: self.ncols, ncols: self.nrows, colptr, rowids, values }
    }

    /// Splits the matrix row-wise into `pieces` stacked submatrices of
    /// (roughly) equal row counts, as the CombBLAS / GraphMat baselines do
    /// ahead of time. Piece `p` covers rows `[offsets[p], offsets[p+1])` of
    /// the original matrix; returned row ids are re-based to the piece.
    pub fn row_split(&self, pieces: usize) -> Vec<CscMatrix<T>> {
        assert!(pieces > 0, "cannot split into zero pieces");
        let bounds: Vec<usize> = (0..=pieces).map(|p| p * self.nrows / pieces).collect();
        let mut out = Vec::with_capacity(pieces);
        for p in 0..pieces {
            let (lo, hi) = (bounds[p], bounds[p + 1]);
            let mut colptr = vec![0usize; self.ncols + 1];
            let mut rowids = Vec::new();
            let mut values = Vec::new();
            for j in 0..self.ncols {
                let (rows, vals) = self.column(j);
                let start = rows.partition_point(|&r| r < lo);
                let end = rows.partition_point(|&r| r < hi);
                for k in start..end {
                    rowids.push(rows[k] - lo);
                    values.push(vals[k]);
                }
                colptr[j + 1] = rowids.len();
            }
            out.push(CscMatrix { nrows: hi - lo, ncols: self.ncols, colptr, rowids, values });
        }
        out
    }

    /// Row offsets produced by [`CscMatrix::row_split`] for `pieces` pieces.
    pub fn row_split_offsets(&self, pieces: usize) -> Vec<usize> {
        (0..=pieces).map(|p| p * self.nrows / pieces).collect()
    }

    /// Extracts the column range `[range.start, range.end)` as a standalone
    /// `nrows × range.len()` matrix. Column `j` of the slice is column
    /// `range.start + j` of the original; the output dimension (rows) is
    /// untouched, which is what makes 1D column partitioning compose under a
    /// semiring: `A·x = ⊕ₚ Aₚ·xₚ` where each partial product is a
    /// full-height vector.
    ///
    /// In CSC this is a pure slice: `colptr[lo..=hi]` re-based by
    /// `colptr[lo]` plus the matching `rowids`/`values` windows — `O(ncols +
    /// nnz)` of the piece, no per-entry search.
    ///
    /// # Panics
    ///
    /// When the range is decreasing or extends past [`CscMatrix::ncols`].
    pub fn column_slice(&self, range: std::ops::Range<usize>) -> CscMatrix<T> {
        assert!(
            range.start <= range.end && range.end <= self.ncols,
            "column_slice range {range:?} out of bounds for {} columns",
            self.ncols
        );
        let base = self.colptr[range.start];
        let colptr: Vec<usize> =
            self.colptr[range.start..=range.end].iter().map(|&p| p - base).collect();
        let window = self.colptr[range.start]..self.colptr[range.end];
        CscMatrix {
            nrows: self.nrows,
            ncols: range.end - range.start,
            colptr,
            rowids: self.rowids[window.clone()].to_vec(),
            values: self.values[window].to_vec(),
        }
    }

    /// Splits the matrix column-wise at `bounds` (the CombBLAS-style 1D
    /// partition consumed by the `spmspv::shard` router): piece `p` is
    /// `self.column_slice(bounds[p]..bounds[p + 1])`. `bounds` must start at
    /// `0`, end at [`CscMatrix::ncols`], and be non-decreasing — exactly the
    /// shape a shard plan produces.
    ///
    /// # Panics
    ///
    /// When `bounds` is not a valid non-decreasing `0..=ncols` partition.
    pub fn column_split(&self, bounds: &[usize]) -> Vec<CscMatrix<T>> {
        assert!(
            bounds.first() == Some(&0) && bounds.last() == Some(&self.ncols),
            "column bounds must span 0..={} (got {bounds:?})",
            self.ncols
        );
        bounds.windows(2).map(|w| self.column_slice(w[0]..w[1])).collect()
    }

    /// Checks every structural invariant, returning a description of the
    /// first violation found.
    pub fn validate(&self) -> Result<(), SparseError> {
        if self.colptr.len() != self.ncols + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "colptr has {} entries, expected ncols + 1 = {}",
                self.colptr.len(),
                self.ncols + 1
            )));
        }
        if self.rowids.len() != self.values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "rowids ({}) and values ({}) differ in length",
                self.rowids.len(),
                self.values.len()
            )));
        }
        if *self.colptr.first().unwrap_or(&0) != 0 {
            return Err(SparseError::InvalidStructure("colptr[0] must be 0".into()));
        }
        if *self.colptr.last().unwrap_or(&0) != self.rowids.len() {
            return Err(SparseError::InvalidStructure("colptr[ncols] must equal nnz".into()));
        }
        for j in 0..self.ncols {
            if self.colptr[j] > self.colptr[j + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "colptr decreases at column {j}"
                )));
            }
            let col = &self.rowids[self.colptr[j]..self.colptr[j + 1]];
            for w in col.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "row ids in column {j} are not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = col.last() {
                if last >= self.nrows {
                    return Err(SparseError::InvalidStructure(format!(
                        "row id {last} in column {j} exceeds nrows {}",
                        self.nrows
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_matrix;

    #[test]
    fn from_coo_builds_valid_csc() {
        let a = figure1_matrix();
        assert_eq!(a.nrows(), 8);
        assert_eq!(a.ncols(), 8);
        assert_eq!(a.nnz(), 19);
        a.validate().expect("figure-1 matrix is structurally valid");
    }

    #[test]
    fn fingerprint_tracks_structure_not_values() {
        let a = figure1_matrix();
        assert_eq!(a.fingerprint(), figure1_matrix().fingerprint());
        // A different column slice of the same matrix is a different shape.
        let left = a.column_slice(0..4);
        let right = a.column_slice(4..8);
        assert_ne!(left.fingerprint(), right.fingerprint());
        assert_ne!(left.fingerprint(), a.fingerprint());
        // Equal-shaped empty slices agree regardless of provenance.
        let e1 = a.column_slice(0..0);
        let e2 = CscMatrix::<f64>::from_parts(8, 0, vec![0], vec![], vec![])
            .expect("empty matrix is valid");
        assert_eq!(e1.fingerprint(), e2.fingerprint());
    }

    #[test]
    fn column_access_returns_sorted_rows() {
        let a = figure1_matrix();
        let (rows, _vals) = a.column(2);
        assert_eq!(rows, &[0, 2, 3, 4]);
        assert_eq!(a.column_nnz(2), 4);
        assert_eq!(a.column_nnz(7), 1);
    }

    #[test]
    fn get_finds_stored_and_missing_entries() {
        let a = figure1_matrix();
        assert_eq!(a.get(2, 2).copied(), Some(16.0)); // 'p' is the 16th letter
        assert_eq!(a.get(5, 5), None);
    }

    #[test]
    fn duplicates_are_summed_during_construction() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 2.0);
        coo.push(0, 1, 3.0);
        let a = CscMatrix::from_coo(coo, |x, y| x + y);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1).copied(), Some(5.0));
    }

    #[test]
    fn identity_and_empty_constructors() {
        let i = CscMatrix::identity(4, 1.0);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.get(2, 2).copied(), Some(1.0));
        assert_eq!(i.get(2, 3), None);
        let e: CscMatrix<f64> = CscMatrix::empty(3, 5);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.nonempty_cols(), 0);
        e.validate().unwrap();
    }

    #[test]
    fn nonempty_cols_counts_nzc() {
        let a = figure1_matrix();
        assert_eq!(a.nonempty_cols(), 8);
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(3, 2, 1.0);
        let b = CscMatrix::from_coo(coo, |x, _| x);
        assert_eq!(b.nonempty_cols(), 2);
    }

    #[test]
    fn transpose_is_involutive_and_swaps_entries() {
        let a = figure1_matrix();
        let t = a.transpose();
        assert_eq!(t.nrows(), a.ncols());
        assert_eq!(t.get(2, 0).copied(), a.get(0, 2).copied());
        assert_eq!(t.get(1, 0).copied(), a.get(0, 1).copied());
        let tt = t.transpose();
        assert_eq!(tt, a);
        t.validate().unwrap();
    }

    #[test]
    fn row_split_partitions_all_entries() {
        let a = figure1_matrix();
        for pieces in [1, 2, 3, 4, 8] {
            let parts = a.row_split(pieces);
            assert_eq!(parts.len(), pieces);
            let total: usize = parts.iter().map(|p| p.nnz()).sum();
            assert_eq!(total, a.nnz(), "pieces must cover every entry");
            let offsets = a.row_split_offsets(pieces);
            // Every entry must appear in the right piece at the re-based row.
            for (p, part) in parts.iter().enumerate() {
                part.validate().unwrap();
                assert_eq!(part.nrows(), offsets[p + 1] - offsets[p]);
                for (i, j, v) in part.iter() {
                    assert_eq!(a.get(i + offsets[p], j).copied(), Some(*v));
                }
            }
        }
    }

    #[test]
    fn column_slice_rebases_pointers_and_keeps_rows() {
        let a = figure1_matrix();
        let s = a.column_slice(2..6);
        s.validate().unwrap();
        assert_eq!(s.nrows(), a.nrows());
        assert_eq!(s.ncols(), 4);
        for j in 0..4 {
            assert_eq!(s.column(j), a.column(2 + j), "slice column {j}");
        }
        // Degenerate slices stay valid.
        let empty = a.column_slice(3..3);
        empty.validate().unwrap();
        assert_eq!(empty.ncols(), 0);
        assert_eq!(empty.nnz(), 0);
        assert_eq!(a.column_slice(0..8), a);
    }

    #[test]
    fn column_split_partitions_all_entries() {
        let a = figure1_matrix();
        for bounds in [vec![0, 8], vec![0, 3, 8], vec![0, 2, 2, 5, 8]] {
            let parts = a.column_split(&bounds);
            assert_eq!(parts.len(), bounds.len() - 1);
            let total: usize = parts.iter().map(|p| p.nnz()).sum();
            assert_eq!(total, a.nnz(), "pieces must cover every entry");
            for (p, part) in parts.iter().enumerate() {
                part.validate().unwrap();
                assert_eq!(part.nrows(), a.nrows());
                for (i, j, v) in part.iter() {
                    assert_eq!(a.get(i, j + bounds[p]).copied(), Some(*v));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "column bounds")]
    fn column_split_rejects_partial_bounds() {
        let a = figure1_matrix();
        let _ = a.column_split(&[0, 4]);
    }

    #[test]
    fn validate_rejects_broken_structures() {
        // colptr wrong length
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // decreasing colptr
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).is_err());
        // row id out of bounds
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1, 1], vec![5], vec![1.0]).is_err());
        // unsorted rows in a column
        assert!(CscMatrix::from_parts(3, 1, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).is_err());
        // valid
        assert!(CscMatrix::from_parts(3, 1, vec![0, 2], vec![1, 2], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn degree_statistics() {
        let a = figure1_matrix();
        assert!((a.avg_column_degree() - 19.0 / 8.0).abs() < 1e-12);
        assert_eq!(a.max_column_degree(), 4);
    }

    #[test]
    fn to_coo_roundtrip() {
        let a = figure1_matrix();
        let back = CscMatrix::from_coo(a.to_coo(), |x, _| x);
        assert_eq!(back, a);
    }
}
