//! Double-Compressed Sparse Columns (Buluç & Gilbert, IPDPS 2008).
//!
//! DCSC removes the `O(n)` `colptr` array of CSC by storing pointers only for
//! the non-empty columns, plus the ids of those columns. This is the format
//! the CombBLAS and GraphMat baselines use after splitting the matrix
//! row-wise: each thread's piece is *hypersparse* (most columns empty), so
//! CSC would waste `O(n)` memory and `O(n)` iteration time per piece.
//!
//! An auxiliary index (`aux`) — a coarse bucketed lookup table over the
//! column ids — restores expected-constant-time random access to a column,
//! as described in §II-C of the paper.

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::Scalar;

/// A hypersparse matrix in Double-Compressed Sparse Columns format.
#[derive(Debug, Clone, PartialEq)]
pub struct DcscMatrix<T> {
    nrows: usize,
    ncols: usize,
    /// Ids of the non-empty columns, strictly increasing. Length `nzc`.
    jc: Vec<usize>,
    /// Column pointers into `rowids`/`values`. Length `nzc + 1`.
    cp: Vec<usize>,
    /// Row ids, sorted within each column. Length `nnz`.
    rowids: Vec<usize>,
    /// Values. Length `nnz`.
    values: Vec<T>,
    /// Auxiliary index: `aux[b]` is the position in `jc` of the first
    /// non-empty column with id `>= b * aux_stride`. Length `n/aux_stride+2`.
    aux: Vec<usize>,
    aux_stride: usize,
}

impl<T: Scalar> DcscMatrix<T> {
    /// Converts a CSC matrix to DCSC.
    pub fn from_csc(csc: &CscMatrix<T>) -> Self {
        let nrows = csc.nrows();
        let ncols = csc.ncols();
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut rowids = Vec::with_capacity(csc.nnz());
        let mut values = Vec::with_capacity(csc.nnz());
        for j in 0..ncols {
            let (rows, vals) = csc.column(j);
            if rows.is_empty() {
                continue;
            }
            jc.push(j);
            rowids.extend_from_slice(rows);
            values.extend_from_slice(vals);
            cp.push(rowids.len());
        }
        let mut m =
            DcscMatrix { nrows, ncols, jc, cp, rowids, values, aux: Vec::new(), aux_stride: 1 };
        m.rebuild_aux();
        m
    }

    /// Builds DCSC from raw arrays, validating the structure.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        jc: Vec<usize>,
        cp: Vec<usize>,
        rowids: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if cp.len() != jc.len() + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "cp has {} entries, expected nzc + 1 = {}",
                cp.len(),
                jc.len() + 1
            )));
        }
        if rowids.len() != values.len() {
            return Err(SparseError::InvalidStructure("rowids and values differ in length".into()));
        }
        if *cp.last().unwrap_or(&0) != rowids.len() {
            return Err(SparseError::InvalidStructure("cp[nzc] must equal nnz".into()));
        }
        for w in jc.windows(2) {
            if w[0] >= w[1] {
                return Err(SparseError::InvalidStructure("jc must be strictly increasing".into()));
            }
        }
        if let Some(&last) = jc.last() {
            if last >= ncols {
                return Err(SparseError::InvalidStructure(format!(
                    "column id {last} exceeds ncols {ncols}"
                )));
            }
        }
        for (k, w) in cp.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(SparseError::InvalidStructure(format!("cp decreases at position {k}")));
            }
            let col = &rowids[w[0]..w[1]];
            for pair in col.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "row ids not strictly increasing in stored column {k}"
                    )));
                }
            }
            if let Some(&r) = col.last() {
                if r >= nrows {
                    return Err(SparseError::InvalidStructure(format!(
                        "row id {r} exceeds nrows {nrows}"
                    )));
                }
            }
        }
        let mut m =
            DcscMatrix { nrows, ncols, jc, cp, rowids, values, aux: Vec::new(), aux_stride: 1 };
        m.rebuild_aux();
        Ok(m)
    }

    /// Rebuilds the auxiliary column lookup index. Called by constructors.
    fn rebuild_aux(&mut self) {
        // One aux slot per ~(ncols / max(nzc,1)) columns keeps the per-slot
        // scan length O(1) in expectation, the bound cited by the paper.
        let nzc = self.jc.len().max(1);
        self.aux_stride = (self.ncols / nzc).max(1);
        let slots = self.ncols / self.aux_stride + 2;
        let mut aux = vec![self.jc.len(); slots];
        let mut pos = 0usize;
        for (slot, aux_entry) in aux.iter_mut().enumerate() {
            let col_lo = slot * self.aux_stride;
            while pos < self.jc.len() && self.jc[pos] < col_lo {
                pos += 1;
            }
            *aux_entry = pos;
        }
        self.aux = aux;
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (of the logical matrix, not just the stored ones).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of non-empty columns (`nzc`).
    #[inline]
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    /// Ids of the non-empty columns, strictly increasing.
    #[inline]
    pub fn nonempty_column_ids(&self) -> &[usize] {
        &self.jc
    }

    /// Row ids and values of logical column `j`, or `None` when the column is
    /// empty. Uses the auxiliary index for expected-constant-time lookup.
    pub fn column(&self, j: usize) -> Option<(&[usize], &[T])> {
        let pos = self.find_column(j)?;
        let lo = self.cp[pos];
        let hi = self.cp[pos + 1];
        Some((&self.rowids[lo..hi], &self.values[lo..hi]))
    }

    /// Position of logical column `j` within the stored (non-empty) columns.
    fn find_column(&self, j: usize) -> Option<usize> {
        if j >= self.ncols || self.jc.is_empty() {
            return None;
        }
        let slot = j / self.aux_stride;
        let start = self.aux[slot];
        let end = self.aux[(slot + 1).min(self.aux.len() - 1)].max(start);
        // Scan the (expected O(1)-length) window; fall back to binary search
        // over the remainder for adversarial distributions.
        for (offset, &col) in self.jc[start..end].iter().enumerate() {
            if col == j {
                return Some(start + offset);
            }
            if col > j {
                return None;
            }
        }
        self.jc[end..].binary_search(&j).ok().map(|p| p + end)
    }

    /// Iterates `(stored-column-position, column-id, row ids, values)`.
    pub fn iter_columns(&self) -> impl Iterator<Item = (usize, &[usize], &[T])> + '_ {
        (0..self.jc.len()).map(move |k| {
            let lo = self.cp[k];
            let hi = self.cp[k + 1];
            (self.jc[k], &self.rowids[lo..hi], &self.values[lo..hi])
        })
    }

    /// Iterates all entries as `(row, col, &value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> + '_ {
        self.iter_columns()
            .flat_map(|(j, rows, vals)| rows.iter().zip(vals.iter()).map(move |(&i, v)| (i, j, v)))
    }

    /// Converts back to CSC (mainly for tests and round-trips).
    pub fn to_csc(&self) -> CscMatrix<T> {
        let mut coo = crate::coo::CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (i, j, v) in self.iter() {
            coo.push(i, j, *v);
        }
        CscMatrix::from_coo(coo, |a, _| a)
    }

    /// Splits the matrix row-wise into `pieces` DCSC submatrices, the layout
    /// used by the CombBLAS-style baselines. Row ids are re-based per piece.
    pub fn row_split(csc: &CscMatrix<T>, pieces: usize) -> Vec<DcscMatrix<T>> {
        csc.row_split(pieces).iter().map(DcscMatrix::from_csc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn hypersparse() -> CscMatrix<f64> {
        // 6x10 matrix with only columns 1, 4, 9 non-empty.
        let mut coo = CooMatrix::new(6, 10);
        coo.push(0, 1, 1.0);
        coo.push(5, 1, 2.0);
        coo.push(3, 4, 3.0);
        coo.push(2, 9, 4.0);
        coo.push(4, 9, 5.0);
        coo.push(1, 9, 6.0);
        CscMatrix::from_coo(coo, |a, b| a + b)
    }

    #[test]
    fn from_csc_compresses_empty_columns() {
        let d = DcscMatrix::from_csc(&hypersparse());
        assert_eq!(d.nzc(), 3);
        assert_eq!(d.nnz(), 6);
        assert_eq!(d.nonempty_column_ids(), &[1, 4, 9]);
    }

    #[test]
    fn column_lookup_hits_and_misses() {
        let d = DcscMatrix::from_csc(&hypersparse());
        let (rows, vals) = d.column(9).unwrap();
        assert_eq!(rows, &[1, 2, 4]);
        assert_eq!(vals, &[6.0, 4.0, 5.0]);
        assert!(d.column(0).is_none());
        assert!(d.column(5).is_none());
        assert!(d.column(100).is_none());
        let (rows1, _) = d.column(1).unwrap();
        assert_eq!(rows1, &[0, 5]);
    }

    #[test]
    fn roundtrip_through_csc() {
        let csc = hypersparse();
        let d = DcscMatrix::from_csc(&csc);
        assert_eq!(d.to_csc(), csc);
    }

    #[test]
    fn iter_visits_every_entry_in_column_major_order() {
        let d = DcscMatrix::from_csc(&hypersparse());
        let entries: Vec<_> = d.iter().map(|(i, j, &v)| (i, j, v)).collect();
        assert_eq!(entries.len(), 6);
        assert_eq!(entries[0], (0, 1, 1.0));
        assert_eq!(entries.last().copied(), Some((4, 9, 5.0)));
        // column-major: columns appear in increasing order
        let cols: Vec<_> = entries.iter().map(|&(_, j, _)| j).collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        assert_eq!(cols, sorted);
    }

    #[test]
    fn row_split_rebases_rows() {
        let csc = hypersparse();
        let pieces = DcscMatrix::row_split(&csc, 3);
        assert_eq!(pieces.len(), 3);
        let total: usize = pieces.iter().map(|p| p.nnz()).sum();
        assert_eq!(total, csc.nnz());
        // piece 0 covers rows 0..2, so it sees (0,1) and (1,9)
        assert_eq!(pieces[0].nnz(), 2);
        assert_eq!(pieces[0].column(1).unwrap().0, &[0]);
    }

    #[test]
    fn from_parts_validates() {
        // cp too short
        assert!(DcscMatrix::<f64>::from_parts(2, 4, vec![1, 2], vec![0, 1], vec![0], vec![1.0])
            .is_err());
        // jc not increasing
        assert!(DcscMatrix::from_parts(
            2,
            4,
            vec![2, 1],
            vec![0, 1, 2],
            vec![0, 0],
            vec![1.0, 2.0]
        )
        .is_err());
        // good
        assert!(DcscMatrix::from_parts(
            2,
            4,
            vec![1, 2],
            vec![0, 1, 2],
            vec![0, 1],
            vec![1.0, 2.0]
        )
        .is_ok());
    }

    #[test]
    fn empty_matrix_has_no_columns() {
        let csc: CscMatrix<f64> = CscMatrix::empty(4, 7);
        let d = DcscMatrix::from_csc(&csc);
        assert_eq!(d.nzc(), 0);
        assert!(d.column(3).is_none());
        assert_eq!(d.to_csc(), csc);
    }

    #[test]
    fn dense_column_pattern_still_works() {
        // All columns non-empty: DCSC degenerates to CSC-like behaviour.
        let csc = crate::fixtures::figure1_matrix();
        let d = DcscMatrix::from_csc(&csc);
        assert_eq!(d.nzc(), 8);
        for j in 0..8 {
            let (rows, vals) = d.column(j).unwrap();
            let (crows, cvals) = csc.column(j);
            assert_eq!(rows, crows);
            assert_eq!(vals, cvals);
        }
    }
}
