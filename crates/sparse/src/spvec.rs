//! Sparse vectors in list format — the vector format of vector-driven
//! SpMSpV algorithms.
//!
//! The "list" format of §II-C: a compact array of `(index, value)` pairs plus
//! the logical dimension. The list may be kept sorted by index or left
//! unsorted; both variants of SpMSpV-bucket are evaluated in the paper
//! (Figure 2), and the algorithm must return its output in the same
//! convention it received its input.

use crate::dense::DenseVec;
use crate::error::SparseError;
use crate::Scalar;

/// A sparse vector stored as parallel `indices`/`values` arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec<T> {
    len: usize,
    indices: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> SparseVec<T> {
    /// An empty sparse vector of logical dimension `len`.
    pub fn new(len: usize) -> Self {
        SparseVec { len, indices: Vec::new(), values: Vec::new() }
    }

    /// Builds a vector from `(index, value)` pairs, rejecting out-of-bounds
    /// or duplicate indices.
    pub fn from_pairs(len: usize, pairs: Vec<(usize, T)>) -> Result<Self, SparseError> {
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if i >= len {
                return Err(SparseError::VectorIndexOutOfBounds { index: i, len });
            }
            indices.push(i);
            values.push(v);
        }
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(SparseError::InvalidStructure("duplicate index in sparse vector".into()));
        }
        Ok(SparseVec { len, indices, values })
    }

    /// Builds a vector from raw parallel arrays without checking for
    /// duplicates (bounds are still validated). Used on hot paths where the
    /// caller constructs the arrays itself (e.g. the output step of SpMSpV).
    pub fn from_parts(
        len: usize,
        indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if indices.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "indices ({}) and values ({}) differ in length",
                indices.len(),
                values.len()
            )));
        }
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(SparseError::VectorIndexOutOfBounds { index: bad, len });
        }
        Ok(SparseVec { len, indices, values })
    }

    /// Builds a sparse vector from a dense slice, storing entries for which
    /// `keep` returns `true`.
    pub fn from_dense_filtered(dense: &[T], keep: impl Fn(&T) -> bool) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, v) in dense.iter().enumerate() {
            if keep(v) {
                indices.push(i);
                values.push(*v);
            }
        }
        SparseVec { len: dense.len(), indices, values }
    }

    /// Logical dimension `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector stores no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of stored entries (`nnz(x)`, the paper's `f`).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Borrow of the index array.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Borrow of the value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterates over `(index, &value)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.indices.iter().copied().zip(self.values.iter())
    }

    /// Appends an entry without checking for duplicates.
    pub fn push(&mut self, index: usize, value: T) {
        debug_assert!(index < self.len, "index {index} out of bounds for length {}", self.len);
        self.indices.push(index);
        self.values.push(value);
    }

    /// Whether the stored indices are sorted strictly ascending.
    pub fn is_sorted(&self) -> bool {
        self.indices.windows(2).all(|w| w[0] < w[1])
    }

    /// Sorts the entries by index (stable with respect to values).
    pub fn sort_by_index(&mut self) {
        if self.is_sorted() {
            return;
        }
        let mut perm: Vec<usize> = (0..self.nnz()).collect();
        perm.sort_unstable_by_key(|&k| self.indices[k]);
        self.indices = perm.iter().map(|&k| self.indices[k]).collect();
        self.values = perm.iter().map(|&k| self.values[k]).collect();
    }

    /// Returns a sorted copy, leaving `self` untouched.
    pub fn sorted(&self) -> Self {
        let mut c = self.clone();
        c.sort_by_index();
        c
    }

    /// Value at logical position `i`, if stored. O(log nnz) when sorted,
    /// O(nnz) otherwise.
    pub fn get(&self, i: usize) -> Option<&T> {
        if self.is_sorted() {
            self.indices.binary_search(&i).ok().map(|k| &self.values[k])
        } else {
            self.indices.iter().position(|&idx| idx == i).map(|k| &self.values[k])
        }
    }

    /// Scatters into a dense vector of length `len`, filling holes with
    /// `fill`.
    pub fn to_dense(&self, fill: T) -> DenseVec<T> {
        let mut data = vec![fill; self.len];
        for (i, v) in self.iter() {
            data[i] = *v;
        }
        DenseVec::from_vec(data)
    }

    /// Removes all entries but keeps the allocation, mirroring the paper's
    /// advice to reuse workspace across iterative algorithms such as BFS.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Keeps only the entries for which the predicate returns `true`.
    pub fn retain(&mut self, mut pred: impl FnMut(usize, &T) -> bool) {
        let mut write = 0usize;
        for read in 0..self.nnz() {
            if pred(self.indices[read], &self.values[read]) {
                self.indices[write] = self.indices[read];
                self.values[write] = self.values[read];
                write += 1;
            }
        }
        self.indices.truncate(write);
        self.values.truncate(write);
    }

    /// Consumes the vector, returning `(len, indices, values)`.
    pub fn into_parts(self) -> (usize, Vec<usize>, Vec<T>) {
        (self.len, self.indices, self.values)
    }

    /// Extracts the entries whose indices fall in `range`, re-based to the
    /// range start: an entry `(i, v)` with `range.start <= i < range.end`
    /// becomes `(i - range.start, v)` in a vector of logical dimension
    /// `range.len()`. Storage order is preserved, so a sorted input yields a
    /// sorted slice.
    ///
    /// This is the frontier-scatter primitive of 1D column-partitioned
    /// SpMSpV (CombBLAS-style): a shard owning columns `[lo, hi)` of the
    /// matrix receives exactly `x.slice_remap(lo..hi)` as its local input.
    ///
    /// # Panics
    ///
    /// When the range is decreasing or extends past [`SparseVec::len`].
    pub fn slice_remap(&self, range: std::ops::Range<usize>) -> SparseVec<T> {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice_remap range {range:?} out of bounds for length {}",
            self.len
        );
        let mut out = SparseVec::new(range.end - range.start);
        for (i, v) in self.iter() {
            if range.contains(&i) {
                out.push(i - range.start, *v);
            }
        }
        out
    }
}

impl<T: Scalar + PartialOrd> SparseVec<T> {
    /// Equality check that ignores storage order: both vectors are compared
    /// after sorting by index. Intended for tests comparing sorted and
    /// unsorted algorithm variants.
    pub fn same_entries(&self, other: &Self) -> bool {
        if self.len != other.len || self.nnz() != other.nnz() {
            return false;
        }
        let a = self.sorted();
        let b = other.sorted();
        a.indices == b.indices && a.values == b.values
    }
}

impl SparseVec<f64> {
    /// Like [`SparseVec::same_entries`] but comparing floating-point values
    /// with a relative tolerance.
    ///
    /// Parallel SpMSpV algorithms add the products that collide on one output
    /// row in a nondeterministic (or at least different) order, so two
    /// correct implementations agree only up to floating-point rounding; this
    /// is the comparison every cross-algorithm test uses.
    pub fn approx_same_entries(&self, other: &Self, rel_tol: f64) -> bool {
        if self.len != other.len || self.nnz() != other.nnz() {
            return false;
        }
        let a = self.sorted();
        let b = other.sorted();
        if a.indices != b.indices {
            return false;
        }
        a.values.iter().zip(b.values.iter()).all(|(&x, &y)| {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= rel_tol * scale
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_same_entries_tolerates_rounding() {
        let a = SparseVec::from_pairs(4, vec![(1, 0.1 + 0.2), (3, 1.0)]).unwrap();
        let b = SparseVec::from_pairs(4, vec![(3, 1.0), (1, 0.3)]).unwrap();
        assert!(a.approx_same_entries(&b, 1e-12));
        let c = SparseVec::from_pairs(4, vec![(3, 1.0), (1, 0.31)]).unwrap();
        assert!(!a.approx_same_entries(&c, 1e-12));
        let d = SparseVec::from_pairs(4, vec![(2, 0.3), (3, 1.0)]).unwrap();
        assert!(!a.approx_same_entries(&d, 1e-12));
    }

    #[test]
    fn from_pairs_validates_bounds_and_duplicates() {
        assert!(SparseVec::from_pairs(4, vec![(0, 1.0), (5, 2.0)]).is_err());
        assert!(SparseVec::from_pairs(4, vec![(1, 1.0), (1, 2.0)]).is_err());
        let v = SparseVec::from_pairs(4, vec![(3, 1.0), (1, 2.0)]).unwrap();
        assert_eq!(v.nnz(), 2);
        assert!(!v.is_sorted());
    }

    #[test]
    fn sort_and_get() {
        let mut v = SparseVec::from_pairs(10, vec![(7, 7.0), (2, 2.0), (5, 5.0)]).unwrap();
        assert_eq!(v.get(5).copied(), Some(5.0));
        v.sort_by_index();
        assert!(v.is_sorted());
        assert_eq!(v.indices(), &[2, 5, 7]);
        assert_eq!(v.values(), &[2.0, 5.0, 7.0]);
        assert_eq!(v.get(7).copied(), Some(7.0));
        assert_eq!(v.get(3), None);
    }

    #[test]
    fn to_dense_scatters_entries() {
        let v = SparseVec::from_pairs(5, vec![(0, 1.0), (4, 4.0)]).unwrap();
        let d = v.to_dense(0.0);
        assert_eq!(d.as_slice(), &[1.0, 0.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn from_dense_filtered_keeps_matching() {
        let dense = [0.0, 3.0, 0.0, -1.0];
        let v = SparseVec::from_dense_filtered(&dense, |&x| x != 0.0);
        assert_eq!(v.indices(), &[1, 3]);
        assert_eq!(v.values(), &[3.0, -1.0]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn same_entries_ignores_order() {
        let a = SparseVec::from_pairs(9, vec![(8, 1.0), (0, 2.0)]).unwrap();
        let b = SparseVec::from_pairs(9, vec![(0, 2.0), (8, 1.0)]).unwrap();
        let c = SparseVec::from_pairs(9, vec![(0, 2.0), (7, 1.0)]).unwrap();
        assert!(a.same_entries(&b));
        assert!(!a.same_entries(&c));
    }

    #[test]
    fn retain_and_clear() {
        let mut v = SparseVec::from_pairs(10, vec![(1, 1.0), (2, -2.0), (3, 3.0)]).unwrap();
        v.retain(|_, &val| val > 0.0);
        assert_eq!(v.indices(), &[1, 3]);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn from_parts_checks_lengths_and_bounds() {
        assert!(SparseVec::from_parts(3, vec![0, 1], vec![1.0]).is_err());
        assert!(SparseVec::from_parts(3, vec![0, 9], vec![1.0, 2.0]).is_err());
        assert!(SparseVec::from_parts(3, vec![0, 2], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn slice_remap_rebases_and_preserves_order() {
        let v = SparseVec::from_pairs(10, vec![(7, 7.0), (2, 2.0), (5, 5.0), (4, 4.0)]).unwrap();
        let s = v.slice_remap(4..8);
        assert_eq!(s.len(), 4);
        // Storage order preserved: 7, 5, 4 arrive in that order, re-based.
        assert_eq!(s.indices(), &[3, 1, 0]);
        assert_eq!(s.values(), &[7.0, 5.0, 4.0]);
        // A sorted input slices to a sorted output.
        let sorted = v.sorted().slice_remap(4..8);
        assert!(sorted.is_sorted());
        assert_eq!(sorted.indices(), &[0, 1, 3]);
        // Empty and full ranges.
        assert_eq!(v.slice_remap(0..0).len(), 0);
        assert_eq!(v.slice_remap(0..10).nnz(), v.nnz());
        assert!(v.slice_remap(8..10).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_remap_rejects_out_of_range() {
        let v = SparseVec::from_pairs(4, vec![(1, 1.0)]).unwrap();
        let _ = v.slice_remap(2..5);
    }

    #[test]
    fn sorted_returns_copy_without_mutating_original() {
        let v = SparseVec::from_pairs(6, vec![(5, 5.0), (0, 0.5)]).unwrap();
        let s = v.sorted();
        assert!(s.is_sorted());
        assert_eq!(v.indices(), &[5, 0]);
    }
}
