//! GraphBLAS-style semirings.
//!
//! The paper phrases SpMSpV as `y ← A ⊕.⊗ x` with an `ADD` and a `MULT`
//! operation (lines 7 and 18 of Algorithm 1). Keeping the pair of operations
//! abstract lets the very same bucket kernel compute:
//!
//! * numerical products (`PlusTimes` over `f64`),
//! * shortest-path relaxations (`MinPlus`),
//! * reachability / BFS frontiers (`BoolOrAnd`),
//! * BFS parent assignment (`Select2ndMin`, which propagates the vector
//!   value — the parent vertex id — and resolves collisions with `min`).
//!
//! A semiring here maps a matrix value of type `A` and a vector value of type
//! `X` into an output of type [`Semiring::Output`], then reduces collisions on
//! the same output row with [`Semiring::add`].

use crate::Scalar;

/// An `(add, multiply)` pair used by every SpMSpV kernel in this workspace.
///
/// Implementations must satisfy the usual semiring expectations that make
/// parallel merging order-insensitive:
///
/// * `add` is **associative and commutative** — bucket merging adds collided
///   entries in a nondeterministic order across threads;
/// * `zero()` is the identity of `add` (only used by dense reference code and
///   by the masked kernels; the sparse kernels never materialize zeros).
pub trait Semiring<A, X>: Send + Sync {
    /// Result type of `multiply` and element type of the output vector.
    type Output: Scalar;

    /// Additive identity.
    fn zero(&self) -> Self::Output;

    /// Combine a matrix entry with a vector entry ("scaling a column").
    fn multiply(&self, a: &A, x: &X) -> Self::Output;

    /// Reduce two partial results that landed on the same output row.
    fn add(&self, lhs: Self::Output, rhs: Self::Output) -> Self::Output;
}

/// The conventional arithmetic semiring `(+, ×)` over a numeric type.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlusTimes;

macro_rules! impl_plus_times {
    ($($t:ty),*) => {
        $(
            impl Semiring<$t, $t> for PlusTimes {
                type Output = $t;
                #[inline]
                fn zero(&self) -> $t { 0 as $t }
                #[inline]
                fn multiply(&self, a: &$t, x: &$t) -> $t { *a * *x }
                #[inline]
                fn add(&self, lhs: $t, rhs: $t) -> $t { lhs + rhs }
            }
        )*
    };
}

impl_plus_times!(f32, f64, i32, i64, u32, u64, usize);

/// The tropical semiring `(min, +)` used for single-source shortest paths.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MinPlus;

impl Semiring<f64, f64> for MinPlus {
    type Output = f64;
    #[inline]
    fn zero(&self) -> f64 {
        f64::INFINITY
    }
    #[inline]
    fn multiply(&self, a: &f64, x: &f64) -> f64 {
        *a + *x
    }
    #[inline]
    fn add(&self, lhs: f64, rhs: f64) -> f64 {
        lhs.min(rhs)
    }
}

/// The boolean semiring `(∨, ∧)` used for plain reachability BFS.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BoolOrAnd;

impl Semiring<bool, bool> for BoolOrAnd {
    type Output = bool;
    #[inline]
    fn zero(&self) -> bool {
        false
    }
    #[inline]
    fn multiply(&self, a: &bool, x: &bool) -> bool {
        *a && *x
    }
    #[inline]
    fn add(&self, lhs: bool, rhs: bool) -> bool {
        lhs || rhs
    }
}

/// The `(min, select2nd)` semiring used for parent-carrying BFS.
///
/// `multiply` ignores the matrix value and forwards the vector value (the id
/// of the frontier vertex discovering the row); `add` keeps the smallest
/// discovered parent so the result is deterministic regardless of thread
/// interleaving.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Select2ndMin;

impl<A: Scalar> Semiring<A, usize> for Select2ndMin {
    type Output = usize;
    #[inline]
    fn zero(&self) -> usize {
        usize::MAX
    }
    #[inline]
    fn multiply(&self, _a: &A, x: &usize) -> usize {
        *x
    }
    #[inline]
    fn add(&self, lhs: usize, rhs: usize) -> usize {
        lhs.min(rhs)
    }
}

/// The `(max, times)` semiring, occasionally useful for scaling problems and
/// exercised by the property tests as a non-standard reduction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaxTimes;

impl Semiring<f64, f64> for MaxTimes {
    type Output = f64;
    #[inline]
    fn zero(&self) -> f64 {
        f64::NEG_INFINITY
    }
    #[inline]
    fn multiply(&self, a: &f64, x: &f64) -> f64 {
        *a * *x
    }
    #[inline]
    fn add(&self, lhs: f64, rhs: f64) -> f64 {
        lhs.max(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_is_ordinary_arithmetic() {
        let s = PlusTimes;
        assert_eq!(Semiring::<f64, f64>::multiply(&s, &3.0, &4.0), 12.0);
        assert_eq!(Semiring::<f64, f64>::add(&s, 3.0, 4.0), 7.0);
        assert_eq!(Semiring::<f64, f64>::zero(&s), 0.0);
        assert_eq!(Semiring::<i64, i64>::multiply(&s, &-2, &6), -12);
    }

    #[test]
    fn min_plus_relaxes_paths() {
        let s = MinPlus;
        assert_eq!(s.multiply(&2.0, &3.0), 5.0);
        assert_eq!(s.add(5.0, 4.0), 4.0);
        assert_eq!(s.add(s.zero(), 4.0), 4.0);
    }

    #[test]
    fn bool_or_and_models_reachability() {
        let s = BoolOrAnd;
        assert!(s.multiply(&true, &true));
        assert!(!s.multiply(&true, &false));
        assert!(s.add(false, true));
        assert!(!s.add(false, false));
    }

    #[test]
    fn select2nd_min_keeps_smallest_parent() {
        let s = Select2ndMin;
        assert_eq!(Semiring::<f64, usize>::multiply(&s, &9.5, &7), 7);
        assert_eq!(Semiring::<f64, usize>::add(&s, 7, 3), 3);
        assert_eq!(Semiring::<f64, usize>::zero(&s), usize::MAX);
    }

    #[test]
    fn max_times_zero_is_identity() {
        let s = MaxTimes;
        assert_eq!(s.add(s.zero(), -3.5), -3.5);
        assert_eq!(s.multiply(&2.0, &-3.0), -6.0);
    }
}
