//! Sparse multi-vectors: `k` sparse vectors of one dimension stored as lanes
//! over a shared index pool.
//!
//! The SpMSpV-bucket kernel processes one sparse frontier per call, but its
//! motivating applications — multi-source BFS, betweenness-centrality-style
//! sweeps, batched personalized PageRank — naturally present *k* frontiers at
//! once. [`SparseVecBatch`] is the substrate for that workload class: lane
//! `l` is a logical [`SparseVec`], but all lanes share one `indices`/`values`
//! pool partitioned by `lane_ptr` (exactly the CSC `colptr` idea applied to a
//! bundle of vectors), so a batched kernel can traverse the whole batch
//! without chasing `k` separate allocations.
//!
//! [`SparseVecBatch::fuse_columns`] converts the per-lane layout into the
//! *fused* column-major layout batched SpMSpV consumes: the sorted union of
//! active indices, each carrying the `(lane, value)` pairs that activate it.
//! One pass over the matrix's columns then serves every lane — the
//! amortization that makes batching pay.

use crate::error::SparseError;
use crate::spvec::SparseVec;
use crate::Scalar;

/// `k` sparse vectors of one logical dimension, stored lane-major over a
/// shared index pool.
///
/// Invariants:
///
/// * `lane_ptr.len() == k + 1`, `lane_ptr[0] == 0`, non-decreasing, and
///   `lane_ptr[k] == indices.len() == values.len()`;
/// * every stored index is `< len`;
/// * indices within one lane are unique (sorted or not, matching
///   [`SparseVec`]'s convention).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVecBatch<T> {
    len: usize,
    lane_ptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> SparseVecBatch<T> {
    /// An empty batch: `k` lanes of dimension `len`, no stored entries.
    pub fn new(len: usize, k: usize) -> Self {
        SparseVecBatch { len, lane_ptr: vec![0; k + 1], indices: Vec::new(), values: Vec::new() }
    }

    /// Bundles `k` sparse vectors (all of the same dimension) into a batch,
    /// copying their entries into the shared pool in lane order.
    pub fn from_lanes(lanes: &[SparseVec<T>]) -> Result<Self, SparseError> {
        let len = lanes.first().map(|v| v.len()).unwrap_or(0);
        if let Some(bad) = lanes.iter().find(|v| v.len() != len) {
            return Err(SparseError::InvalidStructure(format!(
                "batch lanes disagree on dimension: {} vs {}",
                bad.len(),
                len
            )));
        }
        let total: usize = lanes.iter().map(|v| v.nnz()).sum();
        let mut lane_ptr = Vec::with_capacity(lanes.len() + 1);
        let mut indices = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        lane_ptr.push(0);
        for lane in lanes {
            indices.extend_from_slice(lane.indices());
            values.extend_from_slice(lane.values());
            lane_ptr.push(indices.len());
        }
        Ok(SparseVecBatch { len, lane_ptr, indices, values })
    }

    /// Builds a batch from raw parts, validating every invariant including
    /// per-lane index uniqueness.
    pub fn from_parts(
        len: usize,
        lane_ptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        let batch = Self::from_parts_trusted(len, lane_ptr, indices, values)?;
        for (l, w) in batch.lane_ptr.windows(2).enumerate() {
            let mut lane_indices = batch.indices[w[0]..w[1]].to_vec();
            lane_indices.sort_unstable();
            if lane_indices.windows(2).any(|p| p[0] == p[1]) {
                return Err(SparseError::InvalidStructure(format!(
                    "duplicate index in batch lane {l}"
                )));
            }
        }
        Ok(batch)
    }

    /// Like [`SparseVecBatch::from_parts`] but skipping the per-lane
    /// duplicate-index scan (structure and bounds are still validated).
    /// For hot paths whose construction guarantees unique indices — e.g.
    /// the output step of batched SpMSpV, where the SPA's generation check
    /// admits each `(row, lane)` at most once.
    pub fn from_parts_trusted(
        len: usize,
        lane_ptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if lane_ptr.is_empty() || lane_ptr[0] != 0 {
            return Err(SparseError::InvalidStructure("lane_ptr must start with 0".into()));
        }
        if lane_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidStructure("lane_ptr must be non-decreasing".into()));
        }
        if *lane_ptr.last().unwrap() != indices.len() || indices.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "lane_ptr end {} does not match pool sizes {}/{}",
                lane_ptr.last().unwrap(),
                indices.len(),
                values.len()
            )));
        }
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(SparseError::VectorIndexOutOfBounds { index: bad, len });
        }
        Ok(SparseVecBatch { len, lane_ptr, indices, values })
    }

    /// A single-lane batch wrapping one vector (`k == 1`).
    pub fn from_single(v: &SparseVec<T>) -> Self {
        Self::from_lanes(std::slice::from_ref(v)).expect("one lane is always consistent")
    }

    /// Logical dimension shared by all lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of lanes `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.lane_ptr.len() - 1
    }

    /// Total stored entries across all lanes.
    #[inline]
    pub fn total_nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored entries in lane `l`.
    #[inline]
    pub fn lane_nnz(&self, l: usize) -> usize {
        self.lane_ptr[l + 1] - self.lane_ptr[l]
    }

    /// `true` when no lane stores any entry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Borrow of lane `l` as `(indices, values)` slices.
    #[inline]
    pub fn lane(&self, l: usize) -> (&[usize], &[T]) {
        let r = self.lane_ptr[l]..self.lane_ptr[l + 1];
        (&self.indices[r.clone()], &self.values[r])
    }

    /// Copies lane `l` out into a standalone [`SparseVec`].
    pub fn lane_vec(&self, l: usize) -> SparseVec<T> {
        let (idx, val) = self.lane(l);
        SparseVec::from_parts(self.len, idx.to_vec(), val.to_vec())
            .expect("batch invariants imply lane validity")
    }

    /// Splits the batch back into `k` standalone vectors.
    pub fn to_lanes(&self) -> Vec<SparseVec<T>> {
        (0..self.k()).map(|l| self.lane_vec(l)).collect()
    }

    /// Whether every lane's indices are sorted strictly ascending.
    pub fn is_sorted(&self) -> bool {
        (0..self.k()).all(|l| self.lane(l).0.windows(2).all(|w| w[0] < w[1]))
    }

    /// Sorts each lane by index in place.
    pub fn sort_lanes(&mut self) {
        for l in 0..self.k() {
            let r = self.lane_ptr[l]..self.lane_ptr[l + 1];
            let idx = &self.indices[r.clone()];
            if idx.windows(2).all(|w| w[0] < w[1]) {
                continue;
            }
            let mut perm: Vec<usize> = (0..idx.len()).collect();
            perm.sort_unstable_by_key(|&p| idx[p]);
            let sorted_idx: Vec<usize> = perm.iter().map(|&p| idx[p]).collect();
            let sorted_val: Vec<T> = perm.iter().map(|&p| self.values[r.start + p]).collect();
            self.indices[r.clone()].copy_from_slice(&sorted_idx);
            self.values[r].copy_from_slice(&sorted_val);
        }
    }

    /// Lane-wise [`SparseVec::slice_remap`]: every lane keeps only its
    /// entries with indices in `range`, re-based to the range start, and the
    /// batch's logical dimension becomes `range.len()`. The lane count is
    /// preserved (lanes that lose all entries stay as empty lanes), so a
    /// column-partitioned shard sees the same batch width as the router.
    ///
    /// # Panics
    ///
    /// When the range is decreasing or extends past [`SparseVecBatch::len`].
    pub fn slice_remap(&self, range: std::ops::Range<usize>) -> SparseVecBatch<T> {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice_remap range {range:?} out of bounds for length {}",
            self.len
        );
        let mut lane_ptr = Vec::with_capacity(self.k() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        lane_ptr.push(0);
        for l in 0..self.k() {
            let (idx, val) = self.lane(l);
            for (&i, &v) in idx.iter().zip(val.iter()) {
                if range.contains(&i) {
                    indices.push(i - range.start);
                    values.push(v);
                }
            }
            lane_ptr.push(indices.len());
        }
        SparseVecBatch { len: range.end - range.start, lane_ptr, indices, values }
    }

    /// Fuses the lanes into the column-major layout batched SpMSpV consumes:
    /// the sorted union of active indices, each with its `(lane, value)`
    /// activations. Lane order within one column follows lane id, and each
    /// lane's entries appear in ascending index order — the property that
    /// makes a batched bucket kernel's per-lane accumulation order identical
    /// to the single-vector kernel's.
    ///
    /// When every lane is already sorted (the common case: BFS frontiers and
    /// kernel outputs are sorted under the default options), the fusion is a
    /// `O(nnz · log k)` k-way merge of the lanes; otherwise it falls back to
    /// sorting `(col, lane, value)` triples in `O(nnz · log nnz)`.
    pub fn fuse_columns(&self) -> FusedColumns<T> {
        if self.is_sorted() {
            self.fuse_columns_merge()
        } else {
            self.fuse_columns_sort()
        }
    }

    /// K-way merge fusion for sorted lanes: one cursor per lane, a min-heap
    /// keyed on `(col, lane)` pops the activations in exactly the order the
    /// sort-based fallback would produce them.
    fn fuse_columns_merge(&self) -> FusedColumns<T> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        debug_assert!(self.is_sorted());
        let k = self.k();
        let total = self.total_nnz();
        let mut cursor: Vec<usize> = self.lane_ptr[..k].to_vec();
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::with_capacity(k);
        for (l, &c) in cursor.iter().enumerate() {
            if c < self.lane_ptr[l + 1] {
                heap.push(Reverse((self.indices[c], l)));
            }
        }

        let mut cols = Vec::new();
        let mut offsets = vec![0usize];
        let mut lanes = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        while let Some(Reverse((j, l))) = heap.pop() {
            if cols.last() != Some(&j) {
                cols.push(j);
                offsets.push(lanes.len());
            }
            lanes.push(l as u32);
            values.push(self.values[cursor[l]]);
            *offsets.last_mut().unwrap() = lanes.len();
            cursor[l] += 1;
            if cursor[l] < self.lane_ptr[l + 1] {
                heap.push(Reverse((self.indices[cursor[l]], l)));
            }
        }
        FusedColumns { cols, offsets, lanes, values }
    }

    /// Sort-based fusion, the fallback for unsorted lanes.
    fn fuse_columns_sort(&self) -> FusedColumns<T> {
        let mut triples: Vec<(usize, u32, T)> = Vec::with_capacity(self.total_nnz());
        for l in 0..self.k() {
            let (idx, val) = self.lane(l);
            for (&j, &v) in idx.iter().zip(val.iter()) {
                triples.push((j, l as u32, v));
            }
        }
        // Stable by column: within a column, lanes stay in ascending lane
        // order because the pool above was walked lane-major.
        triples.sort_by_key(|&(j, _, _)| j);
        let mut cols = Vec::new();
        let mut offsets = vec![0usize];
        let mut lanes = Vec::with_capacity(triples.len());
        let mut values = Vec::with_capacity(triples.len());
        for (j, l, v) in triples {
            if cols.last() != Some(&j) {
                cols.push(j);
                offsets.push(lanes.len());
            }
            lanes.push(l);
            values.push(v);
            *offsets.last_mut().unwrap() = lanes.len();
        }
        FusedColumns { cols, offsets, lanes, values }
    }
}

impl<T: Scalar + PartialOrd> SparseVecBatch<T> {
    /// Lane-wise [`SparseVec::same_entries`]: equal dimensions, lane counts
    /// and per-lane entry sets (ignoring storage order).
    pub fn same_entries(&self, other: &Self) -> bool {
        self.len == other.len
            && self.k() == other.k()
            && (0..self.k()).all(|l| self.lane_vec(l).same_entries(&other.lane_vec(l)))
    }
}

impl SparseVecBatch<f64> {
    /// Lane-wise [`SparseVec::approx_same_entries`] with a relative
    /// tolerance, for comparing floating-point batches across kernels that
    /// reduce in different orders.
    pub fn approx_same_entries(&self, other: &Self, rel_tol: f64) -> bool {
        self.len == other.len
            && self.k() == other.k()
            && (0..self.k())
                .all(|l| self.lane_vec(l).approx_same_entries(&other.lane_vec(l), rel_tol))
    }
}

/// The fused (column-major) view of a [`SparseVecBatch`]: for every active
/// column of the union, the `(lane, value)` pairs that activate it.
///
/// Produced by [`SparseVecBatch::fuse_columns`]; consumed by the batched
/// bucket kernel, which walks `cols` once and scales each matrix column by
/// all of its activations in one traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedColumns<T> {
    cols: Vec<usize>,
    offsets: Vec<usize>,
    lanes: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> FusedColumns<T> {
    /// The sorted union of active column indices.
    #[inline]
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Number of distinct active columns.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Total `(column, lane)` activations (= total batch nnz).
    #[inline]
    pub fn total_activations(&self) -> usize {
        self.lanes.len()
    }

    /// The `(lane, value)` activations of the `c`-th active column (position
    /// in [`FusedColumns::cols`], not the column index itself).
    #[inline]
    pub fn activations(&self, c: usize) -> (&[u32], &[T]) {
        let r = self.offsets[c]..self.offsets[c + 1];
        (&self.lanes[r.clone()], &self.values[r])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_batch() -> SparseVecBatch<f64> {
        SparseVecBatch::from_lanes(&[
            SparseVec::from_pairs(6, vec![(4, 4.0), (1, 1.0)]).unwrap(),
            SparseVec::from_pairs(6, vec![]).unwrap(),
            SparseVec::from_pairs(6, vec![(1, 10.0), (5, 50.0), (3, 30.0)]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn from_lanes_roundtrips() {
        let b = demo_batch();
        assert_eq!(b.k(), 3);
        assert_eq!(b.len(), 6);
        assert_eq!(b.total_nnz(), 5);
        assert_eq!(b.lane_nnz(0), 2);
        assert_eq!(b.lane_nnz(1), 0);
        assert_eq!(b.lane_nnz(2), 3);
        let lanes = b.to_lanes();
        assert_eq!(lanes[0].indices(), &[4, 1]);
        assert_eq!(lanes[2].values(), &[10.0, 50.0, 30.0]);
    }

    #[test]
    fn from_lanes_rejects_mixed_dimensions() {
        let r = SparseVecBatch::from_lanes(&[SparseVec::<f64>::new(4), SparseVec::<f64>::new(5)]);
        assert!(r.is_err());
    }

    #[test]
    fn from_parts_validates() {
        assert!(SparseVecBatch::from_parts(4, vec![0, 1], vec![9], vec![1.0]).is_err());
        assert!(SparseVecBatch::from_parts(4, vec![0, 2], vec![0], vec![1.0]).is_err());
        assert!(SparseVecBatch::from_parts(4, vec![1, 1], vec![], Vec::<f64>::new()).is_err());
        assert!(SparseVecBatch::from_parts(4, vec![0, 1], vec![2], vec![1.0]).is_ok());
        // duplicate index within one lane is rejected...
        assert!(SparseVecBatch::from_parts(4, vec![0, 2], vec![3, 3], vec![1.0, 2.0]).is_err());
        // ...but the same index in different lanes is fine
        assert!(SparseVecBatch::from_parts(4, vec![0, 1, 2], vec![3, 3], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn fuse_columns_builds_sorted_union_with_lane_order() {
        let b = demo_batch();
        let fused = b.fuse_columns();
        assert_eq!(fused.cols(), &[1, 3, 4, 5]);
        assert_eq!(fused.total_activations(), 5);
        // column 1 is activated by lanes 0 and 2, in lane order
        let (lanes, vals) = fused.activations(0);
        assert_eq!(lanes, &[0, 2]);
        assert_eq!(vals, &[1.0, 10.0]);
        // column 3 only by lane 2
        assert_eq!(fused.activations(1).0, &[2]);
    }

    #[test]
    fn sort_lanes_orders_each_lane() {
        let mut b = demo_batch();
        assert!(!b.is_sorted());
        b.sort_lanes();
        assert!(b.is_sorted());
        assert_eq!(b.lane(0).0, &[1, 4]);
        assert_eq!(b.lane(0).1, &[1.0, 4.0]);
        assert_eq!(b.lane(2).0, &[1, 3, 5]);
    }

    #[test]
    fn single_lane_batch_matches_vector() {
        let v = SparseVec::from_pairs(9, vec![(2, 2.0), (7, 7.0)]).unwrap();
        let b = SparseVecBatch::from_single(&v);
        assert_eq!(b.k(), 1);
        assert_eq!(b.lane_vec(0), v);
    }

    #[test]
    fn empty_batch_fuses_to_nothing() {
        let b = SparseVecBatch::<f64>::new(10, 4);
        assert!(b.is_empty());
        let fused = b.fuse_columns();
        assert_eq!(fused.num_cols(), 0);
        assert_eq!(fused.total_activations(), 0);
    }

    #[test]
    fn merge_fusion_is_identical_to_sort_fusion() {
        // Pseudo-random sorted lanes (multiplicative hash) across several
        // shapes; the k-way merge must reproduce the sort fallback bit for
        // bit: same column union, same (lane, value) order within columns.
        for (n, k, per_lane) in [(40usize, 1usize, 7usize), (64, 3, 13), (100, 8, 25), (9, 5, 9)] {
            let lanes: Vec<SparseVec<f64>> = (0..k)
                .map(|l| {
                    let mut idx: Vec<usize> =
                        (0..per_lane).map(|e| (e * 2654435761 + l * 97) % n).collect();
                    idx.sort_unstable();
                    idx.dedup();
                    let pairs = idx.iter().map(|&j| (j, (j + 10 * l) as f64)).collect();
                    SparseVec::from_pairs(n, pairs).unwrap()
                })
                .collect();
            let b = SparseVecBatch::from_lanes(&lanes).unwrap();
            assert!(b.is_sorted());
            assert_eq!(b.fuse_columns_merge(), b.fuse_columns_sort(), "n={n} k={k}");
        }
    }

    #[test]
    fn unsorted_lanes_take_the_sort_fallback_and_agree() {
        let b = demo_batch(); // lane 0 stored descending: unsorted
        assert!(!b.is_sorted());
        let via_public = b.fuse_columns();
        assert_eq!(via_public, b.fuse_columns_sort());
        // A sorted copy of the same logical batch fuses to the same layout.
        let mut sorted = b.clone();
        sorted.sort_lanes();
        assert_eq!(sorted.fuse_columns_merge(), via_public);
    }

    #[test]
    fn slice_remap_keeps_lane_count_and_rebases() {
        let b = demo_batch();
        let s = b.slice_remap(1..5);
        assert_eq!(s.k(), 3, "lane count survives slicing");
        assert_eq!(s.len(), 4);
        assert_eq!(s.lane(0).0, &[3, 0]); // 4, 1 re-based by 1
        assert_eq!(s.lane_nnz(1), 0);
        assert_eq!(s.lane(2).0, &[0, 2]); // 1, 3 survive; 5 is cut
        assert_eq!(s.lane(2).1, &[10.0, 30.0]);
        // Lane-wise agreement with the vector primitive.
        for l in 0..b.k() {
            assert_eq!(s.lane_vec(l), b.lane_vec(l).slice_remap(1..5));
        }
        // Degenerate ranges.
        assert_eq!(b.slice_remap(0..0).k(), 3);
        assert_eq!(b.slice_remap(0..6), b);
    }

    #[test]
    fn same_entries_is_lane_wise() {
        let a = demo_batch();
        let mut b = demo_batch();
        b.sort_lanes();
        assert!(a.same_entries(&b));
        let c = SparseVecBatch::from_lanes(&[
            SparseVec::from_pairs(6, vec![(4, 4.0), (1, 1.0)]).unwrap(),
            SparseVec::from_pairs(6, vec![(0, 9.0)]).unwrap(),
            SparseVec::from_pairs(6, vec![(1, 10.0), (5, 50.0), (3, 30.0)]).unwrap(),
        ])
        .unwrap();
        assert!(!a.same_entries(&c));
    }
}
