//! Matrix Market I/O.
//!
//! The paper's datasets come from the University of Florida (SuiteSparse)
//! collection, distributed as Matrix Market `.mtx` files. This module reads
//! and writes the coordinate subset of the format (`matrix coordinate
//! real|integer|pattern general|symmetric`), which covers every matrix in
//! Table IV, so users with the original files can reproduce the experiments
//! on the real inputs.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::error::SparseError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Value field declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Symmetry declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a Matrix Market file from an arbitrary reader into a [`CooMatrix`].
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CooMatrix<f64>, SparseError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    // Header line.
    let header = loop {
        match lines.next() {
            Some(line) => {
                lineno += 1;
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => return Err(SparseError::Parse { line: 0, message: "empty file".into() }),
        }
    };
    let tokens: Vec<String> = header.split_whitespace().map(|t| t.to_lowercase()).collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse {
            line: lineno,
            message: format!("not a MatrixMarket matrix header: {header}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: lineno,
            message: "only coordinate (sparse) matrices are supported".into(),
        });
    }
    let field = match tokens[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                message: format!("unsupported field type '{other}'"),
            })
        }
    };
    let symmetry = match tokens[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                message: format!("unsupported symmetry '{other}'"),
            })
        }
    };

    // Size line (skipping comments).
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                lineno += 1;
                let line = line?;
                let trimmed = line.trim().to_string();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break trimmed;
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    message: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>().map_err(|_| SparseError::Parse {
                line: lineno,
                message: format!("invalid size token '{t}'"),
            })
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: lineno,
            message: "size line must contain nrows ncols nnz".into(),
        });
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(
        nrows,
        ncols,
        if symmetry == Symmetry::Symmetric { 2 * nnz } else { nnz },
    );
    let mut read_entries = 0usize;
    for line in lines {
        lineno += 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse_idx = |tok: Option<&str>| -> Result<usize, SparseError> {
            tok.ok_or_else(|| SparseError::Parse { line: lineno, message: "missing index".into() })?
                .parse::<usize>()
                .map_err(|_| SparseError::Parse { line: lineno, message: "invalid index".into() })
        };
        let i = parse_idx(it.next())?;
        let j = parse_idx(it.next())?;
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(SparseError::Parse {
                line: lineno,
                message: format!("entry ({i}, {j}) outside 1..{nrows} x 1..{ncols}"),
            });
        }
        let v = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    message: "missing value".into(),
                })?
                .parse::<f64>()
                .map_err(|_| SparseError::Parse {
                    line: lineno,
                    message: "invalid value".into(),
                })?,
        };
        coo.push(i - 1, j - 1, v);
        if symmetry == Symmetry::Symmetric && i != j {
            coo.push(j - 1, i - 1, v);
        }
        read_entries += 1;
    }
    if read_entries != nnz {
        return Err(SparseError::Parse {
            line: lineno,
            message: format!("expected {nnz} entries, found {read_entries}"),
        });
    }
    Ok(coo)
}

/// Reads a Matrix Market file from disk straight into CSC.
pub fn read_matrix_market_csc<P: AsRef<Path>>(path: P) -> Result<CscMatrix<f64>, SparseError> {
    let file = std::fs::File::open(path)?;
    let coo = read_matrix_market(file)?;
    Ok(CscMatrix::from_coo(coo, |a, b| a + b))
}

/// Writes a matrix in Matrix Market `coordinate real general` format.
pub fn write_matrix_market<W: Write>(mut w: W, a: &CscMatrix<f64>) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by sparse-substrate (SpMSpV-bucket reproduction)")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, j, v) in a.iter() {
        writeln!(w, "{} {} {}", i + 1, j + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_matrix;

    #[test]
    fn roundtrip_through_matrix_market_text() {
        let a = figure1_matrix();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let coo = read_matrix_market(&buf[..]).unwrap();
        let b = CscMatrix::from_coo(coo, |x, y| x + y);
        assert_eq!(a, b);
    }

    #[test]
    fn reads_pattern_and_symmetric_files() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % a comment\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        let a = CscMatrix::from_coo(coo, |x, y| x + y);
        assert_eq!(a.nnz(), 3); // (1,0), (0,1) mirrored, (2,2) diagonal kept once
        assert_eq!(a.get(1, 0).copied(), Some(1.0));
        assert_eq!(a.get(0, 1).copied(), Some(1.0));
        assert_eq!(a.get(2, 2).copied(), Some(1.0));
    }

    #[test]
    fn rejects_malformed_headers_and_entries() {
        assert!(read_matrix_market("".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket tensor coordinate real general\n1 1 0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
            .is_err());
        // out-of-range entry
        let bad = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5.0\n";
        assert!(read_matrix_market(bad.as_bytes()).is_err());
        // wrong entry count
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
    }

    #[test]
    fn integer_field_parses_as_f64() {
        let text = "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1 3\n2 2 -4\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        let a = CscMatrix::from_coo(coo, |x, y| x + y);
        assert_eq!(a.get(0, 0).copied(), Some(3.0));
        assert_eq!(a.get(1, 1).copied(), Some(-4.0));
    }

    #[test]
    fn file_roundtrip_via_tempdir() {
        let a = crate::fixtures::tridiagonal(20);
        let dir = std::env::temp_dir().join("spmspv_mmio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tri.mtx");
        let mut file = std::fs::File::create(&path).unwrap();
        write_matrix_market(&mut file, &a).unwrap();
        drop(file);
        let b = read_matrix_market_csc(&path).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&path);
    }
}
