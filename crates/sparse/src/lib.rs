//! # sparse-substrate
//!
//! Sparse matrix and sparse vector infrastructure used by the reproduction of
//! *"A Work-Efficient Parallel Sparse Matrix-Sparse Vector Multiplication
//! Algorithm"* (Azad & Buluç, IPDPS 2017).
//!
//! The paper's algorithm (SpMSpV-bucket) and all of its baselines operate on
//! column-oriented sparse matrix formats and list/bitvector sparse vector
//! formats. This crate provides those substrates from scratch:
//!
//! * [`CooMatrix`] — triples, the universal construction/interchange format;
//! * [`CscMatrix`] — Compressed Sparse Columns (what SpMSpV-bucket consumes);
//! * [`DcscMatrix`] — Double-Compressed Sparse Columns with an auxiliary
//!   column index (what the CombBLAS and GraphMat baselines consume);
//! * [`CsrMatrix`] — Compressed Sparse Rows (used for reference SpMV);
//! * [`SparseVec`] — `(index, value)` list format, sorted or unsorted;
//! * [`SparseVecBatch`] — `k` sparse vectors (lanes) over a shared index
//!   pool, the substrate of batched multi-source SpMSpV;
//! * [`BitVec`] — bitmap + rank structure, GraphMat's vector format — and
//!   [`MaskBits`], the mutable bitmap the masked SpMSpV kernels consult;
//! * [`Spa`] — the sparse accumulator with generation-based partial
//!   initialization (Gilbert, Moler & Schreiber) — and the three
//!   lane-aware [`BatchAccumulator`] backends the batched kernels merge
//!   through: dense index-major [`LaneSpa`], dense lane-major
//!   [`LaneMajorSpa`], and the open-addressing [`HashLaneSpa`] (selected by
//!   [`SpaBackend`]);
//! * [`semiring`] — GraphBLAS-style `(add, multiply)` abstractions so the
//!   same SpMSpV kernels drive numerical multiplication, BFS, and other
//!   graph algorithms;
//! * [`gen`] — synthetic matrix generators (Erdős–Rényi, R-MAT, meshes,
//!   random geometric graphs) standing in for the University of Florida
//!   collection used in the paper;
//! * [`mmio`] — Matrix Market I/O so the real datasets can be used when
//!   available.
//!
//! All formats are plain data structures with documented invariants; the
//! parallel algorithms live in the `spmspv` crate.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod batch;
pub mod bitvec;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dcsc;
pub mod dense;
pub mod error;
pub mod fixtures;
pub mod gen;
pub mod mmio;
pub mod ops;
pub mod permute;
pub mod semiring;
pub mod spa;
pub mod spvec;

pub use batch::{FusedColumns, SparseVecBatch};
pub use bitvec::{BitVec, MaskBits};
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dcsc::DcscMatrix;
pub use dense::DenseVec;
pub use error::SparseError;
pub use semiring::{BoolOrAnd, MinPlus, PlusTimes, Select2ndMin, Semiring};
pub use spa::{
    AccumulatorWindow, BatchAccumulator, HashLaneSpa, LaneMajorSpa, LaneSpa, Spa, SpaBackend,
};
pub use spvec::SparseVec;

/// Trait bound shared by every value stored in a sparse object.
///
/// Deliberately minimal: values must be cheaply copyable and shareable across
/// threads, and provide a `Default` placeholder so pre-allocated workspaces
/// (buckets, SPA, output buffers) can be created without knowing a semiring.
/// Arithmetic is supplied externally through a [`Semiring`], never assumed on
/// the element type itself, so graph algorithms can store parent ids, levels,
/// or booleans in the same containers that store floats.
pub trait Scalar: Copy + Send + Sync + PartialEq + Default + std::fmt::Debug + 'static {}

impl<T> Scalar for T where T: Copy + Send + Sync + PartialEq + Default + std::fmt::Debug + 'static {}
