//! GraphMat-style matrix-driven SpMSpV.
//!
//! GraphMat stores the matrix row-split in DCSC and the vector as a
//! bitvector. The algorithm is **matrix-driven**: every thread iterates over
//! *all* non-empty columns of its piece and asks, per column, whether the
//! corresponding input entry is set — an `O(nzc)` term per multiplication
//! that is independent of `nnz(x)`. That term is why GraphMat's runtime stays
//! flat as the vector gets sparser (Figure 3) and why it loses by orders of
//! magnitude on very sparse frontiers, while staying competitive on dense
//! ones.

use rayon::prelude::*;
use sparse_substrate::{CscMatrix, DcscMatrix, Scalar, Semiring, Spa, SparseVec};

use crate::algorithm::{SpMSpV, SpMSpVOptions};
use crate::executor::Executor;
use crate::masked::MaskView;

/// Matrix-driven SpMSpV with row-split DCSC pieces and a bitvector input.
pub struct GraphMatSpMSpV<'a, A, X, Y> {
    matrix: &'a CscMatrix<A>,
    pieces: Vec<DcscMatrix<A>>,
    offsets: Vec<usize>,
    spas: Vec<Spa<Y>>,
    /// Reusable bitmap over the input dimension (one bit per column).
    bitmap: Vec<u64>,
    /// Reusable dense value array over the input dimension.
    xvals: Vec<X>,
    executor: Executor,
    sorted_output: bool,
}

impl<'a, A: Scalar, X: Scalar, Y: Scalar> GraphMatSpMSpV<'a, A, X, Y> {
    /// Splits `matrix` row-wise and allocates the bitvector workspace.
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        let executor = options.build_executor();
        let t = executor.threads().max(1);
        let pieces = DcscMatrix::row_split(matrix, t);
        let offsets = matrix.row_split_offsets(t);
        let spas = pieces.iter().map(|p| Spa::new(p.nrows())).collect();
        let n = matrix.ncols();
        GraphMatSpMSpV {
            matrix,
            pieces,
            offsets,
            spas,
            bitmap: vec![0u64; n.div_ceil(64)],
            xvals: vec![X::default(); n],
            executor,
            sorted_output: options.sorted_output,
        }
    }
}

impl<'a, A, X, S> SpMSpV<A, X, S> for GraphMatSpMSpV<'a, A, X, S::Output>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "GraphMat"
    }

    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn multiply(&mut self, x: &SparseVec<X>, semiring: &S) -> SparseVec<S::Output> {
        self.multiply_masked(x, semiring, None)
    }

    fn multiply_masked(
        &mut self,
        x: &SparseVec<X>,
        semiring: &S,
        mask: Option<MaskView<'_>>,
    ) -> SparseVec<S::Output> {
        assert_eq!(x.len(), self.matrix.ncols(), "dimension mismatch");

        // Load the input into the (pre-allocated) bitvector: O(f).
        for (j, v) in x.iter() {
            self.bitmap[j / 64] |= 1u64 << (j % 64);
            self.xvals[j] = *v;
        }

        let bitmap = &self.bitmap;
        let xvals = &self.xvals;
        let offsets = &self.offsets;
        let pieces = &self.pieces;
        let sorted = self.sorted_output;
        let per_piece: Vec<Vec<(usize, S::Output)>> = self.executor.install(|| {
            pieces
                .par_iter()
                .zip(self.spas.par_iter_mut())
                .enumerate()
                .map(|(p, (piece, spa))| {
                    // Matrix-driven scan: every stored (non-empty) column of
                    // the piece is visited, regardless of nnz(x). The mask is
                    // checked against the global row id before the SPA.
                    let piece_base = offsets[p];
                    for (j, rows, vals) in piece.iter_columns() {
                        if (bitmap[j / 64] >> (j % 64)) & 1 == 0 {
                            continue;
                        }
                        let xv = &xvals[j];
                        for (&i, av) in rows.iter().zip(vals.iter()) {
                            if let Some(mask) = mask {
                                if !mask.keeps(i + piece_base) {
                                    continue;
                                }
                            }
                            let prod = semiring.multiply(av, xv);
                            spa.accumulate(i, prod, |a, b| semiring.add(a, b));
                        }
                    }
                    let mut pairs = spa.drain();
                    if sorted {
                        pairs.sort_unstable_by_key(|&(i, _)| i);
                    }
                    let base = offsets[p];
                    pairs.into_iter().map(|(i, v)| (i + base, v)).collect()
                })
                .collect()
        });

        // Clear only the bits we set: O(f), keeping the workspace reusable.
        for (j, _) in x.iter() {
            self.bitmap[j / 64] &= !(1u64 << (j % 64));
        }

        let mut y = SparseVec::new(self.matrix.nrows());
        for piece in per_piece {
            for (i, v) in piece {
                y.push(i, v);
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::{fixtures, PlusTimes};

    #[test]
    fn matches_reference_on_figure1() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let mut alg = GraphMatSpMSpV::new(&a, SpMSpVOptions::with_threads(3));
        let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
        assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
        assert!(y.is_sorted());
    }

    #[test]
    fn bitmap_is_cleared_between_calls() {
        let a = erdos_renyi(200, 5.0, 31);
        let mut alg = GraphMatSpMSpV::new(&a, SpMSpVOptions::with_threads(2));
        let x1 = random_sparse_vec(200, 50, 1);
        let x2 = random_sparse_vec(200, 3, 2);
        let _ = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x1, &PlusTimes);
        // If stale bits from x1 survived, the second product would include
        // columns not present in x2 and diverge from the reference.
        let y2 = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x2, &PlusTimes);
        assert!(y2.approx_same_entries(&spmspv_reference(&a, &x2, &PlusTimes), 1e-9));
    }

    #[test]
    fn dense_input_vector() {
        let a = erdos_renyi(150, 4.0, 77);
        let x = random_sparse_vec(150, 150, 4);
        let mut alg = GraphMatSpMSpV::new(&a, SpMSpVOptions::with_threads(4));
        let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
        assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
    }
}
