//! The SpMSpV algorithms the paper compares against (Table I).
//!
//! | name | class | matrix | vector | merging | parallelization |
//! |---|---|---|---|---|---|
//! | [`SequentialSpa`]  | vector-driven | CSC  | list      | SPA     | none (reference) |
//! | [`CombBlasSpa`]    | vector-driven | DCSC | list      | SPA     | row-split matrix, private SPA |
//! | [`CombBlasHeap`]   | vector-driven | DCSC | list      | heap    | row-split matrix, private heap |
//! | [`GraphMatSpMSpV`] | matrix-driven | DCSC | bitvector | SPA     | row-split matrix, private SPA |
//! | [`SortBased`]      | vector-driven | CSC  | list      | sorting | concatenate, sort and prune |
//!
//! Each reproduces the *algorithmic* behaviour the paper attributes to the
//! original system (work complexity, scan patterns, synchronization
//! strategy); none of them is a line-by-line port of CombBLAS or GraphMat.

mod combblas_heap;
mod combblas_spa;
mod graphmat;
mod sequential;
mod sort_based;

pub use combblas_heap::CombBlasHeap;
pub use combblas_spa::CombBlasSpa;
pub use graphmat::GraphMatSpMSpV;
pub use sequential::SequentialSpa;
pub use sort_based::SortBased;

#[cfg(test)]
mod conformance {
    //! Every baseline must agree with the definition-level reference on the
    //! same inputs the bucket algorithm is tested with.

    use super::*;
    use crate::algorithm::{SpMSpV, SpMSpVOptions};
    use crate::bucket::SpMSpVBucket;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec, rmat, RmatParams};
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::{fixtures, CscMatrix, PlusTimes, SparseVec};

    fn check_all(a: &CscMatrix<f64>, x: &SparseVec<f64>, threads: usize) {
        let expected = spmspv_reference(a, x, &PlusTimes);
        let opts = SpMSpVOptions::with_threads(threads);
        let mut algs: Vec<Box<dyn SpMSpV<f64, f64, PlusTimes>>> = vec![
            Box::new(SpMSpVBucket::new(a, opts.clone())),
            Box::new(SequentialSpa::new(a, opts.clone())),
            Box::new(CombBlasSpa::new(a, opts.clone())),
            Box::new(CombBlasHeap::new(a, opts.clone())),
            Box::new(GraphMatSpMSpV::new(a, opts.clone())),
            Box::new(SortBased::new(a, opts)),
        ];
        for alg in algs.iter_mut() {
            let y = alg.multiply(x, &PlusTimes);
            assert!(
                y.approx_same_entries(&expected, 1e-9),
                "{} diverges from the reference (threads={threads}, nnz(x)={})",
                alg.name(),
                x.nnz()
            );
        }
    }

    #[test]
    fn all_algorithms_agree_on_figure1() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        check_all(&a, &x, 2);
    }

    #[test]
    fn all_algorithms_agree_on_erdos_renyi() {
        let a = erdos_renyi(350, 6.0, 11);
        for f in [1usize, 10, 100, 350] {
            let x = random_sparse_vec(350, f, f as u64 + 1);
            check_all(&a, &x, 4);
        }
    }

    #[test]
    fn all_algorithms_agree_on_scale_free() {
        let a = rmat(9, 6, RmatParams::graph500(), 23);
        let x = random_sparse_vec(a.ncols(), 200, 99);
        for threads in [1usize, 3, 8] {
            check_all(&a, &x, threads);
        }
    }

    #[test]
    fn all_algorithms_handle_empty_vectors() {
        let a = erdos_renyi(100, 3.0, 1);
        let x = SparseVec::new(100);
        check_all(&a, &x, 4);
    }

    #[test]
    fn all_algorithms_handle_matrices_with_empty_columns() {
        // Hypersparse-ish matrix: many empty columns exercise the DCSC paths.
        let mut coo = sparse_substrate::CooMatrix::new(500, 500);
        for k in 0..50usize {
            coo.push((k * 7) % 500, (k * 13) % 500, 1.0 + k as f64);
        }
        let a = CscMatrix::from_coo(coo, |p, q| p + q);
        let x = random_sparse_vec(500, 80, 5);
        check_all(&a, &x, 4);
    }
}
