//! CombBLAS-heap: row-split, vector-driven algorithm with heap-based merging.
//!
//! Like [`super::CombBlasSpa`] the matrix is split row-wise into `t` DCSC
//! pieces, but instead of a sparse accumulator each piece merges the scaled
//! columns it selects with a k-way heap merge (a priority queue keyed on the
//! row index). The merge is `O(d·f·lg f)` — the `lg f` factor is what makes
//! the algorithm roughly 3.5× slower than the SPA-based competitors once the
//! vector gets dense (Figure 3) — but produces sorted output for free.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rayon::prelude::*;
use sparse_substrate::{CscMatrix, DcscMatrix, Scalar, Semiring, SparseVec};

use crate::algorithm::{SpMSpV, SpMSpVOptions};
use crate::executor::Executor;
use crate::masked::MaskView;

/// Row-split CombBLAS-style SpMSpV with per-thread heap merging.
pub struct CombBlasHeap<'a, A> {
    matrix: &'a CscMatrix<A>,
    pieces: Vec<DcscMatrix<A>>,
    offsets: Vec<usize>,
    executor: Executor,
}

impl<'a, A: Scalar> CombBlasHeap<'a, A> {
    /// Splits `matrix` row-wise into one DCSC piece per thread.
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        let executor = options.build_executor();
        let t = executor.threads().max(1);
        let pieces = DcscMatrix::row_split(matrix, t);
        let offsets = matrix.row_split_offsets(t);
        CombBlasHeap { matrix, pieces, offsets, executor }
    }
}

impl<'a, A, X, S> SpMSpV<A, X, S> for CombBlasHeap<'a, A>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "CombBLAS-heap"
    }

    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn multiply(&mut self, x: &SparseVec<X>, semiring: &S) -> SparseVec<S::Output> {
        self.multiply_masked(x, semiring, None)
    }

    fn multiply_masked(
        &mut self,
        x: &SparseVec<X>,
        semiring: &S,
        mask: Option<MaskView<'_>>,
    ) -> SparseVec<S::Output> {
        assert_eq!(x.len(), self.matrix.ncols(), "dimension mismatch");
        let offsets = &self.offsets;
        let pieces = &self.pieces;
        let per_piece: Vec<Vec<(usize, S::Output)>> = self.executor.install(|| {
            pieces
                .par_iter()
                .enumerate()
                .map(|(p, piece)| {
                    // The selected columns of this piece, each a list sorted
                    // by row id.
                    let mut columns: Vec<(&[usize], &[A], &X)> = Vec::new();
                    for (j, xv) in x.iter() {
                        if let Some((rows, vals)) = piece.column(j) {
                            if !rows.is_empty() {
                                columns.push((rows, vals, xv));
                            }
                        }
                    }
                    // K-way merge keyed by (row, column position) via a
                    // min-heap of per-column cursors.
                    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
                        BinaryHeap::with_capacity(columns.len());
                    let mut cursors = vec![0usize; columns.len()];
                    for (c, (rows, _, _)) in columns.iter().enumerate() {
                        heap.push(Reverse((rows[0], c)));
                    }
                    let base = offsets[p];
                    let mut out: Vec<(usize, S::Output)> = Vec::new();
                    while let Some(Reverse((row, c))) = heap.pop() {
                        let (rows, vals, xv) = columns[c];
                        let k = cursors[c];
                        // In-kernel mask: the cursor still advances past a
                        // dropped row, but no product is formed or merged.
                        let keeps = mask.map(|m| m.keeps(row + base)).unwrap_or(true);
                        if keeps {
                            let prod = semiring.multiply(&vals[k], xv);
                            match out.last_mut() {
                                Some(last) if last.0 == row + base => {
                                    last.1 = semiring.add(last.1, prod);
                                }
                                _ => out.push((row + base, prod)),
                            }
                        }
                        cursors[c] += 1;
                        if cursors[c] < rows.len() {
                            heap.push(Reverse((rows[cursors[c]], c)));
                        }
                    }
                    out
                })
                .collect()
        });

        let mut y = SparseVec::new(self.matrix.nrows());
        for piece in per_piece {
            for (i, v) in piece {
                y.push(i, v);
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::{fixtures, PlusTimes};

    #[test]
    fn matches_reference_and_is_sorted() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let mut alg = CombBlasHeap::new(&a, SpMSpVOptions::with_threads(2));
        let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
        assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
        assert!(y.is_sorted(), "heap merge emits rows in ascending order");
    }

    #[test]
    fn random_matrices_and_densities() {
        let a = erdos_renyi(300, 7.0, 29);
        for threads in [1usize, 4] {
            let mut alg = CombBlasHeap::new(&a, SpMSpVOptions::with_threads(threads));
            for f in [2usize, 30, 300] {
                let x = random_sparse_vec(300, f, f as u64 + 7);
                let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
                assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
            }
        }
    }

    #[test]
    fn duplicate_heavy_columns_are_combined() {
        // A matrix where every selected column hits the same rows, forcing
        // maximal combining inside the heap merge.
        let mut coo = sparse_substrate::CooMatrix::new(4, 6);
        for j in 0..6usize {
            coo.push(0, j, 1.0);
            coo.push(3, j, 2.0);
        }
        let a = CscMatrix::from_coo(coo, |p, q| p + q);
        let x = SparseVec::from_pairs(6, (0..6).map(|j| (j, 1.0)).collect()).unwrap();
        let mut alg = CombBlasHeap::new(&a, SpMSpVOptions::with_threads(2));
        let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
        assert_eq!(y.get(0).copied(), Some(6.0));
        assert_eq!(y.get(3).copied(), Some(12.0));
        assert_eq!(y.nnz(), 2);
    }
}
