//! Sequential vector-driven SPA algorithm (the optimal serial baseline).
//!
//! This is Gustavson's column-gather formulation restricted to the selected
//! columns: `O(d·f)` work, `O(m)` one-time SPA allocation with partial
//! (generation-based) initialization. It is both the ground-truth oracle the
//! parallel algorithms are verified against and the `t = 1` anchor for the
//! speedup numbers reported in the figures.

use sparse_substrate::{CscMatrix, Scalar, Semiring, Spa, SparseVec};

use crate::algorithm::{SpMSpV, SpMSpVOptions};
use crate::masked::MaskView;

/// Sequential SPA-based SpMSpV over a CSC matrix.
pub struct SequentialSpa<'a, A, Y> {
    matrix: &'a CscMatrix<A>,
    spa: Spa<Y>,
    sorted_output: bool,
}

impl<'a, A: Scalar, Y: Scalar> SequentialSpa<'a, A, Y> {
    /// Prepares the algorithm (allocates the SPA once).
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        SequentialSpa {
            matrix,
            spa: Spa::new(matrix.nrows()),
            sorted_output: options.sorted_output,
        }
    }
}

impl<'a, A, X, S> SpMSpV<A, X, S> for SequentialSpa<'a, A, S::Output>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "Sequential-SPA"
    }

    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn multiply(&mut self, x: &SparseVec<X>, semiring: &S) -> SparseVec<S::Output> {
        self.multiply_masked(x, semiring, None)
    }

    fn multiply_masked(
        &mut self,
        x: &SparseVec<X>,
        semiring: &S,
        mask: Option<MaskView<'_>>,
    ) -> SparseVec<S::Output> {
        assert_eq!(x.len(), self.matrix.ncols(), "dimension mismatch");
        for (j, xv) in x.iter() {
            let (rows, vals) = self.matrix.column(j);
            for (&i, av) in rows.iter().zip(vals.iter()) {
                // In-kernel mask: a dropped row never touches the SPA.
                if let Some(mask) = mask {
                    if !mask.keeps(i) {
                        continue;
                    }
                }
                let prod = semiring.multiply(av, xv);
                self.spa.accumulate(i, prod, |a, b| semiring.add(a, b));
            }
        }
        let mut pairs = self.spa.drain();
        if self.sorted_output {
            pairs.sort_unstable_by_key(|&(i, _)| i);
        }
        let mut y = SparseVec::new(self.matrix.nrows());
        for (i, v) in pairs {
            y.push(i, v);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::{fixtures, PlusTimes};

    #[test]
    fn matches_reference_and_sorts_output() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let mut alg = SequentialSpa::new(&a, SpMSpVOptions::default());
        let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
        assert!(y.is_sorted());
        assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
    }

    #[test]
    fn spa_is_reused_across_calls() {
        let a = fixtures::tridiagonal(40);
        let mut alg = SequentialSpa::new(&a, SpMSpVOptions::default());
        for start in 0..10usize {
            let x = SparseVec::from_pairs(40, vec![(start, 1.0)]).unwrap();
            let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
            assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
        }
    }

    #[test]
    fn unsorted_option_still_correct() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let mut alg = SequentialSpa::new(&a, SpMSpVOptions::default().sorted(false));
        let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
        assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
    }
}
