//! CombBLAS-SPA: row-split, vector-driven, private-SPA algorithm.
//!
//! The matrix is split row-wise into `t` pieces ahead of time, each stored in
//! DCSC (the pieces are hypersparse). Every thread multiplies its own
//! `m/t × n` piece with the **entire** input vector using a private SPA of
//! size `m/t`, then the per-piece results are concatenated.
//!
//! This is the strategy §II-F criticises: every thread scans all `f`
//! nonzeros of `x`, so total work is `O(t·f + d·f)` — not work-efficient once
//! `t > d` — although no synchronization is needed because each thread owns a
//! disjoint slice of `y`. Reproducing that inefficiency faithfully is the
//! point: it is what Figures 3–5 measure.

use rayon::prelude::*;
use sparse_substrate::{CscMatrix, DcscMatrix, Scalar, Semiring, Spa, SparseVec};

use crate::algorithm::{SpMSpV, SpMSpVOptions};
use crate::executor::Executor;
use crate::masked::MaskView;

/// Row-split CombBLAS-style SpMSpV with one private SPA per thread.
pub struct CombBlasSpa<'a, A, Y> {
    matrix: &'a CscMatrix<A>,
    pieces: Vec<DcscMatrix<A>>,
    /// Row offset of each piece within the full matrix.
    offsets: Vec<usize>,
    /// One private SPA per piece, allocated once.
    spas: Vec<Spa<Y>>,
    executor: Executor,
    sorted_output: bool,
}

impl<'a, A: Scalar, Y: Scalar> CombBlasSpa<'a, A, Y> {
    /// Splits `matrix` row-wise into one DCSC piece per thread.
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        let executor = options.build_executor();
        let t = executor.threads().max(1);
        let pieces = DcscMatrix::row_split(matrix, t);
        let offsets = matrix.row_split_offsets(t);
        let spas = pieces.iter().map(|p| Spa::new(p.nrows())).collect();
        CombBlasSpa {
            matrix,
            pieces,
            offsets,
            spas,
            executor,
            sorted_output: options.sorted_output,
        }
    }

    /// Number of row pieces (= threads the algorithm was prepared for).
    pub fn pieces(&self) -> usize {
        self.pieces.len()
    }
}

impl<'a, A, X, S> SpMSpV<A, X, S> for CombBlasSpa<'a, A, S::Output>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "CombBLAS-SPA"
    }

    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn multiply(&mut self, x: &SparseVec<X>, semiring: &S) -> SparseVec<S::Output> {
        self.multiply_masked(x, semiring, None)
    }

    fn multiply_masked(
        &mut self,
        x: &SparseVec<X>,
        semiring: &S,
        mask: Option<MaskView<'_>>,
    ) -> SparseVec<S::Output> {
        assert_eq!(x.len(), self.matrix.ncols(), "dimension mismatch");
        let sorted = self.sorted_output;
        let offsets = &self.offsets;
        let pieces = &self.pieces;
        let per_piece: Vec<Vec<(usize, S::Output)>> = self.executor.install(|| {
            pieces
                .par_iter()
                .zip(self.spas.par_iter_mut())
                .enumerate()
                .map(|(p, (piece, spa))| {
                    // Work inefficiency on purpose: the whole of x is scanned
                    // by every piece. The mask is checked against the global
                    // row id (piece rows are piece-local) before the SPA.
                    let piece_base = offsets[p];
                    for (j, xv) in x.iter() {
                        if let Some((rows, vals)) = piece.column(j) {
                            for (&i, av) in rows.iter().zip(vals.iter()) {
                                if let Some(mask) = mask {
                                    if !mask.keeps(i + piece_base) {
                                        continue;
                                    }
                                }
                                let prod = semiring.multiply(av, xv);
                                spa.accumulate(i, prod, |a, b| semiring.add(a, b));
                            }
                        }
                    }
                    let mut pairs = spa.drain();
                    if sorted {
                        pairs.sort_unstable_by_key(|&(i, _)| i);
                    }
                    let base = offsets[p];
                    pairs.into_iter().map(|(i, v)| (i + base, v)).collect()
                })
                .collect()
        });

        let mut y = SparseVec::new(self.matrix.nrows());
        for piece in per_piece {
            for (i, v) in piece {
                y.push(i, v);
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::{fixtures, PlusTimes};

    #[test]
    fn matches_reference_on_figure1() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let mut alg = CombBlasSpa::new(&a, SpMSpVOptions::with_threads(3));
        let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
        assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
        assert!(y.is_sorted(), "per-piece sort + in-order concat gives sorted output");
    }

    #[test]
    fn piece_count_tracks_thread_option() {
        let a = erdos_renyi(120, 4.0, 3);
        let alg: CombBlasSpa<'_, f64, f64> = CombBlasSpa::new(&a, SpMSpVOptions::with_threads(5));
        assert_eq!(alg.pieces(), 5);
    }

    #[test]
    fn reuse_across_many_vectors() {
        let a = erdos_renyi(250, 5.0, 17);
        let mut alg = CombBlasSpa::new(&a, SpMSpVOptions::with_threads(4));
        for f in [1usize, 17, 88, 250] {
            let x = random_sparse_vec(250, f, f as u64);
            let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
            assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
        }
    }

    #[test]
    fn more_threads_than_rows_still_works() {
        let a = fixtures::tridiagonal(3);
        let x = SparseVec::from_pairs(3, vec![(1, 2.0)]).unwrap();
        let mut alg = CombBlasSpa::new(&a, SpMSpVOptions::with_threads(8));
        let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
        assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
    }
}
