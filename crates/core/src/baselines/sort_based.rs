//! Sort-based SpMSpV (Yang, Wang & Owens — "concatenate, sort and prune").
//!
//! A CPU port of the GPU algorithm the paper lists in Table I: gather all
//! scaled entries of the selected columns into one array, sort the array by
//! row index, then reduce runs of equal rows. Work is `O(d·f·lg(d·f))`;
//! the algorithm is vector-driven and embarrassingly parallel (the gather
//! parallelizes over `x`'s nonzeros, the sort is a parallel merge sort), but
//! pays the `lg` factor the bucket algorithm avoids.

use rayon::prelude::*;
use sparse_substrate::{CscMatrix, Scalar, Semiring, SparseVec};

use crate::algorithm::{SpMSpV, SpMSpVOptions};
use crate::executor::{even_ranges, Executor};
use crate::masked::MaskView;

/// Sort-based vector-driven SpMSpV over a CSC matrix.
pub struct SortBased<'a, A> {
    matrix: &'a CscMatrix<A>,
    executor: Executor,
}

impl<'a, A: Scalar> SortBased<'a, A> {
    /// Prepares the algorithm (no per-matrix preprocessing is needed).
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        SortBased { matrix, executor: options.build_executor() }
    }
}

impl<'a, A, X, S> SpMSpV<A, X, S> for SortBased<'a, A>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "SpMSpV-sort"
    }

    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn multiply(&mut self, x: &SparseVec<X>, semiring: &S) -> SparseVec<S::Output> {
        self.multiply_masked(x, semiring, None)
    }

    fn multiply_masked(
        &mut self,
        x: &SparseVec<X>,
        semiring: &S,
        mask: Option<MaskView<'_>>,
    ) -> SparseVec<S::Output> {
        assert_eq!(x.len(), self.matrix.ncols(), "dimension mismatch");
        let matrix = self.matrix;
        if x.is_empty() {
            return SparseVec::new(matrix.nrows());
        }
        let t = self.executor.threads().min(x.nnz()).max(1);
        let chunks = even_ranges(x.nnz(), t);

        // Gather: each chunk of x produces its own (row, product) list.
        // The mask is applied here, before the sort — dropped rows are never
        // gathered, so they do not even inflate the sort.
        let mut gathered: Vec<(usize, S::Output)> = self.executor.install(|| {
            let mut parts: Vec<Vec<(usize, S::Output)>> = chunks
                .par_iter()
                .map(|chunk| {
                    let mut out = Vec::new();
                    for k in chunk.clone() {
                        let j = x.indices()[k];
                        let xv = &x.values()[k];
                        let (rows, vals) = matrix.column(j);
                        for (&i, av) in rows.iter().zip(vals.iter()) {
                            if let Some(mask) = mask {
                                if !mask.keeps(i) {
                                    continue;
                                }
                            }
                            out.push((i, semiring.multiply(av, xv)));
                        }
                    }
                    out
                })
                .collect();
            let total: usize = parts.iter().map(|p| p.len()).sum();
            let mut all = Vec::with_capacity(total);
            for p in parts.iter_mut() {
                all.append(p);
            }
            all
        });

        // Sort by row (parallel) and prune by reducing runs of equal rows.
        self.executor.install(|| gathered.par_sort_unstable_by_key(|&(i, _)| i));
        let mut y = SparseVec::new(matrix.nrows());
        let mut iter = gathered.into_iter();
        if let Some((first_i, first_v)) = iter.next() {
            let mut cur_i = first_i;
            let mut cur_v = first_v;
            for (i, v) in iter {
                if i == cur_i {
                    cur_v = semiring.add(cur_v, v);
                } else {
                    y.push(cur_i, cur_v);
                    cur_i = i;
                    cur_v = v;
                }
            }
            y.push(cur_i, cur_v);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::{fixtures, PlusTimes};

    #[test]
    fn matches_reference_and_is_sorted() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let mut alg = SortBased::new(&a, SpMSpVOptions::with_threads(2));
        let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
        assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
        assert!(y.is_sorted());
    }

    #[test]
    fn random_inputs_across_thread_counts() {
        let a = erdos_renyi(400, 6.0, 19);
        for threads in [1usize, 2, 8] {
            let mut alg = SortBased::new(&a, SpMSpVOptions::with_threads(threads));
            for f in [1usize, 40, 400] {
                let x = random_sparse_vec(400, f, f as u64 + 3);
                let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
                assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
            }
        }
    }

    #[test]
    fn empty_vector_short_circuits() {
        let a = fixtures::tridiagonal(10);
        let x = SparseVec::new(10);
        let mut alg = SortBased::new(&a, SpMSpVOptions::default());
        let y = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut alg, &x, &PlusTimes);
        assert!(y.is_empty());
    }
}
