//! Work accounting (Table II of the paper) and serving-engine telemetry.
//!
//! The paper's argument is not about constant factors but about *how much
//! work* each parallelization strategy performs relative to the lower bound
//! `Ω(d·f)` (the number of matrix entries that must be read). This module
//! computes, exactly and analytically from the operands, the work each
//! algorithm family performs, so the `table2_characteristics` experiment can
//! print measured work ratios instead of hand-waving.
//!
//! [`EngineStats`] is the serving-side analogue: it counts how well the
//! [`crate::engine::Engine`]'s coalescer is doing its one job — turning many
//! single-frontier requests into few wide fused multiplications.

use sparse_substrate::{CscMatrix, Scalar, SpaBackend, SparseVec};

use crate::algorithm::AlgorithmKind;
use crate::batch::{BatchAlgorithmKind, BatchRunInfo};
use crate::timing::FlushTimings;

/// Exact operation counts for one SpMSpV invocation by one algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkStats {
    /// Scalar multiplications performed (equals the lower bound for every
    /// vector-driven algorithm).
    pub multiplications: usize,
    /// Matrix columns inspected (selected columns for vector-driven
    /// algorithms, all non-empty columns per piece for matrix-driven ones).
    pub columns_inspected: usize,
    /// Input-vector entries read across all threads (the row-split
    /// algorithms read all of `x` once *per thread*).
    pub x_entries_read: usize,
    /// Sparse-accumulator slots initialized across all threads.
    pub spa_slots_initialized: usize,
    /// Number of threads the estimate was computed for.
    pub threads: usize,
}

impl WorkStats {
    /// The paper's lower bound for this operand pair: the number of matrix
    /// entries in the selected columns.
    pub fn lower_bound(a: &CscMatrix<impl Scalar>, x: &SparseVec<impl Scalar>) -> usize {
        sparse_substrate::ops::required_multiplications(a, x)
    }

    /// Total work performed (sum of all counted operations).
    pub fn total_work(&self) -> usize {
        self.multiplications
            + self.columns_inspected
            + self.x_entries_read
            + self.spa_slots_initialized
    }

    /// Ratio of total work to the lower bound; `1.0` means work-optimal up
    /// to constants. Returns infinity when the lower bound is zero but work
    /// was still performed.
    pub fn work_ratio(&self, lower_bound: usize) -> f64 {
        if lower_bound == 0 {
            if self.total_work() == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.total_work() as f64 / lower_bound as f64
        }
    }
}

/// Coalescing telemetry of one [`crate::engine::Engine`]: how many requests
/// arrived, how few fused multiplications they collapsed into, and where the
/// flush wall-clock went.
///
/// Snapshot via [`crate::engine::Engine::stats`]; all counters are
/// cumulative since engine creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests submitted (whether or not they ran).
    pub requests: usize,
    /// Requests retired before execution (ticket cancelled or session
    /// closed mid-flight).
    pub retired: usize,
    /// `flush` invocations that found at least one live request.
    pub flushes: usize,
    /// Fused batched multiplications executed across all flushes. Lower is
    /// better for a fixed request count: `requests − retired` lanes divided
    /// over `fused_batches` calls is the coalescing win.
    pub fused_batches: usize,
    /// Lanes executed across all fused batches (= requests that produced a
    /// result).
    pub lanes_executed: usize,
    /// Widest single flush observed (lanes).
    pub widest_flush: usize,
    /// Requests failed with
    /// [`EngineError::DeadlineExceeded`](crate::engine::EngineError) —
    /// expired before fusing or between execution and demux.
    pub timeouts: usize,
    /// Requests failed at submit time by
    /// [`OverloadPolicy::Reject`](crate::engine::OverloadPolicy).
    pub rejected: usize,
    /// Queued requests evicted by
    /// [`OverloadPolicy::ShedOldest`](crate::engine::OverloadPolicy).
    pub shed: usize,
    /// Kernel failures (caught panics or injected errors) the engine
    /// survived — one per failed execution attempt.
    pub panics_recovered: usize,
    /// Flush groups served by the one-shot oracle-kernel retry after their
    /// preferred kernel failed.
    pub degraded_flushes: usize,
    /// Accumulated wall-clock breakdown across every flush.
    pub flush_timings: FlushTimings,
    /// Which concrete `(kernel family, SPA backend)` each fused batch
    /// resolved to — the adaptive dispatch's audit trail.
    pub choices: ChoiceCounts,
}

/// Counts of the concrete `(kernel family, SPA backend)` configurations
/// batched multiplications resolved to — what [`BatchAlgorithmKind::Adaptive`]
/// (or a fixed configuration) actually executed.
///
/// Fixed-size and `Copy` so it can live inside the engine's snapshot-able
/// [`EngineStats`] and per-flush
/// [`FlushOutcome`](crate::engine::FlushOutcome).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChoiceCounts {
    /// `counts[kernel][backend]`, indexed by [`ChoiceCounts::KERNELS`] and
    /// [`ChoiceCounts::BACKENDS`] positions.
    counts: [[usize; 3]; 3],
}

impl ChoiceCounts {
    /// The concrete kernel families a run can resolve to, in index order
    /// (derived from [`BatchAlgorithmKind::fixed`], the single source).
    pub const KERNELS: [BatchAlgorithmKind; 3] = BatchAlgorithmKind::fixed();

    /// The concrete SPA backends a run can resolve to, in index order
    /// (derived from [`SpaBackend::concrete`], the single source).
    pub const BACKENDS: [SpaBackend; 3] = SpaBackend::concrete();

    /// Rebuilds a table from raw `counts[kernel][backend]` cells, indexed by
    /// [`ChoiceCounts::KERNELS`] / [`ChoiceCounts::BACKENDS`] positions — how
    /// the engine's registry-backed [`EngineStats`] view reconstitutes the
    /// audit trail from its per-cell atomic counters.
    pub const fn from_counts(counts: [[usize; 3]; 3]) -> ChoiceCounts {
        ChoiceCounts { counts }
    }

    fn kernel_index(kind: BatchAlgorithmKind) -> Option<usize> {
        Self::KERNELS.iter().position(|&k| k == kind)
    }

    fn backend_index(backend: SpaBackend) -> Option<usize> {
        Self::BACKENDS.iter().position(|&b| b == backend)
    }

    /// Records one resolved run. Unresolved markers
    /// ([`BatchAlgorithmKind::Adaptive`], [`SpaBackend::Auto`]) are ignored
    /// — kernels report what they resolved to, never the marker.
    pub fn record(&mut self, info: BatchRunInfo) {
        match (Self::kernel_index(info.kernel), Self::backend_index(info.backend)) {
            (Some(k), Some(b)) => self.counts[k][b] += 1,
            _ => debug_assert!(
                info.kernel == BatchAlgorithmKind::Adaptive || info.backend == SpaBackend::Auto,
                "unregistered concrete configuration {info}: grow ChoiceCounts' tables \
                 alongside BatchAlgorithmKind::fixed() / SpaBackend::concrete()"
            ),
        }
    }

    /// How many runs resolved to `(kernel, backend)`.
    pub fn count(&self, kernel: BatchAlgorithmKind, backend: SpaBackend) -> usize {
        match (Self::kernel_index(kernel), Self::backend_index(backend)) {
            (Some(k), Some(b)) => self.counts[k][b],
            _ => 0,
        }
    }

    /// Total recorded runs.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Adds another count table into this one (flush → engine aggregation).
    pub fn merge(&mut self, other: &ChoiceCounts) {
        for (row, other_row) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (slot, &v) in row.iter_mut().zip(other_row.iter()) {
                *slot += v;
            }
        }
    }

    /// Iterates the non-zero `(kernel, backend, count)` cells.
    pub fn iter(&self) -> impl Iterator<Item = (BatchAlgorithmKind, SpaBackend, usize)> + '_ {
        Self::KERNELS.iter().enumerate().flat_map(move |(ki, &kernel)| {
            Self::BACKENDS.iter().enumerate().filter_map(move |(bi, &backend)| {
                let n = self.counts[ki][bi];
                (n > 0).then_some((kernel, backend, n))
            })
        })
    }
}

impl std::fmt::Display for ChoiceCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.total() == 0 {
            return f.write_str("no runs recorded");
        }
        let mut first = true;
        for (kernel, backend, n) in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{}/{}×{}", kernel.label(), backend.label(), n)?;
        }
        Ok(())
    }
}

impl EngineStats {
    /// Folds one flush's [`FlushOutcome`](crate::engine::FlushOutcome) into
    /// the cumulative counters. Deliberately does **not** touch
    /// [`EngineStats::requests`] (counted at submit time, so snapshots never
    /// under-report) nor the submit-side [`EngineStats::rejected`] /
    /// [`EngineStats::shed`] beyond what the outcome carries (zero from a
    /// real flush; non-zero only in synthetic round-trip tests).
    pub fn record_flush(&mut self, outcome: &crate::engine::FlushOutcome) {
        self.retired += outcome.retired;
        if outcome.batches > 0 {
            self.flushes += 1;
        }
        self.fused_batches += outcome.batches;
        self.lanes_executed += outcome.lanes;
        self.widest_flush = self.widest_flush.max(outcome.lanes);
        self.timeouts += outcome.timeouts;
        self.rejected += outcome.rejected;
        self.shed += outcome.shed;
        self.panics_recovered += outcome.panics_recovered;
        self.degraded_flushes += outcome.degraded_flushes;
        self.flush_timings += outcome.timings;
        self.choices.merge(&outcome.choices);
    }

    /// Adds another engine's cumulative stats into this one — the
    /// aggregation a [`ShardedEngine`](crate::shard::ShardedEngine) uses to
    /// present its per-shard engines as one serving surface. Counters and
    /// timings sum; [`EngineStats::widest_flush`] takes the max (it is a
    /// high-water mark, not a count).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.requests += other.requests;
        self.retired += other.retired;
        self.flushes += other.flushes;
        self.fused_batches += other.fused_batches;
        self.lanes_executed += other.lanes_executed;
        self.widest_flush = self.widest_flush.max(other.widest_flush);
        self.timeouts += other.timeouts;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.panics_recovered += other.panics_recovered;
        self.degraded_flushes += other.degraded_flushes;
        self.flush_timings += other.flush_timings;
        self.choices.merge(&other.choices);
    }

    /// Requests that resolved as failures (any cause the engine counts).
    pub fn failures(&self) -> usize {
        self.timeouts + self.rejected + self.shed
    }

    /// Mean lanes per fused multiplication — the amortization factor the
    /// engine exists to maximize (1.0 means no coalescing happened).
    pub fn mean_lanes_per_batch(&self) -> f64 {
        if self.fused_batches == 0 {
            0.0
        } else {
            self.lanes_executed as f64 / self.fused_batches as f64
        }
    }

    /// Mean lanes per flush (a flush may execute several groups when
    /// requests are not mutually compatible).
    pub fn mean_lanes_per_flush(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.lanes_executed as f64 / self.flushes as f64
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} retired) → {} fused batches over {} flushes \
             ({:.1} lanes/batch, widest {}); {}",
            self.requests,
            self.retired,
            self.fused_batches,
            self.flushes,
            self.mean_lanes_per_batch(),
            self.widest_flush,
            self.flush_timings,
        )?;
        if self.failures() > 0 || self.panics_recovered > 0 {
            write!(
                f,
                "; failures: {} timed out, {} rejected, {} shed, \
                 {} kernel failures survived ({} degraded)",
                self.timeouts,
                self.rejected,
                self.shed,
                self.panics_recovered,
                self.degraded_flushes,
            )?;
        }
        if self.choices.total() > 0 {
            write!(f, "; chose {}", self.choices)?;
        }
        Ok(())
    }
}

/// Computes the exact work a given algorithm family performs for `A·x` with
/// `t` threads, following the cost model of §II-F and Table I.
pub fn analyze<A: Scalar, X: Scalar>(
    kind: AlgorithmKind,
    a: &CscMatrix<A>,
    x: &SparseVec<X>,
    t: usize,
) -> WorkStats {
    let t = t.max(1);
    let f = x.nnz();
    let df = WorkStats::lower_bound(a, x);
    // nnz(y): exact count of distinct rows touched by the selected columns.
    let mut touched = vec![false; a.nrows()];
    let mut nnz_y = 0usize;
    for (j, _) in x.iter() {
        for &i in a.column(j).0 {
            if !touched[i] {
                touched[i] = true;
                nnz_y += 1;
            }
        }
    }

    match kind {
        AlgorithmKind::Bucket => WorkStats {
            multiplications: df,
            columns_inspected: 2 * f, // estimate pass + bucketing pass
            x_entries_read: 2 * f,
            spa_slots_initialized: nnz_y,
            threads: t,
        },
        AlgorithmKind::Sequential => WorkStats {
            multiplications: df,
            columns_inspected: f,
            x_entries_read: f,
            spa_slots_initialized: nnz_y,
            threads: 1,
        },
        AlgorithmKind::CombBlasSpa => WorkStats {
            multiplications: df,
            columns_inspected: t * f, // every piece probes every selected column
            x_entries_read: t * f,    // every thread scans the whole vector
            spa_slots_initialized: nnz_y,
            threads: t,
        },
        AlgorithmKind::CombBlasHeap => WorkStats {
            multiplications: df,
            columns_inspected: t * f,
            x_entries_read: t * f,
            spa_slots_initialized: 0, // heap merge needs no SPA
            threads: t,
        },
        AlgorithmKind::GraphMat => {
            // Matrix-driven: every piece walks all of its non-empty columns.
            let nzc_total: usize = a.nonempty_cols();
            WorkStats {
                multiplications: df,
                columns_inspected: nzc_total, // across pieces, every stored column once
                x_entries_read: f,            // loading the bitvector
                spa_slots_initialized: nnz_y,
                threads: t,
            }
        }
        AlgorithmKind::SortBased => WorkStats {
            multiplications: df,
            columns_inspected: f,
            x_entries_read: f,
            // the sort-based algorithm materializes and sorts all df entries
            spa_slots_initialized: df,
            threads: t,
        },
        // The adaptive dispatcher delegates to the bucket kernel except for
        // tiny frontiers, and both delegates are work-efficient, so the
        // bucket cost model bounds it.
        AlgorithmKind::Adaptive => analyze(AlgorithmKind::Bucket, a, x, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::fixtures::{figure1_matrix, figure1_vector};
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};

    #[test]
    fn lower_bound_matches_required_multiplications() {
        let a = figure1_matrix();
        let x = figure1_vector();
        assert_eq!(WorkStats::lower_bound(&a, &x), 7);
    }

    #[test]
    fn bucket_work_is_independent_of_thread_count() {
        let a = erdos_renyi(500, 6.0, 3);
        let x = random_sparse_vec(500, 100, 9);
        let w1 = analyze(AlgorithmKind::Bucket, &a, &x, 1);
        let w16 = analyze(AlgorithmKind::Bucket, &a, &x, 16);
        assert_eq!(w1.total_work(), w16.total_work(), "bucket algorithm is work-efficient");
    }

    #[test]
    fn combblas_spa_work_grows_with_threads() {
        let a = erdos_renyi(500, 6.0, 3);
        let x = random_sparse_vec(500, 100, 9);
        let w1 = analyze(AlgorithmKind::CombBlasSpa, &a, &x, 1);
        let w16 = analyze(AlgorithmKind::CombBlasSpa, &a, &x, 16);
        assert!(w16.total_work() > w1.total_work(), "row-split work must grow with t");
        assert!(w16.x_entries_read == 16 * x.nnz());
    }

    #[test]
    fn graphmat_pays_nzc_even_for_tiny_vectors() {
        let a = erdos_renyi(2000, 4.0, 5);
        let x = random_sparse_vec(2000, 2, 3);
        let w = analyze(AlgorithmKind::GraphMat, &a, &x, 4);
        let lb = WorkStats::lower_bound(&a, &x);
        assert!(
            w.work_ratio(lb) > 10.0,
            "matrix-driven work ratio should explode for sparse vectors (got {})",
            w.work_ratio(lb)
        );
        let wb = analyze(AlgorithmKind::Bucket, &a, &x, 4);
        assert!(wb.work_ratio(lb) < 10.0);
    }

    #[test]
    fn flush_outcome_round_trips_into_engine_stats() {
        use crate::engine::FlushOutcome;
        use std::time::Duration;

        let mut choices = ChoiceCounts::default();
        choices.record(BatchRunInfo {
            kernel: BatchAlgorithmKind::Bucket,
            backend: SpaBackend::DenseIndexMajor,
        });
        let outcome = FlushOutcome {
            requests: 9,
            retired: 2,
            batches: 3,
            lanes: 7,
            timeouts: 1,
            rejected: 4,
            shed: 5,
            panics_recovered: 2,
            degraded_flushes: 1,
            timings: FlushTimings {
                assemble: Duration::from_millis(1),
                execute: Duration::from_millis(8),
                demux: Duration::from_millis(1),
                recover: Duration::from_millis(3),
            },
            choices,
        };
        let mut stats = EngineStats::default();
        stats.record_flush(&outcome);
        stats.record_flush(&outcome);
        // Every counter of the outcome must land in the stats, accumulated.
        assert_eq!(stats.retired, 4);
        assert_eq!(stats.flushes, 2);
        assert_eq!(stats.fused_batches, 6);
        assert_eq!(stats.lanes_executed, 14);
        assert_eq!(stats.widest_flush, 7);
        assert_eq!(stats.timeouts, 2);
        assert_eq!(stats.rejected, 8);
        assert_eq!(stats.shed, 10);
        assert_eq!(stats.panics_recovered, 4);
        assert_eq!(stats.degraded_flushes, 2);
        assert_eq!(stats.failures(), 20);
        assert_eq!(stats.flush_timings.execute, Duration::from_millis(16));
        assert_eq!(stats.flush_timings.recover, Duration::from_millis(6));
        assert_eq!(stats.choices.count(BatchAlgorithmKind::Bucket, SpaBackend::DenseIndexMajor), 2);
        // `requests` is submit-side: a flush must never touch it.
        assert_eq!(stats.requests, 0);
        let rendered = stats.to_string();
        assert!(rendered.contains("2 timed out"), "display misses failures: {rendered}");
        assert!(rendered.contains("10 shed"), "display misses shed: {rendered}");

        // A batch-less flush (all requests retired/expired) accumulates its
        // counters but is not counted as a serving flush.
        let mut quiet = EngineStats::default();
        quiet.record_flush(&FlushOutcome { requests: 2, retired: 2, ..FlushOutcome::default() });
        assert_eq!(quiet.flushes, 0);
        assert_eq!(quiet.retired, 2);
    }

    #[test]
    fn work_ratio_handles_empty_inputs() {
        let a = figure1_matrix();
        let x = SparseVec::<f64>::new(8);
        let w = analyze(AlgorithmKind::Bucket, &a, &x, 4);
        assert_eq!(w.multiplications, 0);
        assert!(w.work_ratio(0) >= 1.0);
    }
}
