//! [`ShardHost`]: the daemon side of the remote shard protocol.
//!
//! One host owns one shard's [`Engine`] behind a `TcpListener`. Routers
//! connect and stream `Frontier` frames; a `Flush` frame makes the host
//! flush its engine and reply — one `Partial`/`Error` per frontier, in
//! arrival order, followed by a `Done` summary frame. Deadlines arrive as
//! *relative* budgets and are re-anchored to a local `Instant` the moment
//! the frame is read, so elapsed transit time is clamped out of the budget
//! (a budget that is already zero resolves `DeadlineExceeded` without ever
//! touching the engine).
//!
//! The host also answers the discovery/health frames at any point in a
//! connection's life: `Hello` → `Welcome` (shard id, column range, output
//! height, matrix fingerprint — what the router verifies against its plan)
//! and `Ping` → `Pong` (nonce echoed). Clients that skip the handshake are
//! tolerated: the advertisement is for routers that want to verify, not a
//! gate.
//!
//! For the byzantine chaos harness, the reply path consults three
//! feature-gated failpoint sites (`net.host.byzantine.wrong_id.<shard>`,
//! `…bad_index.<shard>`, `…truncate.<shard>`) that turn this honest daemon
//! into a malicious variant answering wrong correlation ids, out-of-range
//! partial indices, or truncated frames — proving the router quarantines
//! such a peer instead of merging its lies.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sparse_substrate::{CscMatrix, Scalar, Semiring};

use crate::engine::{Engine, EngineConfig, EngineError, MxvRequest, Ticket};

use super::codec::{read_frame, write_frame, Frame, WireScalar, DEFAULT_MAX_FRAME, HEADER_LEN};

/// How long the accept loop sleeps between polls for new connections and
/// the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// A daemon serving one shard's engine over TCP. Build one with
/// [`ShardHost::bind`], then either [`ShardHost::run`] it on the current
/// thread or [`ShardHost::spawn`] it onto a background thread (returning a
/// [`ShardHostHandle`] for shutdown).
///
/// Every accepted connection gets its own worker thread; the engine is
/// shared, so frontiers from concurrent routers coalesce into the same
/// flushes exactly as concurrent sessions of a local engine do.
pub struct ShardHost<A, X, S>
where
    A: Scalar,
    X: WireScalar,
    S: Semiring<A, X> + Clone + 'static,
    S::Output: WireScalar,
{
    engine: Arc<Engine<'static, A, X, S>>,
    listener: TcpListener,
    info: HostInfo,
    max_frame: usize,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// What the host advertises in its `Welcome` frame — enough for a router
/// to verify the host against its `ShardPlan` before routing traffic.
#[derive(Debug, Clone)]
struct HostInfo {
    shard: usize,
    col_start: usize,
    col_end: usize,
    nrows: usize,
    fingerprint: u64,
}

impl<A, X, S> ShardHost<A, X, S>
where
    A: Scalar,
    X: WireScalar,
    S: Semiring<A, X> + Clone + 'static,
    S::Output: WireScalar,
{
    /// Binds a listener on `addr` (use port 0 for an ephemeral port) and
    /// loads `matrix` — this shard's column slice, full output height —
    /// into a fresh engine. `shard` is the global shard index echoed in
    /// every reply; `columns` is the *global* column range the slice was
    /// cut from (`plan.range(shard)`), advertised in the `Welcome` frame
    /// together with the slice's structural fingerprint so dialing routers
    /// can verify the host against their plan.
    ///
    /// Fails with `InvalidInput` when `matrix` is not `columns.len()` wide
    /// — the advertisement would be a lie.
    pub fn bind(
        addr: impl ToSocketAddrs,
        shard: usize,
        columns: std::ops::Range<usize>,
        matrix: CscMatrix<A>,
        semiring: S,
        config: EngineConfig,
    ) -> std::io::Result<Self> {
        if matrix.ncols() != columns.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "shard {shard}: matrix is {} columns wide but claims global range {}..{}",
                    matrix.ncols(),
                    columns.start,
                    columns.end
                ),
            ));
        }
        let info = HostInfo {
            shard,
            col_start: columns.start,
            col_end: columns.end,
            nrows: matrix.nrows(),
            fingerprint: matrix.fingerprint(),
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(ShardHost {
            engine: Arc::new(Engine::load_with(matrix, semiring, config)),
            listener,
            info,
            max_frame: DEFAULT_MAX_FRAME,
            shutdown: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
            workers: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Caps the accepted frame payload size (default
    /// [`DEFAULT_MAX_FRAME`]).
    pub fn max_frame(mut self, bytes: usize) -> Self {
        self.max_frame = bytes;
        self
    }

    /// The bound address (resolves the actual port after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// This host's shard index.
    pub fn shard(&self) -> usize {
        self.info.shard
    }

    /// The hosted engine (e.g. for reading its stats or registry from the
    /// host process).
    pub fn engine(&self) -> &Engine<'static, A, X, S> {
        &self.engine
    }

    /// Runs the accept loop on the current thread until shutdown is
    /// signalled (see [`ShardHost::spawn`] for the handle that signals
    /// it). Each connection is served by its own worker thread.
    pub fn run(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Blocking per-connection I/O; the nonblocking flag is
                    // a listener-level property on all mainstream
                    // platforms, but reset it explicitly to stay portable.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    if let Ok(clone) = stream.try_clone() {
                        crate::engine::lock(&self.conns).push(clone);
                    }
                    let engine = Arc::clone(&self.engine);
                    let info = self.info.clone();
                    let max_frame = self.max_frame;
                    let worker = std::thread::spawn(move || {
                        serve_connection(engine, info, stream, max_frame);
                    });
                    crate::engine::lock(&self.workers).push(worker);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => break,
            }
        }
    }

    /// Moves the host onto a background thread and returns the handle that
    /// can stop it.
    pub fn spawn(self) -> ShardHostHandle {
        let addr = self.local_addr().expect("listener has a local address");
        let shutdown = Arc::clone(&self.shutdown);
        let conns = Arc::clone(&self.conns);
        let workers = Arc::clone(&self.workers);
        let accept = std::thread::spawn(move || self.run());
        ShardHostHandle { addr, shutdown, conns, workers, accept }
    }
}

/// Handle to a [`ShardHost::spawn`]ed host: stop it gracefully with
/// [`ShardHostHandle::shutdown`] or abruptly with
/// [`ShardHostHandle::kill`] (the chaos-test path — connected routers see
/// broken pipes and fail exactly the tickets routed here).
pub struct ShardHostHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept: JoinHandle<()>,
}

impl ShardHostHandle {
    /// The address the host is serving on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn stop(self, join_workers: bool) {
        self.shutdown.store(true, Ordering::SeqCst);
        for stream in crate::engine::lock(&self.conns).drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = self.accept.join();
        if join_workers {
            let workers: Vec<JoinHandle<()>> =
                crate::engine::lock(&self.workers).drain(..).collect();
            for w in workers {
                let _ = w.join();
            }
        }
    }

    /// Stops accepting, severs every connection, and joins the worker
    /// threads. The listening port is released when this returns.
    pub fn shutdown(self) {
        self.stop(true);
    }

    /// Severs every connection *without* waiting for workers — the abrupt
    /// mid-load failure the chaos suite injects. Routers connected here
    /// observe broken pipes on their next exchange; a replacement host can
    /// rebind the same port immediately (the accept loop has exited).
    pub fn kill(self) {
        self.stop(false);
    }
}

/// One connection's state for a sub-request received since the last flush:
/// either a live engine ticket or an error resolved before submission (a
/// deadline budget that was already exhausted on arrival).
enum Inflight<Y> {
    Ticket(Ticket<Y>),
    Resolved(EngineError),
}

/// The failpoint sites that turn this host into the chaos harness's
/// malicious variant, formatted once per connection. Without the
/// `failpoints` feature `act` is an inlined no-op and nothing fires.
struct ByzantineSites {
    wrong_id: String,
    bad_index: String,
    truncate: String,
}

/// Offset of a `Partial` frame's first index byte from the frame start:
/// the header plus `request u64 | shard u32 | ytag u8 | len u64 | nnz u64`.
const PARTIAL_FIRST_INDEX: usize = HEADER_LEN + 8 + 4 + 1 + 8 + 8;

fn serve_connection<A, X, S>(
    engine: Arc<Engine<'static, A, X, S>>,
    info: HostInfo,
    mut stream: TcpStream,
    max_frame: usize,
) where
    A: Scalar,
    X: WireScalar,
    S: Semiring<A, X> + Clone + 'static,
    S::Output: WireScalar,
{
    let shard = info.shard;
    let sites = ByzantineSites {
        wrong_id: format!("net.host.byzantine.wrong_id.{shard}"),
        bad_index: format!("net.host.byzantine.bad_index.{shard}"),
        truncate: format!("net.host.byzantine.truncate.{shard}"),
    };
    let mut inflight: Vec<(u64, Inflight<S::Output>)> = Vec::new();
    // Clean EOF, stream failure, or a peer speaking garbage all end the
    // connection the same way.
    while let Ok(Some((frame, _))) = read_frame::<X, S::Output, _>(&mut stream, max_frame) {
        match frame {
            Frame::Frontier(w) => {
                // Re-anchor the relative budget to the local clock *now*:
                // transit time has already been spent from the budget, and
                // a budget of zero (expired in flight) resolves without
                // touching the engine — the router gets `DeadlineExceeded`,
                // never a hung ticket.
                let received = Instant::now();
                let entry = match w.deadline_micros {
                    Some(0) => Inflight::Resolved(EngineError::DeadlineExceeded),
                    budget => {
                        let request = MxvRequest {
                            frontier: w.slice,
                            mask: w.mask.map(|(bits, mode)| (Arc::new(bits), mode)),
                            algorithm: w.algorithm,
                            deadline: budget.map(|b| received + Duration::from_micros(b)),
                        };
                        Inflight::Ticket(engine.submit(request))
                    }
                };
                inflight.push((w.request, entry));
            }
            Frame::Flush => {
                let outcome = engine.flush();
                let mut buf = Vec::new();
                let mut ok = true;
                for (id, entry) in inflight.drain(..) {
                    let mut reply: Frame<X, S::Output> = match entry {
                        Inflight::Resolved(e) => Frame::Error { request: id, shard, error: e },
                        Inflight::Ticket(t) => match t.try_take() {
                            Some(Ok(y)) => Frame::Partial { request: id, shard, partial: y },
                            Some(Err(e)) => Frame::Error { request: id, shard, error: e },
                            None => {
                                t.cancel();
                                Frame::Error {
                                    request: id,
                                    shard,
                                    error: EngineError::KernelFailed(
                                        "host never flushed the sub-request".into(),
                                    ),
                                }
                            }
                        },
                    };
                    // Malicious variant: echo a correlation id nobody asked
                    // for (chaos harness only — a no-op unless armed).
                    if crate::failpoint::act(&sites.wrong_id).is_err() {
                        if let Frame::Partial { request, .. } | Frame::Error { request, .. } =
                            &mut reply
                        {
                            *request = request.wrapping_add(0xDEAD_BEEF);
                        }
                    }
                    let frame_start = buf.len();
                    if write_frame(&mut buf, &reply, max_frame).is_err() {
                        ok = false;
                        break;
                    }
                    // Malicious variant: smash the first partial index to
                    // u64::MAX *after* encoding (an honest host cannot even
                    // build such a vector — the lie has to be byte surgery).
                    if let Frame::Partial { partial, .. } = &reply {
                        if partial.nnz() > 0 && crate::failpoint::act(&sites.bad_index).is_err() {
                            let at = frame_start + PARTIAL_FIRST_INDEX;
                            buf[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
                        }
                    }
                }
                let done: Frame<X, S::Output> = Frame::Done {
                    shard,
                    lanes: outcome.lanes as u64,
                    requests: outcome.requests as u64,
                    execute_micros: u64::try_from(outcome.timings.execute.as_micros())
                        .unwrap_or(u64::MAX),
                };
                if !ok || write_frame(&mut buf, &done, max_frame).is_err() {
                    break;
                }
                // Malicious variant: send half a header and hang up —
                // truncation inside a frame, not a clean close.
                if crate::failpoint::act(&sites.truncate).is_err() {
                    buf.truncate(HEADER_LEN / 2);
                    let _ = stream.write_all(&buf);
                    break;
                }
                if stream.write_all(&buf).is_err() {
                    break;
                }
            }
            Frame::Hello => {
                // Discovery: advertise what this host serves. Answered at
                // any point — the handshake is for routers that verify,
                // never a gate (raw protocol clients may skip it).
                let welcome: Frame<X, S::Output> = Frame::Welcome {
                    shard,
                    col_start: info.col_start,
                    col_end: info.col_end,
                    nrows: info.nrows,
                    fingerprint: info.fingerprint,
                };
                if write_frame(&mut stream, &welcome, max_frame).is_err() {
                    break;
                }
            }
            Frame::Ping { nonce } => {
                let pong: Frame<X, S::Output> = Frame::Pong { nonce };
                if write_frame(&mut stream, &pong, max_frame).is_err() {
                    break;
                }
            }
            Frame::Goodbye => break,
            // Reply-direction frames from a client are a protocol
            // violation; drop the connection.
            Frame::Partial { .. }
            | Frame::Error { .. }
            | Frame::Done { .. }
            | Frame::Welcome { .. }
            | Frame::Pong { .. } => break,
        }
    }
    // Whatever is still queued from this connection will never be asked
    // for again: cancel so the engine sheds the lanes at its next flush.
    for (_, entry) in inflight {
        if let Inflight::Ticket(t) = entry {
            t.cancel();
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}
