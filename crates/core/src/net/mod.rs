//! Remote sharding: the shard protocol over sockets.
//!
//! The [`shard`](crate::shard) router was built against the plain-data
//! [`ShardMsg`](crate::shard::ShardMsg) protocol precisely so the
//! per-shard hop could leave the process. This module is that step — the
//! CombBLAS lineage's distributed-memory decomposition realized as a
//! serving fleet: shard engines live in [`ShardHost`] daemons, and a
//! [`TcpTransport`] behind the unchanged
//! [`ShardedEngine`](crate::shard::ShardedEngine) front door carries
//! frontiers out and partials back. No external dependencies: the wire
//! format is hand-rolled length-prefixed little-endian framing over
//! `std::net`.
//!
//! ## Wire format
//!
//! Every frame is a 10-byte header followed by its payload; all integers
//! are little-endian:
//!
//! | offset | bytes | field |
//! |---|---|---|
//! | 0 | 4 | magic `"SMSV"` |
//! | 4 | 1 | protocol version (currently 2) |
//! | 5 | 1 | frame tag |
//! | 6 | 4 | payload length `u32` |
//!
//! | tag | frame | direction | payload |
//! |---|---|---|---|
//! | 1 | `Frontier` | router → host | `request u64 \| shard u32 \| scalar tag u8 \| dim u64 \| nnz u64 \| indices u64×nnz \| values X×nnz \| deadline flag u8 (+ budget µs u64) \| mask flag u8 (0 none / 1 keep / 2 complement; + dim u64, words u64, bitmap u64×words) \| algorithm u8` |
//! | 2 | `Partial` | host → router | `request u64 \| shard u32 \| scalar tag u8 \| dim u64 \| nnz u64 \| indices u64×nnz \| values Y×nnz` — indices strictly increasing (enforced at decode) |
//! | 3 | `Error` | host → router | `request u64 \| shard u32 \| error code u8 (+ message u32-len + UTF-8 for KernelFailed)` |
//! | 4 | `Flush` | router → host | empty — "flush the engine, reply to every frontier on this connection" |
//! | 6 | `Done` | host → router | `shard u32 \| lanes u64 \| requests u64 \| execute µs u64` — sent after the per-request replies |
//! | 5 | `Goodbye` | either | empty — orderly close |
//! | 7 | `Hello` | router → host | empty — discovery probe at dial time |
//! | 8 | `Welcome` | host → router | `shard u32 \| col_start u64 \| col_end u64 \| nrows u64 \| fingerprint u64` — the host's advertisement |
//! | 9 | `Ping` | router → host | `nonce u64` — heartbeat probe |
//! | 10 | `Pong` | host → router | `nonce u64` — heartbeat reply, nonce echoed |
//!
//! Frames are bounded ([`DEFAULT_MAX_FRAME`], configurable) and decoding
//! is total: truncation, bad magic/version/tag, over-limit lengths, and
//! inconsistent payloads all come back as a typed [`DecodeError`], never a
//! panic. Scalar tags ([`WireScalar::TAG`]) make a router and host
//! compiled for different semirings fail loudly with
//! [`DecodeError::ScalarMismatch`]. `Partial` index order is a protocol
//! invariant since version 2: the encoder canonicalizes (sorting unsorted
//! kernel output), and the decoder rejects non-monotone or duplicate
//! indices as [`DecodeError::Corrupt`] — a hostile host cannot inject
//! shuffled or duplicated rows into the merge.
//!
//! ## Deadline semantics
//!
//! Wall clocks don't cross process boundaries, so deadlines travel as
//! *relative* budgets: the transport computes `deadline − now` when it
//! **writes** the frame (clamping out queue wait), and the host re-anchors
//! `budget` to a local `Instant` the moment the frame is **read**
//! (clamping out transit). A budget that reaches the host already
//! exhausted resolves `DeadlineExceeded` without touching the engine, and
//! the gathering transport re-checks each reply against the router-local
//! absolute deadline — a partial that arrives too late is converted to
//! `DeadlineExceeded` rather than delivered as fresh.
//!
//! ## Discovery and health
//!
//! At dial time the router sends `Hello` and verifies the host's `Welcome`
//! — shard id, global column range, output height, and the matrix slice's
//! structural fingerprint — against its
//! [`ShardPlan`](crate::shard::ShardPlan). A contradiction is a typed
//! [`ConnectError::PlanMismatch`]: a misconfigured or stale host is
//! rejected before it can serve a single wrong answer. A background
//! heartbeat (`Ping`/`Pong`, nonce echoed) then marks dead replicas
//! unhealthy between flushes and half-open-probes tripped ones after their
//! breaker cooldown. Hosts answer `Hello`/`Ping` at any point; clients
//! that skip the handshake are tolerated.
//!
//! ## Replication and failure semantics
//!
//! Each shard may be served by N replica hosts
//! ([`ShardedEngine::connect_replicated`](crate::shard::ShardedEngine::connect_replicated));
//! on a replica outage *or* quarantine mid-flush the router re-sends the
//! whole batch — deadline budgets recomputed — to the next replica in
//! health order, so a single host death degrades to a retry. A per-replica
//! circuit breaker (consecutive-failure trip, timed half-open probe) keeps
//! flushes away from a corpse until it proves itself again. Only when
//! every replica of a shard fails does a connection outage (refused dial,
//! broken pipe, short reply, I/O timeout) fail **exactly the sub-requests
//! routed through that shard** as
//! [`EngineError`](crate::engine::EngineError) `::KernelFailed` with a
//! `shard <s>:` prefix — the same blast radius the `shard.flush.<s>`
//! failpoint injects in-process, and sibling shards are untouched.
//! Connections are re-dialed with capped, jittered exponential backoff
//! (`net.reconnects` counts successes), so a restarted host rejoins the
//! fleet without any waiter stranding: every routed ticket resolves every
//! flush, outage or not.
//!
//! ## Byzantine-frame defense
//!
//! Replies are correlated by request id and validated before they touch a
//! merge: an id nobody asked for (or already answered), a wrong shard
//! claim, a partial of the wrong height, or bytes that do not decode
//! (including out-of-range / non-monotone partial indices) quarantine the
//! connection with a typed [`ByzantineFrame`] — the stream is severed, the
//! replica's breaker trips immediately, `shard.replica.quarantined` is
//! incremented, and the flush fails over. The chaos harness proves this
//! with a malicious [`ShardHost`] variant (failpoint-armed) that answers
//! wrong ids, oversized indices, and truncated frames.
//!
//! ## Observability
//!
//! A socket-backed router's registry carries the `net.*` and
//! `shard.replica.*` families next to `shard.*`: `net.bytes.out` /
//! `net.bytes.in` counters, `net.encode.time` / `net.decode.time` /
//! `net.rpc.time` histograms, the `net.reconnects` /
//! `net.handshake.rejected` / `net.health.probes` / `net.health.failures`
//! counters, the `net.connections` / `net.health.unhealthy` gauges, and
//! the `shard.replica.failovers` / `shard.replica.quarantined` /
//! `shard.replica.trips` counters (see the [`crate::obs`] taxonomy).

mod codec;
mod host;
mod transport;

pub use codec::{
    decode_frame, encode_frame, read_frame, write_frame, DecodeError, Frame, WireError,
    WireFrontier, WireScalar, DEFAULT_MAX_FRAME, HEADER_LEN, MAGIC, VERSION,
};
pub use host::{ShardHost, ShardHostHandle};
pub use transport::{ByzantineFrame, ConnectError, TcpConfig, TcpTransport};
