//! [`TcpTransport`]: the router side of the remote shard protocol.
//!
//! Every shard is backed by one or more replica [`ShardHost`](super::ShardHost)
//! addresses. During [`exchange`](crate::shard::ShardTransport::exchange) one
//! scoped thread per involved shard scatters the queued `Frontier` frames +
//! one `Flush` to the shard's preferred replica, then gathers the replies
//! with a per-reply deadline check. When a replica fails — outage *or*
//! quarantine — the whole batch is re-sent to the next replica with its
//! deadline budgets recomputed, so a single host death degrades to a retry
//! instead of failing every routed ticket. Only when every replica of a
//! shard is exhausted do the shard's sub-requests fail, as
//! [`EngineError::KernelFailed`] with a `shard <s>:` prefix — the same
//! blast radius as the `shard.flush.<s>` failpoint.
//!
//! Three defenses gate which replica a flush routes to:
//!
//! - **Discovery handshake.** At dial time the router sends `Hello` and
//!   verifies the host's `Welcome` (shard id, column range, height, matrix
//!   fingerprint) against its `ShardPlan`; a misconfigured host is a typed
//!   [`ConnectError::PlanMismatch`], not a silent wrong answer.
//! - **Per-replica circuit breaker.** Consecutive failures trip the
//!   breaker; a tripped replica is deprioritized until a timed half-open
//!   probe (the heartbeat, or a last-resort exchange attempt) re-admits it.
//! - **Byzantine-frame defense.** A reply with an unknown correlation id,
//!   the wrong shard, the wrong output height, or bytes that do not decode
//!   quarantines the connection with a typed [`ByzantineFrame`] and trips
//!   the replica's breaker immediately.
//!
//! A background heartbeat (`Ping`/`Pong` with an echoed nonce) marks dead
//! replicas unhealthy between flushes and re-dials tripped ones after
//! their cooldown, so failover usually happens before a flush ever routes
//! to a corpse.

use std::io::{self, Write};
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sparse_substrate::{Scalar, Semiring};

use crate::engine::{EngineError, FlushOutcome};
use crate::obs::{Counter, Gauge, Histogram, ObsConfig, Registry};
use crate::shard::transport::{Exchange, ShardTransport, WireRequest};
use crate::shard::{ShardMsg, ShardPlan, ShardedEngine};
use crate::stats::EngineStats;

use super::codec::{
    encode_frame, read_frame, write_frame, DecodeError, Frame, WireError, WireScalar,
    DEFAULT_MAX_FRAME,
};

/// Tuning knobs of a [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Upper bound on one frame's payload, enforced when encoding and
    /// decoding (default [`DEFAULT_MAX_FRAME`]).
    pub max_frame: usize,
    /// Re-dial attempts per exchange when a replica's connection is down.
    pub connect_retries: u32,
    /// Base sleep before a re-dial retry; doubles per attempt up to
    /// [`retry_backoff_cap`](Self::retry_backoff_cap), with ±25% jitter so
    /// a restarted fleet does not thundering-herd one host.
    pub retry_backoff: Duration,
    /// Ceiling on the exponential re-dial backoff (default 500 ms).
    pub retry_backoff_cap: Duration,
    /// Socket read/write timeout; an exchange that exceeds it fails over
    /// to the next replica instead of blocking forever (`None` = block).
    pub io_timeout: Option<Duration>,
    /// `TCP_NODELAY` on shard connections (default on — frontier frames
    /// are latency-sensitive).
    pub nodelay: bool,
    /// Consecutive failures that trip a replica's circuit breaker
    /// (default 3). Byzantine frames and plan mismatches trip it
    /// immediately regardless of this threshold.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before a half-open probe may
    /// re-admit the replica (default 250 ms).
    pub breaker_cooldown: Duration,
    /// Background heartbeat interval: pings idle connections and half-open
    /// probes tripped replicas, so a flush routes around a dead replica it
    /// never had to discover itself. `None` disables the thread
    /// (default 500 ms).
    pub heartbeat: Option<Duration>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_frame: DEFAULT_MAX_FRAME,
            connect_retries: 3,
            retry_backoff: Duration::from_millis(10),
            retry_backoff_cap: Duration::from_millis(500),
            io_timeout: Some(Duration::from_secs(30)),
            nodelay: true,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            heartbeat: Some(Duration::from_millis(500)),
        }
    }
}

/// Exponential backoff with a hard cap and deterministic ±25% jitter.
/// `seed` decorrelates concurrent dialers (each replica hashes its address
/// in) so a restarted fleet does not reconnect in lockstep.
fn backoff_delay(base: Duration, cap: Duration, attempt: u32, seed: u64) -> Duration {
    let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
    let exp = base.saturating_mul(factor).min(cap);
    // splitmix64 of (seed, attempt): cheap, stateless, and good enough to
    // spread herd members — no RNG dependency on this path.
    let mut z = seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
    exp.mul_f64(0.75 + 0.5 * frac)
}

/// Why [`ShardedEngine::connect`] (or
/// [`connect_replicated`](ShardedEngine::connect_replicated)) refused to
/// build a router.
#[derive(Debug)]
pub enum ConnectError {
    /// A host could not be reached (or the socket failed mid-handshake).
    Io(io::Error),
    /// A host answered the discovery handshake with an advertisement that
    /// contradicts the router's `ShardPlan` — wrong shard id, column
    /// range, output height, or matrix fingerprint. Serving through it
    /// would silently corrupt merges, so the dial is rejected instead.
    PlanMismatch {
        /// Shard the address was configured for.
        shard: usize,
        /// The offending host.
        addr: SocketAddr,
        /// Human-readable contradiction.
        reason: String,
    },
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::Io(e) => write!(f, "connect: {e}"),
            ConnectError::PlanMismatch { shard, addr, reason } => {
                write!(f, "plan mismatch dialing shard {shard} at {addr}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConnectError {}

impl From<io::Error> for ConnectError {
    fn from(e: io::Error) -> Self {
        ConnectError::Io(e)
    }
}

/// A protocol violation by a host that *did* answer — evidence of a buggy
/// or hostile peer rather than a dead one. Any of these quarantines the
/// connection: the stream is severed, the replica's breaker trips
/// immediately, and the flush fails over to the next replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByzantineFrame {
    /// A reply whose correlation id matches no sub-request routed on this
    /// connection this flush (or one already answered).
    UnexpectedRequest {
        /// The id the host echoed.
        request: u64,
    },
    /// A reply claiming to come from a different shard.
    WrongShard {
        /// Shard this connection serves.
        expected: usize,
        /// Shard the frame claimed.
        got: usize,
    },
    /// A partial whose logical height differs from the router's output
    /// height — its indices would be meaningless in the merge.
    WrongHeight {
        /// Router output height.
        expected: usize,
        /// Height the frame declared.
        got: usize,
    },
    /// Bytes that do not decode: bad magic/version/tag, truncation inside
    /// a frame, out-of-range or unsorted partial indices, …
    Corrupt(DecodeError),
    /// A structurally valid frame that has no business in the reply
    /// direction (e.g. a `Frontier` or `Flush` from a host).
    UnexpectedFrame(&'static str),
}

impl std::fmt::Display for ByzantineFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ByzantineFrame::UnexpectedRequest { request } => {
                write!(f, "reply for unknown or already-answered request {request}")
            }
            ByzantineFrame::WrongShard { expected, got } => {
                write!(f, "reply claims shard {got}, connection serves shard {expected}")
            }
            ByzantineFrame::WrongHeight { expected, got } => {
                write!(f, "partial height {got} != output height {expected}")
            }
            ByzantineFrame::Corrupt(e) => write!(f, "undecodable frame: {e}"),
            ByzantineFrame::UnexpectedFrame(tag) => {
                write!(f, "unexpected {tag} frame in reply direction")
            }
        }
    }
}

impl std::error::Error for ByzantineFrame {}

/// The `net.*` / `shard.replica.*` metric families, resolved once from the
/// router's registry.
struct NetMetrics {
    /// `net.bytes.out` — frame bytes written to shard connections.
    bytes_out: Arc<Counter>,
    /// `net.bytes.in` — frame bytes read from shard connections.
    bytes_in: Arc<Counter>,
    /// `net.encode.time` — per-exchange frame encoding latency.
    encode_time: Arc<Histogram>,
    /// `net.decode.time` — per-reply decode latency.
    decode_time: Arc<Histogram>,
    /// `net.rpc.time` — per-shard scatter→gather round-trip latency.
    rpc_time: Arc<Histogram>,
    /// `net.reconnects` — successful re-dials after a connection was lost.
    reconnects: Arc<Counter>,
    /// `net.connections` — replica connections currently open.
    connections: Arc<Gauge>,
    /// `net.handshake.rejected` — dials refused for a plan mismatch.
    handshake_rejected: Arc<Counter>,
    /// `net.health.probes` — heartbeat pings + half-open probes issued.
    health_probes: Arc<Counter>,
    /// `net.health.failures` — probes that found a replica dead.
    health_failures: Arc<Counter>,
    /// `net.health.unhealthy` — replicas currently breaker-tripped.
    unhealthy: Arc<Gauge>,
    /// `shard.replica.failovers` — batches re-sent to another replica
    /// after an attempt failed mid-flush.
    failovers: Arc<Counter>,
    /// `shard.replica.quarantined` — connections severed for a byzantine
    /// frame.
    quarantined: Arc<Counter>,
    /// `shard.replica.trips` — circuit-breaker trips (threshold,
    /// byzantine, mismatch, or heartbeat-detected death).
    trips: Arc<Counter>,
}

impl NetMetrics {
    fn new(registry: &Registry) -> Self {
        NetMetrics {
            bytes_out: registry.counter("net.bytes.out"),
            bytes_in: registry.counter("net.bytes.in"),
            encode_time: registry.histogram("net.encode.time"),
            decode_time: registry.histogram("net.decode.time"),
            rpc_time: registry.histogram("net.rpc.time"),
            reconnects: registry.counter("net.reconnects"),
            connections: registry.gauge("net.connections"),
            handshake_rejected: registry.counter("net.handshake.rejected"),
            health_probes: registry.counter("net.health.probes"),
            health_failures: registry.counter("net.health.failures"),
            unhealthy: registry.gauge("net.health.unhealthy"),
            failovers: registry.counter("shard.replica.failovers"),
            quarantined: registry.counter("shard.replica.quarantined"),
            trips: registry.counter("shard.replica.trips"),
        }
    }
}

/// Per-replica circuit breaker. `open_until == Some(t)` means tripped:
/// skipped while `now < t` (unless no healthier replica exists), half-open
/// probe allowed at `t`.
#[derive(Debug, Default)]
struct Breaker {
    consecutive: u32,
    open_until: Option<Instant>,
}

impl Breaker {
    fn is_open(&self) -> bool {
        self.open_until.is_some()
    }

    fn cooled(&self, now: Instant) -> bool {
        self.open_until.is_some_and(|t| now >= t)
    }
}

/// One replica's connection slot.
struct Replica {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Whether this slot ever held a live connection (a successful dial
    /// after that counts as a *re*-connect).
    ever_connected: bool,
    breaker: Breaker,
}

/// What the router expects shard `s`'s hosts to advertise, derived from
/// the `ShardPlan` at connect time.
struct ShardSpec {
    range: Range<usize>,
    fingerprint: Option<u64>,
}

/// How one replica attempt failed, deciding breaker treatment.
enum AttemptError {
    /// The host is unreachable or stopped answering — ordinary outage.
    Outage(String),
    /// The host answered the handshake with a contradicting advertisement.
    Mismatch(String),
    /// The host answered with a protocol violation.
    Byzantine(ByzantineFrame),
}

/// State shared between exchanges and the heartbeat thread. Deliberately
/// non-generic: handshake and health frames carry no scalar payloads, so
/// the heartbeat can encode them with any instantiation.
struct Shared {
    /// `replicas[s][r]` — replica `r` of shard `s`.
    replicas: Vec<Vec<Mutex<Replica>>>,
    expected: Vec<ShardSpec>,
    nrows: usize,
    config: TcpConfig,
    metrics: NetMetrics,
    stop: AtomicBool,
    nonce: AtomicU64,
}

impl Shared {
    /// Dials and handshakes `rep` if it is down, with capped jittered
    /// backoff between up to `retries` re-dial attempts.
    fn ensure_connected(
        &self,
        s: usize,
        rep: &mut Replica,
        retries: u32,
    ) -> Result<(), AttemptError> {
        if rep.stream.is_some() {
            return Ok(());
        }
        let mut attempt = 0u32;
        let mut stream = loop {
            match TcpStream::connect(rep.addr) {
                Ok(stream) => break stream,
                Err(e) => {
                    if attempt >= retries {
                        return Err(AttemptError::Outage(format!("connect {}: {e}", rep.addr)));
                    }
                    let seed = u64::from(rep.addr.port()) ^ ((s as u64) << 17);
                    std::thread::sleep(backoff_delay(
                        self.config.retry_backoff,
                        self.config.retry_backoff_cap,
                        attempt,
                        seed,
                    ));
                    attempt += 1;
                }
            }
        };
        let _ = stream.set_nodelay(self.config.nodelay);
        let _ = stream.set_read_timeout(self.config.io_timeout);
        let _ = stream.set_write_timeout(self.config.io_timeout);
        if let Err(e) = self.handshake(s, rep.addr, &mut stream) {
            if matches!(e, AttemptError::Mismatch(_)) {
                self.metrics.handshake_rejected.inc();
            }
            let _ = stream.shutdown(Shutdown::Both);
            return Err(e);
        }
        if rep.ever_connected {
            self.metrics.reconnects.inc();
        }
        rep.ever_connected = true;
        rep.stream = Some(stream);
        self.metrics.connections.add(1);
        Ok(())
    }

    /// The discovery handshake: send `Hello`, verify the `Welcome` against
    /// the plan. Handshake frames carry no scalar payloads, so the
    /// concrete `Frame` instantiation is irrelevant to the bytes.
    fn handshake(
        &self,
        s: usize,
        addr: SocketAddr,
        stream: &mut TcpStream,
    ) -> Result<(), AttemptError> {
        let hs_io = |e: WireError| match e {
            WireError::Io(e) => AttemptError::Outage(format!("handshake {addr}: {e}")),
            WireError::Decode(e) => {
                AttemptError::Mismatch(format!("handshake reply does not decode: {e}"))
            }
        };
        write_frame::<f64, f64, _>(stream, &Frame::Hello, self.config.max_frame).map_err(hs_io)?;
        let frame = match read_frame::<f64, f64, _>(stream, self.config.max_frame) {
            Ok(Some((frame, _))) => frame,
            Ok(None) => {
                return Err(AttemptError::Outage(format!(
                    "handshake {addr}: host closed the connection"
                )))
            }
            Err(e) => return Err(hs_io(e)),
        };
        let Frame::Welcome { shard, col_start, col_end, nrows, fingerprint } = frame else {
            return Err(AttemptError::Mismatch("host did not answer Hello with Welcome".into()));
        };
        let spec = &self.expected[s];
        if shard != s {
            return Err(AttemptError::Mismatch(format!(
                "host serves shard {shard}, expected shard {s}"
            )));
        }
        if (col_start..col_end) != spec.range {
            return Err(AttemptError::Mismatch(format!(
                "host serves columns {col_start}..{col_end}, plan assigns {}..{}",
                spec.range.start, spec.range.end
            )));
        }
        if nrows != self.nrows {
            return Err(AttemptError::Mismatch(format!(
                "host output height {nrows}, router expects {}",
                self.nrows
            )));
        }
        if let Some(expected_fp) = spec.fingerprint {
            if expected_fp != fingerprint {
                return Err(AttemptError::Mismatch(format!(
                    "matrix fingerprint {fingerprint:#018x}, plan expects {expected_fp:#018x}"
                )));
            }
        }
        Ok(())
    }

    /// Drops `rep`'s stream after a failure so the next attempt re-dials.
    fn disconnect(&self, rep: &mut Replica) {
        if let Some(stream) = rep.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
            self.metrics.connections.sub(1);
        }
    }

    /// Records an ordinary failure; trips the breaker at the configured
    /// consecutive threshold.
    fn record_failure(&self, rep: &mut Replica) {
        rep.breaker.consecutive = rep.breaker.consecutive.saturating_add(1);
        if rep.breaker.consecutive >= self.config.breaker_threshold {
            self.trip(rep);
        }
    }

    /// Trips the breaker immediately (byzantine frame, plan mismatch, or
    /// heartbeat-detected death — all definitive).
    fn trip(&self, rep: &mut Replica) {
        if rep.breaker.open_until.is_none() {
            self.metrics.trips.inc();
            self.metrics.unhealthy.add(1);
        }
        rep.breaker.open_until = Some(Instant::now() + self.config.breaker_cooldown);
    }

    /// Resets the breaker after a successful exchange or probe.
    fn record_success(&self, rep: &mut Replica) {
        rep.breaker.consecutive = 0;
        if rep.breaker.open_until.take().is_some() {
            self.metrics.unhealthy.sub(1);
        }
    }

    /// Replica attempt order for shard `s`: breaker-closed replicas first
    /// (in slot order, so the primary is preferred), then tripped replicas
    /// whose cooldown elapsed (half-open probes), then still-cooling ones
    /// as a last resort — a breaker gates *preference*, never admission,
    /// because trying a suspect replica still beats failing tickets.
    fn replica_order(&self, s: usize) -> Vec<usize> {
        let now = Instant::now();
        let mut healthy = Vec::new();
        let mut probe = Vec::new();
        let mut cooling = Vec::new();
        for (r, slot) in self.replicas[s].iter().enumerate() {
            let rep = crate::engine::lock(slot);
            if !rep.breaker.is_open() {
                healthy.push(r);
            } else if rep.breaker.cooled(now) {
                probe.push(r);
            } else {
                cooling.push(r);
            }
        }
        healthy.extend(probe);
        healthy.extend(cooling);
        healthy
    }
}

/// One `Ping`/`Pong` round trip on an idle connection. The pong must echo
/// the nonce; the read runs under `deadline` so a hung host cannot stall
/// the heartbeat (the caller's timeout is restored afterwards).
fn ping(shared: &Shared, stream: &mut TcpStream, deadline: Duration) -> bool {
    let nonce = shared.nonce.fetch_add(1, Ordering::Relaxed);
    let max_frame = shared.config.max_frame;
    if write_frame::<f64, f64, _>(stream, &Frame::Ping { nonce }, max_frame).is_err() {
        return false;
    }
    let _ = stream.set_read_timeout(Some(deadline.max(Duration::from_millis(10))));
    let ok = matches!(
        read_frame::<f64, f64, _>(stream, max_frame),
        Ok(Some((Frame::Pong { nonce: echoed }, _))) if echoed == nonce
    );
    let _ = stream.set_read_timeout(shared.config.io_timeout);
    ok
}

/// The heartbeat loop: every `interval`, ping live idle connections, and
/// half-open re-dial tripped replicas whose cooldown elapsed. Uses
/// `try_lock` so it never contends with an in-flight exchange.
fn heartbeat_loop(shared: Arc<Shared>, interval: Duration) {
    let step = Duration::from_millis(5);
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.stop.load(Ordering::Relaxed) {
                return;
            }
            let nap = step.min(interval - slept);
            std::thread::sleep(nap);
            slept += nap;
        }
        for s in 0..shared.replicas.len() {
            for slot in &shared.replicas[s] {
                let Ok(mut rep) = slot.try_lock() else { continue };
                probe_replica(&shared, s, &mut rep, interval);
            }
        }
    }
}

/// One heartbeat visit to one replica slot (lock held by the caller).
fn probe_replica(shared: &Shared, s: usize, rep: &mut Replica, interval: Duration) {
    if rep.stream.is_some() {
        shared.metrics.health_probes.inc();
        let alive = ping(shared, rep.stream.as_mut().expect("checked above"), interval);
        if alive {
            shared.record_success(rep);
        } else {
            // A connection that cannot pong is definitive: sever it and
            // mark the replica unhealthy *now*, so the next flush routes
            // to a sibling without having to discover the corpse itself.
            shared.metrics.health_failures.inc();
            shared.disconnect(rep);
            shared.trip(rep);
        }
    } else if !rep.breaker.is_open() || rep.breaker.cooled(Instant::now()) {
        // Down but either never tripped or past its cooldown: half-open
        // probe (single dial + handshake, no retries).
        shared.metrics.health_probes.inc();
        match shared.ensure_connected(s, rep, 0) {
            Ok(()) => shared.record_success(rep),
            Err(_) => {
                shared.metrics.health_failures.inc();
                shared.record_failure(rep);
                if rep.breaker.is_open() {
                    // Extend the cooldown so the next probe waits again.
                    shared.trip(rep);
                }
            }
        }
    }
}

/// A [`ShardTransport`] whose shards are [`ShardHost`](super::ShardHost)
/// daemons reached over TCP, each behind one or more replicas. Build a
/// router on top of it with [`ShardedEngine::connect`] or
/// [`ShardedEngine::connect_replicated`].
pub struct TcpTransport<X, Y> {
    shared: Arc<Shared>,
    queues: Vec<Mutex<Vec<WireRequest<X>>>>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
    marker: PhantomData<fn() -> (X, Y)>,
}

impl<X, Y> Drop for TcpTransport<X, Y> {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.heartbeat.take() {
            let _ = handle.join();
        }
    }
}

impl<X: WireScalar, Y: WireScalar> TcpTransport<X, Y> {
    /// Dials and handshakes every replica of every shard once (so a bad
    /// address or a misconfigured host fails here, not at the first
    /// flush), then starts the heartbeat. Later connection losses are
    /// re-dialed lazily per exchange and by the heartbeat.
    fn dial(
        groups: &[Vec<SocketAddr>],
        expected: Vec<ShardSpec>,
        nrows: usize,
        config: TcpConfig,
        metrics: NetMetrics,
    ) -> Result<Self, ConnectError> {
        let heartbeat_interval = config.heartbeat.filter(|d| !d.is_zero());
        let shared = Arc::new(Shared {
            replicas: groups
                .iter()
                .map(|group| {
                    group
                        .iter()
                        .map(|&addr| {
                            Mutex::new(Replica {
                                addr,
                                stream: None,
                                ever_connected: false,
                                breaker: Breaker::default(),
                            })
                        })
                        .collect()
                })
                .collect(),
            expected,
            nrows,
            config,
            metrics,
            stop: AtomicBool::new(false),
            nonce: AtomicU64::new(0),
        });
        for (s, group) in shared.replicas.iter().enumerate() {
            for slot in group {
                let mut rep = crate::engine::lock(slot);
                let retries = shared.config.connect_retries;
                if let Err(e) = shared.ensure_connected(s, &mut rep, retries) {
                    return Err(match e {
                        AttemptError::Outage(msg) => ConnectError::Io(io::Error::new(
                            io::ErrorKind::ConnectionRefused,
                            format!("shard {s}: {msg}"),
                        )),
                        AttemptError::Mismatch(reason) => {
                            ConnectError::PlanMismatch { shard: s, addr: rep.addr, reason }
                        }
                        AttemptError::Byzantine(b) => ConnectError::PlanMismatch {
                            shard: s,
                            addr: rep.addr,
                            reason: b.to_string(),
                        },
                    });
                }
            }
        }
        let heartbeat = heartbeat_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || heartbeat_loop(shared, interval))
        });
        Ok(TcpTransport {
            queues: groups.iter().map(|_| Mutex::new(Vec::new())).collect(),
            shared,
            heartbeat,
            marker: PhantomData,
        })
    }

    /// One scatter→gather round trip against one replica: (re)connect and
    /// handshake, write every not-yet-answered frontier + a flush frame
    /// with deadline budgets recomputed *now*, then read one reply per
    /// frontier and the host's `Done` summary. Successful replies land in
    /// `replies` only when the whole attempt succeeds, so a failed attempt
    /// leaves the batch intact for the next replica.
    fn attempt(
        &self,
        s: usize,
        rep: &mut Replica,
        batch: &[WireRequest<X>],
        replies: &mut Vec<ShardMsg<X, Y>>,
    ) -> Result<Option<FlushOutcome>, AttemptError> {
        let shared = &self.shared;
        shared.ensure_connected(s, rep, shared.config.connect_retries)?;

        // Scatter: encode all frames into one buffer, one write. The
        // deadline budget is recomputed at write time — queue wait *and*
        // any earlier failed replica attempt are clamped out, and a budget
        // already exhausted travels as zero (the host resolves it
        // `DeadlineExceeded` without touching its engine).
        let t_encode = Instant::now();
        let mut buf = Vec::new();
        for req in batch {
            if replies.iter().any(|m| m.request() == req.request) {
                // Failed permanently on an earlier attempt (oversize).
                continue;
            }
            let budget = req
                .deadline
                .map(|d| d.saturating_duration_since(Instant::now()).as_micros() as u64)
                .or(req.deadline_micros);
            let frame: Frame<X, Y> = Frame::Frontier(super::codec::wire_frontier(
                req.request,
                s,
                req.slice.clone(),
                budget,
                req.mask.clone(),
                req.algorithm,
            ));
            if let Err(e) = encode_frame(&frame, &mut buf, shared.config.max_frame) {
                // An unencodable frontier (oversize) fails only its own
                // request — deterministically, so no replica retries it.
                replies.push(ShardMsg::error(
                    req.request,
                    s,
                    EngineError::KernelFailed(format!("shard {s}: encode: {e}")),
                ));
            }
        }
        let flush: Frame<X, Y> = Frame::Flush;
        if let Err(e) = encode_frame(&flush, &mut buf, shared.config.max_frame) {
            return Err(AttemptError::Outage(format!("encode: flush frame: {e}")));
        }
        shared.metrics.encode_time.record_duration(t_encode.elapsed());
        // Oversize casualties were already failed above; everything else
        // expects exactly one reply.
        let expect: Vec<&WireRequest<X>> =
            batch.iter().filter(|r| !replies.iter().any(|m| m.request() == r.request)).collect();

        let stream = rep.stream.as_mut().expect("just connected");
        if let Err(e) = stream.write_all(&buf) {
            return Err(AttemptError::Outage(format!("write: {e}")));
        }
        shared.metrics.bytes_out.add(buf.len() as u64);

        // Gather: one reply per live frontier, then the Done summary.
        // Anything the host sends that we did not ask for — an unknown or
        // duplicate correlation id, a wrong shard, a wrong height, bytes
        // that do not decode — is byzantine and quarantines the replica.
        let mut gathered: Vec<ShardMsg<X, Y>> = Vec::with_capacity(expect.len());
        let done = loop {
            let t_decode = Instant::now();
            let frame = match read_frame::<X, Y, _>(stream, shared.config.max_frame) {
                Ok(Some((frame, n))) => {
                    shared.metrics.bytes_in.add(n as u64);
                    shared.metrics.decode_time.record_duration(t_decode.elapsed());
                    frame
                }
                Ok(None) => {
                    return Err(AttemptError::Outage("connection closed by host".to_string()))
                }
                Err(WireError::Io(e)) => {
                    return Err(AttemptError::Outage(format!("read: {e}")));
                }
                Err(WireError::Decode(e)) => {
                    return Err(AttemptError::Byzantine(ByzantineFrame::Corrupt(e)));
                }
            };
            match frame {
                Frame::Partial { request, shard, partial } => {
                    if shard != s {
                        return Err(AttemptError::Byzantine(ByzantineFrame::WrongShard {
                            expected: s,
                            got: shard,
                        }));
                    }
                    if partial.len() != shared.nrows {
                        return Err(AttemptError::Byzantine(ByzantineFrame::WrongHeight {
                            expected: shared.nrows,
                            got: partial.len(),
                        }));
                    }
                    let req = expect.iter().find(|r| r.request == request);
                    if req.is_none() || gathered.iter().any(|m| m.request() == request) {
                        return Err(AttemptError::Byzantine(ByzantineFrame::UnexpectedRequest {
                            request,
                        }));
                    }
                    // Per-reply deadline check: a partial gathered after
                    // its request's deadline is already worthless.
                    let late = req.and_then(|r| r.deadline).is_some_and(|d| Instant::now() >= d);
                    if late {
                        gathered.push(ShardMsg::error(
                            request,
                            shard,
                            EngineError::DeadlineExceeded,
                        ));
                    } else {
                        gathered.push(ShardMsg::partial(request, shard, partial));
                    }
                }
                Frame::Error { request, shard, error } => {
                    if shard != s {
                        return Err(AttemptError::Byzantine(ByzantineFrame::WrongShard {
                            expected: s,
                            got: shard,
                        }));
                    }
                    if !expect.iter().any(|r| r.request == request)
                        || gathered.iter().any(|m| m.request() == request)
                    {
                        return Err(AttemptError::Byzantine(ByzantineFrame::UnexpectedRequest {
                            request,
                        }));
                    }
                    // Attribute remote failures to their shard.
                    let error = match error {
                        EngineError::KernelFailed(msg) => {
                            EngineError::KernelFailed(format!("shard {shard}: {msg}"))
                        }
                        other => other,
                    };
                    gathered.push(ShardMsg::error(request, shard, error));
                }
                Frame::Done { shard, lanes, requests, execute_micros } => {
                    if shard != s {
                        return Err(AttemptError::Byzantine(ByzantineFrame::WrongShard {
                            expected: s,
                            got: shard,
                        }));
                    }
                    if gathered.len() < expect.len() {
                        return Err(AttemptError::Outage("host replied short".to_string()));
                    }
                    break Some(FlushOutcome {
                        lanes: lanes as usize,
                        requests: requests as usize,
                        timings: crate::timing::FlushTimings {
                            execute: Duration::from_micros(execute_micros),
                            ..Default::default()
                        },
                        ..Default::default()
                    });
                }
                Frame::Goodbye => {
                    return Err(AttemptError::Outage("host said goodbye mid-flush".to_string()))
                }
                Frame::Frontier(_) => {
                    return Err(AttemptError::Byzantine(ByzantineFrame::UnexpectedFrame(
                        "Frontier",
                    )))
                }
                Frame::Flush => {
                    return Err(AttemptError::Byzantine(ByzantineFrame::UnexpectedFrame("Flush")))
                }
                Frame::Hello => {
                    return Err(AttemptError::Byzantine(ByzantineFrame::UnexpectedFrame("Hello")))
                }
                Frame::Welcome { .. } => {
                    return Err(AttemptError::Byzantine(ByzantineFrame::UnexpectedFrame("Welcome")))
                }
                Frame::Ping { .. } => {
                    return Err(AttemptError::Byzantine(ByzantineFrame::UnexpectedFrame("Ping")))
                }
                Frame::Pong { .. } => {
                    return Err(AttemptError::Byzantine(ByzantineFrame::UnexpectedFrame("Pong")))
                }
            }
        };
        replies.extend(gathered);
        Ok(done)
    }

    /// The whole exchange for one shard, walking its replicas in health
    /// order. A failed attempt records the failure (outage → breaker
    /// count; byzantine/mismatch → immediate trip + quarantine), discards
    /// the attempt's partial progress, and re-sends the full batch to the
    /// next replica. Only when every replica fails do the shard's
    /// sub-requests fail, with a `shard <s>:`-prefixed `KernelFailed` —
    /// one reply per live sub-request, always.
    fn exchange_shard(
        &self,
        s: usize,
        batch: Vec<WireRequest<X>>,
    ) -> (Vec<ShardMsg<X, Y>>, Option<FlushOutcome>) {
        let shared = &self.shared;
        // Fails every sub-request that has no reply yet — the invariant is
        // one reply per routed sub-request, whatever broke.
        let fail_unanswered = |replies: &mut Vec<ShardMsg<X, Y>>, msg: &str| {
            for req in &batch {
                if !replies.iter().any(|m| m.request() == req.request) {
                    replies.push(ShardMsg::error(
                        req.request,
                        s,
                        EngineError::KernelFailed(format!("shard {s}: {msg}")),
                    ));
                }
            }
        };
        let mut replies = Vec::with_capacity(batch.len());
        let t_rpc = Instant::now();
        let order = shared.replica_order(s);
        let mut last_err = String::from("no replica configured");
        for (attempt_no, &r) in order.iter().enumerate() {
            let mut rep = crate::engine::lock(&shared.replicas[s][r]);
            match self.attempt(s, &mut rep, &batch, &mut replies) {
                Ok(done) => {
                    shared.record_success(&mut rep);
                    if attempt_no > 0 {
                        shared.metrics.failovers.inc();
                    }
                    shared.metrics.rpc_time.record_duration(t_rpc.elapsed());
                    return (replies, done);
                }
                Err(AttemptError::Outage(msg)) => {
                    shared.disconnect(&mut rep);
                    shared.record_failure(&mut rep);
                    last_err = msg;
                }
                Err(AttemptError::Mismatch(reason)) => {
                    shared.disconnect(&mut rep);
                    shared.trip(&mut rep);
                    last_err = format!("handshake with {}: {reason}", rep.addr);
                }
                Err(AttemptError::Byzantine(b)) => {
                    shared.disconnect(&mut rep);
                    shared.trip(&mut rep);
                    shared.metrics.quarantined.inc();
                    last_err = format!("byzantine frame from {}: {b}", rep.addr);
                }
            }
        }
        fail_unanswered(&mut replies, &last_err);
        shared.metrics.rpc_time.record_duration(t_rpc.elapsed());
        (replies, None)
    }
}

impl<X, Y> ShardTransport<X, Y> for TcpTransport<X, Y>
where
    X: WireScalar,
    Y: WireScalar,
{
    fn num_shards(&self) -> usize {
        self.shared.replicas.len()
    }

    fn enqueue(&self, request: WireRequest<X>) {
        crate::engine::lock(&self.queues[request.shard]).push(request);
    }

    fn queued(&self, shard: usize) -> usize {
        crate::engine::lock(&self.queues[shard]).len()
    }

    fn involved(&self) -> Vec<usize> {
        (0..self.queues.len()).filter(|&s| self.queued(s) > 0).collect()
    }

    fn retire(&self, ids: &[u64]) {
        for queue in &self.queues {
            crate::engine::lock(queue).retain(|req| !ids.contains(&req.request));
        }
    }

    fn exchange(&self, down: &[Option<String>], retired: &[u64]) -> Exchange<X, Y> {
        let shards = self.shared.replicas.len();
        let mut per_shard = vec![FlushOutcome::default(); shards];
        let mut shards_flushed = 0;
        let mut replies = Vec::new();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (s, queue) in self.queues.iter().enumerate() {
                let batch: Vec<WireRequest<X>> = {
                    let mut queue = crate::engine::lock(queue);
                    queue.drain(..).filter(|req| !retired.contains(&req.request)).collect()
                };
                if batch.is_empty() {
                    continue;
                }
                // An injected outage never reaches the wire: the downed
                // shard's sub-requests fail with the same shape a broken
                // connection produces.
                if let Some(msg) = &down[s] {
                    for req in &batch {
                        replies.push(ShardMsg::error(
                            req.request,
                            s,
                            EngineError::KernelFailed(format!("shard {s}: {msg}")),
                        ));
                    }
                    continue;
                }
                handles.push((s, scope.spawn(move || self.exchange_shard(s, batch))));
            }
            for (s, handle) in handles {
                let (shard_replies, done) = handle.join().expect("shard exchange thread panicked");
                replies.extend(shard_replies);
                if let Some(outcome) = done {
                    per_shard[s] = outcome;
                    shards_flushed += 1;
                }
            }
        });
        Exchange { replies, per_shard, shards_flushed, execute_time: t0.elapsed() }
    }

    fn shard_stats(&self, _shard: usize) -> Option<EngineStats> {
        None
    }

    fn shard_obs(&self, _shard: usize) -> Option<&Registry> {
        None
    }
}

impl<A, X, S> ShardedEngine<A, X, S>
where
    A: Scalar,
    X: WireScalar,
    S: Semiring<A, X> + Clone + 'static,
    S::Output: WireScalar,
{
    /// Builds a router whose shards are [`ShardHost`](super::ShardHost)
    /// daemons: `addrs[s]` serves the columns of `plan.range(s)`. A
    /// convenience wrapper over [`connect_replicated`] with one replica
    /// per shard — a host outage there fails the shard's routed tickets
    /// (there is nowhere to fail over to) until the host returns.
    ///
    /// The routing, merge, and failure semantics are identical to
    /// [`ShardedEngine::partition`] — the shard property suite asserts the
    /// results are bit-identical across transports.
    ///
    /// [`connect_replicated`]: ShardedEngine::connect_replicated
    pub fn connect(
        plan: ShardPlan,
        nrows: usize,
        semiring: S,
        addrs: &[SocketAddr],
        config: TcpConfig,
        obs: ObsConfig,
    ) -> Result<Self, ConnectError> {
        let groups: Vec<Vec<SocketAddr>> = addrs.iter().map(|&a| vec![a]).collect();
        Self::connect_replicated(plan, nrows, semiring, &groups, config, obs)
    }

    /// Builds a router with `replicas[s]` as the replica set of shard `s`
    /// (every group non-empty; slot 0 is the preferred primary). Each
    /// replica is dialed and handshake-verified against `plan` before
    /// returning — a dead address is [`ConnectError::Io`], a host
    /// advertising the wrong shard/range/height/fingerprint is
    /// [`ConnectError::PlanMismatch`]. After connect, a replica outage or
    /// quarantine mid-flush fails over to the next healthy replica (batch
    /// re-sent, deadlines recomputed), so tickets only fail when a whole
    /// replica set is down.
    pub fn connect_replicated(
        plan: ShardPlan,
        nrows: usize,
        semiring: S,
        replicas: &[Vec<SocketAddr>],
        config: TcpConfig,
        obs: ObsConfig,
    ) -> Result<Self, ConnectError> {
        assert_eq!(
            replicas.len(),
            plan.num_shards(),
            "plan has {} shards but {} replica groups were given",
            plan.num_shards(),
            replicas.len()
        );
        assert!(
            replicas.iter().all(|group| !group.is_empty()),
            "every shard needs at least one replica address"
        );
        let registry = Registry::new(obs);
        let metrics = NetMetrics::new(&registry);
        let expected: Vec<ShardSpec> = (0..plan.num_shards())
            .map(|s| ShardSpec { range: plan.range(s), fingerprint: plan.fingerprint(s) })
            .collect();
        let transport =
            TcpTransport::<X, S::Output>::dial(replicas, expected, nrows, config, metrics)?;
        Ok(Self::from_transport(plan, nrows, semiring, registry, Box::new(transport)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_with_bounded_jitter() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        for attempt in 0..64 {
            for seed in [1u64, 7, 42, 0xdead_beef] {
                let d = backoff_delay(base, cap, attempt, seed);
                let nominal =
                    base.saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX)).min(cap);
                assert!(
                    d >= nominal.mul_f64(0.75) && d <= nominal.mul_f64(1.25),
                    "attempt {attempt} seed {seed}: {d:?} outside ±25% of {nominal:?}"
                );
                assert!(
                    d <= cap.mul_f64(1.25),
                    "attempt {attempt} seed {seed}: {d:?} exceeds jittered cap"
                );
            }
        }
    }

    #[test]
    fn backoff_saturates_at_the_cap_for_huge_attempts() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        // Far past the doubling range: must stay near the cap, not overflow.
        for attempt in [20, 31, 32, 63, u32::MAX] {
            let d = backoff_delay(base, cap, attempt, 3);
            assert!(d >= cap.mul_f64(0.75) && d <= cap.mul_f64(1.25), "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn backoff_jitter_decorrelates_seeds() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(1);
        let delays: Vec<Duration> = (0..16).map(|seed| backoff_delay(base, cap, 2, seed)).collect();
        let distinct: std::collections::HashSet<Duration> = delays.iter().copied().collect();
        assert!(distinct.len() > 8, "jitter should spread seeds, got {delays:?}");
    }
}
