//! [`TcpTransport`]: the router side of the remote shard protocol.
//!
//! One persistent connection per shard, written to in parallel during
//! [`exchange`](crate::shard::ShardTransport::exchange) (one scoped thread
//! per involved shard: scatter the queued `Frontier` frames + one `Flush`,
//! then gather the replies with a per-reply deadline check). A broken
//! connection fails **exactly the sub-requests routed through it** as
//! [`EngineError::KernelFailed`] with a `shard <s>:` prefix — the same
//! blast radius as the `shard.flush.<s>` failpoint — and is re-dialed with
//! backoff on the next exchange, so a restarted host is picked back up
//! without stranding any waiter.

use std::io::Write;
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sparse_substrate::{Scalar, Semiring};

use crate::engine::{EngineError, FlushOutcome};
use crate::obs::{Counter, Gauge, Histogram, ObsConfig, Registry};
use crate::shard::transport::{Exchange, ShardTransport, WireRequest};
use crate::shard::{ShardMsg, ShardPlan, ShardedEngine};
use crate::stats::EngineStats;

use super::codec::{encode_frame, read_frame, Frame, WireScalar, DEFAULT_MAX_FRAME};

/// Tuning knobs of a [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Upper bound on one frame's payload, enforced when encoding and
    /// decoding (default [`DEFAULT_MAX_FRAME`]).
    pub max_frame: usize,
    /// Re-dial attempts per exchange when a shard's connection is down.
    pub connect_retries: u32,
    /// Sleep before each re-dial retry, doubling per attempt.
    pub retry_backoff: Duration,
    /// Socket read/write timeout; an exchange that exceeds it fails its
    /// shard's sub-requests instead of blocking forever (`None` = block).
    pub io_timeout: Option<Duration>,
    /// `TCP_NODELAY` on shard connections (default on — frontier frames
    /// are latency-sensitive).
    pub nodelay: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_frame: DEFAULT_MAX_FRAME,
            connect_retries: 3,
            retry_backoff: Duration::from_millis(10),
            io_timeout: Some(Duration::from_secs(30)),
            nodelay: true,
        }
    }
}

/// The `net.*` metric family, resolved once from the router's registry.
struct NetMetrics {
    /// `net.bytes.out` — frame bytes written to shard connections.
    bytes_out: Arc<Counter>,
    /// `net.bytes.in` — frame bytes read from shard connections.
    bytes_in: Arc<Counter>,
    /// `net.encode.time` — per-exchange frame encoding latency.
    encode_time: Arc<Histogram>,
    /// `net.decode.time` — per-reply decode latency.
    decode_time: Arc<Histogram>,
    /// `net.rpc.time` — per-shard scatter→gather round-trip latency.
    rpc_time: Arc<Histogram>,
    /// `net.reconnects` — successful re-dials after a connection was lost.
    reconnects: Arc<Counter>,
    /// `net.connections` — shard connections currently open.
    connections: Arc<Gauge>,
}

impl NetMetrics {
    fn new(registry: &Registry) -> Self {
        NetMetrics {
            bytes_out: registry.counter("net.bytes.out"),
            bytes_in: registry.counter("net.bytes.in"),
            encode_time: registry.histogram("net.encode.time"),
            decode_time: registry.histogram("net.decode.time"),
            rpc_time: registry.histogram("net.rpc.time"),
            reconnects: registry.counter("net.reconnects"),
            connections: registry.gauge("net.connections"),
        }
    }
}

/// One shard's connection slot.
struct Conn {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Whether this slot ever held a live connection (a successful dial
    /// after that counts as a *re*-connect).
    ever_connected: bool,
}

/// A [`ShardTransport`] whose shards are [`ShardHost`](super::ShardHost)
/// daemons reached over TCP. Build a router on top of it with
/// [`ShardedEngine::connect`].
pub struct TcpTransport<X, Y> {
    conns: Vec<Mutex<Conn>>,
    queues: Vec<Mutex<Vec<WireRequest<X>>>>,
    config: TcpConfig,
    metrics: NetMetrics,
    marker: PhantomData<fn() -> (X, Y)>,
}

impl<X: WireScalar, Y: WireScalar> TcpTransport<X, Y> {
    /// Dials every shard host once (so a bad address fails here, not at
    /// the first flush) and returns the transport. Later connection
    /// losses are re-dialed lazily per exchange.
    fn dial(addrs: &[SocketAddr], config: TcpConfig, metrics: NetMetrics) -> std::io::Result<Self> {
        let transport = TcpTransport {
            conns: addrs
                .iter()
                .map(|&addr| Mutex::new(Conn { addr, stream: None, ever_connected: false }))
                .collect(),
            queues: addrs.iter().map(|_| Mutex::new(Vec::new())).collect(),
            config,
            metrics,
            marker: PhantomData,
        };
        for s in 0..transport.conns.len() {
            let mut conn = crate::engine::lock(&transport.conns[s]);
            transport.ensure_connected(&mut conn)?;
        }
        Ok(transport)
    }

    /// Connects `conn` if it is down, with backoff between retries.
    fn ensure_connected(&self, conn: &mut Conn) -> std::io::Result<()> {
        if conn.stream.is_some() {
            return Ok(());
        }
        let mut delay = self.config.retry_backoff;
        let mut attempt = 0;
        loop {
            match TcpStream::connect(conn.addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(self.config.nodelay);
                    let _ = stream.set_read_timeout(self.config.io_timeout);
                    let _ = stream.set_write_timeout(self.config.io_timeout);
                    if conn.ever_connected {
                        self.metrics.reconnects.inc();
                    }
                    conn.ever_connected = true;
                    conn.stream = Some(stream);
                    self.metrics.connections.add(1);
                    return Ok(());
                }
                Err(e) => {
                    if attempt >= self.config.connect_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    std::thread::sleep(delay);
                    delay *= 2;
                }
            }
        }
    }

    /// Drops `conn`'s stream after a failure so the next exchange
    /// re-dials.
    fn disconnect(&self, conn: &mut Conn) {
        if let Some(stream) = conn.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
            self.metrics.connections.sub(1);
        }
    }

    /// The whole scatter→gather round trip for one shard: write every
    /// queued frontier + a flush frame, then read one reply per frontier
    /// and the host's `Done` summary. Any failure along the way fails the
    /// not-yet-answered sub-requests with a `shard <s>:`-prefixed
    /// `KernelFailed` — one reply per live sub-request, always.
    fn exchange_shard(
        &self,
        s: usize,
        batch: Vec<WireRequest<X>>,
    ) -> (Vec<ShardMsg<X, Y>>, Option<FlushOutcome>) {
        // Fails every sub-request that has no reply yet — the invariant is
        // one reply per routed sub-request, whatever broke.
        let fail_unanswered = |replies: &mut Vec<ShardMsg<X, Y>>, msg: &str| {
            for req in &batch {
                if !replies.iter().any(|m| m.request() == req.request) {
                    replies.push(ShardMsg::error(
                        req.request,
                        s,
                        EngineError::KernelFailed(format!("shard {s}: {msg}")),
                    ));
                }
            }
        };
        let mut replies = Vec::with_capacity(batch.len());
        let t_rpc = Instant::now();
        let mut conn = crate::engine::lock(&self.conns[s]);
        if let Err(e) = self.ensure_connected(&mut conn) {
            fail_unanswered(&mut replies, &format!("connect {}: {e}", conn.addr));
            return (replies, None);
        }

        // Scatter: encode all frames into one buffer, one write.
        let t_encode = Instant::now();
        let mut buf = Vec::new();
        for req in &batch {
            // Recompute the budget at write time: queue wait since submit
            // is clamped out, and a budget that is already exhausted
            // travels as zero (the host resolves it `DeadlineExceeded`
            // without touching its engine).
            let budget = req
                .deadline
                .map(|d| d.saturating_duration_since(Instant::now()).as_micros() as u64)
                .or(req.deadline_micros);
            let frame: Frame<X, Y> = Frame::Frontier(super::codec::wire_frontier(
                req.request,
                s,
                req.slice.clone(),
                budget,
                req.mask.clone(),
                req.algorithm,
            ));
            if let Err(e) = encode_frame(&frame, &mut buf, self.config.max_frame) {
                // An unencodable frontier (oversize) fails only its own
                // request; the rest of the batch still travels.
                replies.push(ShardMsg::error(
                    req.request,
                    s,
                    EngineError::KernelFailed(format!("shard {s}: encode: {e}")),
                ));
            }
        }
        let flush: Frame<X, Y> = Frame::Flush;
        if encode_frame(&flush, &mut buf, self.config.max_frame).is_err() {
            fail_unanswered(&mut replies, "encode: flush frame");
            return (replies, None);
        }
        self.metrics.encode_time.record_duration(t_encode.elapsed());
        // Oversize casualties were already failed above; everything else
        // expects exactly one reply.
        let expect: Vec<&WireRequest<X>> =
            batch.iter().filter(|r| !replies.iter().any(|m| m.request() == r.request)).collect();

        let stream = conn.stream.as_mut().expect("just connected");
        if let Err(e) = stream.write_all(&buf) {
            self.disconnect(&mut conn);
            fail_unanswered(&mut replies, &format!("write: {e}"));
            return (replies, None);
        }
        self.metrics.bytes_out.add(buf.len() as u64);

        // Gather: one reply per live frontier, then the Done summary.
        let mut got: usize = 0;
        let mut done: Option<FlushOutcome> = None;
        loop {
            let t_decode = Instant::now();
            let frame = match read_frame::<X, Y, _>(stream, self.config.max_frame) {
                Ok(Some((frame, n))) => {
                    self.metrics.bytes_in.add(n as u64);
                    self.metrics.decode_time.record_duration(t_decode.elapsed());
                    frame
                }
                Ok(None) => {
                    self.disconnect(&mut conn);
                    fail_unanswered(&mut replies, "connection closed by host");
                    break;
                }
                Err(e) => {
                    self.disconnect(&mut conn);
                    fail_unanswered(&mut replies, &format!("read: {e}"));
                    break;
                }
            };
            match frame {
                Frame::Partial { request, shard, partial } => {
                    // Per-reply deadline check: a partial gathered after
                    // its request's deadline is already worthless.
                    let late = expect
                        .iter()
                        .find(|r| r.request == request)
                        .and_then(|r| r.deadline)
                        .is_some_and(|d| Instant::now() >= d);
                    if late {
                        replies.push(ShardMsg::error(
                            request,
                            shard,
                            EngineError::DeadlineExceeded,
                        ));
                    } else {
                        replies.push(ShardMsg::partial(request, shard, partial));
                    }
                    got += 1;
                }
                Frame::Error { request, shard, error } => {
                    // Attribute remote failures to their shard.
                    let error = match error {
                        EngineError::KernelFailed(msg) => {
                            EngineError::KernelFailed(format!("shard {shard}: {msg}"))
                        }
                        other => other,
                    };
                    replies.push(ShardMsg::error(request, shard, error));
                    got += 1;
                }
                Frame::Done { lanes, requests, execute_micros, .. } => {
                    if got < expect.len() {
                        fail_unanswered(&mut replies, "host replied short");
                    }
                    done = Some(FlushOutcome {
                        lanes: lanes as usize,
                        requests: requests as usize,
                        timings: crate::timing::FlushTimings {
                            execute: Duration::from_micros(execute_micros),
                            ..Default::default()
                        },
                        ..Default::default()
                    });
                    break;
                }
                Frame::Frontier(_) | Frame::Flush | Frame::Goodbye => {
                    self.disconnect(&mut conn);
                    fail_unanswered(&mut replies, "protocol violation from host");
                    break;
                }
            }
        }
        self.metrics.rpc_time.record_duration(t_rpc.elapsed());
        (replies, done)
    }
}

impl<X, Y> ShardTransport<X, Y> for TcpTransport<X, Y>
where
    X: WireScalar,
    Y: WireScalar,
{
    fn num_shards(&self) -> usize {
        self.conns.len()
    }

    fn enqueue(&self, request: WireRequest<X>) {
        crate::engine::lock(&self.queues[request.shard]).push(request);
    }

    fn queued(&self, shard: usize) -> usize {
        crate::engine::lock(&self.queues[shard]).len()
    }

    fn involved(&self) -> Vec<usize> {
        (0..self.queues.len()).filter(|&s| self.queued(s) > 0).collect()
    }

    fn retire(&self, ids: &[u64]) {
        for queue in &self.queues {
            crate::engine::lock(queue).retain(|req| !ids.contains(&req.request));
        }
    }

    fn exchange(&self, down: &[Option<String>], retired: &[u64]) -> Exchange<X, Y> {
        let shards = self.conns.len();
        let mut per_shard = vec![FlushOutcome::default(); shards];
        let mut shards_flushed = 0;
        let mut replies = Vec::new();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (s, queue) in self.queues.iter().enumerate() {
                let batch: Vec<WireRequest<X>> = {
                    let mut queue = crate::engine::lock(queue);
                    queue.drain(..).filter(|req| !retired.contains(&req.request)).collect()
                };
                if batch.is_empty() {
                    continue;
                }
                // An injected outage never reaches the wire: the downed
                // shard's sub-requests fail with the same shape a broken
                // connection produces.
                if let Some(msg) = &down[s] {
                    for req in &batch {
                        replies.push(ShardMsg::error(
                            req.request,
                            s,
                            EngineError::KernelFailed(format!("shard {s}: {msg}")),
                        ));
                    }
                    continue;
                }
                handles.push((s, scope.spawn(move || self.exchange_shard(s, batch))));
            }
            for (s, handle) in handles {
                let (shard_replies, done) = handle.join().expect("shard exchange thread panicked");
                replies.extend(shard_replies);
                if let Some(outcome) = done {
                    per_shard[s] = outcome;
                    shards_flushed += 1;
                }
            }
        });
        Exchange { replies, per_shard, shards_flushed, execute_time: t0.elapsed() }
    }

    fn shard_stats(&self, _shard: usize) -> Option<EngineStats> {
        None
    }

    fn shard_obs(&self, _shard: usize) -> Option<&Registry> {
        None
    }
}

impl<A, X, S> ShardedEngine<A, X, S>
where
    A: Scalar,
    X: WireScalar,
    S: Semiring<A, X> + Clone + 'static,
    S::Output: WireScalar,
{
    /// Builds a router whose shards are [`ShardHost`](super::ShardHost)
    /// daemons: `addrs[s]` serves the columns of `plan.range(s)`. Dials
    /// every host once before returning (so a dead address fails fast);
    /// later outages are isolated per shard and re-dialed with backoff.
    ///
    /// The routing, merge, and failure semantics are identical to
    /// [`ShardedEngine::partition`] — the shard property suite asserts the
    /// results are bit-identical across transports.
    pub fn connect(
        plan: ShardPlan,
        nrows: usize,
        semiring: S,
        addrs: &[SocketAddr],
        config: TcpConfig,
        obs: ObsConfig,
    ) -> std::io::Result<Self> {
        assert_eq!(
            addrs.len(),
            plan.num_shards(),
            "plan has {} shards but {} host addresses were given",
            plan.num_shards(),
            addrs.len()
        );
        let registry = Registry::new(obs);
        let metrics = NetMetrics::new(&registry);
        let transport = TcpTransport::<X, S::Output>::dial(addrs, config, metrics)?;
        Ok(Self::from_transport(plan, nrows, semiring, registry, Box::new(transport)))
    }
}
