//! The wire codec: hand-rolled length-prefixed little-endian framing for
//! the shard protocol.
//!
//! One frame = a 10-byte header (`magic | version | tag | payload length`)
//! followed by the payload. Every multi-byte quantity is little-endian;
//! scalars are tagged (see [`WireScalar`]) so a router and a host compiled
//! for different semirings fail with [`DecodeError::ScalarMismatch`]
//! instead of reinterpreting bytes. Decoding never panics: truncation, bad
//! magic, version or tag mismatches, over-limit frames, and inconsistent
//! payloads (out-of-range indices, bad mask words, invalid UTF-8) all
//! surface as a typed [`DecodeError`].
//!
//! See the [module docs](super) for the full frame layout table.

use std::io::{self, Read, Write};
use std::sync::Arc;

use sparse_substrate::{MaskBits, Scalar, SparseVec};

use crate::batch::BatchAlgorithmKind;
use crate::engine::EngineError;
use crate::masked::MaskMode;
use crate::shard::ShardMsg;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SMSV";
/// Wire protocol version carried by every frame header. Version 2 added the
/// discovery/health frames (`Hello`/`Welcome`, `Ping`/`Pong`) and made
/// `Partial` index order a protocol invariant (encoded sorted, rejected at
/// decode when not strictly increasing).
pub const VERSION: u8 = 2;
/// Bytes of `magic | version | tag | payload_len: u32`.
pub const HEADER_LEN: usize = 10;
/// Default upper bound on one frame's payload (64 MiB). Both sides of a
/// connection enforce it: the encoder refuses to build an oversize frame
/// and the decoder refuses to buffer one.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

const TAG_FRONTIER: u8 = 1;
const TAG_PARTIAL: u8 = 2;
const TAG_ERROR: u8 = 3;
const TAG_FLUSH: u8 = 4;
const TAG_GOODBYE: u8 = 5;
const TAG_DONE: u8 = 6;
const TAG_HELLO: u8 = 7;
const TAG_WELCOME: u8 = 8;
const TAG_PING: u8 = 9;
const TAG_PONG: u8 = 10;

/// Why a frame could not be decoded (or, for [`DecodeError::Oversize`],
/// encoded). Every variant is a protocol-level fault a peer can trigger;
/// none of them panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The first four bytes were not [`MAGIC`] — not this protocol.
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion(u8),
    /// Unknown frame tag byte.
    BadTag(u8),
    /// The frame's scalar tag does not match the expected [`WireScalar`]
    /// type — router and host were compiled for different semirings.
    ScalarMismatch {
        /// Tag the decoder expected for this slot.
        expected: u8,
        /// Tag found on the wire.
        got: u8,
    },
    /// The buffer or stream ended inside a frame.
    Truncated,
    /// The header declares a payload larger than the configured limit.
    Oversize {
        /// Declared payload length.
        len: usize,
        /// Configured limit it exceeds.
        limit: usize,
    },
    /// Structurally invalid payload (index out of range, inconsistent mask
    /// words, unknown enum byte, invalid UTF-8, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            DecodeError::ScalarMismatch { expected, got } => {
                write!(f, "scalar tag mismatch: expected {expected}, got {got}")
            }
            DecodeError::Truncated => f.write_str("frame truncated"),
            DecodeError::Oversize { len, limit } => {
                write!(f, "frame payload of {len} bytes exceeds the {limit}-byte limit")
            }
            DecodeError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A stream-level failure: either the socket failed or the peer sent bytes
/// that do not decode.
#[derive(Debug)]
pub enum WireError {
    /// The underlying read or write failed.
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame.
    Decode(DecodeError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

/// A scalar type with a fixed little-endian wire representation. The tag
/// byte travels in every `Frontier`/`Partial` frame so mismatched peers
/// fail loudly ([`DecodeError::ScalarMismatch`]) instead of reinterpreting
/// bit patterns.
pub trait WireScalar: Scalar {
    /// Type tag carried on the wire.
    const TAG: u8;
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Appends the little-endian encoding.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Reads one value from the cursor.
    fn read_le(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

macro_rules! wire_scalar {
    ($ty:ty, $tag:expr, $width:expr) => {
        impl WireScalar for $ty {
            const TAG: u8 = $tag;
            const WIDTH: usize = $width;
            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let bytes = r.bytes($width)?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("width-checked slice")))
            }
        }
    };
}

wire_scalar!(f64, 1, 8);
wire_scalar!(f32, 2, 4);
wire_scalar!(u64, 3, 8);
wire_scalar!(u32, 4, 4);
wire_scalar!(i64, 5, 8);
wire_scalar!(i32, 6, 4);

impl WireScalar for usize {
    const TAG: u8 = 7;
    const WIDTH: usize = 8;
    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn read_le(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::Corrupt("usize value overflows platform"))
    }
}

impl WireScalar for bool {
    const TAG: u8 = 8;
    const WIDTH: usize = 1;
    fn write_le(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn read_le(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Corrupt("bool byte not 0 or 1")),
        }
    }
}

/// A `Frontier` plus the sidecars the in-process router passes out of band:
/// the output mask (rows, shared by every shard) and the batched-algorithm
/// hint. On the wire they are part of the frame; [`ShardMsg`] stays the
/// mask-free core protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrontier<X> {
    /// Router-unique request id, echoed by the reply.
    pub request: u64,
    /// Destination shard.
    pub shard: usize,
    /// The frontier slice, re-based to the shard's column range.
    pub slice: SparseVec<X>,
    /// Remaining deadline budget in microseconds (relative — the host
    /// re-anchors it to a local `Instant` on receive).
    pub deadline_micros: Option<u64>,
    /// Output mask sidecar (full output height, shared by all shards).
    pub mask: Option<(MaskBits, MaskMode)>,
    /// Batched-algorithm hint sidecar.
    pub algorithm: Option<BatchAlgorithmKind>,
}

/// Everything that can travel on a shard connection: the three [`ShardMsg`]
/// variants plus the control frames (`Flush` = "execute everything queued
/// on this connection", `Done` = the host's flush summary, `Goodbye` =
/// orderly close).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<X, Y> {
    /// Router → host: one request's frontier slice (+ sidecars).
    Frontier(WireFrontier<X>),
    /// Host → router: one full-height partial product.
    Partial {
        /// Echoed request id.
        request: u64,
        /// Responding shard.
        shard: usize,
        /// The partial product.
        partial: SparseVec<Y>,
    },
    /// Host → router: the sub-request failed.
    Error {
        /// Echoed request id.
        request: u64,
        /// Failing shard.
        shard: usize,
        /// What went wrong.
        error: EngineError,
    },
    /// Router → host: flush the engine and reply to every frontier
    /// received on this connection since the last flush.
    Flush,
    /// Host → router: flush finished; sent after the per-request replies
    /// with the host engine's execution summary.
    Done {
        /// Responding shard.
        shard: usize,
        /// Lanes the host engine executed this flush.
        lanes: u64,
        /// Requests the host engine drained this flush.
        requests: u64,
        /// Host-side kernel wall time, microseconds.
        execute_micros: u64,
    },
    /// Either direction: orderly connection close.
    Goodbye,
    /// Router → host: discovery probe sent immediately after dialing. The
    /// host answers with [`Frame::Welcome`] before any traffic flows.
    Hello,
    /// Host → router: the host's advertisement, verified against the
    /// router's `ShardPlan` at dial time — a host serving the wrong shard,
    /// column range, height, or matrix structure is rejected with a typed
    /// `PlanMismatch` instead of silently corrupting merges.
    Welcome {
        /// Shard id this host serves.
        shard: usize,
        /// First global column of the host's slice (inclusive).
        col_start: usize,
        /// One past the last global column of the host's slice.
        col_end: usize,
        /// Output height (rows of the original matrix).
        nrows: usize,
        /// Structural fingerprint of the host's matrix slice
        /// (`CscMatrix::fingerprint`).
        fingerprint: u64,
    },
    /// Router → host: liveness probe from the background heartbeat. The
    /// host echoes the nonce in a [`Frame::Pong`].
    Ping {
        /// Opaque echo token correlating probe and reply.
        nonce: u64,
    },
    /// Host → router: heartbeat reply.
    Pong {
        /// The nonce from the matching [`Frame::Ping`].
        nonce: u64,
    },
}

impl<X: Scalar, Y: Scalar> Frame<X, Y> {
    /// Wraps a router→host reply-shaped [`ShardMsg`] (`Partial`/`Error`) or
    /// a bare frontier (no sidecars) as a frame.
    pub fn from_msg(msg: ShardMsg<X, Y>) -> Self {
        match msg {
            ShardMsg::Frontier { request, shard, len, indices, values, deadline_micros } => {
                Frame::Frontier(WireFrontier {
                    request,
                    shard,
                    slice: SparseVec::from_parts(len, indices, values)
                        .expect("ShardMsg frontier was a valid vector"),
                    deadline_micros,
                    mask: None,
                    algorithm: None,
                })
            }
            ShardMsg::Partial { request, shard, len, indices, values } => Frame::Partial {
                request,
                shard,
                partial: SparseVec::from_parts(len, indices, values)
                    .expect("ShardMsg partial was a valid vector"),
            },
            ShardMsg::Error { request, shard, error } => Frame::Error { request, shard, error },
        }
    }

    /// Unwraps a protocol frame back into its [`ShardMsg`] (sidecars
    /// dropped). `None` for control frames.
    pub fn into_msg(self) -> Option<ShardMsg<X, Y>> {
        match self {
            Frame::Frontier(w) => {
                Some(ShardMsg::frontier(w.request, w.shard, w.slice, w.deadline_micros))
            }
            Frame::Partial { request, shard, partial } => {
                Some(ShardMsg::partial(request, shard, partial))
            }
            Frame::Error { request, shard, error } => Some(ShardMsg::error(request, shard, error)),
            Frame::Flush
            | Frame::Done { .. }
            | Frame::Goodbye
            | Frame::Hello
            | Frame::Welcome { .. }
            | Frame::Ping { .. }
            | Frame::Pong { .. } => None,
        }
    }
}

/// Bounds-checked little-endian cursor over a payload slice. Public only
/// because [`WireScalar::read_le`] takes it; not constructible outside the
/// codec.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8-byte slice")))
    }

    fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?)
            .map_err(|_| DecodeError::Corrupt("length field overflows platform"))
    }

    /// A count of items each at least `width` bytes wide, rejected early
    /// when the payload cannot possibly hold it (so a corrupt count cannot
    /// drive a huge allocation).
    fn count(&mut self, width: usize) -> Result<usize, DecodeError> {
        let n = self.usize()?;
        if n.checked_mul(width.max(1)).is_none_or(|total| total > self.remaining()) {
            return Err(DecodeError::Truncated);
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::Corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn mask_mode_byte(mode: MaskMode) -> u8 {
    match mode {
        MaskMode::Keep => 1,
        MaskMode::Complement => 2,
    }
}

fn algorithm_byte(kind: Option<BatchAlgorithmKind>) -> u8 {
    match kind {
        None => 0,
        Some(BatchAlgorithmKind::Bucket) => 1,
        Some(BatchAlgorithmKind::Naive) => 2,
        Some(BatchAlgorithmKind::CombBlasRowSplit) => 3,
        Some(BatchAlgorithmKind::Adaptive) => 4,
    }
}

fn algorithm_from_byte(b: u8) -> Result<Option<BatchAlgorithmKind>, DecodeError> {
    Ok(match b {
        0 => None,
        1 => Some(BatchAlgorithmKind::Bucket),
        2 => Some(BatchAlgorithmKind::Naive),
        3 => Some(BatchAlgorithmKind::CombBlasRowSplit),
        4 => Some(BatchAlgorithmKind::Adaptive),
        _ => return Err(DecodeError::Corrupt("unknown algorithm byte")),
    })
}

fn error_code(e: &EngineError) -> u8 {
    match e {
        EngineError::Cancelled => 1,
        EngineError::DeadlineExceeded => 2,
        EngineError::Overloaded => 3,
        EngineError::KernelFailed(_) => 4,
        EngineError::Disconnected => 5,
        EngineError::WaitTimeout => 6,
        EngineError::AlreadyTaken => 7,
    }
}

fn spvec_payload<T: WireScalar>(out: &mut Vec<u8>, v: &SparseVec<T>) {
    put_u64(out, v.len() as u64);
    put_u64(out, v.nnz() as u64);
    for &i in v.indices() {
        put_u64(out, i as u64);
    }
    for x in v.values() {
        x.write_le(out);
    }
}

fn read_spvec<T: WireScalar>(r: &mut Reader<'_>) -> Result<SparseVec<T>, DecodeError> {
    let len = r.usize()?;
    let nnz = r.count(8 + T::WIDTH)?;
    let mut indices = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        indices.push(r.usize()?);
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(T::read_le(r)?);
    }
    SparseVec::from_parts(len, indices, values)
        .map_err(|_| DecodeError::Corrupt("vector index out of range"))
}

/// Appends the encoding of `frame` to `out`, returning the encoded byte
/// count. Fails with [`DecodeError::Oversize`] when the payload would
/// exceed `max_frame` (or `u32::MAX`) — the encoder enforces the same
/// bound its peer's decoder will.
pub fn encode_frame<X: WireScalar, Y: WireScalar>(
    frame: &Frame<X, Y>,
    out: &mut Vec<u8>,
    max_frame: usize,
) -> Result<usize, DecodeError> {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    let mut payload = Vec::new();
    let tag = match frame {
        Frame::Frontier(w) => {
            put_u64(&mut payload, w.request);
            put_u32(&mut payload, w.shard as u32);
            payload.push(X::TAG);
            spvec_payload(&mut payload, &w.slice);
            match w.deadline_micros {
                None => payload.push(0),
                Some(budget) => {
                    payload.push(1);
                    put_u64(&mut payload, budget);
                }
            }
            match &w.mask {
                None => payload.push(0),
                Some((bits, mode)) => {
                    payload.push(mask_mode_byte(*mode));
                    put_u64(&mut payload, bits.len() as u64);
                    put_u64(&mut payload, bits.words().len() as u64);
                    for &word in bits.words() {
                        put_u64(&mut payload, word);
                    }
                }
            }
            payload.push(algorithm_byte(w.algorithm));
            TAG_FRONTIER
        }
        Frame::Partial { request, shard, partial } => {
            put_u64(&mut payload, *request);
            put_u32(&mut payload, *shard as u32);
            payload.push(Y::TAG);
            // Partial index order is a protocol invariant (the decoder
            // rejects anything non-monotone as hostile), so canonicalize
            // kernel output that arrives unsorted. Values ride along with
            // their indices — entry content is untouched.
            if partial.is_sorted() {
                spvec_payload(&mut payload, partial);
            } else {
                spvec_payload(&mut payload, &partial.sorted());
            }
            TAG_PARTIAL
        }
        Frame::Error { request, shard, error } => {
            put_u64(&mut payload, *request);
            put_u32(&mut payload, *shard as u32);
            payload.push(error_code(error));
            if let EngineError::KernelFailed(msg) = error {
                put_u32(&mut payload, msg.len() as u32);
                payload.extend_from_slice(msg.as_bytes());
            }
            TAG_ERROR
        }
        Frame::Flush => TAG_FLUSH,
        Frame::Goodbye => TAG_GOODBYE,
        Frame::Done { shard, lanes, requests, execute_micros } => {
            put_u32(&mut payload, *shard as u32);
            put_u64(&mut payload, *lanes);
            put_u64(&mut payload, *requests);
            put_u64(&mut payload, *execute_micros);
            TAG_DONE
        }
        Frame::Hello => TAG_HELLO,
        Frame::Welcome { shard, col_start, col_end, nrows, fingerprint } => {
            put_u32(&mut payload, *shard as u32);
            put_u64(&mut payload, *col_start as u64);
            put_u64(&mut payload, *col_end as u64);
            put_u64(&mut payload, *nrows as u64);
            put_u64(&mut payload, *fingerprint);
            TAG_WELCOME
        }
        Frame::Ping { nonce } => {
            put_u64(&mut payload, *nonce);
            TAG_PING
        }
        Frame::Pong { nonce } => {
            put_u64(&mut payload, *nonce);
            TAG_PONG
        }
    };
    if payload.len() > max_frame || u32::try_from(payload.len()).is_err() {
        out.truncate(start);
        return Err(DecodeError::Oversize { len: payload.len(), limit: max_frame });
    }
    out.push(tag);
    put_u32(out, payload.len() as u32);
    out.extend_from_slice(&payload);
    Ok(out.len() - start)
}

/// Decodes one complete frame from the front of `buf`, returning it and
/// the bytes consumed. `buf` must hold the whole frame
/// ([`DecodeError::Truncated`] otherwise); streaming callers use
/// [`read_frame`].
pub fn decode_frame<X: WireScalar, Y: WireScalar>(
    buf: &[u8],
    max_frame: usize,
) -> Result<(Frame<X, Y>, usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let magic: [u8; 4] = buf[..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    if buf[4] != VERSION {
        return Err(DecodeError::BadVersion(buf[4]));
    }
    let tag = buf[5];
    let payload_len =
        u32::from_le_bytes(buf[6..HEADER_LEN].try_into().expect("4-byte slice")) as usize;
    if payload_len > max_frame {
        return Err(DecodeError::Oversize { len: payload_len, limit: max_frame });
    }
    if buf.len() < HEADER_LEN + payload_len {
        return Err(DecodeError::Truncated);
    }
    let frame = decode_payload(tag, &buf[HEADER_LEN..HEADER_LEN + payload_len])?;
    Ok((frame, HEADER_LEN + payload_len))
}

fn decode_payload<X: WireScalar, Y: WireScalar>(
    tag: u8,
    payload: &[u8],
) -> Result<Frame<X, Y>, DecodeError> {
    let mut r = Reader::new(payload);
    let frame = match tag {
        TAG_FRONTIER => {
            let request = r.u64()?;
            let shard = r.u32()? as usize;
            let xtag = r.u8()?;
            if xtag != X::TAG {
                return Err(DecodeError::ScalarMismatch { expected: X::TAG, got: xtag });
            }
            let slice = read_spvec::<X>(&mut r)?;
            let deadline_micros = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return Err(DecodeError::Corrupt("unknown deadline flag")),
            };
            let mask = match r.u8()? {
                0 => None,
                flag @ (1 | 2) => {
                    let len = r.usize()?;
                    let nwords = r.count(8)?;
                    let mut words = Vec::with_capacity(nwords);
                    for _ in 0..nwords {
                        words.push(r.u64()?);
                    }
                    let bits = MaskBits::from_words(len, words)
                        .map_err(|_| DecodeError::Corrupt("inconsistent mask words"))?;
                    let mode = if flag == 1 { MaskMode::Keep } else { MaskMode::Complement };
                    Some((bits, mode))
                }
                _ => return Err(DecodeError::Corrupt("unknown mask flag")),
            };
            let algorithm = algorithm_from_byte(r.u8()?)?;
            Frame::Frontier(WireFrontier {
                request,
                shard,
                slice,
                deadline_micros,
                mask,
                algorithm,
            })
        }
        TAG_PARTIAL => {
            let request = r.u64()?;
            let shard = r.u32()? as usize;
            let ytag = r.u8()?;
            if ytag != Y::TAG {
                return Err(DecodeError::ScalarMismatch { expected: Y::TAG, got: ytag });
            }
            let partial = read_spvec::<Y>(&mut r)?;
            // A hostile or buggy host could otherwise inject duplicate or
            // shuffled rows into the merge; `read_spvec` already rejected
            // out-of-range indices via `SparseVec::from_parts`.
            if !partial.is_sorted() {
                return Err(DecodeError::Corrupt("partial indices not strictly increasing"));
            }
            Frame::Partial { request, shard, partial }
        }
        TAG_ERROR => {
            let request = r.u64()?;
            let shard = r.u32()? as usize;
            let error = match r.u8()? {
                1 => EngineError::Cancelled,
                2 => EngineError::DeadlineExceeded,
                3 => EngineError::Overloaded,
                4 => {
                    let len = r.u32()? as usize;
                    let bytes = r.bytes(len)?;
                    let msg = std::str::from_utf8(bytes)
                        .map_err(|_| DecodeError::Corrupt("error message not UTF-8"))?;
                    EngineError::KernelFailed(msg.to_string())
                }
                5 => EngineError::Disconnected,
                6 => EngineError::WaitTimeout,
                7 => EngineError::AlreadyTaken,
                _ => return Err(DecodeError::Corrupt("unknown error code")),
            };
            Frame::Error { request, shard, error }
        }
        TAG_FLUSH => Frame::Flush,
        TAG_GOODBYE => Frame::Goodbye,
        TAG_DONE => {
            let shard = r.u32()? as usize;
            let lanes = r.u64()?;
            let requests = r.u64()?;
            let execute_micros = r.u64()?;
            Frame::Done { shard, lanes, requests, execute_micros }
        }
        TAG_HELLO => Frame::Hello,
        TAG_WELCOME => {
            let shard = r.u32()? as usize;
            let col_start = r.usize()?;
            let col_end = r.usize()?;
            let nrows = r.usize()?;
            let fingerprint = r.u64()?;
            if col_start > col_end {
                return Err(DecodeError::Corrupt("welcome column range inverted"));
            }
            Frame::Welcome { shard, col_start, col_end, nrows, fingerprint }
        }
        TAG_PING => Frame::Ping { nonce: r.u64()? },
        TAG_PONG => Frame::Pong { nonce: r.u64()? },
        other => return Err(DecodeError::BadTag(other)),
    };
    r.finish()?;
    Ok(frame)
}

/// Encodes `frame` and writes it to `w`. Returns the bytes written.
pub fn write_frame<X: WireScalar, Y: WireScalar, W: Write>(
    w: &mut W,
    frame: &Frame<X, Y>,
    max_frame: usize,
) -> Result<usize, WireError> {
    let mut buf = Vec::new();
    encode_frame(frame, &mut buf, max_frame)?;
    w.write_all(&buf)?;
    Ok(buf.len())
}

/// What [`read_frame`] yields: `Ok(Some((frame, bytes_read)))`, `Ok(None)`
/// for a clean end-of-stream, or a [`WireError`].
pub type FrameRead<X, Y> = Result<Option<(Frame<X, Y>, usize)>, WireError>;

/// Reads one frame from `r`. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); EOF *inside* a frame is
/// [`DecodeError::Truncated`]. The second tuple element is the bytes read.
pub fn read_frame<X: WireScalar, Y: WireScalar, R: Read>(
    r: &mut R,
    max_frame: usize,
) -> FrameRead<X, Y> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(DecodeError::Truncated.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let magic: [u8; 4] = header[..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic).into());
    }
    if header[4] != VERSION {
        return Err(DecodeError::BadVersion(header[4]).into());
    }
    let payload_len = u32::from_le_bytes(header[6..].try_into().expect("4-byte slice")) as usize;
    if payload_len > max_frame {
        return Err(DecodeError::Oversize { len: payload_len, limit: max_frame }.into());
    }
    let mut payload = vec![0u8; payload_len];
    if let Err(e) = r.read_exact(&mut payload) {
        return if e.kind() == io::ErrorKind::UnexpectedEof {
            Err(DecodeError::Truncated.into())
        } else {
            Err(e.into())
        };
    }
    let frame = decode_payload(header[5], &payload)?;
    Ok(Some((frame, HEADER_LEN + payload_len)))
}

/// Builds the wire frontier for one routed sub-request: the [`ShardMsg`]
/// core plus the mask/algorithm sidecars the in-process router passes by
/// reference.
pub fn wire_frontier<X: Scalar>(
    request: u64,
    shard: usize,
    slice: SparseVec<X>,
    deadline_micros: Option<u64>,
    mask: Option<(Arc<MaskBits>, MaskMode)>,
    algorithm: Option<BatchAlgorithmKind>,
) -> WireFrontier<X> {
    WireFrontier {
        request,
        shard,
        slice,
        deadline_micros,
        mask: mask.map(|(bits, mode)| ((*bits).clone(), mode)),
        algorithm,
    }
}
