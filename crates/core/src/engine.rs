//! The serving front door: an [`Engine`] that coalesces many clients'
//! single-frontier requests into fused batched multiplications — and keeps
//! serving when requests misbehave.
//!
//! The paper's batched kernel amortizes workspace setup and matrix traffic
//! across `k` frontiers — but a library caller had to hand-assemble a
//! [`SparseVecBatch`] to get that win. Serving workloads (personalized
//! PageRank for many users, landmark BFS probes, reachability queries) do
//! not arrive pre-batched: they arrive as **independent requests from
//! independent logical clients**. This module turns the [`crate::ops::Mxv`]
//! descriptor into exactly that serving layer:
//!
//! * [`Engine::load`] / [`Engine::over`] bind a matrix (owned or borrowed)
//!   to a pool of [`crate::ops::PreparedMxv`] descriptors — one per batched
//!   algorithm family, instantiated lazily, workspaces reused across every
//!   flush;
//! * clients open [`Session`]s and submit [`MxvRequest`]s (frontier +
//!   optional output mask + optional algorithm hint + optional deadline),
//!   receiving a [`Ticket`] per request;
//! * the **coalescer** ([`Engine::flush`]) drains the queue, groups
//!   compatible requests (same algorithm family, same mask mode — the
//!   semiring is fixed by the engine's type), fuses each group into
//!   [`SparseVecBatch`] lanes up to the [`EngineConfig::max_lanes`] width
//!   budget, executes **one** masked batched multiplication per group chunk,
//!   and demultiplexes the per-lane results back to the tickets;
//! * requests retired mid-flight — a cancelled [`Ticket`], a closed
//!   [`Session`], an expired deadline — leave the batch before lanes are
//!   assembled, so a slow client that gave up never costs kernel time.
//!
//! # Ticket lifecycle
//!
//! Every submitted request resolves to **exactly one** terminal state; no
//! code path leaves a client blocked forever:
//!
//! ```text
//!            submit
//!              │
//!           Pending ──────── flush demux ───────▶ Ready ──▶ Taken
//!              │
//!              ├─ Ticket::cancel / Session drop ▶ Failed(Cancelled)
//!              ├─ deadline passes               ▶ Failed(DeadlineExceeded)
//!              ├─ queue policy sheds/rejects    ▶ Failed(Overloaded)
//!              ├─ kernel panics / errors        ▶ Failed(KernelFailed)
//!              └─ Engine dropped                ▶ Failed(Disconnected)
//! ```
//!
//! [`Ticket::wait`] blocks until the terminal state and returns
//! `Result<SparseVec, EngineError>`; [`Ticket::wait_timeout`] /
//! [`Ticket::wait_deadline`] bound the block (an [`EngineError::WaitTimeout`]
//! leaves the ticket live — the request may still complete);
//! [`Ticket::try_take`] polls. Once a result is claimed, later claims report
//! [`EngineError::AlreadyTaken`].
//!
//! # Failure semantics
//!
//! A panic inside a fused kernel is **isolated to its flush group**: the
//! execution runs under [`crate::ops::PreparedMxv::try_run_batch`]
//! (`catch_unwind`), the panicking group's pooled descriptor is evicted
//! (its workspaces may be mid-mutation), and the group is retried **once**
//! on the [`crate::NaiveBatch`] oracle kernel — graceful degradation,
//! recorded as `degraded_flushes` in [`crate::stats::EngineStats`]. Only if
//! the retry also fails do the group's tickets resolve as
//! [`EngineError::KernelFailed`]; every other group of the same flush, and
//! every later flush, is unaffected. Internal locks are acquired
//! poison-tolerantly, so an unwound flush cannot wedge other sessions.
//!
//! When the queue is bounded ([`EngineConfig::queue_capacity`]), the
//! [`OverloadPolicy`] decides what a full queue does to a new submission:
//! block the submitter (default), reject the newcomer, or shed the oldest
//! queued requests — shed and rejected tickets resolve as
//! [`EngineError::Overloaded`].
//!
//! Two execution styles share this pipeline:
//!
//! * **synchronous**: `submit` + [`Engine::flush`] — the caller decides when
//!   to fuse (the style `multi_bfs` and `pagerank_personalized_batch` use:
//!   one flush per traversal level);
//! * **thread-driven**: [`Engine::serve`] runs a background flush loop that
//!   fires when [`EngineConfig::max_lanes`] lanes are pending or after
//!   [`EngineConfig::linger`] of quiet, while client threads block on
//!   [`Ticket::wait`]. A flush that panics past its own isolation fails only
//!   the requests it had drained; the loop restarts and keeps serving.
//!
//! # Observability
//!
//! Every engine owns a metrics [`Registry`] ([`Engine::obs`]) holding the
//! `engine.*` counters, queue-depth/widest-flush gauges, per-phase flush
//! latency histograms, queue-wait distribution, and a bounded trace ring of
//! flush decisions (`flush.begin`, `group.fused`, `adaptive.choice`,
//! `degrade.retry`, `kernel.failure`, `overload`, `deadline.expired`).
//! [`Engine::stats`] is a *view* reconstructed from that registry — there is
//! no parallel bookkeeping. Configure (or disable) collection through
//! [`EngineConfig::obs`]; see the [`crate::obs`] module docs for the full
//! metric taxonomy.
//!
//! ```
//! use sparse_substrate::{fixtures, PlusTimes, SparseVec};
//! use spmspv::engine::{Engine, MxvRequest};
//!
//! let a = fixtures::figure1_matrix();
//! let engine = Engine::load(a, PlusTimes); // engine owns the matrix
//! let x = fixtures::figure1_vector();
//!
//! // Three logical clients, one fused multiplication.
//! let tickets: Vec<_> =
//!     (0..3).map(|_| engine.submit(MxvRequest::new(x.clone()))).collect();
//! engine.flush();
//! for t in tickets {
//!     let y: SparseVec<f64> = t.wait().expect("served");
//!     assert!(!y.is_empty());
//! }
//! assert_eq!(engine.stats().fused_batches, 1);
//! ```
//!
//! Results are **bit-identical** to running every request through its own
//! single-vector [`crate::ops::PreparedMxv::run`] call (the engine property
//! test asserts exactly that): under the default sorted options, the fused
//! bucket kernel reduces each lane in the same order as the single-vector
//! kernel.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use sparse_substrate::{
    CscMatrix, MaskBits, Scalar, Semiring, SpaBackend, SparseVec, SparseVecBatch,
};

use crate::algorithm::SpMSpVOptions;
use crate::batch::{BatchAlgorithmKind, BatchRunInfo};
use crate::failpoint;
use crate::masked::MaskMode;
use crate::obs::{self, Counter, Gauge, Histogram, ObsConfig, Registry, Span, TraceKind};
use crate::ops::{Mxv, PreparedMxv};
use crate::stats::{ChoiceCounts, EngineStats};
use crate::timing::FlushTimings;

/// Poison-tolerant lock: a panic while holding an engine lock (an unwound
/// kernel, an injected failpoint) must not wedge every other session, so the
/// engine treats a poisoned mutex as still usable — its invariants are
/// re-established by the flush path's resolution guard, not by the lock.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a request did not (or cannot yet) produce a result. Carried by the
/// ticket's `Failed` terminal state and returned by every [`Ticket`]
/// accessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The request was retired before execution: [`Ticket::cancel`] was
    /// called, or its [`Session`] closed / was dropped.
    Cancelled,
    /// The request's [`MxvRequest::deadline`] passed before a flush could
    /// serve it (checked both before fusing and again at demux time).
    DeadlineExceeded,
    /// The bounded queue was full and the [`OverloadPolicy`] shed this
    /// request (oldest-first) or rejected it outright.
    Overloaded,
    /// Kernel execution failed — a caught panic or an injected failpoint
    /// error — and the one-shot retry on the oracle kernel failed too. The
    /// string is the panic/error message.
    KernelFailed(String),
    /// The engine went away (dropped, or its serve loop died) before the
    /// request was served.
    Disconnected,
    /// [`Ticket::wait_timeout`] / [`Ticket::wait_deadline`] gave up before
    /// the request resolved. Not terminal: the ticket stays live and the
    /// request may still complete.
    WaitTimeout,
    /// The result was already claimed by an earlier
    /// [`Ticket::wait`] / [`Ticket::try_take`].
    AlreadyTaken,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Cancelled => f.write_str("request cancelled before it was served"),
            EngineError::DeadlineExceeded => f.write_str("request deadline exceeded"),
            EngineError::Overloaded => {
                f.write_str("engine overloaded: request shed or rejected by the queue policy")
            }
            EngineError::KernelFailed(msg) => write!(f, "kernel execution failed: {msg}"),
            EngineError::Disconnected => {
                f.write_str("engine disconnected before the request was served")
            }
            EngineError::WaitTimeout => {
                f.write_str("timed out waiting for the result (the request may still complete)")
            }
            EngineError::AlreadyTaken => {
                f.write_str("result already claimed by an earlier wait/try_take")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// What a full bounded queue does to a new submission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the submitter until the queue drains (backpressure) — the
    /// classic closed-loop behavior, and the default.
    #[default]
    Block,
    /// Fail the **new** request immediately with [`EngineError::Overloaded`]
    /// (its ticket is returned already failed; nothing queues). Counted in
    /// [`EngineStats::rejected`].
    Reject,
    /// Fail the **oldest** queued requests with [`EngineError::Overloaded`]
    /// until the newcomer fits — freshest-first serving for workloads where
    /// a stale answer is worthless. Counted in [`EngineStats::shed`].
    ShedOldest,
}

/// Tuning knobs of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Width budget per fused multiplication: a flush splits each compatible
    /// group into chunks of at most this many lanes (`0` = unbounded). Also
    /// the width trigger of the [`Engine::serve`] loop. Bounding the width
    /// keeps the batched kernel's `m × k` lane-SPA within cache reach — the
    /// ROADMAP's batch-perf observation.
    pub max_lanes: usize,
    /// Bound on queued requests; what happens when it is reached is the
    /// [`EngineConfig::overload`] policy's call. `0` = unbounded (the
    /// synchronous style's default).
    pub queue_capacity: usize,
    /// What a full bounded queue does to a new submission.
    pub overload: OverloadPolicy,
    /// How long the [`Engine::serve`] loop waits for more requests to
    /// coalesce before flushing a partially filled batch.
    pub linger: Duration,
    /// Batched algorithm family for requests without an explicit hint.
    pub batch_algorithm: BatchAlgorithmKind,
    /// Kernel tuning options shared by every pooled descriptor.
    pub options: SpMSpVOptions,
    /// Observability configuration for the engine's own [`Registry`]
    /// (reachable via [`Engine::obs`]). Disabling it skips latency
    /// histograms and trace events; the `engine.*` counters keep running so
    /// [`Engine::stats`] stays exact either way.
    pub obs: ObsConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_lanes: 64,
            queue_capacity: 0,
            overload: OverloadPolicy::Block,
            linger: Duration::from_micros(200),
            // Adaptive: each flush resolves the kernel family and SPA
            // backend from the coalesced batch's width and density, so
            // serving traffic auto-tunes without caller hints. What each
            // flush chose is recorded in [`EngineStats::choices`].
            batch_algorithm: BatchAlgorithmKind::Adaptive,
            options: SpMSpVOptions::default(),
            obs: ObsConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Builder-style setter for [`EngineConfig::max_lanes`].
    pub fn max_lanes(mut self, k: usize) -> Self {
        self.max_lanes = k;
        self
    }

    /// Builder-style setter for [`EngineConfig::queue_capacity`].
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Builder-style setter for [`EngineConfig::overload`].
    pub fn overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.overload = policy;
        self
    }

    /// Builder-style setter for [`EngineConfig::linger`].
    pub fn linger(mut self, d: Duration) -> Self {
        self.linger = d;
        self
    }

    /// Builder-style setter for [`EngineConfig::batch_algorithm`].
    pub fn batch_algorithm(mut self, kind: BatchAlgorithmKind) -> Self {
        self.batch_algorithm = kind;
        self
    }

    /// Builder-style setter for [`EngineConfig::options`].
    pub fn options(mut self, options: SpMSpVOptions) -> Self {
        self.options = options;
        self
    }

    /// Builder-style setter for [`EngineConfig::obs`].
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }
}

/// One client request: a frontier, an optional in-kernel output mask, an
/// optional batched-algorithm hint, and an optional deadline. Requests with
/// the same mask *mode* and algorithm family coalesce into one fused
/// multiplication; each request's mask becomes its lane's mask.
#[derive(Debug, Clone)]
pub struct MxvRequest<X> {
    pub(crate) frontier: SparseVec<X>,
    pub(crate) mask: Option<(Arc<MaskBits>, MaskMode)>,
    pub(crate) algorithm: Option<BatchAlgorithmKind>,
    pub(crate) deadline: Option<Instant>,
}

impl<X: Scalar> MxvRequest<X> {
    /// A plain unmasked request under the engine's default algorithm, with
    /// no deadline.
    pub fn new(frontier: SparseVec<X>) -> Self {
        MxvRequest { frontier, mask: None, algorithm: None, deadline: None }
    }

    /// Attaches this request's own output mask (the BFS `¬visited` idiom:
    /// every client carries its private visited set).
    ///
    /// Accepts an owned [`MaskBits`] or an `Arc<MaskBits>`. Iterative
    /// clients that re-submit an evolving mask every round should pass
    /// `Arc::clone(&mask)` — the bitmap then travels through the queue, the
    /// coalescer and the kernel by refcount, and between flushes the
    /// client's `Arc::make_mut` updates stay zero-copy because the engine
    /// has dropped its reference by then.
    pub fn mask(mut self, bits: impl Into<Arc<MaskBits>>, mode: MaskMode) -> Self {
        self.mask = Some((bits.into(), mode));
        self
    }

    /// Pins the batched algorithm family for this request; requests with
    /// different families never fuse.
    pub fn algorithm(mut self, kind: BatchAlgorithmKind) -> Self {
        self.algorithm = kind.into();
        self
    }

    /// Sets an absolute deadline: a flush retires the request with
    /// [`EngineError::DeadlineExceeded`] instead of fusing it once the
    /// deadline has passed, and re-checks at demux time so a result computed
    /// too late is never delivered as if it were fresh.
    pub fn deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// [`MxvRequest::deadline`] expressed as a duration from now.
    pub fn timeout(self, after: Duration) -> Self {
        self.deadline(Instant::now() + after)
    }
}

/// Result slot state shared between a [`Ticket`] and the queue/coalescer.
enum TicketState<Y> {
    Pending,
    Ready(SparseVec<Y>),
    Taken,
    Failed(EngineError),
}

pub(crate) struct TicketShared<Y> {
    state: Mutex<TicketState<Y>>,
    ready: Condvar,
}

impl<Y> TicketShared<Y> {
    pub(crate) fn new() -> Self {
        TicketShared { state: Mutex::new(TicketState::Pending), ready: Condvar::new() }
    }

    pub(crate) fn fulfil(&self, y: SparseVec<Y>) {
        let mut st = lock(&self.state);
        if matches!(*st, TicketState::Pending) {
            *st = TicketState::Ready(y);
            self.ready.notify_all();
        }
    }

    /// Moves a pending ticket to `Failed(err)` and wakes its waiters;
    /// returns whether the ticket was still pending (a resolved ticket
    /// keeps its result — failure never overwrites success).
    pub(crate) fn fail(&self, err: EngineError) -> bool {
        let mut st = lock(&self.state);
        if matches!(*st, TicketState::Pending) {
            *st = TicketState::Failed(err);
            self.ready.notify_all();
            true
        } else {
            false
        }
    }

    pub(crate) fn is_pending(&self) -> bool {
        matches!(*lock(&self.state), TicketState::Pending)
    }
}

/// A claim on one request's result.
///
/// In the synchronous style, call [`Engine::flush`] and then
/// [`Ticket::try_take`]; under [`Engine::serve`], block on [`Ticket::wait`]
/// (or its bounded variants). Every ticket **resolves** — to a value or an
/// [`EngineError`] — even when the request is cancelled, shed, expired, its
/// kernel panics, or the engine is dropped; see the
/// [module docs](self#ticket-lifecycle).
pub struct Ticket<Y> {
    shared: Arc<TicketShared<Y>>,
}

impl<Y> Ticket<Y> {
    /// A ticket resolved by a router (e.g. `spmspv::shard`) rather than an
    /// engine queue, paired with the shared slot the router fulfils.
    pub(crate) fn detached() -> (Self, Arc<TicketShared<Y>>) {
        let shared = Arc::new(TicketShared::new());
        (Ticket { shared: Arc::clone(&shared) }, shared)
    }

    /// Blocks until `deadline` (forever when `None`) for the terminal state.
    fn wait_until(&self, deadline: Option<Instant>) -> Result<SparseVec<Y>, EngineError> {
        let mut st = lock(&self.shared.state);
        loop {
            match std::mem::replace(&mut *st, TicketState::Taken) {
                TicketState::Ready(y) => return Ok(y),
                TicketState::Failed(err) => {
                    *st = TicketState::Failed(err.clone());
                    return Err(err);
                }
                TicketState::Taken => return Err(EngineError::AlreadyTaken),
                TicketState::Pending => {
                    *st = TicketState::Pending;
                    match deadline {
                        None => {
                            st = self.shared.ready.wait(st).unwrap_or_else(PoisonError::into_inner)
                        }
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                return Err(EngineError::WaitTimeout);
                            }
                            let (guard, _) = self
                                .shared
                                .ready
                                .wait_timeout(st, d - now)
                                .unwrap_or_else(PoisonError::into_inner);
                            st = guard;
                        }
                    }
                }
            }
        }
    }

    /// Blocks until the request resolves, consuming the ticket. Every
    /// request does resolve — served, cancelled, expired, shed, failed, or
    /// disconnected — so this cannot hang on a dead engine (dropping the
    /// [`Engine`] fails all pending tickets).
    ///
    /// Only sensible when something will flush — the [`Engine::serve`] loop,
    /// or another thread calling [`Engine::flush`].
    pub fn wait(self) -> Result<SparseVec<Y>, EngineError> {
        self.wait_until(None)
    }

    /// [`Ticket::wait`] bounded by a duration. On [`EngineError::WaitTimeout`]
    /// the ticket is untouched and still live: the caller may wait again,
    /// poll [`Ticket::try_take`], or [`Ticket::cancel`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<SparseVec<Y>, EngineError> {
        self.wait_until(Some(Instant::now() + timeout))
    }

    /// [`Ticket::wait_timeout`] against an absolute deadline — the natural
    /// companion of [`MxvRequest::deadline`].
    pub fn wait_deadline(&self, deadline: Instant) -> Result<SparseVec<Y>, EngineError> {
        self.wait_until(Some(deadline))
    }

    /// Polls the terminal state: `None` while the request is still pending,
    /// `Some(Ok(_))` exactly once for a served result, `Some(Err(_))` for a
    /// failed request (repeatable) or an already-claimed result.
    pub fn try_take(&self) -> Option<Result<SparseVec<Y>, EngineError>> {
        let mut st = lock(&self.shared.state);
        match std::mem::replace(&mut *st, TicketState::Taken) {
            TicketState::Ready(y) => Some(Ok(y)),
            TicketState::Failed(err) => {
                *st = TicketState::Failed(err.clone());
                Some(Err(err))
            }
            TicketState::Taken => Some(Err(EngineError::AlreadyTaken)),
            TicketState::Pending => {
                *st = TicketState::Pending;
                None
            }
        }
    }

    /// Retires the request: a still-queued request is dropped from the next
    /// flush (its lane is never assembled) and resolves as
    /// [`EngineError::Cancelled`]; a request already served keeps its
    /// result. Returns whether the request was still pending.
    pub fn cancel(&self) -> bool {
        self.shared.fail(EngineError::Cancelled)
    }

    /// Whether the request has not resolved yet.
    pub fn is_pending(&self) -> bool {
        self.shared.is_pending()
    }
}

/// One queued request, tagged with the session that submitted it.
struct QueueEntry<X, Y> {
    /// Engine-unique request id — ties `group.fused` trace events back to
    /// individual submissions.
    id: u64,
    /// When the request was admitted, for the `engine.queue.wait` histogram.
    submitted: Instant,
    session: u64,
    frontier: SparseVec<X>,
    mask: Option<(Arc<MaskBits>, MaskMode)>,
    algorithm: BatchAlgorithmKind,
    deadline: Option<Instant>,
    ticket: Arc<TicketShared<Y>>,
}

struct RequestQueue<X, Y> {
    entries: Mutex<VecDeque<QueueEntry<X, Y>>>,
    /// Signalled when requests arrive (wakes the serve loop).
    grew: Condvar,
    /// Signalled when the queue drains (unblocks bounded `submit`).
    shrank: Condvar,
}

/// How the engine holds its matrix: borrowed from the caller, or owned.
enum MatrixSource<'m, A> {
    Borrowed(&'m CscMatrix<A>),
    Owned(Arc<CscMatrix<A>>),
}

/// The engine's pool of prepared descriptors, one per batched family.
type DescriptorPool<'m, A, X, S> = Vec<(BatchAlgorithmKind, PreparedMxv<'m, A, X, S>)>;

/// Fails every still-pending ticket of a drained flush when dropped. On a
/// normal flush this is a no-op (the flush resolved them all); on unwind —
/// a kernel panic that escaped isolation, an armed `engine.flush.assemble`
/// failpoint — it is the difference between a failed flush and a client
/// stranded on a [`Condvar`] forever.
pub(crate) struct ResolveOnDrop<Y> {
    pub(crate) tickets: Vec<Arc<TicketShared<Y>>>,
}

impl<Y> Drop for ResolveOnDrop<Y> {
    fn drop(&mut self) {
        for t in &self.tickets {
            t.fail(EngineError::KernelFailed("flush aborted by panic".to_string()));
        }
    }
}

/// Index of each flush phase in [`EngineMetrics::flush_phase`].
const PHASE_ASSEMBLE: usize = 0;
const PHASE_EXECUTE: usize = 1;
const PHASE_DEMUX: usize = 2;
const PHASE_RECOVER: usize = 3;

/// The engine's bookkeeping: one per-engine [`Registry`] plus `Arc` handles
/// to every `engine.*` metric, resolved once at construction so the hot
/// paths never touch the registry's name table. [`Engine::stats`]
/// reconstructs [`EngineStats`] as a view over these handles; the registry
/// itself is the export surface ([`Engine::obs`]).
struct EngineMetrics {
    registry: Registry,
    requests: Arc<Counter>,
    retired: Arc<Counter>,
    flushes: Arc<Counter>,
    fused_batches: Arc<Counter>,
    lanes_executed: Arc<Counter>,
    timeouts: Arc<Counter>,
    rejected: Arc<Counter>,
    shed: Arc<Counter>,
    panics_recovered: Arc<Counter>,
    degraded_flushes: Arc<Counter>,
    /// `engine.choice.<kernel>.<backend>`, indexed like
    /// [`ChoiceCounts::KERNELS`] × [`ChoiceCounts::BACKENDS`].
    choice: [[Arc<Counter>; 3]; 3],
    queue_depth: Arc<Gauge>,
    widest_flush: Arc<Gauge>,
    queue_wait: Arc<Histogram>,
    /// assemble / execute / demux / recover, see the `PHASE_*` indices.
    flush_phase: [Arc<Histogram>; 4],
}

impl EngineMetrics {
    fn new(config: &ObsConfig) -> Self {
        let registry = Registry::new(config.clone());
        let choice = ChoiceCounts::KERNELS.map(|k| {
            ChoiceCounts::BACKENDS.map(|b| {
                registry.counter(&format!(
                    "engine.choice.{}.{}",
                    obs::kernel_slug(k),
                    obs::backend_slug(b)
                ))
            })
        });
        EngineMetrics {
            requests: registry.counter("engine.requests"),
            retired: registry.counter("engine.retired"),
            flushes: registry.counter("engine.flushes"),
            fused_batches: registry.counter("engine.fused_batches"),
            lanes_executed: registry.counter("engine.lanes_executed"),
            timeouts: registry.counter("engine.timeouts"),
            rejected: registry.counter("engine.rejected"),
            shed: registry.counter("engine.shed"),
            panics_recovered: registry.counter("engine.panics_recovered"),
            degraded_flushes: registry.counter("engine.degraded_flushes"),
            choice,
            queue_depth: registry.gauge("engine.queue.depth"),
            widest_flush: registry.gauge("engine.widest_flush"),
            queue_wait: registry.histogram("engine.queue.wait"),
            flush_phase: [
                "engine.flush.assemble",
                "engine.flush.execute",
                "engine.flush.demux",
                "engine.flush.recover",
            ]
            .map(|name| registry.histogram(name)),
            registry,
        }
    }

    /// A span over one flush phase — recording when enabled, a plain timer
    /// otherwise, so the `FlushOutcome` timings stay exact either way.
    fn phase_span(&self, phase: usize) -> Span<'_> {
        if self.registry.enabled() {
            Span::enter(&self.flush_phase[phase])
        } else {
            Span::disabled()
        }
    }

    fn choice_counter(&self, kernel: BatchAlgorithmKind, backend: SpaBackend) -> Option<&Counter> {
        let k = ChoiceCounts::KERNELS.iter().position(|&x| x == kernel)?;
        let b = ChoiceCounts::BACKENDS.iter().position(|&x| x == backend)?;
        Some(&self.choice[k][b])
    }
}

/// The serving engine. See the [module docs](self).
///
/// Generic over the matrix element `A`, the input element `X` and the
/// semiring `S` — one engine serves one operation type, many clients. The
/// engine is `Sync`: sessions on any thread may submit while the serve loop
/// (or any thread) flushes. Dropping the engine fails every still-queued
/// request with [`EngineError::Disconnected`], so no client waits on a dead
/// engine.
pub struct Engine<'m, A: Scalar, X: Scalar, S: Semiring<A, X>> {
    /// One prepared descriptor per batched algorithm family, created lazily,
    /// reused across flushes (the amortization the engine exists for).
    ///
    /// Field order matters: `pool` holds matrix borrows that, for an owned
    /// matrix, are derived from `source` — it must drop first, and struct
    /// fields drop in declaration order.
    pool: Mutex<DescriptorPool<'m, A, X, S>>,
    queue: RequestQueue<X, S::Output>,
    metrics: EngineMetrics,
    config: EngineConfig,
    semiring: S,
    next_session: AtomicU64,
    next_request: AtomicU64,
    source: MatrixSource<'m, A>,
}

/// Methods available under the struct's own bounds — shared by the `Drop`
/// impls (which may not add bounds) and the main serving impl below.
impl<'m, A: Scalar, X: Scalar, S: Semiring<A, X>> Engine<'m, A, X, S> {
    /// Drains the queue, failing every still-pending ticket with `err`.
    /// Returns how many tickets were failed.
    fn fail_queue(&self, err: EngineError) -> usize {
        let drained: Vec<QueueEntry<X, S::Output>> = {
            let mut q = lock(&self.queue.entries);
            let drained = q.drain(..).collect();
            self.metrics.queue_depth.set(q.len() as u64);
            drained
        };
        self.queue.shrank.notify_all();
        drained.iter().filter(|e| e.ticket.fail(err.clone())).count()
    }

    /// Retires every still-queued request of `session`: entries leave the
    /// queue and their tickets resolve as [`EngineError::Cancelled`].
    fn retire_session(&self, session: u64) -> usize {
        let retired = {
            let mut q = lock(&self.queue.entries);
            let before = q.len();
            q.retain(|e| {
                if e.session == session {
                    e.ticket.fail(EngineError::Cancelled);
                    false
                } else {
                    true
                }
            });
            self.metrics.queue_depth.set(q.len() as u64);
            before - q.len()
        };
        if retired > 0 {
            self.queue.shrank.notify_all();
            self.metrics.retired.add(retired as u64);
        }
        retired
    }
}

impl<'m, A: Scalar, X: Scalar, S: Semiring<A, X>> Drop for Engine<'m, A, X, S> {
    fn drop(&mut self) {
        // Clients may hold tickets beyond the engine's life (tickets are
        // `Arc`-shared): resolve everything still queued so no waiter blocks
        // on an engine that will never flush again.
        self.fail_queue(EngineError::Disconnected);
    }
}

impl<'m, A, X, S> Engine<'m, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + Clone + 'm,
{
    /// An engine borrowing `matrix` from the caller, with default
    /// configuration — the fit for algorithm drivers (`multi_bfs`,
    /// `pagerank_personalized_batch`) that already hold the matrix.
    pub fn over(matrix: &'m CscMatrix<A>, semiring: S) -> Self {
        Self::over_with(matrix, semiring, EngineConfig::default())
    }

    /// [`Engine::over`] with an explicit configuration.
    pub fn over_with(matrix: &'m CscMatrix<A>, semiring: S, config: EngineConfig) -> Self {
        Self::from_source(MatrixSource::Borrowed(matrix), semiring, config)
    }

    /// An engine **owning** `matrix`, with default configuration — the
    /// serving deployment shape: load once, serve until dropped.
    pub fn load(matrix: CscMatrix<A>, semiring: S) -> Self {
        Self::load_with(matrix, semiring, EngineConfig::default())
    }

    /// [`Engine::load`] with an explicit configuration.
    pub fn load_with(matrix: CscMatrix<A>, semiring: S, config: EngineConfig) -> Self {
        Self::from_source(MatrixSource::Owned(Arc::new(matrix)), semiring, config)
    }

    fn from_source(source: MatrixSource<'m, A>, semiring: S, config: EngineConfig) -> Self {
        let metrics = EngineMetrics::new(&config.obs);
        Engine {
            pool: Mutex::new(Vec::new()),
            queue: RequestQueue {
                entries: Mutex::new(VecDeque::new()),
                grew: Condvar::new(),
                shrank: Condvar::new(),
            },
            metrics,
            config,
            semiring,
            next_session: AtomicU64::new(1),
            next_request: AtomicU64::new(0),
            source,
        }
    }

    /// The matrix reference the pooled descriptors are prepared over.
    fn matrix_ref(&self) -> &'m CscMatrix<A> {
        match &self.source {
            MatrixSource::Borrowed(m) => m,
            // SAFETY: the Arc is owned by `self.source` for the engine's
            // whole life and never swapped or released early, so the matrix
            // sits at a stable heap address and is never mutated (no API
            // takes it by `&mut`). The only borrows derived from this
            // extended reference live inside `self.pool`, which is declared
            // before `source` and therefore dropped first; no public API
            // returns anything borrowed for `'m`.
            MatrixSource::Owned(arc) => unsafe { &*Arc::as_ptr(arc) },
        }
    }

    /// The matrix this engine serves.
    pub fn matrix(&self) -> &CscMatrix<A> {
        self.matrix_ref()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cumulative coalescing and failure telemetry — a view reconstructed
    /// from the engine's metrics [`Registry`] (see [`Engine::obs`]). The
    /// counters are exact regardless of [`ObsConfig`]; the
    /// [`EngineStats::flush_timings`] breakdown comes from the
    /// `engine.flush.*` histograms' exact nanosecond sums and is therefore
    /// all-zero when observability is disabled.
    pub fn stats(&self) -> EngineStats {
        let m = &self.metrics;
        let mut counts = [[0usize; 3]; 3];
        for (row, handles) in counts.iter_mut().zip(m.choice.iter()) {
            for (cell, counter) in row.iter_mut().zip(handles.iter()) {
                *cell = counter.get() as usize;
            }
        }
        EngineStats {
            requests: m.requests.get() as usize,
            retired: m.retired.get() as usize,
            flushes: m.flushes.get() as usize,
            fused_batches: m.fused_batches.get() as usize,
            lanes_executed: m.lanes_executed.get() as usize,
            widest_flush: m.widest_flush.get() as usize,
            timeouts: m.timeouts.get() as usize,
            rejected: m.rejected.get() as usize,
            shed: m.shed.get() as usize,
            panics_recovered: m.panics_recovered.get() as usize,
            degraded_flushes: m.degraded_flushes.get() as usize,
            flush_timings: FlushTimings {
                assemble: Duration::from_nanos(m.flush_phase[PHASE_ASSEMBLE].sum()),
                execute: Duration::from_nanos(m.flush_phase[PHASE_EXECUTE].sum()),
                demux: Duration::from_nanos(m.flush_phase[PHASE_DEMUX].sum()),
                recover: Duration::from_nanos(m.flush_phase[PHASE_RECOVER].sum()),
            },
            choices: ChoiceCounts::from_counts(counts),
        }
    }

    /// This engine's observability registry: every `engine.*` counter,
    /// gauge, and latency histogram plus the flush trace ring. Snapshot it
    /// (and merge with [`crate::obs::global`]'s snapshot) for a full report.
    pub fn obs(&self) -> &Registry {
        &self.metrics.registry
    }

    /// Folds one flush's outcome into the registry counters. Submit-side
    /// counters (`requests`, `rejected`, `shed`) are recorded at submit
    /// time, never here; phase durations are recorded by the flush's spans.
    fn record_flush_outcome(&self, outcome: &FlushOutcome) {
        let m = &self.metrics;
        m.retired.add(outcome.retired as u64);
        if outcome.batches > 0 {
            m.flushes.inc();
        }
        m.fused_batches.add(outcome.batches as u64);
        m.lanes_executed.add(outcome.lanes as u64);
        m.widest_flush.record_max(outcome.lanes as u64);
        m.timeouts.add(outcome.timeouts as u64);
        m.panics_recovered.add(outcome.panics_recovered as u64);
        m.degraded_flushes.add(outcome.degraded_flushes as u64);
        for (kernel, backend, n) in outcome.choices.iter() {
            if let Some(counter) = m.choice_counter(kernel, backend) {
                counter.add(n as u64);
            }
        }
        if outcome.timeouts > 0 {
            m.registry.trace(TraceKind::DeadlineExpired { lanes: outcome.timeouts });
        }
    }

    /// Requests currently queued (submitted, not yet flushed).
    pub fn pending(&self) -> usize {
        lock(&self.queue.entries).len()
    }

    /// Opens a session: a handle for one logical client, whose queued
    /// requests can be retired together with [`Session::close`].
    pub fn session(&self) -> Session<'_, 'm, A, X, S> {
        Session { engine: self, id: self.next_session.fetch_add(1, Ordering::Relaxed) }
    }

    /// Submits an anonymous request (no session). See [`Session::submit`].
    pub fn submit(&self, request: MxvRequest<X>) -> Ticket<S::Output> {
        self.submit_tagged(0, request)
    }

    fn submit_tagged(&self, session: u64, request: MxvRequest<X>) -> Ticket<S::Output> {
        let m = self.matrix_ref();
        assert_eq!(
            request.frontier.len(),
            m.ncols(),
            "request frontier has dimension {} but the matrix has {} columns",
            request.frontier.len(),
            m.ncols()
        );
        if let Some((bits, _)) = &request.mask {
            assert_eq!(
                bits.len(),
                m.nrows(),
                "request mask covers {} rows but the matrix has {} output rows",
                bits.len(),
                m.nrows()
            );
        }
        let shared = Arc::new(TicketShared {
            state: Mutex::new(TicketState::Pending),
            ready: Condvar::new(),
        });
        let entry = QueueEntry {
            id: self.next_request.fetch_add(1, Ordering::Relaxed),
            submitted: Instant::now(),
            session,
            frontier: request.frontier,
            mask: request.mask,
            algorithm: request.algorithm.unwrap_or(self.config.batch_algorithm),
            deadline: request.deadline,
            ticket: Arc::clone(&shared),
        };
        // Count the request before it becomes flushable, so a concurrent
        // `stats()` snapshot always sees `requests ≥ lanes_executed`.
        self.metrics.requests.inc();
        let capacity = self.config.queue_capacity;
        let mut shed = 0usize;
        let mut rejected = false;
        {
            let mut q = lock(&self.queue.entries);
            if capacity > 0 && q.len() >= capacity {
                match self.config.overload {
                    OverloadPolicy::Block => {
                        while q.len() >= capacity {
                            q = self.queue.shrank.wait(q).unwrap_or_else(PoisonError::into_inner);
                        }
                    }
                    OverloadPolicy::Reject => rejected = true,
                    OverloadPolicy::ShedOldest => {
                        while q.len() >= capacity {
                            let victim = q.pop_front().expect("len ≥ capacity > 0");
                            victim.ticket.fail(EngineError::Overloaded);
                            shed += 1;
                        }
                    }
                }
            }
            if !rejected {
                q.push_back(entry);
            }
            self.metrics.queue_depth.set(q.len() as u64);
        }
        if rejected {
            shared.fail(EngineError::Overloaded);
        }
        if shed > 0 || rejected {
            self.metrics.shed.add(shed as u64);
            if rejected {
                self.metrics.rejected.inc();
            }
            self.metrics
                .registry
                .trace(TraceKind::Overload { shed, rejected: usize::from(rejected) });
        }
        self.queue.grew.notify_all();
        Ticket { shared }
    }

    /// Drains the queue and serves every live request: groups compatible
    /// requests, fuses each group into at most [`EngineConfig::max_lanes`]
    /// lanes per batched multiplication, executes (with panic isolation and
    /// a one-shot [`crate::NaiveBatch`] retry per failed group), and
    /// demultiplexes results to the tickets. Every drained request resolves
    /// before this returns — even if a kernel panics. Returns what happened
    /// (all zeros when the queue was empty).
    pub fn flush(&self) -> FlushOutcome {
        let drained: Vec<QueueEntry<X, S::Output>> = {
            let mut q = lock(&self.queue.entries);
            let drained = q.drain(..).collect();
            self.metrics.queue_depth.set(q.len() as u64);
            drained
        };
        self.queue.shrank.notify_all();
        if drained.is_empty() {
            return FlushOutcome::default();
        }
        if self.metrics.registry.enabled() {
            let now = Instant::now();
            for entry in &drained {
                self.metrics
                    .queue_wait
                    .record_duration(now.saturating_duration_since(entry.submitted));
            }
            self.metrics.registry.trace(TraceKind::FlushBegin { requests: drained.len() });
        }

        // From here on, an unwind out of this function resolves every
        // drained ticket on the way out (normal completion resolves them
        // all itself, making the guard a no-op).
        let _resolve_guard =
            ResolveOnDrop { tickets: drained.iter().map(|e| Arc::clone(&e.ticket)).collect() };
        if let Err(msg) = failpoint::act("engine.flush.assemble") {
            panic!("failpoint engine.flush.assemble: {msg}");
        }

        let mut outcome = FlushOutcome { requests: drained.len(), ..FlushOutcome::default() };
        let sp_group = self.metrics.phase_span(PHASE_ASSEMBLE);
        // Group by (algorithm family, mask mode), preserving arrival order
        // within each group — the demux order clients observe.
        type Key = (BatchAlgorithmKind, Option<MaskMode>);
        type Group<X, Y> = (Key, Vec<QueueEntry<X, Y>>);
        let now = Instant::now();
        let mut groups: Vec<Group<X, S::Output>> = Vec::new();
        for entry in drained {
            if entry.deadline.is_some_and(|d| now >= d) {
                if entry.ticket.fail(EngineError::DeadlineExceeded) {
                    outcome.timeouts += 1;
                } else {
                    outcome.retired += 1;
                }
                continue;
            }
            if !entry.ticket.is_pending() {
                outcome.retired += 1;
                continue;
            }
            let key = (entry.algorithm, entry.mask.as_ref().map(|&(_, mode)| mode));
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(entry),
                None => groups.push((key, vec![entry])),
            }
        }
        outcome.timings.assemble += sp_group.stop();

        let width = if self.config.max_lanes == 0 { usize::MAX } else { self.config.max_lanes };
        let mut pool = lock(&self.pool);
        for ((kind, mode), members) in groups {
            let mut members = members.into_iter().peekable();
            while members.peek().is_some() {
                let sp_assemble = self.metrics.phase_span(PHASE_ASSEMBLE);
                // Mid-flight retirement check once more at assembly time: a
                // ticket cancelled after the drain still leaves the batch.
                let chunk: Vec<QueueEntry<X, S::Output>> = members
                    .by_ref()
                    .take(width)
                    .filter(|e| {
                        let live = e.ticket.is_pending();
                        if !live {
                            outcome.retired += 1;
                        }
                        live
                    })
                    .collect();
                if chunk.is_empty() {
                    outcome.timings.assemble += sp_assemble.stop();
                    continue;
                }
                let first_id = chunk[0].id;
                // Disassemble the entries: frontiers fuse into the batch,
                // masks move into the pooled descriptor, tickets stay for
                // the demux — no per-request copies. The masks are kept as
                // `Arc`s here too, so a degraded retry re-installs them by
                // refcount.
                let mut tickets = Vec::with_capacity(chunk.len());
                let mut deadlines = Vec::with_capacity(chunk.len());
                let mut lanes = Vec::with_capacity(chunk.len());
                let mut masks = mode.map(|_| Vec::with_capacity(chunk.len()));
                for entry in chunk {
                    tickets.push(entry.ticket);
                    deadlines.push(entry.deadline);
                    lanes.push(entry.frontier);
                    if let Some(masks) = masks.as_mut() {
                        masks.push(entry.mask.expect("grouped as masked").0);
                    }
                }
                let x = SparseVecBatch::from_lanes(&lanes)
                    .expect("request dimensions are validated at submit");
                let mask_arg = || match (&masks, mode) {
                    (Some(m), Some(mode)) => Some((m.as_slice(), mode)),
                    _ => None,
                };
                outcome.timings.assemble += sp_assemble.stop();
                self.metrics.registry.trace(TraceKind::GroupFused {
                    kernel: kind,
                    lanes: lanes.len(),
                    masked: mode.is_some(),
                    first_id,
                });

                let sp_execute = self.metrics.phase_span(PHASE_EXECUTE);
                let first = Self::run_group(
                    &mut pool,
                    kind,
                    self.matrix_ref(),
                    &self.semiring,
                    &self.config.options,
                    &x,
                    mask_arg(),
                );
                outcome.timings.execute += sp_execute.stop();
                let served = match first {
                    Ok(ok) => Some(ok),
                    Err(err) => {
                        outcome.panics_recovered += 1;
                        self.metrics.registry.trace(TraceKind::KernelFailure(err.to_string()));
                        if kind == BatchAlgorithmKind::Naive {
                            // Already on the oracle kernel: nothing simpler
                            // to degrade to.
                            for t in &tickets {
                                t.fail(err.clone());
                            }
                            None
                        } else {
                            // Graceful degradation: one retry on the naive
                            // oracle kernel (independent per-lane runs — the
                            // most conservative path we have).
                            self.metrics.registry.trace(TraceKind::DegradeRetry { from: kind });
                            let sp_recover = self.metrics.phase_span(PHASE_RECOVER);
                            let retry = Self::run_group(
                                &mut pool,
                                BatchAlgorithmKind::Naive,
                                self.matrix_ref(),
                                &self.semiring,
                                &self.config.options,
                                &x,
                                mask_arg(),
                            );
                            outcome.timings.recover += sp_recover.stop();
                            match retry {
                                Ok(ok) => {
                                    outcome.degraded_flushes += 1;
                                    Some(ok)
                                }
                                Err(retry_err) => {
                                    outcome.panics_recovered += 1;
                                    self.metrics
                                        .registry
                                        .trace(TraceKind::KernelFailure(retry_err.to_string()));
                                    for t in &tickets {
                                        t.fail(retry_err.clone());
                                    }
                                    None
                                }
                            }
                        }
                    }
                };
                let Some((y, info)) = served else { continue };
                if let Some(info) = info {
                    outcome.choices.record(info);
                    self.metrics.registry.trace(TraceKind::AdaptiveChoice(info));
                }

                let sp_demux = self.metrics.phase_span(PHASE_DEMUX);
                if let Err(msg) = failpoint::act("engine.flush.demux") {
                    panic!("failpoint engine.flush.demux: {msg}");
                }
                // Deadline re-check at demux: a result computed too late is
                // dropped, not delivered as if it were fresh.
                let now = Instant::now();
                for (lane, (ticket, deadline)) in tickets.iter().zip(&deadlines).enumerate() {
                    if deadline.is_some_and(|d| now >= d) {
                        if ticket.fail(EngineError::DeadlineExceeded) {
                            outcome.timeouts += 1;
                        }
                        continue;
                    }
                    ticket.fulfil(y.lane_vec(lane));
                }
                outcome.batches += 1;
                outcome.lanes += tickets.len();
                outcome.timings.demux += sp_demux.stop();
            }
        }
        drop(pool);

        self.record_flush_outcome(&outcome);
        outcome
    }

    /// Executes one fused group on `kind`'s pooled descriptor with panic
    /// isolation. On failure the descriptor is evicted from the pool — its
    /// workspaces may be mid-mutation from the unwound kernel — so the next
    /// flush rebuilds it cleanly.
    fn run_group(
        pool: &mut DescriptorPool<'m, A, X, S>,
        kind: BatchAlgorithmKind,
        matrix: &'m CscMatrix<A>,
        semiring: &S,
        options: &SpMSpVOptions,
        x: &SparseVecBatch<X>,
        mask: Option<(&[Arc<MaskBits>], MaskMode)>,
    ) -> Result<(SparseVecBatch<S::Output>, Option<BatchRunInfo>), EngineError> {
        failpoint::act("engine.flush.execute").map_err(EngineError::KernelFailed)?;
        let prepared = Self::pool_entry(pool, kind, matrix, semiring, options);
        match mask {
            Some((masks, mode)) => prepared.set_lane_masks(masks.to_vec(), mode),
            None => prepared.unmask(),
        }
        match prepared.try_run_batch(x) {
            Ok(y) => {
                let info = prepared.last_batch_run_info();
                // Release this chunk's masks; the kernels stay pooled.
                prepared.unmask();
                Ok((y, info))
            }
            Err(err) => {
                pool.retain(|(k, _)| *k != kind);
                Err(err)
            }
        }
    }

    fn pool_entry<'p>(
        pool: &'p mut DescriptorPool<'m, A, X, S>,
        kind: BatchAlgorithmKind,
        matrix: &'m CscMatrix<A>,
        semiring: &S,
        options: &SpMSpVOptions,
    ) -> &'p mut PreparedMxv<'m, A, X, S> {
        if let Some(pos) = pool.iter().position(|(k, _)| *k == kind) {
            return &mut pool[pos].1;
        }
        let prepared = Mxv::over(matrix)
            .semiring(semiring)
            .batch_algorithm(kind)
            .options(options.clone())
            .prepare::<X>();
        pool.push((kind, prepared));
        &mut pool.last_mut().expect("just pushed").1
    }

    /// Runs `body` with a background flush loop serving the engine: the loop
    /// flushes whenever [`EngineConfig::max_lanes`] requests are pending or
    /// [`EngineConfig::linger`] elapses with a non-empty queue. The loop
    /// drains remaining requests and stops when `body` returns (or panics).
    ///
    /// Client threads spawned inside `body` submit through [`Session`]s and
    /// block on [`Ticket::wait`].
    ///
    /// The loop is **self-healing**: a flush that panics past its own
    /// isolation (every drained ticket is still resolved on the way out) is
    /// caught here and the loop restarts, so one poisoned flush cannot stop
    /// the engine from serving later requests. A server-thread failure never
    /// becomes a panic in the caller: if the loop cannot be recovered, the
    /// remaining queued requests resolve as [`EngineError::Disconnected`].
    pub fn serve<R: Send>(&self, body: impl FnOnce(&Self) -> R + Send) -> R
    where
        S::Output: Scalar,
    {
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let server = scope.spawn(|| loop {
                let loop_run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.serve_loop(&shutdown)
                }));
                match loop_run {
                    Ok(()) => break,
                    // The panicking flush already resolved the tickets it
                    // had drained (ResolveOnDrop); whatever is still queued
                    // is intact — go back to serving it.
                    Err(_) if !shutdown.load(Ordering::SeqCst) => continue,
                    Err(_) => {
                        // Shutting down: no more flushes are coming, so
                        // resolve the stragglers instead of stranding them.
                        self.fail_queue(EngineError::Disconnected);
                        break;
                    }
                }
            });
            // Raise the shutdown flag even when `body` unwinds, so the
            // scope's implicit join cannot deadlock on a still-running loop.
            let guard = ShutdownGuard { flag: &shutdown, queue: &self.queue };
            let out = body(self);
            drop(guard);
            if server.join().is_err() {
                // Unreachable in practice (the loop catches panics), but if
                // the server thread dies anyway the clients must not: fail
                // the leftovers instead of propagating the panic.
                self.fail_queue(EngineError::Disconnected);
            }
            out
        })
    }

    fn serve_loop(&self, shutdown: &AtomicBool) {
        let linger = self.config.linger.max(Duration::from_micros(1));
        // `max_lanes == 0` means "no width budget" for the coalescer, so it
        // disables the width trigger too: the loop then flushes on linger
        // timeouts only.
        let width = if self.config.max_lanes == 0 { usize::MAX } else { self.config.max_lanes };
        loop {
            let mut deadline: Option<Instant> = None;
            {
                let mut entries = lock(&self.queue.entries);
                loop {
                    if shutdown.load(Ordering::SeqCst) || entries.len() >= width {
                        break;
                    }
                    if !entries.is_empty() && deadline.is_none() {
                        deadline = Some(Instant::now() + linger);
                    }
                    match deadline {
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                break;
                            }
                            let (guard, _) = self
                                .queue
                                .grew
                                .wait_timeout(entries, d - now)
                                .unwrap_or_else(PoisonError::into_inner);
                            entries = guard;
                        }
                        // Empty queue: block until a submit (or the shutdown
                        // guard) signals `grew` — no periodic wakeups.
                        None => {
                            entries = self
                                .queue
                                .grew
                                .wait(entries)
                                .unwrap_or_else(PoisonError::into_inner)
                        }
                    }
                }
                if entries.is_empty() && shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            self.flush();
        }
    }
}

/// Raises the shutdown flag (and wakes the serve loop) on drop — including
/// on unwind out of a `serve` body.
struct ShutdownGuard<'a, X, Y> {
    flag: &'a AtomicBool,
    queue: &'a RequestQueue<X, Y>,
}

impl<X, Y> Drop for ShutdownGuard<'_, X, Y> {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
        // Notify while holding the queue lock: the serve loop checks the
        // flag and parks on `grew` under this same mutex, so the notify
        // cannot land in the gap between its check and its wait (a lost
        // wakeup would hang the untimed empty-queue wait forever).
        let _entries = lock(&self.queue.entries);
        self.queue.grew.notify_all();
    }
}

/// What one [`Engine::flush`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Requests drained from the queue.
    pub requests: usize,
    /// Requests dropped because their ticket had already resolved —
    /// cancelled, session closed, shed — before their lane was assembled.
    pub retired: usize,
    /// Fused batched multiplications executed.
    pub batches: usize,
    /// Lanes executed across those batches (= requests served, including
    /// the rare lane whose deadline expired between execute and demux).
    pub lanes: usize,
    /// Requests failed with [`EngineError::DeadlineExceeded`] — expired
    /// before fusing or between execution and demux.
    pub timeouts: usize,
    /// Requests rejected by [`OverloadPolicy::Reject`]. Always zero in a
    /// flush's own outcome (rejection happens at submit time); present so
    /// one [`crate::stats::EngineStats::record_flush`] merge covers every
    /// counter.
    pub rejected: usize,
    /// Requests shed by [`OverloadPolicy::ShedOldest`]. Always zero in a
    /// flush's own outcome (shedding happens at submit time); see
    /// [`FlushOutcome::rejected`].
    pub shed: usize,
    /// Kernel failures (caught panics or injected errors) this flush
    /// survived — one per failed execution attempt.
    pub panics_recovered: usize,
    /// Groups that were served by the one-shot [`crate::NaiveBatch`] retry
    /// after their preferred kernel failed.
    pub degraded_flushes: usize,
    /// Wall-clock breakdown of this flush.
    pub timings: FlushTimings,
    /// The concrete `(kernel family, SPA backend)` each fused batch of this
    /// flush resolved to.
    pub choices: ChoiceCounts,
}

/// A handle for one logical client of an [`Engine`].
///
/// Sessions are cheap (an id plus a borrow) and independent: many sessions
/// submit concurrently, and the coalescer fuses across session boundaries.
/// [`Session::close`] — or simply dropping the session — retires the
/// session's still-queued requests, resolving their tickets as
/// [`EngineError::Cancelled`]: the serving-side counterpart of multi-source
/// BFS lane retirement, and the guarantee that a client that disappears
/// takes its pending work with it.
pub struct Session<'e, 'm, A: Scalar, X: Scalar, S: Semiring<A, X>> {
    engine: &'e Engine<'m, A, X, S>,
    id: u64,
}

impl<'e, 'm, A: Scalar, X: Scalar, S: Semiring<A, X>> Drop for Session<'e, 'm, A, X, S> {
    fn drop(&mut self) {
        self.engine.retire_session(self.id);
    }
}

impl<'e, 'm, A, X, S> Session<'e, 'm, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + Clone + 'm,
{
    /// This session's id (unique within its engine).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submits a request on behalf of this session. When the engine's queue
    /// is bounded and full, the [`EngineConfig::overload`] policy decides:
    /// block for backpressure, reject this request, or shed the oldest.
    pub fn submit(&self, request: MxvRequest<X>) -> Ticket<S::Output> {
        self.engine.submit_tagged(self.id, request)
    }

    /// Closes the session, retiring its still-queued requests mid-flight:
    /// their lanes are never assembled and their tickets resolve as
    /// [`EngineError::Cancelled`]. Requests already served keep their
    /// results. Returns how many requests were retired. (Dropping the
    /// session without calling this does the same, minus the count.)
    pub fn close(self) -> usize {
        self.engine.retire_session(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
    use sparse_substrate::{fixtures, PlusTimes, Select2ndMin};

    fn requests(n: usize, count: usize, seed: u64) -> Vec<SparseVec<f64>> {
        (0..count).map(|i| random_sparse_vec(n, (n / 4).max(1), seed + i as u64)).collect()
    }

    /// The oracle: one independent single-vector `PreparedMxv::run` per
    /// request, same options.
    fn independent_run(
        a: &CscMatrix<f64>,
        x: &SparseVec<f64>,
        mask: Option<(&MaskBits, MaskMode)>,
    ) -> SparseVec<f64> {
        let op = Mxv::over(a).semiring(&PlusTimes);
        let mut op = match mask {
            Some((bits, mode)) => op.mask(bits, mode).prepare(),
            None => op.prepare(),
        };
        op.run(x)
    }

    #[test]
    fn coalesced_flush_is_bit_identical_to_independent_runs() {
        let a = erdos_renyi(200, 6.0, 9);
        let engine = Engine::over(&a, PlusTimes);
        let frontiers = requests(200, 6, 3);
        let tickets: Vec<Ticket<f64>> =
            frontiers.iter().map(|x| engine.submit(MxvRequest::new(x.clone()))).collect();
        let outcome = engine.flush();
        assert_eq!(outcome.requests, 6);
        assert_eq!(outcome.lanes, 6);
        assert_eq!(outcome.batches, 1, "six compatible requests must fuse into one batch");
        for (ticket, x) in tickets.into_iter().zip(frontiers.iter()) {
            let y = ticket.try_take().expect("flushed").expect("served");
            assert_eq!(y, independent_run(&a, x, None), "engine lane diverged");
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.fused_batches, 1);
        assert_eq!(stats.widest_flush, 6);
        assert!(stats.mean_lanes_per_batch() > 5.9);
    }

    #[test]
    fn owned_matrix_engine_serves_after_load() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let expected = independent_run(&a, &x, None);
        let engine = Engine::load(a, PlusTimes);
        let t = engine.submit(MxvRequest::new(x));
        engine.flush();
        assert_eq!(t.wait().expect("served"), expected);
        assert_eq!(engine.matrix().nrows(), 8);
    }

    #[test]
    fn per_request_masks_become_lane_masks() {
        let a = erdos_renyi(150, 5.0, 4);
        let engine = Engine::over(&a, PlusTimes);
        let frontiers = requests(150, 4, 11);
        let masks: Vec<MaskBits> =
            (0..4).map(|i| MaskBits::from_indices(150, (i..150).step_by(3))).collect();
        let tickets: Vec<Ticket<f64>> = frontiers
            .iter()
            .zip(masks.iter())
            .map(|(x, bits)| {
                engine.submit(MxvRequest::new(x.clone()).mask(bits.clone(), MaskMode::Complement))
            })
            .collect();
        let outcome = engine.flush();
        assert_eq!(outcome.batches, 1, "same mask mode must coalesce");
        for ((ticket, x), bits) in tickets.into_iter().zip(&frontiers).zip(&masks) {
            let y = ticket.try_take().expect("flushed").expect("served");
            assert_eq!(y, independent_run(&a, x, Some((bits, MaskMode::Complement))));
        }
    }

    #[test]
    fn incompatible_requests_split_into_groups() {
        let a = erdos_renyi(100, 5.0, 2);
        let engine = Engine::over(&a, PlusTimes);
        let xs = requests(100, 4, 5);
        let bits = MaskBits::from_indices(100, (0..100).step_by(2));
        engine.submit(MxvRequest::new(xs[0].clone()));
        engine.submit(MxvRequest::new(xs[1].clone()).mask(bits.clone(), MaskMode::Keep));
        engine.submit(MxvRequest::new(xs[2].clone()).mask(bits, MaskMode::Complement));
        engine.submit(MxvRequest::new(xs[3].clone()).algorithm(BatchAlgorithmKind::Naive));
        let outcome = engine.flush();
        assert_eq!(outcome.batches, 4, "four mutually incompatible requests");
        assert_eq!(outcome.lanes, 4);
    }

    #[test]
    fn max_lanes_budget_chunks_wide_groups() {
        let a = erdos_renyi(80, 4.0, 7);
        let engine = Engine::over_with(&a, PlusTimes, EngineConfig::default().max_lanes(2));
        let xs = requests(80, 5, 23);
        let tickets: Vec<Ticket<f64>> =
            xs.iter().map(|x| engine.submit(MxvRequest::new(x.clone()))).collect();
        let outcome = engine.flush();
        assert_eq!(outcome.batches, 3, "5 lanes under a width budget of 2 → 3 batches");
        for (ticket, x) in tickets.into_iter().zip(&xs) {
            assert_eq!(
                ticket.try_take().expect("flushed").expect("served"),
                independent_run(&a, x, None)
            );
        }
    }

    #[test]
    fn cancelled_ticket_retires_before_assembly() {
        let a = erdos_renyi(90, 4.0, 1);
        let engine = Engine::over(&a, PlusTimes);
        let xs = requests(90, 3, 2);
        let keep0 = engine.submit(MxvRequest::new(xs[0].clone()));
        let dropped = engine.submit(MxvRequest::new(xs[1].clone()));
        let keep1 = engine.submit(MxvRequest::new(xs[2].clone()));
        assert!(dropped.cancel());
        assert!(!dropped.cancel(), "second cancel is a no-op");
        let outcome = engine.flush();
        assert_eq!(outcome.retired, 1);
        assert_eq!(outcome.lanes, 2);
        assert_eq!(dropped.try_take(), Some(Err(EngineError::Cancelled)));
        assert_eq!(
            keep0.try_take().expect("served").expect("succeeded"),
            independent_run(&a, &xs[0], None)
        );
        assert_eq!(
            keep1.try_take().expect("served").expect("succeeded"),
            independent_run(&a, &xs[2], None)
        );
        assert_eq!(engine.stats().retired, 1);
    }

    #[test]
    fn closing_a_session_retires_its_queued_requests() {
        let a = erdos_renyi(70, 4.0, 6);
        let engine = Engine::over(&a, PlusTimes);
        let xs = requests(70, 3, 9);
        let closing = engine.session();
        let staying = engine.session();
        assert_ne!(closing.id(), staying.id());
        let dead = closing.submit(MxvRequest::new(xs[0].clone()));
        let live = staying.submit(MxvRequest::new(xs[1].clone()));
        let dead2 = closing.submit(MxvRequest::new(xs[2].clone()));
        assert_eq!(closing.close(), 2);
        let outcome = engine.flush();
        assert_eq!(outcome.lanes, 1);
        assert_eq!(dead.wait(), Err(EngineError::Cancelled));
        assert_eq!(dead2.try_take(), Some(Err(EngineError::Cancelled)));
        assert_eq!(
            live.try_take().expect("served").expect("succeeded"),
            independent_run(&a, &xs[1], None)
        );
    }

    #[test]
    fn dropping_a_session_retires_like_close() {
        let a = erdos_renyi(60, 4.0, 15);
        let engine = Engine::over(&a, PlusTimes);
        let xs = requests(60, 2, 21);
        let orphan = {
            let session = engine.session();
            session.submit(MxvRequest::new(xs[0].clone()))
            // Session dropped here without close(): its queued request must
            // still resolve, not linger pending forever.
        };
        let live = engine.submit(MxvRequest::new(xs[1].clone()));
        let outcome = engine.flush();
        assert_eq!(outcome.lanes, 1);
        assert_eq!(orphan.wait(), Err(EngineError::Cancelled));
        assert_eq!(
            live.try_take().expect("served").expect("succeeded"),
            independent_run(&a, &xs[1], None)
        );
    }

    #[test]
    fn dropping_the_engine_fails_pending_tickets() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let engine = Engine::load(a, PlusTimes);
        let never_flushed = engine.submit(MxvRequest::new(x));
        drop(engine);
        // No deadlock: the drop resolved the ticket, so an untimed wait
        // returns immediately.
        assert_eq!(never_flushed.wait(), Err(EngineError::Disconnected));
    }

    #[test]
    fn wait_timeout_leaves_the_ticket_live() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let engine = Engine::over(&a, PlusTimes);
        let ticket = engine.submit(MxvRequest::new(x.clone()));
        // Nothing flushes: the bounded wait must give up, not hang.
        assert_eq!(ticket.wait_timeout(Duration::from_millis(10)), Err(EngineError::WaitTimeout));
        assert!(ticket.is_pending(), "a wait timeout must not consume the request");
        engine.flush();
        assert_eq!(
            ticket.wait_timeout(Duration::from_secs(5)).expect("served after flush"),
            independent_run(&a, &x, None)
        );
    }

    #[test]
    fn expired_deadline_is_retired_before_fusing() {
        let a = erdos_renyi(80, 4.0, 3);
        let engine = Engine::over(&a, PlusTimes);
        let xs = requests(80, 2, 7);
        let expired = engine.submit(MxvRequest::new(xs[0].clone()).timeout(Duration::ZERO));
        let fresh = engine.submit(
            MxvRequest::new(xs[1].clone()).deadline(Instant::now() + Duration::from_secs(60)),
        );
        let outcome = engine.flush();
        assert_eq!(outcome.timeouts, 1);
        assert_eq!(outcome.lanes, 1, "the expired request must never cost a lane");
        assert_eq!(expired.wait(), Err(EngineError::DeadlineExceeded));
        assert_eq!(
            fresh.try_take().expect("served").expect("succeeded"),
            independent_run(&a, &xs[1], None)
        );
        assert_eq!(engine.stats().timeouts, 1);
    }

    #[test]
    fn reject_policy_fails_the_newcomer_when_full() {
        let a = erdos_renyi(50, 4.0, 5);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default().queue_capacity(1).overload_policy(OverloadPolicy::Reject),
        );
        let xs = requests(50, 2, 13);
        let queued = engine.submit(MxvRequest::new(xs[0].clone()));
        let refused = engine.submit(MxvRequest::new(xs[1].clone()));
        assert_eq!(refused.try_take(), Some(Err(EngineError::Overloaded)));
        assert_eq!(engine.pending(), 1, "the rejected request must not occupy the queue");
        engine.flush();
        assert_eq!(
            queued.try_take().expect("served").expect("succeeded"),
            independent_run(&a, &xs[0], None)
        );
        let stats = engine.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn shed_oldest_policy_prefers_the_freshest_requests() {
        let a = erdos_renyi(50, 4.0, 19);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default().queue_capacity(2).overload_policy(OverloadPolicy::ShedOldest),
        );
        let xs = requests(50, 3, 29);
        let oldest = engine.submit(MxvRequest::new(xs[0].clone()));
        let middle = engine.submit(MxvRequest::new(xs[1].clone()));
        let newest = engine.submit(MxvRequest::new(xs[2].clone()));
        assert_eq!(oldest.wait(), Err(EngineError::Overloaded), "oldest is shed, not the newcomer");
        engine.flush();
        assert_eq!(
            middle.try_take().expect("served").expect("succeeded"),
            independent_run(&a, &xs[1], None)
        );
        assert_eq!(
            newest.try_take().expect("served").expect("succeeded"),
            independent_run(&a, &xs[2], None)
        );
        assert_eq!(engine.stats().shed, 1);
    }

    #[test]
    fn serve_loop_fuses_concurrent_clients() {
        let a = erdos_renyi(160, 5.0, 12);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default().max_lanes(8).linger(Duration::from_millis(20)),
        );
        let xs = requests(160, 8, 31);
        let results: Vec<(SparseVec<f64>, SparseVec<f64>)> = engine.serve(|engine| {
            std::thread::scope(|s| {
                let handles: Vec<_> = xs
                    .iter()
                    .map(|x| {
                        s.spawn(move || {
                            let session = engine.session();
                            let ticket = session.submit(MxvRequest::new(x.clone()));
                            (ticket.wait().expect("served"), x.clone())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
            })
        });
        for (y, x) in &results {
            assert_eq!(*y, independent_run(&a, x, None), "served lane diverged");
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.lanes_executed, 8);
        assert!(
            stats.fused_batches < 8,
            "serve loop should coalesce at least some of the 8 concurrent requests \
             (got {} batches)",
            stats.fused_batches
        );
    }

    #[test]
    fn serve_loop_without_width_budget_flushes_on_linger_only() {
        // max_lanes = 0 must mean "no width trigger" in serve mode too: the
        // loop coalesces whatever accumulates within one linger window
        // instead of flushing every request alone.
        let a = erdos_renyi(100, 4.0, 3);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default().max_lanes(0).linger(Duration::from_millis(20)),
        );
        let xs = requests(100, 6, 17);
        let results: Vec<(SparseVec<f64>, SparseVec<f64>)> = engine.serve(|engine| {
            std::thread::scope(|s| {
                let handles: Vec<_> = xs
                    .iter()
                    .map(|x| {
                        s.spawn(move || {
                            let ticket = engine.submit(MxvRequest::new(x.clone()));
                            (ticket.wait().expect("served"), x.clone())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
            })
        });
        for (y, x) in &results {
            assert_eq!(*y, independent_run(&a, x, None));
        }
        let stats = engine.stats();
        assert_eq!(stats.lanes_executed, 6);
        assert!(
            stats.fused_batches < 6,
            "an unbounded width budget must still coalesce concurrent requests \
             (got {} batches for 6 requests)",
            stats.fused_batches
        );
    }

    #[test]
    fn takes_after_the_first_report_already_taken() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let engine = Engine::over(&a, PlusTimes);
        let ticket = engine.submit(MxvRequest::new(x));
        engine.flush();
        assert!(ticket.try_take().expect("served").is_ok());
        assert_eq!(
            ticket.try_take(),
            Some(Err(EngineError::AlreadyTaken)),
            "second take must report the claim, not hang or panic"
        );
        assert_eq!(ticket.wait(), Err(EngineError::AlreadyTaken));
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_losing_requests() {
        let a = erdos_renyi(60, 4.0, 8);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default()
                .max_lanes(2)
                .queue_capacity(2)
                .linger(Duration::from_micros(100)),
        );
        let xs = requests(60, 12, 44);
        let served: usize = engine.serve(|engine| {
            std::thread::scope(|s| {
                let handles: Vec<_> = xs
                    .iter()
                    .map(|x| {
                        s.spawn(move || {
                            engine.submit(MxvRequest::new(x.clone())).wait().expect("served").nnz()
                        })
                    })
                    .collect();
                handles.into_iter().filter_map(|h| h.join().ok()).count()
            })
        });
        assert_eq!(served, 12);
        assert_eq!(engine.stats().lanes_executed, 12);
    }

    #[test]
    fn select2nd_semiring_engine_serves_bfs_shaped_requests() {
        let a = fixtures::tridiagonal(12);
        let engine: Engine<'_, f64, usize, Select2ndMin> = Engine::over(&a, Select2ndMin);
        let frontier = SparseVec::from_pairs(12, vec![(4, 4usize)]).unwrap();
        let mut visited = MaskBits::new(12);
        visited.insert(4);
        let t = engine
            .submit(MxvRequest::new(frontier.clone()).mask(visited.clone(), MaskMode::Complement));
        engine.flush();
        let y = t.try_take().expect("served").expect("succeeded");
        let mut op =
            Mxv::over(&a).semiring(&Select2ndMin).mask(&visited, MaskMode::Complement).prepare();
        assert_eq!(y, op.run(&frontier));
        assert!(y.get(4).is_none(), "¬visited mask dropped the source");
    }

    #[test]
    fn flush_on_an_empty_queue_is_a_noop() {
        let a = fixtures::figure1_matrix();
        let engine: Engine<'_, f64, f64, PlusTimes> = Engine::over(&a, PlusTimes);
        assert_eq!(engine.flush(), FlushOutcome::default());
        assert_eq!(engine.pending(), 0);
        assert_eq!(engine.stats().flushes, 0);
    }

    #[test]
    fn engine_error_displays_are_distinct_and_informative() {
        let errors = [
            EngineError::Cancelled,
            EngineError::DeadlineExceeded,
            EngineError::Overloaded,
            EngineError::KernelFailed("lane SPA index out of range".to_string()),
            EngineError::Disconnected,
            EngineError::WaitTimeout,
            EngineError::AlreadyTaken,
        ];
        let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        for (i, a) in rendered.iter().enumerate() {
            assert!(!a.is_empty());
            for b in rendered.iter().skip(i + 1) {
                assert_ne!(a, b, "two error variants render identically");
            }
        }
        assert!(rendered[3].contains("lane SPA index out of range"), "message must survive");
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn submit_rejects_mismatched_frontier_dimension() {
        let a = fixtures::figure1_matrix();
        let engine: Engine<'_, f64, f64, PlusTimes> = Engine::over(&a, PlusTimes);
        let _ = engine.submit(MxvRequest::new(SparseVec::new(9)));
    }

    #[test]
    #[should_panic(expected = "output rows")]
    fn submit_rejects_mismatched_mask_dimension() {
        let a = fixtures::figure1_matrix();
        let engine: Engine<'_, f64, f64, PlusTimes> = Engine::over(&a, PlusTimes);
        let _ = engine
            .submit(MxvRequest::new(SparseVec::new(8)).mask(MaskBits::new(4), MaskMode::Keep));
    }
}
