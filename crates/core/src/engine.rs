//! The serving front door: an [`Engine`] that coalesces many clients'
//! single-frontier requests into fused batched multiplications.
//!
//! The paper's batched kernel amortizes workspace setup and matrix traffic
//! across `k` frontiers — but a library caller had to hand-assemble a
//! [`SparseVecBatch`] to get that win. Serving workloads (personalized
//! PageRank for many users, landmark BFS probes, reachability queries) do
//! not arrive pre-batched: they arrive as **independent requests from
//! independent logical clients**. This module turns the [`crate::ops::Mxv`]
//! descriptor into exactly that serving layer:
//!
//! * [`Engine::load`] / [`Engine::over`] bind a matrix (owned or borrowed)
//!   to a pool of [`crate::ops::PreparedMxv`] descriptors — one per batched
//!   algorithm family, instantiated lazily, workspaces reused across every
//!   flush;
//! * clients open [`Session`]s and submit [`MxvRequest`]s (frontier +
//!   optional output mask + optional algorithm hint), receiving a [`Ticket`]
//!   per request;
//! * the **coalescer** ([`Engine::flush`]) drains the queue, groups
//!   compatible requests (same algorithm family, same mask mode — the
//!   semiring is fixed by the engine's type), fuses each group into
//!   [`SparseVecBatch`] lanes up to the [`EngineConfig::max_lanes`] width
//!   budget, executes **one** masked batched multiplication per group chunk,
//!   and demultiplexes the per-lane results back to the tickets;
//! * requests retired mid-flight — a cancelled [`Ticket`], a closed
//!   [`Session`] — leave the batch before lanes are assembled, so a slow
//!   client that gave up never costs kernel time.
//!
//! Two execution styles share this pipeline:
//!
//! * **synchronous**: `submit` + [`Engine::flush`] — the caller decides when
//!   to fuse (the style `multi_bfs` and `pagerank_personalized_batch` use:
//!   one flush per traversal level);
//! * **thread-driven**: [`Engine::serve`] runs a background flush loop that
//!   fires when [`EngineConfig::max_lanes`] lanes are pending or after
//!   [`EngineConfig::linger`] of quiet, while client threads block on
//!   [`Ticket::wait`]. The queue is bounded by
//!   [`EngineConfig::queue_capacity`] for backpressure.
//!
//! ```
//! use sparse_substrate::{fixtures, PlusTimes, SparseVec};
//! use spmspv::engine::{Engine, MxvRequest};
//!
//! let a = fixtures::figure1_matrix();
//! let engine = Engine::load(a, PlusTimes); // engine owns the matrix
//! let x = fixtures::figure1_vector();
//!
//! // Three logical clients, one fused multiplication.
//! let tickets: Vec<_> =
//!     (0..3).map(|_| engine.submit(MxvRequest::new(x.clone()))).collect();
//! engine.flush();
//! for t in tickets {
//!     let y: SparseVec<f64> = t.wait().expect("not cancelled");
//!     assert!(!y.is_empty());
//! }
//! assert_eq!(engine.stats().fused_batches, 1);
//! ```
//!
//! Results are **bit-identical** to running every request through its own
//! single-vector [`crate::ops::PreparedMxv::run`] call (the engine property
//! test asserts exactly that): under the default sorted options, the fused
//! bucket kernel reduces each lane in the same order as the single-vector
//! kernel.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sparse_substrate::{CscMatrix, MaskBits, Scalar, Semiring, SparseVec, SparseVecBatch};

use crate::algorithm::SpMSpVOptions;
use crate::batch::BatchAlgorithmKind;
use crate::masked::MaskMode;
use crate::ops::{Mxv, PreparedMxv};
use crate::stats::{ChoiceCounts, EngineStats};
use crate::timing::FlushTimings;

/// Tuning knobs of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Width budget per fused multiplication: a flush splits each compatible
    /// group into chunks of at most this many lanes (`0` = unbounded). Also
    /// the width trigger of the [`Engine::serve`] loop. Bounding the width
    /// keeps the batched kernel's `m × k` lane-SPA within cache reach — the
    /// ROADMAP's batch-perf observation.
    pub max_lanes: usize,
    /// Bound on queued requests; `submit` blocks (backpressure) while the
    /// queue is full. `0` = unbounded (the synchronous style's default).
    pub queue_capacity: usize,
    /// How long the [`Engine::serve`] loop waits for more requests to
    /// coalesce before flushing a partially filled batch.
    pub linger: Duration,
    /// Batched algorithm family for requests without an explicit hint.
    pub batch_algorithm: BatchAlgorithmKind,
    /// Kernel tuning options shared by every pooled descriptor.
    pub options: SpMSpVOptions,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_lanes: 64,
            queue_capacity: 0,
            linger: Duration::from_micros(200),
            // Adaptive: each flush resolves the kernel family and SPA
            // backend from the coalesced batch's width and density, so
            // serving traffic auto-tunes without caller hints. What each
            // flush chose is recorded in [`EngineStats::choices`].
            batch_algorithm: BatchAlgorithmKind::Adaptive,
            options: SpMSpVOptions::default(),
        }
    }
}

impl EngineConfig {
    /// Builder-style setter for [`EngineConfig::max_lanes`].
    pub fn max_lanes(mut self, k: usize) -> Self {
        self.max_lanes = k;
        self
    }

    /// Builder-style setter for [`EngineConfig::queue_capacity`].
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Builder-style setter for [`EngineConfig::linger`].
    pub fn linger(mut self, d: Duration) -> Self {
        self.linger = d;
        self
    }

    /// Builder-style setter for [`EngineConfig::batch_algorithm`].
    pub fn batch_algorithm(mut self, kind: BatchAlgorithmKind) -> Self {
        self.batch_algorithm = kind;
        self
    }

    /// Builder-style setter for [`EngineConfig::options`].
    pub fn options(mut self, options: SpMSpVOptions) -> Self {
        self.options = options;
        self
    }
}

/// One client request: a frontier, an optional in-kernel output mask, and an
/// optional batched-algorithm hint. Requests with the same mask *mode* and
/// algorithm family coalesce into one fused multiplication; each request's
/// mask becomes its lane's mask.
#[derive(Debug, Clone)]
pub struct MxvRequest<X> {
    frontier: SparseVec<X>,
    mask: Option<(Arc<MaskBits>, MaskMode)>,
    algorithm: Option<BatchAlgorithmKind>,
}

impl<X: Scalar> MxvRequest<X> {
    /// A plain unmasked request under the engine's default algorithm.
    pub fn new(frontier: SparseVec<X>) -> Self {
        MxvRequest { frontier, mask: None, algorithm: None }
    }

    /// Attaches this request's own output mask (the BFS `¬visited` idiom:
    /// every client carries its private visited set).
    ///
    /// Accepts an owned [`MaskBits`] or an `Arc<MaskBits>`. Iterative
    /// clients that re-submit an evolving mask every round should pass
    /// `Arc::clone(&mask)` — the bitmap then travels through the queue, the
    /// coalescer and the kernel by refcount, and between flushes the
    /// client's `Arc::make_mut` updates stay zero-copy because the engine
    /// has dropped its reference by then.
    pub fn mask(mut self, bits: impl Into<Arc<MaskBits>>, mode: MaskMode) -> Self {
        self.mask = Some((bits.into(), mode));
        self
    }

    /// Pins the batched algorithm family for this request; requests with
    /// different families never fuse.
    pub fn algorithm(mut self, kind: BatchAlgorithmKind) -> Self {
        self.algorithm = Some(kind);
        self
    }
}

/// Result slot state shared between a [`Ticket`] and the queue/coalescer.
enum TicketState<Y> {
    Pending,
    Ready(SparseVec<Y>),
    Taken,
    Cancelled,
}

struct TicketShared<Y> {
    state: Mutex<TicketState<Y>>,
    ready: Condvar,
}

impl<Y: Scalar> TicketShared<Y> {
    fn fulfil(&self, y: SparseVec<Y>) {
        let mut st = self.state.lock().unwrap();
        if matches!(*st, TicketState::Pending) {
            *st = TicketState::Ready(y);
            self.ready.notify_all();
        }
    }

    /// Marks a pending ticket cancelled; returns whether it was pending.
    fn cancel(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        if matches!(*st, TicketState::Pending) {
            *st = TicketState::Cancelled;
            self.ready.notify_all();
            true
        } else {
            false
        }
    }

    fn is_cancelled(&self) -> bool {
        matches!(*self.state.lock().unwrap(), TicketState::Cancelled)
    }
}

/// A claim on one request's result.
///
/// In the synchronous style, call [`Engine::flush`] and then
/// [`Ticket::try_take`]; under [`Engine::serve`], block on [`Ticket::wait`].
/// [`Ticket::cancel`] retires the request mid-flight: if it has not been
/// fused into a batch yet, it never will be.
pub struct Ticket<Y> {
    shared: Arc<TicketShared<Y>>,
}

impl<Y: Scalar> Ticket<Y> {
    /// Blocks until the request is served (or cancelled), consuming the
    /// ticket. Returns `None` when the request was cancelled, or when the
    /// result was already claimed by an earlier [`Ticket::try_take`].
    ///
    /// Only sensible when something will flush — the [`Engine::serve`] loop,
    /// or another thread calling [`Engine::flush`].
    pub fn wait(self) -> Option<SparseVec<Y>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *st, TicketState::Taken) {
                TicketState::Ready(y) => return Some(y),
                TicketState::Cancelled => {
                    *st = TicketState::Cancelled;
                    return None;
                }
                TicketState::Pending => {
                    *st = TicketState::Pending;
                    st = self.shared.ready.wait(st).unwrap();
                }
                TicketState::Taken => return None,
            }
        }
    }

    /// Takes the result if it is ready; `None` while pending, after
    /// cancellation, or if already taken.
    pub fn try_take(&self) -> Option<SparseVec<Y>> {
        let mut st = self.shared.state.lock().unwrap();
        match std::mem::replace(&mut *st, TicketState::Taken) {
            TicketState::Ready(y) => Some(y),
            other => {
                *st = other;
                None
            }
        }
    }

    /// Retires the request: a still-queued request is dropped from the next
    /// flush (its lane is never assembled); a request already served keeps
    /// its result. Returns whether the request was still pending.
    pub fn cancel(&self) -> bool {
        self.shared.cancel()
    }

    /// Whether the request has neither been served nor cancelled yet.
    pub fn is_pending(&self) -> bool {
        matches!(*self.shared.state.lock().unwrap(), TicketState::Pending)
    }
}

/// One queued request, tagged with the session that submitted it.
struct QueueEntry<X, Y> {
    session: u64,
    frontier: SparseVec<X>,
    mask: Option<(Arc<MaskBits>, MaskMode)>,
    algorithm: BatchAlgorithmKind,
    ticket: Arc<TicketShared<Y>>,
}

struct RequestQueue<X, Y> {
    entries: Mutex<VecDeque<QueueEntry<X, Y>>>,
    /// Signalled when requests arrive (wakes the serve loop).
    grew: Condvar,
    /// Signalled when the queue drains (unblocks bounded `submit`).
    shrank: Condvar,
}

/// How the engine holds its matrix: borrowed from the caller, or owned.
enum MatrixSource<'m, A> {
    Borrowed(&'m CscMatrix<A>),
    Owned(Arc<CscMatrix<A>>),
}

/// The engine's pool of prepared descriptors, one per batched family.
type DescriptorPool<'m, A, X, S> = Vec<(BatchAlgorithmKind, PreparedMxv<'m, A, X, S>)>;

/// The serving engine. See the [module docs](self).
///
/// Generic over the matrix element `A`, the input element `X` and the
/// semiring `S` — one engine serves one operation type, many clients. The
/// engine is `Sync`: sessions on any thread may submit while the serve loop
/// (or any thread) flushes.
pub struct Engine<'m, A: Scalar, X: Scalar, S: Semiring<A, X>> {
    /// One prepared descriptor per batched algorithm family, created lazily,
    /// reused across flushes (the amortization the engine exists for).
    ///
    /// Field order matters: `pool` holds matrix borrows that, for an owned
    /// matrix, are derived from `source` — it must drop first, and struct
    /// fields drop in declaration order.
    pool: Mutex<DescriptorPool<'m, A, X, S>>,
    queue: RequestQueue<X, S::Output>,
    stats: Mutex<EngineStats>,
    config: EngineConfig,
    semiring: S,
    next_session: AtomicU64,
    source: MatrixSource<'m, A>,
}

impl<'m, A, X, S> Engine<'m, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + Clone + 'm,
{
    /// An engine borrowing `matrix` from the caller, with default
    /// configuration — the fit for algorithm drivers (`multi_bfs`,
    /// `pagerank_personalized_batch`) that already hold the matrix.
    pub fn over(matrix: &'m CscMatrix<A>, semiring: S) -> Self {
        Self::over_with(matrix, semiring, EngineConfig::default())
    }

    /// [`Engine::over`] with an explicit configuration.
    pub fn over_with(matrix: &'m CscMatrix<A>, semiring: S, config: EngineConfig) -> Self {
        Self::from_source(MatrixSource::Borrowed(matrix), semiring, config)
    }

    /// An engine **owning** `matrix`, with default configuration — the
    /// serving deployment shape: load once, serve until dropped.
    pub fn load(matrix: CscMatrix<A>, semiring: S) -> Self {
        Self::load_with(matrix, semiring, EngineConfig::default())
    }

    /// [`Engine::load`] with an explicit configuration.
    pub fn load_with(matrix: CscMatrix<A>, semiring: S, config: EngineConfig) -> Self {
        Self::from_source(MatrixSource::Owned(Arc::new(matrix)), semiring, config)
    }

    fn from_source(source: MatrixSource<'m, A>, semiring: S, config: EngineConfig) -> Self {
        Engine {
            pool: Mutex::new(Vec::new()),
            queue: RequestQueue {
                entries: Mutex::new(VecDeque::new()),
                grew: Condvar::new(),
                shrank: Condvar::new(),
            },
            stats: Mutex::new(EngineStats::default()),
            config,
            semiring,
            next_session: AtomicU64::new(1),
            source,
        }
    }

    /// The matrix reference the pooled descriptors are prepared over.
    fn matrix_ref(&self) -> &'m CscMatrix<A> {
        match &self.source {
            MatrixSource::Borrowed(m) => m,
            // SAFETY: the Arc is owned by `self.source` for the engine's
            // whole life and never swapped or released early, so the matrix
            // sits at a stable heap address and is never mutated (no API
            // takes it by `&mut`). The only borrows derived from this
            // extended reference live inside `self.pool`, which is declared
            // before `source` and therefore dropped first; no public API
            // returns anything borrowed for `'m`.
            MatrixSource::Owned(arc) => unsafe { &*Arc::as_ptr(arc) },
        }
    }

    /// The matrix this engine serves.
    pub fn matrix(&self) -> &CscMatrix<A> {
        self.matrix_ref()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cumulative coalescing telemetry.
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock().unwrap()
    }

    /// Requests currently queued (submitted, not yet flushed).
    pub fn pending(&self) -> usize {
        self.queue.entries.lock().unwrap().len()
    }

    /// Opens a session: a handle for one logical client, whose queued
    /// requests can be retired together with [`Session::close`].
    pub fn session(&self) -> Session<'_, 'm, A, X, S> {
        Session { engine: self, id: self.next_session.fetch_add(1, Ordering::Relaxed) }
    }

    /// Submits an anonymous request (no session). See [`Session::submit`].
    pub fn submit(&self, request: MxvRequest<X>) -> Ticket<S::Output> {
        self.submit_tagged(0, request)
    }

    fn submit_tagged(&self, session: u64, request: MxvRequest<X>) -> Ticket<S::Output> {
        let m = self.matrix_ref();
        assert_eq!(
            request.frontier.len(),
            m.ncols(),
            "request frontier has dimension {} but the matrix has {} columns",
            request.frontier.len(),
            m.ncols()
        );
        if let Some((bits, _)) = &request.mask {
            assert_eq!(
                bits.len(),
                m.nrows(),
                "request mask covers {} rows but the matrix has {} output rows",
                bits.len(),
                m.nrows()
            );
        }
        let shared = Arc::new(TicketShared {
            state: Mutex::new(TicketState::Pending),
            ready: Condvar::new(),
        });
        let entry = QueueEntry {
            session,
            frontier: request.frontier,
            mask: request.mask,
            algorithm: request.algorithm.unwrap_or(self.config.batch_algorithm),
            ticket: Arc::clone(&shared),
        };
        // Count the request before it becomes flushable, so a concurrent
        // `stats()` snapshot always sees `requests ≥ lanes_executed`.
        self.stats.lock().unwrap().requests += 1;
        {
            let mut q = self.queue.entries.lock().unwrap();
            if self.config.queue_capacity > 0 {
                while q.len() >= self.config.queue_capacity {
                    q = self.queue.shrank.wait(q).unwrap();
                }
            }
            q.push_back(entry);
        }
        self.queue.grew.notify_all();
        Ticket { shared }
    }

    /// Drains the queue and serves every live request: groups compatible
    /// requests, fuses each group into at most [`EngineConfig::max_lanes`]
    /// lanes per batched multiplication, executes, and demultiplexes results
    /// to the tickets. Returns what happened (all zeros when the queue was
    /// empty).
    pub fn flush(&self) -> FlushOutcome {
        let drained: Vec<QueueEntry<X, S::Output>> = {
            let mut q = self.queue.entries.lock().unwrap();
            q.drain(..).collect()
        };
        self.queue.shrank.notify_all();
        if drained.is_empty() {
            return FlushOutcome::default();
        }

        let mut outcome = FlushOutcome { requests: drained.len(), ..FlushOutcome::default() };
        let t_group = Instant::now();
        // Group by (algorithm family, mask mode), preserving arrival order
        // within each group — the demux order clients observe.
        type Key = (BatchAlgorithmKind, Option<MaskMode>);
        type Group<X, Y> = (Key, Vec<QueueEntry<X, Y>>);
        let mut groups: Vec<Group<X, S::Output>> = Vec::new();
        for entry in drained {
            if entry.ticket.is_cancelled() {
                outcome.retired += 1;
                continue;
            }
            let key = (entry.algorithm, entry.mask.as_ref().map(|&(_, mode)| mode));
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(entry),
                None => groups.push((key, vec![entry])),
            }
        }
        outcome.timings.assemble += t_group.elapsed();

        let width = if self.config.max_lanes == 0 { usize::MAX } else { self.config.max_lanes };
        let mut pool = self.pool.lock().unwrap();
        for ((kind, mode), members) in groups {
            let mut members = members.into_iter().peekable();
            while members.peek().is_some() {
                let t_assemble = Instant::now();
                // Mid-flight retirement check once more at assembly time: a
                // ticket cancelled after the drain still leaves the batch.
                let chunk: Vec<QueueEntry<X, S::Output>> = members
                    .by_ref()
                    .take(width)
                    .filter(|e| {
                        let live = !e.ticket.is_cancelled();
                        if !live {
                            outcome.retired += 1;
                        }
                        live
                    })
                    .collect();
                if chunk.is_empty() {
                    continue;
                }
                // Disassemble the entries: frontiers fuse into the batch,
                // masks move into the pooled descriptor, tickets stay for
                // the demux — no per-request copies.
                let mut tickets = Vec::with_capacity(chunk.len());
                let mut lanes = Vec::with_capacity(chunk.len());
                let mut masks = mode.map(|_| Vec::with_capacity(chunk.len()));
                for entry in chunk {
                    tickets.push(entry.ticket);
                    lanes.push(entry.frontier);
                    if let Some(masks) = masks.as_mut() {
                        masks.push(entry.mask.expect("grouped as masked").0);
                    }
                }
                let x = SparseVecBatch::from_lanes(&lanes)
                    .expect("request dimensions are validated at submit");
                let prepared = Self::pool_entry(
                    &mut pool,
                    kind,
                    self.matrix_ref(),
                    &self.semiring,
                    &self.config.options,
                );
                match (mode, masks) {
                    (Some(mode), Some(masks)) => prepared.set_lane_masks(masks, mode),
                    _ => prepared.unmask(),
                }
                outcome.timings.assemble += t_assemble.elapsed();

                let t_execute = Instant::now();
                let y = prepared.run_batch(&x);
                outcome.timings.execute += t_execute.elapsed();
                if let Some(info) = prepared.last_batch_run_info() {
                    outcome.choices.record(info);
                }

                let t_demux = Instant::now();
                for (lane, ticket) in tickets.iter().enumerate() {
                    ticket.fulfil(y.lane_vec(lane));
                }
                // Release this chunk's masks; the kernels stay pooled.
                prepared.unmask();
                outcome.batches += 1;
                outcome.lanes += tickets.len();
                outcome.timings.demux += t_demux.elapsed();
            }
        }
        drop(pool);

        let mut stats = self.stats.lock().unwrap();
        stats.retired += outcome.retired;
        if outcome.batches > 0 {
            stats.flushes += 1;
        }
        stats.fused_batches += outcome.batches;
        stats.lanes_executed += outcome.lanes;
        stats.widest_flush = stats.widest_flush.max(outcome.lanes);
        stats.flush_timings += outcome.timings;
        stats.choices.merge(&outcome.choices);
        outcome
    }

    fn pool_entry<'p>(
        pool: &'p mut DescriptorPool<'m, A, X, S>,
        kind: BatchAlgorithmKind,
        matrix: &'m CscMatrix<A>,
        semiring: &S,
        options: &SpMSpVOptions,
    ) -> &'p mut PreparedMxv<'m, A, X, S> {
        if let Some(pos) = pool.iter().position(|(k, _)| *k == kind) {
            return &mut pool[pos].1;
        }
        let prepared = Mxv::over(matrix)
            .semiring(semiring)
            .batch_algorithm(kind)
            .options(options.clone())
            .prepare::<X>();
        pool.push((kind, prepared));
        &mut pool.last_mut().expect("just pushed").1
    }

    /// Runs `body` with a background flush loop serving the engine: the loop
    /// flushes whenever [`EngineConfig::max_lanes`] requests are pending or
    /// [`EngineConfig::linger`] elapses with a non-empty queue. The loop
    /// drains remaining requests and stops when `body` returns (or panics).
    ///
    /// Client threads spawned inside `body` submit through [`Session`]s and
    /// block on [`Ticket::wait`].
    pub fn serve<R: Send>(&self, body: impl FnOnce(&Self) -> R + Send) -> R
    where
        S::Output: Scalar,
    {
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let server = scope.spawn(|| self.serve_loop(&shutdown));
            // Raise the shutdown flag even when `body` unwinds, so the
            // scope's implicit join cannot deadlock on a still-running loop.
            let guard = ShutdownGuard { flag: &shutdown, queue: &self.queue };
            let out = body(self);
            drop(guard);
            server.join().expect("engine serve loop panicked");
            out
        })
    }

    fn serve_loop(&self, shutdown: &AtomicBool) {
        let linger = self.config.linger.max(Duration::from_micros(1));
        // `max_lanes == 0` means "no width budget" for the coalescer, so it
        // disables the width trigger too: the loop then flushes on linger
        // timeouts only.
        let width = if self.config.max_lanes == 0 { usize::MAX } else { self.config.max_lanes };
        loop {
            let mut deadline: Option<Instant> = None;
            {
                let mut entries = self.queue.entries.lock().unwrap();
                loop {
                    if shutdown.load(Ordering::SeqCst) || entries.len() >= width {
                        break;
                    }
                    if !entries.is_empty() && deadline.is_none() {
                        deadline = Some(Instant::now() + linger);
                    }
                    match deadline {
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                break;
                            }
                            let (guard, _) =
                                self.queue.grew.wait_timeout(entries, d - now).unwrap();
                            entries = guard;
                        }
                        // Empty queue: block until a submit (or the shutdown
                        // guard) signals `grew` — no periodic wakeups.
                        None => entries = self.queue.grew.wait(entries).unwrap(),
                    }
                }
                if entries.is_empty() && shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            self.flush();
        }
    }

    /// Retires every still-queued request of `session`: entries leave the
    /// queue and their tickets report cancelled.
    fn retire_session(&self, session: u64) -> usize {
        let retired = {
            let mut q = self.queue.entries.lock().unwrap();
            let before = q.len();
            q.retain(|e| {
                if e.session == session {
                    e.ticket.cancel();
                    false
                } else {
                    true
                }
            });
            before - q.len()
        };
        if retired > 0 {
            self.queue.shrank.notify_all();
            self.stats.lock().unwrap().retired += retired;
        }
        retired
    }
}

/// Raises the shutdown flag (and wakes the serve loop) on drop — including
/// on unwind out of a `serve` body.
struct ShutdownGuard<'a, X, Y> {
    flag: &'a AtomicBool,
    queue: &'a RequestQueue<X, Y>,
}

impl<X, Y> Drop for ShutdownGuard<'_, X, Y> {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
        // Notify while holding the queue lock: the serve loop checks the
        // flag and parks on `grew` under this same mutex, so the notify
        // cannot land in the gap between its check and its wait (a lost
        // wakeup would hang the untimed empty-queue wait forever).
        let _entries = self.queue.entries.lock().unwrap();
        self.queue.grew.notify_all();
    }
}

/// What one [`Engine::flush`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Requests drained from the queue.
    pub requests: usize,
    /// Requests dropped because their ticket was cancelled (or their session
    /// closed) before their lane was assembled.
    pub retired: usize,
    /// Fused batched multiplications executed.
    pub batches: usize,
    /// Lanes executed across those batches (= requests served).
    pub lanes: usize,
    /// Wall-clock breakdown of this flush.
    pub timings: FlushTimings,
    /// The concrete `(kernel family, SPA backend)` each fused batch of this
    /// flush resolved to.
    pub choices: ChoiceCounts,
}

/// A handle for one logical client of an [`Engine`].
///
/// Sessions are cheap (an id plus a borrow) and independent: many sessions
/// submit concurrently, and the coalescer fuses across session boundaries.
/// [`Session::close`] retires the session's still-queued requests — the
/// serving-side counterpart of multi-source BFS lane retirement.
pub struct Session<'e, 'm, A: Scalar, X: Scalar, S: Semiring<A, X>> {
    engine: &'e Engine<'m, A, X, S>,
    id: u64,
}

impl<'e, 'm, A, X, S> Session<'e, 'm, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + Clone + 'm,
{
    /// This session's id (unique within its engine).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submits a request on behalf of this session. Blocks for backpressure
    /// when the engine's queue is bounded and full.
    pub fn submit(&self, request: MxvRequest<X>) -> Ticket<S::Output> {
        self.engine.submit_tagged(self.id, request)
    }

    /// Closes the session, retiring its still-queued requests mid-flight:
    /// their lanes are never assembled and their tickets report cancelled.
    /// Requests already served keep their results. Returns how many requests
    /// were retired.
    pub fn close(self) -> usize {
        self.engine.retire_session(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
    use sparse_substrate::{fixtures, PlusTimes, Select2ndMin};

    fn requests(n: usize, count: usize, seed: u64) -> Vec<SparseVec<f64>> {
        (0..count).map(|i| random_sparse_vec(n, (n / 4).max(1), seed + i as u64)).collect()
    }

    /// The oracle: one independent single-vector `PreparedMxv::run` per
    /// request, same options.
    fn independent_run(
        a: &CscMatrix<f64>,
        x: &SparseVec<f64>,
        mask: Option<(&MaskBits, MaskMode)>,
    ) -> SparseVec<f64> {
        let op = Mxv::over(a).semiring(&PlusTimes);
        let mut op = match mask {
            Some((bits, mode)) => op.mask(bits, mode).prepare(),
            None => op.prepare(),
        };
        op.run(x)
    }

    #[test]
    fn coalesced_flush_is_bit_identical_to_independent_runs() {
        let a = erdos_renyi(200, 6.0, 9);
        let engine = Engine::over(&a, PlusTimes);
        let frontiers = requests(200, 6, 3);
        let tickets: Vec<Ticket<f64>> =
            frontiers.iter().map(|x| engine.submit(MxvRequest::new(x.clone()))).collect();
        let outcome = engine.flush();
        assert_eq!(outcome.requests, 6);
        assert_eq!(outcome.lanes, 6);
        assert_eq!(outcome.batches, 1, "six compatible requests must fuse into one batch");
        for (ticket, x) in tickets.into_iter().zip(frontiers.iter()) {
            let y = ticket.try_take().expect("flushed");
            assert_eq!(y, independent_run(&a, x, None), "engine lane diverged");
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.fused_batches, 1);
        assert_eq!(stats.widest_flush, 6);
        assert!(stats.mean_lanes_per_batch() > 5.9);
    }

    #[test]
    fn owned_matrix_engine_serves_after_load() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let expected = independent_run(&a, &x, None);
        let engine = Engine::load(a, PlusTimes);
        let t = engine.submit(MxvRequest::new(x));
        engine.flush();
        assert_eq!(t.wait().expect("not cancelled"), expected);
        assert_eq!(engine.matrix().nrows(), 8);
    }

    #[test]
    fn per_request_masks_become_lane_masks() {
        let a = erdos_renyi(150, 5.0, 4);
        let engine = Engine::over(&a, PlusTimes);
        let frontiers = requests(150, 4, 11);
        let masks: Vec<MaskBits> =
            (0..4).map(|i| MaskBits::from_indices(150, (i..150).step_by(3))).collect();
        let tickets: Vec<Ticket<f64>> = frontiers
            .iter()
            .zip(masks.iter())
            .map(|(x, bits)| {
                engine.submit(MxvRequest::new(x.clone()).mask(bits.clone(), MaskMode::Complement))
            })
            .collect();
        let outcome = engine.flush();
        assert_eq!(outcome.batches, 1, "same mask mode must coalesce");
        for ((ticket, x), bits) in tickets.into_iter().zip(&frontiers).zip(&masks) {
            let y = ticket.try_take().expect("flushed");
            assert_eq!(y, independent_run(&a, x, Some((bits, MaskMode::Complement))));
        }
    }

    #[test]
    fn incompatible_requests_split_into_groups() {
        let a = erdos_renyi(100, 5.0, 2);
        let engine = Engine::over(&a, PlusTimes);
        let xs = requests(100, 4, 5);
        let bits = MaskBits::from_indices(100, (0..100).step_by(2));
        engine.submit(MxvRequest::new(xs[0].clone()));
        engine.submit(MxvRequest::new(xs[1].clone()).mask(bits.clone(), MaskMode::Keep));
        engine.submit(MxvRequest::new(xs[2].clone()).mask(bits, MaskMode::Complement));
        engine.submit(MxvRequest::new(xs[3].clone()).algorithm(BatchAlgorithmKind::Naive));
        let outcome = engine.flush();
        assert_eq!(outcome.batches, 4, "four mutually incompatible requests");
        assert_eq!(outcome.lanes, 4);
    }

    #[test]
    fn max_lanes_budget_chunks_wide_groups() {
        let a = erdos_renyi(80, 4.0, 7);
        let engine = Engine::over_with(&a, PlusTimes, EngineConfig::default().max_lanes(2));
        let xs = requests(80, 5, 23);
        let tickets: Vec<Ticket<f64>> =
            xs.iter().map(|x| engine.submit(MxvRequest::new(x.clone()))).collect();
        let outcome = engine.flush();
        assert_eq!(outcome.batches, 3, "5 lanes under a width budget of 2 → 3 batches");
        for (ticket, x) in tickets.into_iter().zip(&xs) {
            assert_eq!(ticket.try_take().expect("flushed"), independent_run(&a, x, None));
        }
    }

    #[test]
    fn cancelled_ticket_retires_before_assembly() {
        let a = erdos_renyi(90, 4.0, 1);
        let engine = Engine::over(&a, PlusTimes);
        let xs = requests(90, 3, 2);
        let keep0 = engine.submit(MxvRequest::new(xs[0].clone()));
        let dropped = engine.submit(MxvRequest::new(xs[1].clone()));
        let keep1 = engine.submit(MxvRequest::new(xs[2].clone()));
        assert!(dropped.cancel());
        assert!(!dropped.cancel(), "second cancel is a no-op");
        let outcome = engine.flush();
        assert_eq!(outcome.retired, 1);
        assert_eq!(outcome.lanes, 2);
        assert!(dropped.try_take().is_none());
        assert_eq!(keep0.try_take().expect("served"), independent_run(&a, &xs[0], None));
        assert_eq!(keep1.try_take().expect("served"), independent_run(&a, &xs[2], None));
        assert_eq!(engine.stats().retired, 1);
    }

    #[test]
    fn closing_a_session_retires_its_queued_requests() {
        let a = erdos_renyi(70, 4.0, 6);
        let engine = Engine::over(&a, PlusTimes);
        let xs = requests(70, 3, 9);
        let closing = engine.session();
        let staying = engine.session();
        assert_ne!(closing.id(), staying.id());
        let dead = closing.submit(MxvRequest::new(xs[0].clone()));
        let live = staying.submit(MxvRequest::new(xs[1].clone()));
        let dead2 = closing.submit(MxvRequest::new(xs[2].clone()));
        assert_eq!(closing.close(), 2);
        let outcome = engine.flush();
        assert_eq!(outcome.lanes, 1);
        assert!(dead.wait().is_none());
        assert!(dead2.try_take().is_none());
        assert_eq!(live.try_take().expect("served"), independent_run(&a, &xs[1], None));
    }

    #[test]
    fn serve_loop_fuses_concurrent_clients() {
        let a = erdos_renyi(160, 5.0, 12);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default().max_lanes(8).linger(Duration::from_millis(20)),
        );
        let xs = requests(160, 8, 31);
        let results: Vec<(SparseVec<f64>, SparseVec<f64>)> = engine.serve(|engine| {
            std::thread::scope(|s| {
                let handles: Vec<_> = xs
                    .iter()
                    .map(|x| {
                        s.spawn(move || {
                            let session = engine.session();
                            let ticket = session.submit(MxvRequest::new(x.clone()));
                            (ticket.wait().expect("served"), x.clone())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
            })
        });
        for (y, x) in &results {
            assert_eq!(*y, independent_run(&a, x, None), "served lane diverged");
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.lanes_executed, 8);
        assert!(
            stats.fused_batches < 8,
            "serve loop should coalesce at least some of the 8 concurrent requests \
             (got {} batches)",
            stats.fused_batches
        );
    }

    #[test]
    fn serve_loop_without_width_budget_flushes_on_linger_only() {
        // max_lanes = 0 must mean "no width trigger" in serve mode too: the
        // loop coalesces whatever accumulates within one linger window
        // instead of flushing every request alone.
        let a = erdos_renyi(100, 4.0, 3);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default().max_lanes(0).linger(Duration::from_millis(20)),
        );
        let xs = requests(100, 6, 17);
        let results: Vec<(SparseVec<f64>, SparseVec<f64>)> = engine.serve(|engine| {
            std::thread::scope(|s| {
                let handles: Vec<_> = xs
                    .iter()
                    .map(|x| {
                        s.spawn(move || {
                            let ticket = engine.submit(MxvRequest::new(x.clone()));
                            (ticket.wait().expect("served"), x.clone())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
            })
        });
        for (y, x) in &results {
            assert_eq!(*y, independent_run(&a, x, None));
        }
        let stats = engine.stats();
        assert_eq!(stats.lanes_executed, 6);
        assert!(
            stats.fused_batches < 6,
            "an unbounded width budget must still coalesce concurrent requests \
             (got {} batches for 6 requests)",
            stats.fused_batches
        );
    }

    #[test]
    fn wait_after_try_take_returns_none_instead_of_panicking() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let engine = Engine::over(&a, PlusTimes);
        let ticket = engine.submit(MxvRequest::new(x));
        engine.flush();
        assert!(ticket.try_take().is_some());
        assert!(ticket.try_take().is_none(), "second take sees nothing");
        assert!(ticket.wait().is_none(), "wait after take must not panic");
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_losing_requests() {
        let a = erdos_renyi(60, 4.0, 8);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default()
                .max_lanes(2)
                .queue_capacity(2)
                .linger(Duration::from_micros(100)),
        );
        let xs = requests(60, 12, 44);
        let served: usize = engine.serve(|engine| {
            std::thread::scope(|s| {
                let handles: Vec<_> = xs
                    .iter()
                    .map(|x| {
                        s.spawn(move || {
                            engine.submit(MxvRequest::new(x.clone())).wait().expect("served").nnz()
                        })
                    })
                    .collect();
                handles.into_iter().filter_map(|h| h.join().ok()).count()
            })
        });
        assert_eq!(served, 12);
        assert_eq!(engine.stats().lanes_executed, 12);
    }

    #[test]
    fn select2nd_semiring_engine_serves_bfs_shaped_requests() {
        let a = fixtures::tridiagonal(12);
        let engine: Engine<'_, f64, usize, Select2ndMin> = Engine::over(&a, Select2ndMin);
        let frontier = SparseVec::from_pairs(12, vec![(4, 4usize)]).unwrap();
        let mut visited = MaskBits::new(12);
        visited.insert(4);
        let t = engine
            .submit(MxvRequest::new(frontier.clone()).mask(visited.clone(), MaskMode::Complement));
        engine.flush();
        let y = t.try_take().expect("served");
        let mut op =
            Mxv::over(&a).semiring(&Select2ndMin).mask(&visited, MaskMode::Complement).prepare();
        assert_eq!(y, op.run(&frontier));
        assert!(y.get(4).is_none(), "¬visited mask dropped the source");
    }

    #[test]
    fn flush_on_an_empty_queue_is_a_noop() {
        let a = fixtures::figure1_matrix();
        let engine: Engine<'_, f64, f64, PlusTimes> = Engine::over(&a, PlusTimes);
        assert_eq!(engine.flush(), FlushOutcome::default());
        assert_eq!(engine.pending(), 0);
        assert_eq!(engine.stats().flushes, 0);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn submit_rejects_mismatched_frontier_dimension() {
        let a = fixtures::figure1_matrix();
        let engine: Engine<'_, f64, f64, PlusTimes> = Engine::over(&a, PlusTimes);
        let _ = engine.submit(MxvRequest::new(SparseVec::new(9)));
    }

    #[test]
    #[should_panic(expected = "output rows")]
    fn submit_rejects_mismatched_mask_dimension() {
        let a = fixtures::figure1_matrix();
        let engine: Engine<'_, f64, f64, PlusTimes> = Engine::over(&a, PlusTimes);
        let _ = engine
            .submit(MxvRequest::new(SparseVec::new(8)).mask(MaskBits::new(4), MaskMode::Keep));
    }
}
