//! The fallback batched algorithm: `k` independent single-vector
//! [`SpMSpVBucket`] calls.
//!
//! This is both the correctness oracle for [`super::SpMSpVBucketBatch`]
//! (every batched result must match it lane for lane) and the baseline the
//! `batch_scaling` bench compares against: it traverses the matrix's column
//! structure once **per lane**, where the fused kernel traverses it once per
//! *distinct* active column of the whole batch.

use sparse_substrate::{CscMatrix, Scalar, Semiring, SpaBackend, SparseVec, SparseVecBatch};

use crate::algorithm::{SpMSpV, SpMSpVOptions};
use crate::bucket::SpMSpVBucket;
use crate::masked::BatchMaskView;

use super::{BatchAlgorithmKind, BatchRunInfo, SpMSpVBatch};

/// Batched SpMSpV as `k` independent bucket multiplications sharing one
/// prepared [`SpMSpVBucket`] instance (so the per-lane workspace reuse of
/// the single-vector kernel still applies).
pub struct NaiveBatch<'a, A, X, S: Semiring<A, X>> {
    inner: SpMSpVBucket<'a, A, X, S>,
    /// Whether any multiplication has run (gates [`SpMSpVBatch::last_run_info`]).
    ran: bool,
}

impl<'a, A, X, S> NaiveBatch<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    /// Prepares the fallback for `matrix` with the given options.
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        NaiveBatch { inner: SpMSpVBucket::new(matrix, options), ran: false }
    }
}

impl<'a, A, X, S> SpMSpVBatch<A, X, S> for NaiveBatch<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "Naive-batch"
    }

    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn multiply_batch(&mut self, x: &SparseVecBatch<X>, semiring: &S) -> SparseVecBatch<S::Output> {
        self.ran = true;
        let lanes: Vec<SparseVec<S::Output>> =
            (0..x.k()).map(|l| self.inner.multiply(&x.lane_vec(l), semiring)).collect();
        SparseVecBatch::from_lanes(&lanes).expect("every lane shares the matrix's row dimension")
    }

    fn multiply_batch_masked(
        &mut self,
        x: &SparseVecBatch<X>,
        semiring: &S,
        mask: Option<&BatchMaskView<'_>>,
    ) -> SparseVecBatch<S::Output> {
        if let Some(mask) = mask {
            mask.check_lanes(x.k());
        }
        self.ran = true;
        let lanes: Vec<SparseVec<S::Output>> = (0..x.k())
            .map(|l| {
                self.inner.multiply_masked(&x.lane_vec(l), semiring, mask.map(|m| m.lane_view(l)))
            })
            .collect();
        SparseVecBatch::from_lanes(&lanes).expect("every lane shares the matrix's row dimension")
    }

    fn last_run_info(&self) -> Option<BatchRunInfo> {
        // The single-vector kernel's SPA is a plain per-row array — the
        // k = 1 degenerate case of the dense index-major layout.
        self.ran.then_some(BatchRunInfo {
            kernel: BatchAlgorithmKind::Naive,
            backend: SpaBackend::DenseIndexMajor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
    use sparse_substrate::ops::spmspv_batch_reference;
    use sparse_substrate::PlusTimes;

    #[test]
    fn naive_batch_matches_reference() {
        let a = erdos_renyi(150, 5.0, 4);
        let lanes: Vec<SparseVec<f64>> =
            (0..4).map(|l| random_sparse_vec(150, 25, l as u64)).collect();
        let x = SparseVecBatch::from_lanes(&lanes).unwrap();
        let expected = spmspv_batch_reference(&a, &x, &PlusTimes);
        let mut alg = NaiveBatch::new(&a, SpMSpVOptions::with_threads(3));
        let y = alg.multiply_batch(&x, &PlusTimes);
        assert!(y.approx_same_entries(&expected, 1e-9));
        assert_eq!(alg.name(), "Naive-batch");
        assert_eq!(alg.nrows(), 150);
        assert_eq!(alg.ncols(), 150);
    }
}
