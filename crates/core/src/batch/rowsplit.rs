//! CombBLAS-style **row-split** batched baseline.
//!
//! The single-vector [`CombBlasSpa`](crate::baselines::CombBlasSpa) baseline
//! splits the matrix row-wise into `t` DCSC pieces and has every thread
//! multiply its own piece with the *entire* input vector. This is the same
//! strategy extended to a batch: every thread walks the **whole fused input**
//! (all `k` lanes) against its own `m/t × n` piece, accumulating into a
//! private per-piece lane-aware accumulator, and the per-piece outputs are
//! concatenated row-range by row-range.
//!
//! Like its single-vector counterpart it is intentionally *not*
//! work-efficient — each of the `t` pieces re-reads all `nnz(X)` activations,
//! so total work is `O(t·nnz(X) + d·nnz(X))` — but it needs no
//! synchronization (each piece owns a disjoint row slice of every output
//! lane) and it amortizes the matrix traversal across lanes exactly like the
//! fused bucket kernel does. That makes it the honest in-tree comparison for
//! [`SpMSpVBucketBatch`](super::SpMSpVBucketBatch): the fused kernel must
//! beat a batched row-split, not only the `k`-independent-calls
//! [`NaiveBatch`](super::NaiveBatch).
//!
//! The per-piece accumulator is pluggable like the fused kernel's
//! ([`SpMSpVOptions::spa_backend`]): dense index-major, dense lane-major, or
//! hashed, with [`SpaBackend::Auto`] resolving per call from the estimated
//! fill of each piece's `m/t × k` slot space.
//!
//! Output determinism matches the rest of the crate: under `sorted_output`
//! each lane is sorted ascending, so results are comparable entry-for-entry
//! with the bucket kernels (bit-identical for order-insensitive semirings;
//! the row-split reduction order *within* one `(row, lane)` follows column
//! order, same as every other family here).

use rayon::prelude::*;
use sparse_substrate::{
    BatchAccumulator, CscMatrix, DcscMatrix, FusedColumns, HashLaneSpa, LaneMajorSpa, LaneSpa,
    Scalar, Semiring, SpaBackend, SparseVecBatch,
};

use crate::adaptive::{choose_backend, estimated_flops, keep_fraction};
use crate::algorithm::SpMSpVOptions;
use crate::executor::Executor;
use crate::masked::BatchMaskView;

use super::{BatchAlgorithmKind, BatchRunInfo, SpMSpVBatch};

/// One piece's lazily instantiated accumulators, one per backend, each
/// keeping its high-water allocation across calls.
struct PiecePool<Y> {
    dense: LaneSpa<Y>,
    lane_major: Option<LaneMajorSpa<Y>>,
    hashed: Option<HashLaneSpa<Y>>,
}

/// Row-split CombBLAS-style batched SpMSpV with one private lane-aware
/// accumulator per piece.
pub struct CombBlasSpaBatch<'a, A, X, S: Semiring<A, X>> {
    matrix: &'a CscMatrix<A>,
    pieces: Vec<DcscMatrix<A>>,
    /// Row offset of each piece within the full matrix.
    offsets: Vec<usize>,
    /// One accumulator pool per piece, grown amortized as `k` varies.
    spas: Vec<PiecePool<S::Output>>,
    executor: Executor,
    options: SpMSpVOptions,
    /// What [`SpaBackend::Auto`] resolved to on the most recent call
    /// (`None` until the first multiplication runs).
    last_backend: Option<SpaBackend>,
    _marker: std::marker::PhantomData<fn(X, S)>,
}

impl<'a, A, X, S> CombBlasSpaBatch<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    /// Splits `matrix` row-wise into one DCSC piece per thread.
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        let executor = options.build_executor();
        let t = executor.threads().max(1);
        let pieces = DcscMatrix::row_split(matrix, t);
        let offsets = matrix.row_split_offsets(t);
        let spas = pieces
            .iter()
            .map(|p| PiecePool {
                dense: LaneSpa::new(p.nrows(), 0),
                lane_major: None,
                hashed: None,
            })
            .collect();
        CombBlasSpaBatch {
            matrix,
            pieces,
            offsets,
            spas,
            executor,
            options,
            last_backend: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of row pieces (= threads the algorithm was prepared for).
    pub fn pieces(&self) -> usize {
        self.pieces.len()
    }

    /// The SPA backend the most recent call merged through; `None` before
    /// the first call.
    pub fn last_backend(&self) -> Option<SpaBackend> {
        self.last_backend
    }
}

/// One piece's merge: scan the whole fused input against the piece,
/// accumulate into `spa`, and emit lane-major `(global row, value)` lists.
/// Generic over the accumulator backend so the inner loop inlines.
#[allow(clippy::too_many_arguments)]
fn rowsplit_piece<A, X, S, Acc>(
    piece: &DcscMatrix<A>,
    piece_base: usize,
    spa: &mut Acc,
    fused: &FusedColumns<X>,
    k: usize,
    mask: Option<&BatchMaskView<'_>>,
    semiring: &S,
    sorted: bool,
) -> Vec<Vec<(usize, S::Output)>>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
    Acc: BatchAccumulator<S::Output>,
{
    spa.ensure_shape(piece.nrows().max(1), k.max(1));
    let mut uind: Vec<Vec<usize>> = vec![Vec::new(); k];
    for c in 0..fused.num_cols() {
        let j = fused.cols()[c];
        let Some((rows, avals)) = piece.column(j) else { continue };
        let (lanes, xvals) = fused.activations(c);
        for (&i, av) in rows.iter().zip(avals.iter()) {
            for (&lane, xv) in lanes.iter().zip(xvals.iter()) {
                if let Some(mask) = mask {
                    if !mask.keeps(i + piece_base, lane as usize) {
                        continue;
                    }
                }
                let prod = semiring.multiply(av, xv);
                if spa.accumulate(i, lane as usize, prod, |a, b| semiring.add(a, b)) {
                    uind[lane as usize].push(i);
                }
            }
        }
    }
    uind.into_iter()
        .enumerate()
        .map(|(lane, mut lane_uind)| {
            if sorted {
                lane_uind.sort_unstable();
            }
            lane_uind.into_iter().map(|i| (i + piece_base, *spa.value_at(i, lane))).collect()
        })
        .collect()
}

impl<'a, A, X, S> SpMSpVBatch<A, X, S> for CombBlasSpaBatch<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "CombBLAS-SPA-batch"
    }

    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn multiply_batch(&mut self, x: &SparseVecBatch<X>, semiring: &S) -> SparseVecBatch<S::Output> {
        self.multiply_batch_masked(x, semiring, None)
    }

    fn multiply_batch_masked(
        &mut self,
        x: &SparseVecBatch<X>,
        semiring: &S,
        mask: Option<&BatchMaskView<'_>>,
    ) -> SparseVecBatch<S::Output> {
        let m = self.matrix.nrows();
        let n = self.matrix.ncols();
        let k = x.k();
        assert_eq!(
            x.len(),
            n,
            "input batch has dimension {} but the matrix has {} columns",
            x.len(),
            n
        );
        if let Some(mask) = mask {
            mask.check_lanes(k);
        }
        if x.is_empty() {
            return SparseVecBatch::new(m, k);
        }

        // Shared fused view: the sorted union of active columns with their
        // (lane, value) activations. Every piece scans all of it — the
        // row-split work inefficiency, faithfully reproduced — but each
        // matrix column is still read once per piece for all lanes, which is
        // the batched amortization this baseline exists to measure.
        let fused = x.fuse_columns();
        // Backend per call: the exact flop count would need a pre-pass, so
        // Auto estimates fill from total activations × mean column degree
        // (each piece's slot space scales with its row share, so global fill
        // ≈ per-piece fill).
        let backend = match self.options.spa_backend {
            SpaBackend::Auto => {
                let est_flops = estimated_flops(self.matrix, fused.total_activations());
                choose_backend(
                    est_flops,
                    m,
                    k,
                    fused.num_cols(),
                    fused.total_activations(),
                    keep_fraction(mask),
                    &self.options.adaptive.resolve(),
                )
            }
            fixed => fixed,
        };
        self.last_backend = Some(backend);

        let offsets = &self.offsets;
        let pieces = &self.pieces;
        let sorted = self.options.sorted_output;
        let fused = &fused;
        // Per-piece, lane-major `(row, value)` lists with global row ids.
        type PieceLanes<Y> = Vec<Vec<(usize, Y)>>;
        let per_piece: Vec<PieceLanes<S::Output>> = self.executor.install(|| {
            pieces
                .par_iter()
                .zip(self.spas.par_iter_mut())
                .enumerate()
                .map(|(p, (piece, pool))| {
                    let base = offsets[p];
                    match backend {
                        SpaBackend::DenseIndexMajor | SpaBackend::Auto => rowsplit_piece(
                            piece,
                            base,
                            &mut pool.dense,
                            fused,
                            k,
                            mask,
                            semiring,
                            sorted,
                        ),
                        SpaBackend::DenseLaneMajor => rowsplit_piece(
                            piece,
                            base,
                            pool.lane_major.get_or_insert_with(|| LaneMajorSpa::new(0, 0)),
                            fused,
                            k,
                            mask,
                            semiring,
                            sorted,
                        ),
                        SpaBackend::Hashed => rowsplit_piece(
                            piece,
                            base,
                            pool.hashed.get_or_insert_with(|| HashLaneSpa::new(0, 0)),
                            fused,
                            k,
                            mask,
                            semiring,
                            sorted,
                        ),
                    }
                })
                .collect()
        });

        // Concatenate: lane l = piece 0's lane l, then piece 1's, … — pieces
        // cover ascending row ranges, so sorted pieces concatenate into a
        // sorted lane.
        let mut lane_ptr = Vec::with_capacity(k + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        lane_ptr.push(0usize);
        for l in 0..k {
            for piece_lanes in &per_piece {
                for &(i, ref v) in &piece_lanes[l] {
                    indices.push(i);
                    values.push(*v);
                }
            }
            lane_ptr.push(indices.len());
        }
        SparseVecBatch::from_parts_trusted(m, lane_ptr, indices, values)
            .expect("row-split output is consistent by construction")
    }

    fn last_run_info(&self) -> Option<BatchRunInfo> {
        self.last_backend
            .map(|backend| BatchRunInfo { kernel: BatchAlgorithmKind::CombBlasRowSplit, backend })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec, rmat, RmatParams};
    use sparse_substrate::ops::spmspv_batch_reference;
    use sparse_substrate::{fixtures, MaskBits, PlusTimes, Select2ndMin, SparseVec};

    use crate::batch::{mask_filter_batch, SpMSpVBucketBatch};
    use crate::masked::{MaskMode, MaskView};

    fn random_batch(n: usize, k: usize, nnz: usize, seed: u64) -> SparseVecBatch<f64> {
        let lanes: Vec<SparseVec<f64>> =
            (0..k).map(|l| random_sparse_vec(n, nnz.min(n), seed + 31 * l as u64)).collect();
        SparseVecBatch::from_lanes(&lanes).unwrap()
    }

    #[test]
    fn matches_reference_across_k_and_threads() {
        let a = erdos_renyi(250, 6.0, 13);
        for k in [1usize, 3, 8] {
            for threads in [1usize, 2, 5] {
                let x = random_batch(250, k, 40, 7 + k as u64 + threads as u64);
                let expected = spmspv_batch_reference(&a, &x, &PlusTimes);
                let mut alg = CombBlasSpaBatch::new(&a, SpMSpVOptions::with_threads(threads));
                let y = alg.multiply_batch(&x, &PlusTimes);
                assert!(
                    y.approx_same_entries(&expected, 1e-9),
                    "mismatch at k={k}, threads={threads}"
                );
                assert_eq!(alg.pieces(), threads);
            }
        }
    }

    #[test]
    fn every_backend_produces_identical_output() {
        let a = erdos_renyi(220, 5.0, 8);
        let x = random_batch(220, 6, 35, 3);
        let run = |backend: SpaBackend| {
            let mut alg =
                CombBlasSpaBatch::new(&a, SpMSpVOptions::with_threads(3).spa_backend(backend));
            let y = alg.multiply_batch(&x, &PlusTimes);
            assert_eq!(alg.last_backend(), Some(backend));
            assert_eq!(alg.last_run_info().unwrap().kernel, BatchAlgorithmKind::CombBlasRowSplit);
            y
        };
        let dense = run(SpaBackend::DenseIndexMajor);
        assert_eq!(dense, run(SpaBackend::DenseLaneMajor), "lane-major backend diverged");
        assert_eq!(dense, run(SpaBackend::Hashed), "hashed backend diverged");
        // Auto resolves to one of the concrete backends and agrees too.
        let mut auto = CombBlasSpaBatch::new(&a, SpMSpVOptions::with_threads(3));
        assert_eq!(auto.last_backend(), None, "no run yet, nothing to report");
        assert_eq!(dense, auto.multiply_batch(&x, &PlusTimes));
        assert!(matches!(auto.last_backend(), Some(b) if b != SpaBackend::Auto));
    }

    #[test]
    fn agrees_with_fused_bucket_batch_on_bfs_semiring() {
        let a = rmat(8, 8, RmatParams::graph500(), 4);
        let n = a.ncols();
        let lanes: Vec<SparseVec<usize>> = (0..4)
            .map(|l| SparseVec::from_pairs(n, vec![(l * 13 + 2, l * 13 + 2)]).unwrap())
            .collect();
        let x = SparseVecBatch::from_lanes(&lanes).unwrap();
        let mut rowsplit = CombBlasSpaBatch::new(&a, SpMSpVOptions::with_threads(3));
        let mut bucket = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(4));
        let yr = rowsplit.multiply_batch(&x, &Select2ndMin);
        let yb = bucket.multiply_batch(&x, &Select2ndMin);
        assert_eq!(yr, yb, "row-split batch diverged from the fused bucket batch");
    }

    #[test]
    fn in_kernel_mask_matches_post_filter_oracle() {
        let a = erdos_renyi(180, 5.0, 3);
        let x = random_batch(180, 5, 30, 11);
        let shared = MaskBits::from_indices(180, (0..180).step_by(3));
        let per_lane: Vec<std::sync::Arc<MaskBits>> = (0..5)
            .map(|l| std::sync::Arc::new(MaskBits::from_indices(180, (l..180).step_by(4))))
            .collect();
        for mode in [MaskMode::Keep, MaskMode::Complement] {
            for view in [
                BatchMaskView::Shared(MaskView::new(&shared, mode)),
                BatchMaskView::PerLane { masks: &per_lane, mode },
            ] {
                for backend in SpaBackend::concrete() {
                    let mut alg = CombBlasSpaBatch::new(
                        &a,
                        SpMSpVOptions::with_threads(4).spa_backend(backend),
                    );
                    let masked = alg.multiply_batch_masked(&x, &PlusTimes, Some(&view));
                    let unmasked = alg.multiply_batch(&x, &PlusTimes);
                    let oracle = mask_filter_batch(&unmasked, &view);
                    assert_eq!(
                        masked, oracle,
                        "{mode:?}/{backend} diverged from the post-filter oracle"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_batch_and_workspace_reuse_across_varying_k() {
        let a = fixtures::tridiagonal(60);
        let mut alg = CombBlasSpaBatch::new(&a, SpMSpVOptions::with_threads(3));
        let empty = alg.multiply_batch(&SparseVecBatch::<f64>::new(60, 4), &PlusTimes);
        assert_eq!(empty.k(), 4);
        assert!(empty.is_empty());
        for (call, k) in [1usize, 9, 2, 17].into_iter().enumerate() {
            let x = random_batch(60, k, 12, call as u64);
            let expected = spmspv_batch_reference(&a, &x, &PlusTimes);
            let y = alg.multiply_batch(&x, &PlusTimes);
            assert!(y.approx_same_entries(&expected, 1e-12), "call {call} (k={k}) diverged");
        }
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn dimension_mismatch_panics() {
        let a = fixtures::figure1_matrix();
        let x = SparseVecBatch::<f64>::new(9, 2);
        let mut alg = CombBlasSpaBatch::new(&a, SpMSpVOptions::default());
        let _ = alg.multiply_batch(&x, &PlusTimes);
    }
}
