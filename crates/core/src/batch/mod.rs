//! Batched (multi-source) SpMSpV: `Y ← A ⊕.⊗ X` for a bundle of `k` sparse
//! vectors in one pass over the matrix.
//!
//! The motivating applications of SpMSpV — multi-source BFS, batched
//! personalized PageRank, betweenness-centrality-style sweeps — present `k`
//! sparse frontiers at once. Calling the single-vector kernel `k` times
//! traverses the CSC column structure of `A` up to `k` times (once per lane
//! that activates a column). [`SpMSpVBucketBatch`] instead runs the paper's
//! estimate/bucket/merge pipeline over the **union** of active columns:
//!
//! 1. **Fuse**: build the sorted union of the lanes' active indices, each
//!    with its `(lane, value)` activations
//!    ([`sparse_substrate::SparseVecBatch::fuse_columns`]).
//! 2. **Estimate**: count, per `(thread, bucket)`, how many `(row, lane,
//!    scaled value)` triples the thread will produce — a column with `L`
//!    active lanes contributes `L` triples per stored row — and prefix-sum
//!    into exclusive write windows (Algorithm 2, with lane-weighted counts).
//! 3. **Bucketing**: scatter the triples lock-free into row-range buckets;
//!    each matrix column is read **once** and scaled by all of its
//!    activations while it is hot in cache.
//! 4. **Merge**: per-bucket merge into a lane-aware SPA
//!    ([`sparse_substrate::LaneSpa`]) whose per-`(row, lane)` generation
//!    stamps make the `O(m·k)` accumulator logically resettable in `O(1)`.
//! 5. **Output**: per-`(bucket, lane)` unique counts, prefix sums, and a
//!    parallel gather into a [`SparseVecBatch`] output.
//!
//! [`NaiveBatch`] — `k` independent [`SpMSpVBucket`](crate::SpMSpVBucket) calls — is the
//! correctness oracle and the baseline the `batch_scaling` bench compares
//! against. Both implement the [`SpMSpVBatch`] trait.
//!
//! ## Determinism
//!
//! With `sorted_output` (the default), lane `l`'s entries traverse the
//! kernel in exactly the order the single-vector kernel would traverse them
//! (ascending column, then CSC row order), so the batched result is
//! **bit-identical** to `k` independent sorted [`SpMSpVBucket`](crate::SpMSpVBucket) calls — for
//! any semiring, including floating-point `(+, ×)` where reduction order
//! matters.

mod naive;
mod rowsplit;

pub use naive::NaiveBatch;
pub use rowsplit::CombBlasSpaBatch;

use std::marker::PhantomData;
use std::time::{Duration, Instant};

use rayon::prelude::*;
use sparse_substrate::{
    AccumulatorWindow, BatchAccumulator, CscMatrix, HashLaneSpa, LaneMajorSpa, LaneSpa, Scalar,
    Semiring, SpaBackend, SparseVecBatch,
};

use crate::adaptive::{choose_backend, keep_fraction};
use crate::algorithm::SpMSpVOptions;
use crate::bucket::{bucket_of, bucket_row_ranges, BucketPlan};
use crate::disjoint::{split_by_boundaries, DisjointWriter, SliceWriter};
use crate::executor::{even_ranges, Executor};
use crate::masked::BatchMaskView;
use crate::timing::StepTimings;

/// A prepared batched SpMSpV computation `Y ← A ⊕.⊗ X` over a fixed matrix,
/// where `X` and `Y` are sparse multi-vectors with matching lane counts.
///
/// The batched counterpart of [`crate::SpMSpV`]. Implementations may be
/// called with varying `k` between calls; workspaces grow amortized.
pub trait SpMSpVBatch<A: Scalar, X: Scalar, S: Semiring<A, X>>: Send {
    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// Number of matrix rows (`m`, the dimension of every output lane).
    fn nrows(&self) -> usize;

    /// Number of matrix columns (`n`, the dimension of every input lane).
    fn ncols(&self) -> usize;

    /// Computes `Y ← A ⊕.⊗ X` lane-wise: output lane `l` is
    /// `A ⊕.⊗ X[l]`. Output lanes follow the implementation's sortedness
    /// convention (sorted by index under the default options).
    fn multiply_batch(&mut self, x: &SparseVecBatch<X>, semiring: &S) -> SparseVecBatch<S::Output>;

    /// Computes `Y ← ⟨mask⟩ (A ⊕.⊗ X)`: like
    /// [`SpMSpVBatch::multiply_batch`], but only output rows the mask keeps
    /// (per lane, for a [`BatchMaskView::PerLane`] mask) may appear.
    ///
    /// The default implementation post-filters an unmasked product; the
    /// implementations in this crate override it to consult the mask during
    /// their merge step so masked rows are never accumulated. Result entries
    /// are identical either way.
    fn multiply_batch_masked(
        &mut self,
        x: &SparseVecBatch<X>,
        semiring: &S,
        mask: Option<&BatchMaskView<'_>>,
    ) -> SparseVecBatch<S::Output> {
        let y = self.multiply_batch(x, semiring);
        match mask {
            None => y,
            Some(mask) => mask_filter_batch(&y, mask),
        }
    }

    /// The concrete `(kernel family, SPA backend)` the most recent call
    /// resolved to. Every kernel in this crate reports `Some` once a
    /// multiplication has actually merged (adaptive ones report their
    /// delegate); before the first call — or when a call short-circuits on
    /// an empty input without merging — there is nothing to report. `None`
    /// by default so third-party implementations stay source-compatible.
    fn last_run_info(&self) -> Option<BatchRunInfo> {
        None
    }
}

/// The concrete configuration one batched call executed with: which kernel
/// family ran and which [`SpaBackend`] it merged through. Surfaced through
/// [`SpMSpVBatch::last_run_info`] so the serving engine's telemetry
/// ([`crate::stats::EngineStats`]) can record what the adaptive dispatch
/// actually chose per flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchRunInfo {
    /// The kernel family that executed (never
    /// [`BatchAlgorithmKind::Adaptive`] — dispatchers report their
    /// delegate).
    pub kernel: BatchAlgorithmKind,
    /// The accumulator backend the merge ran through (never
    /// [`SpaBackend::Auto`] — kernels report what `Auto` resolved to).
    pub backend: SpaBackend,
}

impl std::fmt::Display for BatchRunInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.kernel.label(), self.backend.label())
    }
}

/// Post-filters a batched product through a mask — the fallback path the
/// default [`SpMSpVBatch::multiply_batch_masked`] uses (and the oracle the
/// in-kernel implementations are property-tested against).
pub fn mask_filter_batch<T: Scalar>(
    y: &SparseVecBatch<T>,
    mask: &BatchMaskView<'_>,
) -> SparseVecBatch<T> {
    let k = y.k();
    mask.check_lanes(k);
    let mut lane_ptr = Vec::with_capacity(k + 1);
    let mut indices = Vec::with_capacity(y.total_nnz());
    let mut values = Vec::with_capacity(y.total_nnz());
    lane_ptr.push(0usize);
    for l in 0..k {
        let (idx, val) = y.lane(l);
        for (&i, &v) in idx.iter().zip(val.iter()) {
            if mask.keeps(i, l) {
                indices.push(i);
                values.push(v);
            }
        }
        lane_ptr.push(indices.len());
    }
    SparseVecBatch::from_parts_trusted(y.len(), lane_ptr, indices, values)
        .expect("filtering preserves batch invariants")
}

/// Identifier for each batched algorithm family — the batch counterpart of
/// [`crate::AlgorithmKind`], so callers can swap batched implementations the
/// same way the benchmark harness swaps single-vector ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchAlgorithmKind {
    /// The fused bucket kernel ([`SpMSpVBucketBatch`]): one traversal of the
    /// union of active columns serves every lane.
    Bucket,
    /// `k` independent single-vector bucket calls ([`NaiveBatch`]) — the
    /// correctness oracle and amortization baseline.
    Naive,
    /// CombBLAS-style row-split batch ([`CombBlasSpaBatch`]): `t` row pieces,
    /// each scanning the whole fused input with a private lane-aware SPA —
    /// the honest batched counterpart of the paper's CombBLAS-SPA baseline.
    CombBlasRowSplit,
    /// Cost-model dispatch per call between the fixed families (and, inside
    /// the bucket delegate, the SPA backends) from `(total nnz, k, m,
    /// threads)` — see [`crate::adaptive::AdaptiveBatch`].
    Adaptive,
}

impl BatchAlgorithmKind {
    /// Display name matching the `batch_scaling` bench legends.
    pub fn label(&self) -> &'static str {
        match self {
            BatchAlgorithmKind::Bucket => "SpMSpV-bucket-batch",
            BatchAlgorithmKind::Naive => "Naive-batch",
            BatchAlgorithmKind::CombBlasRowSplit => "CombBLAS-SPA-batch",
            BatchAlgorithmKind::Adaptive => "Adaptive-batch",
        }
    }

    /// Every batched family, in bench-legend order ([`Self::Adaptive`]
    /// last).
    pub fn all() -> [BatchAlgorithmKind; 4] {
        [
            BatchAlgorithmKind::Bucket,
            BatchAlgorithmKind::Naive,
            BatchAlgorithmKind::CombBlasRowSplit,
            BatchAlgorithmKind::Adaptive,
        ]
    }

    /// The fixed families an adaptive dispatch can delegate to (everything
    /// but [`Self::Adaptive`]). `const` so telemetry tables
    /// ([`crate::stats::ChoiceCounts`]) derive from this single source.
    pub const fn fixed() -> [BatchAlgorithmKind; 3] {
        [
            BatchAlgorithmKind::Bucket,
            BatchAlgorithmKind::Naive,
            BatchAlgorithmKind::CombBlasRowSplit,
        ]
    }
}

impl std::fmt::Display for BatchAlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds a boxed [`SpMSpVBatch`] instance of the requested batched family,
/// generic over the semiring — mirrors [`crate::algorithm::build_algorithm`].
pub fn build_batch_algorithm<'a, A, X, S>(
    matrix: &'a CscMatrix<A>,
    kind: BatchAlgorithmKind,
    options: SpMSpVOptions,
) -> Box<dyn SpMSpVBatch<A, X, S> + 'a>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + 'a,
{
    match kind {
        BatchAlgorithmKind::Bucket => Box::new(SpMSpVBucketBatch::new(matrix, options)),
        BatchAlgorithmKind::Naive => Box::new(NaiveBatch::new(matrix, options)),
        BatchAlgorithmKind::CombBlasRowSplit => Box::new(CombBlasSpaBatch::new(matrix, options)),
        BatchAlgorithmKind::Adaptive => {
            Box::new(crate::adaptive::AdaptiveBatch::new(matrix, options))
        }
    }
}

/// Reusable buffers of one [`SpMSpVBucketBatch`] instance: one lazily
/// instantiated accumulator per [`SpaBackend`] (each retaining its
/// high-water allocation, so alternating backends between flushes never
/// reallocates) and the shared triple buffer (capacity retained across
/// calls).
struct BatchWorkspace<Y> {
    dense: LaneSpa<Y>,
    lane_major: Option<LaneMajorSpa<Y>>,
    hashed: Option<HashLaneSpa<Y>>,
    /// `(row, lane, scaled value)` triples, all buckets back to back.
    entries: Vec<(usize, u32, Y)>,
}

/// The batched bucket kernel. See the [module docs](self) for the pipeline.
pub struct SpMSpVBucketBatch<'a, A, X, S: Semiring<A, X>> {
    matrix: &'a CscMatrix<A>,
    options: SpMSpVOptions,
    executor: Executor,
    workspace: BatchWorkspace<S::Output>,
    /// What [`SpaBackend::Auto`] resolved to on the most recent call
    /// (`None` until the first multiplication runs).
    last_backend: Option<SpaBackend>,
    _marker: PhantomData<fn(X, S)>,
}

impl<'a, A, X, S> SpMSpVBucketBatch<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    /// Prepares the batched kernel for `matrix`. The `O(m·k)` lane-aware SPA
    /// is allocated lazily on the first multiplication (when `k` is known)
    /// and then grown amortized.
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        let executor = options.build_executor();
        Self::with_executor(matrix, options, executor)
    }

    /// Prepares the batched kernel reusing an existing executor.
    pub fn with_executor(
        matrix: &'a CscMatrix<A>,
        options: SpMSpVOptions,
        executor: Executor,
    ) -> Self {
        let workspace = BatchWorkspace {
            dense: LaneSpa::new(0, 0),
            lane_major: None,
            hashed: None,
            entries: Vec::new(),
        };
        SpMSpVBucketBatch {
            matrix,
            options,
            executor,
            workspace,
            last_backend: None,
            _marker: PhantomData,
        }
    }

    /// The options this instance was built with.
    pub fn options(&self) -> &SpMSpVOptions {
        &self.options
    }

    /// The SPA backend the most recent call merged through (what
    /// [`SpaBackend::Auto`] resolved to, or the pinned backend); `None`
    /// before the first call.
    pub fn last_backend(&self) -> Option<SpaBackend> {
        self.last_backend
    }

    /// Computes `Y ← A ⊕.⊗ X` and returns the per-step wall-clock breakdown
    /// (the fuse pass is accounted under `estimate`).
    pub fn multiply_batch_with_timings(
        &mut self,
        x: &SparseVecBatch<X>,
        semiring: &S,
    ) -> (SparseVecBatch<S::Output>, StepTimings) {
        self.multiply_batch_masked_with_timings(x, semiring, None)
    }

    /// Computes `Y ← ⟨mask⟩ (A ⊕.⊗ X)` with the per-step breakdown.
    ///
    /// The mask is consulted **inside the merge step**: a masked-out
    /// `(row, lane)` triple is skipped before it touches the lane-aware SPA,
    /// so it never enters the unique lists, the output gather, or a
    /// post-filter pass. The mask's entire cost is one bitmap probe per
    /// bucket triple, accounted under `merge` in the returned timings.
    pub fn multiply_batch_masked_with_timings(
        &mut self,
        x: &SparseVecBatch<X>,
        semiring: &S,
        mask: Option<&BatchMaskView<'_>>,
    ) -> (SparseVecBatch<S::Output>, StepTimings) {
        if let Some(mask) = mask {
            mask.check_lanes(x.k());
        }
        let m = self.matrix.nrows();
        let n = self.matrix.ncols();
        let k = x.k();
        assert_eq!(
            x.len(),
            n,
            "input batch has dimension {} but the matrix has {} columns",
            x.len(),
            n
        );
        let mut timings = StepTimings::default();
        if x.is_empty() {
            return (SparseVecBatch::new(m, k), timings);
        }

        // Same work-proportional thread cap as the single-vector kernel,
        // measured in total activations across lanes.
        const MIN_NNZ_PER_THREAD: usize = 32;
        let t = self.executor.threads().min(x.total_nnz().div_ceil(MIN_NNZ_PER_THREAD)).max(1);
        let nb = (self.options.buckets_per_thread * t).max(1);

        // ---------------- Fuse + Estimate ----------------
        let t0 = Instant::now();
        let fused = x.fuse_columns();
        let chunks = even_ranges(fused.num_cols(), t);
        let matrix = self.matrix;
        let plan = self.executor.install(|| {
            let boffset: Vec<Vec<usize>> = chunks
                .par_iter()
                .map(|chunk| {
                    let mut counts = vec![0usize; nb];
                    for c in chunk.clone() {
                        let j = fused.cols()[c];
                        let weight = fused.activations(c).0.len();
                        let (rows, _) = matrix.column(j);
                        for &i in rows {
                            counts[bucket_of(i, m, nb)] += weight;
                        }
                    }
                    counts
                })
                .collect();
            BucketPlan::from_boffset(boffset, nb)
        });
        timings.estimate = t0.elapsed();

        // ---------------- Bucketing ----------------
        let t1 = Instant::now();
        let total = plan.total_entries();
        let ws = &mut self.workspace;
        ws.entries.clear();
        ws.entries.reserve(total);
        {
            let writer = SliceWriter::new(&mut ws.entries.spare_capacity_mut()[..total]);
            let write_offsets = &plan.write_offsets;
            let fused = &fused;
            self.executor.install(|| {
                chunks.par_iter().zip(write_offsets.par_iter()).for_each(|(chunk, offsets)| {
                    let mut cursor = offsets.clone();
                    for c in chunk.clone() {
                        let j = fused.cols()[c];
                        let (lanes, xvals) = fused.activations(c);
                        let (rows, avals) = matrix.column(j);
                        for (&i, av) in rows.iter().zip(avals.iter()) {
                            let b = bucket_of(i, m, nb);
                            for (&lane, xv) in lanes.iter().zip(xvals.iter()) {
                                let prod = semiring.multiply(av, xv);
                                // SAFETY: cursor[b] lies inside this
                                // thread's exclusive window for bucket b
                                // (estimate counted `lanes.len()` slots
                                // per stored row) and is bumped after
                                // every write, so no slot repeats.
                                unsafe { writer.write(cursor[b], (i, lane, prod)) };
                                cursor[b] += 1;
                            }
                        }
                    }
                });
            });
        }
        // SAFETY: the estimate pass counted exactly `total` triples and the
        // loop above wrote each one at a distinct offset; the parallel scope
        // has ended, so all writes happened-before this point.
        unsafe { ws.entries.set_len(total) };
        timings.bucketing = t1.elapsed();

        // Chaos-testing hook, consulted at the last sequential point before
        // the merge fans out across the pool (a panic here unwinds on the
        // calling thread, never inside a worker). No-op unless a test armed
        // the site under the `failpoints` feature.
        if let Err(msg) = crate::failpoint::act("batch.merge") {
            panic!("failpoint batch.merge: {msg}");
        }

        // ---------------- Merge + Output (pluggable SPA backend) ----------
        // The backend decision runs *after* estimate, when the exact triple
        // count is known: fill = triples / (m·k) (scaled by the mask's keep
        // fraction) is the quantity the cost model keys on.
        let backend = match self.options.spa_backend {
            SpaBackend::Auto => choose_backend(
                total,
                m,
                k,
                fused.num_cols(),
                fused.total_activations(),
                keep_fraction(mask),
                &self.options.adaptive.resolve(),
            ),
            fixed => fixed,
        };
        self.last_backend = Some(backend);
        let row_ranges = bucket_row_ranges(m, nb);
        let params = MergeParams {
            executor: &self.executor,
            entries: &ws.entries,
            bucket_starts: &plan.bucket_starts,
            row_ranges: &row_ranges,
            m,
            k,
            mask,
            sorted_output: self.options.sorted_output,
        };
        let (y, merge_time, output_time) = match backend {
            SpaBackend::DenseIndexMajor | SpaBackend::Auto => {
                merge_and_output(&mut ws.dense, semiring, &params)
            }
            SpaBackend::DenseLaneMajor => merge_and_output(
                ws.lane_major.get_or_insert_with(|| LaneMajorSpa::new(0, 0)),
                semiring,
                &params,
            ),
            SpaBackend::Hashed => merge_and_output(
                ws.hashed.get_or_insert_with(|| HashLaneSpa::new(0, 0)),
                semiring,
                &params,
            ),
        };
        timings.merge = merge_time;
        timings.output = output_time;
        crate::obs::record_batch_phases(&timings);
        crate::obs::record_backend_choice(backend);

        (y, timings)
    }
}

/// The merge/output inputs shared by every backend instantiation of
/// [`merge_and_output`] (bundled so the generic helper's signature stays
/// readable).
struct MergeParams<'p, Y> {
    executor: &'p Executor,
    /// `(row, lane, scaled value)` triples, all buckets back to back.
    entries: &'p [(usize, u32, Y)],
    /// `bucket_starts[b]..bucket_starts[b+1]` is bucket `b`'s triple range.
    bucket_starts: &'p [usize],
    /// Output-row range of each bucket (contiguous from 0, covering `0..m`).
    row_ranges: &'p [std::ops::Range<usize>],
    m: usize,
    k: usize,
    mask: Option<&'p BatchMaskView<'p>>,
    sorted_output: bool,
}

/// Steps 2 + 3 of the batched pipeline, generic over the SPA backend: merge
/// every bucket's triples into disjoint accumulator windows in parallel,
/// then gather the per-`(bucket, lane)` unique rows into a
/// [`SparseVecBatch`]. Returns the result plus the (merge, output) timings.
///
/// Monomorphized per backend so the accumulate fast path — including the
/// semiring add — inlines; the backend decision is a single `match` in the
/// caller.
fn merge_and_output<A, X, S, Acc>(
    spa: &mut Acc,
    semiring: &S,
    p: &MergeParams<'_, S::Output>,
) -> (SparseVecBatch<S::Output>, Duration, Duration)
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
    Acc: BatchAccumulator<S::Output>,
{
    let (m, k) = (p.m, p.k);
    let t2 = Instant::now();
    spa.ensure_shape(m, k);
    let bucket_counts: Vec<usize> = p.bucket_starts.windows(2).map(|w| w[1] - w[0]).collect();
    let mask = p.mask;
    let sorted_output = p.sorted_output;
    // Per (bucket, lane) unique row lists.
    let uinds: Vec<Vec<Vec<usize>>> = {
        let windows = spa.split_windows(p.row_ranges, &bucket_counts);
        let entry_slices = split_by_boundaries(p.entries, p.bucket_starts);
        p.executor.install(|| {
            entry_slices
                .into_par_iter()
                .zip(windows.into_par_iter())
                .map(|(bucket_entries, mut window)| {
                    let mut uind: Vec<Vec<usize>> = vec![Vec::new(); k];
                    for &(i, lane, ref v) in bucket_entries {
                        if let Some(mask) = mask {
                            if !mask.keeps(i, lane as usize) {
                                continue;
                            }
                        }
                        if window.accumulate(i, lane as usize, *v, |a, b| semiring.add(a, b)) {
                            uind[lane as usize].push(i);
                        }
                    }
                    if sorted_output {
                        for lane_uind in uind.iter_mut() {
                            lane_uind.sort_unstable();
                        }
                    }
                    uind
                })
                .collect()
        })
    };
    let merge_time = t2.elapsed();

    let t3 = Instant::now();
    // lane_ptr[l] = total unique rows of lanes < l; within a lane, the
    // buckets' contributions land in ascending bucket (= row-range)
    // order, so sorted buckets concatenate into a sorted lane.
    let mut lane_sizes = vec![0usize; k];
    for bucket_uind in &uinds {
        for (l, lane_uind) in bucket_uind.iter().enumerate() {
            lane_sizes[l] += lane_uind.len();
        }
    }
    let mut lane_ptr = Vec::with_capacity(k + 1);
    lane_ptr.push(0usize);
    for &s in &lane_sizes {
        lane_ptr.push(lane_ptr.last().unwrap() + s);
    }
    let y_nnz = *lane_ptr.last().unwrap();

    // Exclusive write window per (bucket, lane) inside the output pool.
    let mut window_starts: Vec<Vec<usize>> = Vec::with_capacity(uinds.len());
    {
        let mut lane_cursor = lane_ptr[..k].to_vec();
        for bucket_uind in &uinds {
            let mut starts = Vec::with_capacity(k);
            for (l, lane_uind) in bucket_uind.iter().enumerate() {
                starts.push(lane_cursor[l]);
                lane_cursor[l] += lane_uind.len();
            }
            window_starts.push(starts);
        }
    }

    let idx_writer = DisjointWriter::new(y_nnz);
    let val_writer = DisjointWriter::new(y_nnz);
    {
        let spa = &*spa;
        p.executor.install(|| {
            uinds.par_iter().zip(window_starts.par_iter()).enumerate().for_each(
                |(b, (bucket_uind, starts))| {
                    for (l, lane_uind) in bucket_uind.iter().enumerate() {
                        let base = starts[l];
                        for (off, &i) in lane_uind.iter().enumerate() {
                            // SAFETY: the (bucket, lane) windows computed
                            // above partition 0..y_nnz, so every offset
                            // is written exactly once.
                            unsafe {
                                idx_writer.write(base + off, i);
                                val_writer.write(base + off, *spa.value_at_window(b, i, l));
                            }
                        }
                    }
                },
            );
        });
    }
    // SAFETY: the windows partition 0..y_nnz and every slot was written
    // above; the parallel scope has ended (happens-before established).
    let (out_indices, out_values) =
        unsafe { (idx_writer.assume_filled(), val_writer.assume_filled()) };
    let y = SparseVecBatch::from_parts_trusted(m, lane_ptr, out_indices, out_values)
        .expect("batched bucket output is consistent by construction");
    let output_time = t3.elapsed();
    (y, merge_time, output_time)
}

impl<'a, A, X, S> SpMSpVBatch<A, X, S> for SpMSpVBucketBatch<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "SpMSpV-bucket-batch"
    }

    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn multiply_batch(&mut self, x: &SparseVecBatch<X>, semiring: &S) -> SparseVecBatch<S::Output> {
        self.multiply_batch_with_timings(x, semiring).0
    }

    fn multiply_batch_masked(
        &mut self,
        x: &SparseVecBatch<X>,
        semiring: &S,
        mask: Option<&BatchMaskView<'_>>,
    ) -> SparseVecBatch<S::Output> {
        self.multiply_batch_masked_with_timings(x, semiring, mask).0
    }

    fn last_run_info(&self) -> Option<BatchRunInfo> {
        self.last_backend
            .map(|backend| BatchRunInfo { kernel: BatchAlgorithmKind::Bucket, backend })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec, rmat, RmatParams};
    use sparse_substrate::ops::spmspv_batch_reference;
    use sparse_substrate::{fixtures, PlusTimes, Select2ndMin, SparseVec};

    fn random_batch(n: usize, k: usize, nnz: usize, seed: u64) -> SparseVecBatch<f64> {
        let lanes: Vec<SparseVec<f64>> =
            (0..k).map(|l| random_sparse_vec(n, nnz.min(n), seed + 31 * l as u64)).collect();
        SparseVecBatch::from_lanes(&lanes).unwrap()
    }

    #[test]
    fn single_lane_batch_matches_single_vector_kernel() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let batch_x = SparseVecBatch::from_single(&x);
        let mut batch = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(2));
        let mut single = crate::SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(2));
        let by = batch.multiply_batch(&batch_x, &PlusTimes);
        let sy = crate::SpMSpV::multiply(&mut single, &x, &PlusTimes);
        assert_eq!(by.k(), 1);
        assert_eq!(by.lane_vec(0), sy, "k=1 batch must be bit-identical to the single kernel");
    }

    #[test]
    fn matches_reference_across_k_threads_and_density() {
        let a = erdos_renyi(300, 6.0, 11);
        for k in [1usize, 3, 8] {
            for threads in [1usize, 2, 4] {
                for nnz in [1usize, 20, 150] {
                    let x = random_batch(300, k, nnz, 7 + k as u64 + nnz as u64);
                    let expected = spmspv_batch_reference(&a, &x, &PlusTimes);
                    let mut alg = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(threads));
                    let y = alg.multiply_batch(&x, &PlusTimes);
                    assert!(
                        y.approx_same_entries(&expected, 1e-9),
                        "mismatch at k={k}, threads={threads}, nnz={nnz}"
                    );
                }
            }
        }
    }

    #[test]
    fn bit_identical_to_k_independent_bucket_calls() {
        let a = rmat(9, 8, RmatParams::graph500(), 3);
        let n = a.ncols();
        let x = random_batch(n, 5, 200, 42);
        let mut batch = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(4));
        let y = batch.multiply_batch(&x, &PlusTimes);
        let mut single = crate::SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(3));
        for l in 0..x.k() {
            let lane_y = crate::SpMSpV::multiply(&mut single, &x.lane_vec(l), &PlusTimes);
            assert_eq!(
                y.lane_vec(l),
                lane_y,
                "lane {l} differs from an independent SpMSpVBucket call"
            );
        }
    }

    #[test]
    fn select2nd_semiring_runs_batched() {
        let a = rmat(8, 8, RmatParams::graph500(), 9);
        let n = a.ncols();
        let lanes: Vec<SparseVec<usize>> = (0..3)
            .map(|l| SparseVec::from_pairs(n, vec![(l * 7 + 1, l * 7 + 1)]).unwrap())
            .collect();
        let x = SparseVecBatch::from_lanes(&lanes).unwrap();
        let expected = spmspv_batch_reference(&a, &x, &Select2ndMin);
        let mut alg = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(4));
        let y = alg.multiply_batch(&x, &Select2ndMin);
        assert!(y.same_entries(&expected));
    }

    #[test]
    fn empty_and_ragged_lanes() {
        let a = fixtures::tridiagonal(40);
        let lanes = vec![
            SparseVec::new(40),
            SparseVec::from_pairs(40, vec![(0, 1.0)]).unwrap(),
            SparseVec::new(40),
            SparseVec::from_pairs(40, (0..40).map(|i| (i, 1.0)).collect()).unwrap(),
        ];
        let x = SparseVecBatch::from_lanes(&lanes).unwrap();
        let expected = spmspv_batch_reference(&a, &x, &PlusTimes);
        let mut alg = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(8));
        let y = alg.multiply_batch(&x, &PlusTimes);
        assert!(y.approx_same_entries(&expected, 1e-12));
        assert!(y.lane_vec(0).is_empty());
        assert!(y.lane_vec(2).is_empty());
    }

    #[test]
    fn fully_empty_batch_short_circuits() {
        let a = fixtures::figure1_matrix();
        let x = SparseVecBatch::<f64>::new(8, 6);
        let mut alg = SpMSpVBucketBatch::new(&a, SpMSpVOptions::default());
        let y = alg.multiply_batch(&x, &PlusTimes);
        assert_eq!(y.k(), 6);
        assert!(y.is_empty());
    }

    #[test]
    fn workspace_survives_varying_k_across_calls() {
        let a = erdos_renyi(200, 5.0, 5);
        let mut alg = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(2));
        for (call, k) in [1usize, 16, 4, 32, 2].into_iter().enumerate() {
            let x = random_batch(200, k, 30, call as u64);
            let expected = spmspv_batch_reference(&a, &x, &PlusTimes);
            let y = alg.multiply_batch(&x, &PlusTimes);
            assert!(y.approx_same_entries(&expected, 1e-9), "call {call} (k={k}) diverged");
        }
    }

    #[test]
    fn unsorted_option_produces_same_entries() {
        let a = erdos_renyi(250, 6.0, 23);
        let x = random_batch(250, 4, 60, 1);
        let expected = spmspv_batch_reference(&a, &x, &PlusTimes);
        let mut alg = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(3).sorted(false));
        let y = alg.multiply_batch(&x, &PlusTimes);
        assert!(y.approx_same_entries(&expected, 1e-9));
    }

    #[test]
    fn timings_cover_all_steps() {
        let a = erdos_renyi(1000, 8.0, 77);
        let x = random_batch(1000, 8, 200, 6);
        let mut alg = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(2));
        let (y, t) = alg.multiply_batch_with_timings(&x, &PlusTimes);
        assert!(!y.is_empty());
        let f = t.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn dimension_mismatch_panics() {
        let a = fixtures::figure1_matrix();
        let x = SparseVecBatch::<f64>::new(9, 2);
        let mut alg = SpMSpVBucketBatch::new(&a, SpMSpVOptions::default());
        let _ = alg.multiply_batch(&x, &PlusTimes);
    }
}
