//! The unified `Mxv` operation API: **one descriptor** for single, batched,
//! and masked SpMSpV.
//!
//! The kernels of this crate expose three low-level front doors —
//! [`SpMSpV::multiply`] for one vector and
//! [`SpMSpVBatch::multiply_batch`] for a
//! bundle of lanes, and the `*_masked` variants of both. Every workload
//! (BFS, multi-source BFS, personalized PageRank serving, betweenness
//! sweeps) needs some combination of the three, and writing each workload
//! three times does not scale. [`Mxv`] is the GraphBLAS-style operation
//! descriptor that collapses them: describe the computation once —
//!
//! ```
//! use sparse_substrate::{fixtures, MaskBits, PlusTimes};
//! use spmspv::ops::Mxv;
//! use spmspv::{AlgorithmKind, MaskMode, SpMSpVOptions};
//!
//! let a = fixtures::figure1_matrix();
//! let x = fixtures::figure1_vector();
//! let visited = MaskBits::from_indices(8, [0, 4]);
//! let mut op = Mxv::over(&a)
//!     .semiring(&PlusTimes)
//!     .mask(&visited, MaskMode::Complement)
//!     .algorithm(AlgorithmKind::Bucket)
//!     .options(SpMSpVOptions::with_threads(2))
//!     .prepare();
//! let y = op.run(&x);
//! assert!(y.get(0).is_none() && y.get(4).is_none());
//! ```
//!
//! — and execute it against a [`SparseVec`] ([`PreparedMxv::run`]) or a
//! [`SparseVecBatch`] ([`PreparedMxv::run_batch`]) interchangeably. The
//! descriptor owns the algorithm instances and their pre-allocated
//! workspaces (instantiated lazily, reused across calls — the paper's
//! amortization strategy), owns the mask bitmap(s) so iterative algorithms
//! can update membership between runs, and applies the mask **inside** the
//! kernels' merge step, never as an output post-filter.
//!
//! Algorithm selection is pluggable in both shapes: [`AlgorithmKind`] picks
//! the single-vector kernel (bucket, the CombBLAS/GraphMat baselines, …)
//! and [`BatchAlgorithmKind`] picks the batched one (fused bucket with a
//! pluggable SPA backend, the naive per-lane fallback, or the row-split
//! baseline). Both default to the `Adaptive` dispatchers
//! ([`crate::adaptive`]), which resolve the family — and the batched SPA
//! backend — per call from the frontier's density without changing any
//! result.

use std::sync::Arc;

use sparse_substrate::{CscMatrix, MaskBits, Scalar, Semiring, SparseVec, SparseVecBatch};

use crate::algorithm::{build_algorithm, AlgorithmKind, SpMSpV, SpMSpVOptions};
use crate::batch::{build_batch_algorithm, BatchAlgorithmKind, BatchRunInfo, SpMSpVBatch};
use crate::engine::EngineError;
use crate::masked::{BatchMaskView, MaskMode, MaskView};

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// formatted message boxes a `String`; a literal boxes a `&'static str`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel panicked with a non-string payload".to_string()
    }
}

/// Entry point of the unified operation API. See the [module docs](self).
pub struct Mxv;

impl Mxv {
    /// Starts describing a multiplication over `matrix`. Defaults: adaptive
    /// kernel dispatch in both shapes (each call picks the family — and the
    /// batched SPA backend — from the frontier's density; see
    /// [`crate::adaptive`]), default options, no mask. Results never depend
    /// on the dispatch: every family reduces in the same order.
    pub fn over<A: Scalar>(matrix: &CscMatrix<A>) -> MxvOp<'_, A, ()> {
        MxvOp {
            matrix,
            semiring: (),
            options: SpMSpVOptions::default(),
            algorithm: AlgorithmKind::Adaptive,
            batch_algorithm: BatchAlgorithmKind::Adaptive,
            mask: MaskStore::Unmasked,
        }
    }
}

/// The mask a descriptor owns: nothing, one shared bitmap, or one bitmap per
/// batch lane. Per-lane bitmaps are `Arc`-shared with the callers that
/// submitted them (the serving engine's requests), so installing them for a
/// flush moves refcounts, not `O(n)` bits.
#[derive(Debug, Clone)]
enum MaskStore {
    Unmasked,
    Shared { bits: MaskBits, mode: MaskMode },
    PerLane { masks: Vec<Arc<MaskBits>>, mode: MaskMode },
}

/// The operation descriptor under construction: matrix, semiring, algorithm
/// selection, options, and mask. Produced by [`Mxv::over`]; every setter
/// moves `self` so descriptions chain; [`MxvOp::prepare`] compiles it into a
/// reusable [`PreparedMxv`].
///
/// `SR` is `()` until [`MxvOp::semiring`] captures the semiring.
pub struct MxvOp<'a, A, SR> {
    matrix: &'a CscMatrix<A>,
    semiring: SR,
    options: SpMSpVOptions,
    algorithm: AlgorithmKind,
    batch_algorithm: BatchAlgorithmKind,
    mask: MaskStore,
}

impl<'a, A: Scalar, SR> MxvOp<'a, A, SR> {
    /// Selects the semiring `⊕.⊗` the multiplication runs under. The
    /// semiring is captured by value (all semirings in this workspace are
    /// zero-sized `Copy` types).
    pub fn semiring<S: Clone>(self, semiring: &S) -> MxvOp<'a, A, S> {
        MxvOp {
            matrix: self.matrix,
            semiring: semiring.clone(),
            options: self.options,
            algorithm: self.algorithm,
            batch_algorithm: self.batch_algorithm,
            mask: self.mask,
        }
    }

    /// Selects the single-vector algorithm family (default: the paper's
    /// bucket algorithm).
    pub fn algorithm(mut self, kind: AlgorithmKind) -> Self {
        self.algorithm = kind;
        self
    }

    /// Selects the batched algorithm family (default: the fused bucket
    /// kernel).
    pub fn batch_algorithm(mut self, kind: BatchAlgorithmKind) -> Self {
        self.batch_algorithm = kind;
        self
    }

    /// Sets the tuning options shared by all algorithm families.
    pub fn options(mut self, options: SpMSpVOptions) -> Self {
        self.options = options;
        self
    }

    /// Masks the output with a copy of `bits`, shared by every lane in
    /// batched runs. The prepared descriptor owns the copy; update it
    /// between runs through [`PreparedMxv::mask_mut`].
    ///
    /// Panics unless `bits` spans exactly the matrix's row space — a
    /// shorter bitmap would silently treat the uncovered rows as unset (and
    /// panic on probes past its last word inside the parallel merge).
    pub fn mask(mut self, bits: &MaskBits, mode: MaskMode) -> Self {
        assert_eq!(
            bits.len(),
            self.matrix.nrows(),
            "mask covers {} rows but the matrix has {} output rows",
            bits.len(),
            self.matrix.nrows()
        );
        self.mask = MaskStore::Shared { bits: bits.clone(), mode };
        self
    }

    /// Masks the output with an initially **empty** bitmap over the matrix's
    /// rows — the BFS idiom: start with nothing visited, then insert
    /// vertices through [`PreparedMxv::mask_mut`] as the traversal claims
    /// them.
    pub fn masked(mut self, mode: MaskMode) -> Self {
        self.mask = MaskStore::Shared { bits: MaskBits::new(self.matrix.nrows()), mode };
        self
    }

    /// Masks batched runs with one initially empty bitmap **per lane**
    /// (multi-source BFS: each source keeps its own visited set). Update
    /// lane `l` through [`PreparedMxv::lane_mask_mut`]; retire lanes with
    /// [`PreparedMxv::retain_lanes`]. Single-vector [`PreparedMxv::run`]
    /// panics under a per-lane mask.
    pub fn lane_masks(mut self, k: usize, mode: MaskMode) -> Self {
        // One Arc per lane (not `vec![arc; k]`, which would share a single
        // allocation and force a copy-on-write on the first insert).
        let masks = (0..k).map(|_| Arc::new(MaskBits::new(self.matrix.nrows()))).collect();
        self.mask = MaskStore::PerLane { masks, mode };
        self
    }
}

impl<'a, A: Scalar, S> MxvOp<'a, A, S> {
    /// Compiles the description into a reusable [`PreparedMxv`].
    ///
    /// `X` — the input-vector element type — is usually inferred from the
    /// first `run`/`run_batch` call.
    pub fn prepare<X: Scalar>(self) -> PreparedMxv<'a, A, X, S>
    where
        S: Semiring<A, X>,
    {
        PreparedMxv {
            matrix: self.matrix,
            semiring: self.semiring,
            options: self.options,
            algorithm: self.algorithm,
            batch_algorithm: self.batch_algorithm,
            mask: self.mask,
            single: None,
            batch: None,
            last_batch_info: None,
        }
    }
}

/// A compiled [`Mxv`] descriptor: owns the (lazily instantiated) algorithm
/// instances with their pre-allocated workspaces and the mask bitmap(s), and
/// executes single vectors and batches through one interface.
///
/// ```
/// use sparse_substrate::{fixtures, PlusTimes, SparseVecBatch};
/// use spmspv::ops::Mxv;
///
/// let a = fixtures::figure1_matrix();
/// let x = fixtures::figure1_vector();
/// let mut op = Mxv::over(&a).semiring(&PlusTimes).prepare();
/// let single = op.run(&x);                                  // one vector
/// let batch = op.run_batch(&SparseVecBatch::from_single(&x)); // same op, k lanes
/// assert_eq!(batch.lane_vec(0), single);
/// ```
pub struct PreparedMxv<'a, A, X, S: Semiring<A, X>> {
    matrix: &'a CscMatrix<A>,
    semiring: S,
    options: SpMSpVOptions,
    algorithm: AlgorithmKind,
    batch_algorithm: BatchAlgorithmKind,
    mask: MaskStore,
    single: Option<Box<dyn SpMSpV<A, X, S> + 'a>>,
    batch: Option<Box<dyn SpMSpVBatch<A, X, S> + 'a>>,
    last_batch_info: Option<BatchRunInfo>,
}

impl<'a, A, X, S> PreparedMxv<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + 'a,
{
    /// Executes the operation on one sparse vector: `y ← ⟨mask⟩ (A ⊕.⊗ x)`.
    ///
    /// The single-vector algorithm instance (and its workspaces) is created
    /// on first use and reused afterwards. Panics when the descriptor
    /// carries per-lane masks (those only make sense for batches).
    pub fn run(&mut self, x: &SparseVec<X>) -> SparseVec<S::Output> {
        if self.single.is_none() {
            self.single = Some(build_algorithm(self.matrix, self.algorithm, self.options.clone()));
        }
        let mask = match &self.mask {
            MaskStore::Unmasked => None,
            MaskStore::Shared { bits, mode } => Some(MaskView::new(bits, *mode)),
            MaskStore::PerLane { .. } => {
                panic!("per-lane masks apply to run_batch; use .mask()/.masked() for single runs")
            }
        };
        self.single.as_mut().expect("instantiated above").multiply_masked(x, &self.semiring, mask)
    }

    /// Executes the operation on a sparse multi-vector, lane-wise:
    /// `Y[l] ← ⟨mask_l⟩ (A ⊕.⊗ X[l])`. A shared mask filters every lane; a
    /// per-lane mask must have exactly `x.k()` bitmaps.
    ///
    /// The batched algorithm instance is created on first use and reused.
    pub fn run_batch(&mut self, x: &SparseVecBatch<X>) -> SparseVecBatch<S::Output> {
        if self.batch.is_none() {
            self.batch = Some(build_batch_algorithm(
                self.matrix,
                self.batch_algorithm,
                self.options.clone(),
            ));
        }
        let mask = match &self.mask {
            MaskStore::Unmasked => None,
            MaskStore::Shared { bits, mode } => {
                Some(BatchMaskView::Shared(MaskView::new(bits, *mode)))
            }
            MaskStore::PerLane { masks, mode } => {
                Some(BatchMaskView::PerLane { masks, mode: *mode })
            }
        };
        let batch = self.batch.as_mut().expect("instantiated above");
        let y = batch.multiply_batch_masked(x, &self.semiring, mask.as_ref());
        self.last_batch_info = batch.last_run_info();
        y
    }

    /// [`PreparedMxv::run_batch`] with panic isolation: a kernel panic is
    /// caught and surfaced as [`EngineError::KernelFailed`] carrying the
    /// panic message, instead of unwinding into the caller.
    ///
    /// This is the serving engine's execution entry point — a malformed
    /// request that trips a kernel assertion must fail *its* flush group,
    /// not the process. After an `Err` the descriptor's workspaces may be
    /// mid-mutation; callers that reuse descriptors should discard this one
    /// (the engine evicts it from its pool and rebuilds lazily).
    pub fn try_run_batch(
        &mut self,
        x: &SparseVecBatch<X>,
    ) -> Result<SparseVecBatch<S::Output>, EngineError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_batch(x)))
            .map_err(|payload| EngineError::KernelFailed(panic_message(payload.as_ref())))
    }

    /// The concrete `(kernel family, SPA backend)` the most recent
    /// [`PreparedMxv::run_batch`] resolved to (`None` before the first
    /// batched run) — what an adaptive descriptor actually executed.
    pub fn last_batch_run_info(&self) -> Option<BatchRunInfo> {
        self.last_batch_info
    }

    /// The matrix the descriptor was prepared over.
    pub fn matrix(&self) -> &'a CscMatrix<A> {
        self.matrix
    }

    /// The selected single-vector algorithm family.
    pub fn algorithm_kind(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// The selected batched algorithm family.
    pub fn batch_algorithm_kind(&self) -> BatchAlgorithmKind {
        self.batch_algorithm
    }

    /// The mask interpretation, when the descriptor is masked.
    pub fn mask_mode(&self) -> Option<MaskMode> {
        match &self.mask {
            MaskStore::Unmasked => None,
            MaskStore::Shared { mode, .. } | MaskStore::PerLane { mode, .. } => Some(*mode),
        }
    }

    /// Mutable access to the shared mask bitmap, for iterative algorithms
    /// that grow the membership set between runs (BFS inserts every newly
    /// visited vertex). Panics when the descriptor is unmasked or carries
    /// per-lane masks.
    pub fn mask_mut(&mut self) -> &mut MaskBits {
        match &mut self.mask {
            MaskStore::Shared { bits, .. } => bits,
            MaskStore::Unmasked => panic!("descriptor has no mask; build with .mask()/.masked()"),
            MaskStore::PerLane { .. } => {
                panic!("descriptor has per-lane masks; use lane_mask_mut(lane)")
            }
        }
    }

    /// Mutable access to lane `lane`'s mask bitmap. Panics when the
    /// descriptor does not carry per-lane masks.
    ///
    /// Per-lane masks are `Arc`-shared; between flushes the descriptor's
    /// reference is unique, so this is the zero-copy `Arc::make_mut` path —
    /// a clone only happens if the caller still holds the same `Arc`.
    pub fn lane_mask_mut(&mut self, lane: usize) -> &mut MaskBits {
        match &mut self.mask {
            MaskStore::PerLane { masks, .. } => Arc::make_mut(&mut masks[lane]),
            _ => panic!("descriptor has no per-lane masks; build with .lane_masks(k, mode)"),
        }
    }

    /// Number of per-lane masks, when the descriptor carries them.
    pub fn lane_mask_count(&self) -> Option<usize> {
        match &self.mask {
            MaskStore::PerLane { masks, .. } => Some(masks.len()),
            _ => None,
        }
    }

    /// Drops the per-lane masks whose `keep` flag is `false`, compacting the
    /// rest in order — the lane-retirement idiom of multi-source BFS: when a
    /// source's frontier drains, its lane leaves the batch and its mask must
    /// leave the descriptor so lane indices stay aligned. Panics when the
    /// descriptor does not carry per-lane masks or `keep` has the wrong
    /// length.
    pub fn retain_lanes(&mut self, keep: &[bool]) {
        match &mut self.mask {
            MaskStore::PerLane { masks, .. } => {
                assert_eq!(keep.len(), masks.len(), "keep flags must cover every lane mask");
                let mut lane = 0usize;
                masks.retain(|_| {
                    let k = keep[lane];
                    lane += 1;
                    k
                });
            }
            _ => panic!("descriptor has no per-lane masks; build with .lane_masks(k, mode)"),
        }
    }

    /// Empties every mask bitmap (shared or per-lane), keeping allocations
    /// where the descriptor is the sole owner, so it can serve a fresh
    /// traversal.
    pub fn mask_clear(&mut self) {
        match &mut self.mask {
            MaskStore::Unmasked => {}
            MaskStore::Shared { bits, .. } => bits.clear(),
            MaskStore::PerLane { masks, .. } => {
                masks.iter_mut().for_each(|m| Arc::make_mut(m).clear())
            }
        }
    }

    /// Replaces the descriptor's mask with one caller-provided bitmap per
    /// lane — the serving-engine idiom, where every coalesced request brings
    /// its own `Arc`-shared mask and the pooled descriptor is re-masked
    /// before each fused flush by moving refcounts, never bits. The
    /// prepared kernels (and their workspaces) are kept.
    ///
    /// Panics when any bitmap does not span the matrix's row space.
    pub fn set_lane_masks(&mut self, masks: Vec<Arc<MaskBits>>, mode: MaskMode) {
        for bits in &masks {
            assert_eq!(
                bits.len(),
                self.matrix.nrows(),
                "lane mask covers {} rows but the matrix has {} output rows",
                bits.len(),
                self.matrix.nrows()
            );
        }
        self.mask = MaskStore::PerLane { masks, mode };
    }

    /// Removes the mask entirely (keeping the prepared kernels), so the same
    /// pooled descriptor can serve masked and unmasked flushes alternately.
    pub fn unmask(&mut self) {
        self.mask = MaskStore::Unmasked;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::{fixtures, PlusTimes, Select2ndMin};

    #[test]
    fn unmasked_run_matches_reference_for_every_algorithm() {
        let a = erdos_renyi(200, 5.0, 3);
        let x = random_sparse_vec(200, 40, 9);
        let expected = spmspv_reference(&a, &x, &PlusTimes);
        for kind in [
            AlgorithmKind::Bucket,
            AlgorithmKind::CombBlasSpa,
            AlgorithmKind::CombBlasHeap,
            AlgorithmKind::GraphMat,
            AlgorithmKind::SortBased,
            AlgorithmKind::Sequential,
            AlgorithmKind::Adaptive,
        ] {
            let mut op = Mxv::over(&a)
                .semiring(&PlusTimes)
                .algorithm(kind)
                .options(SpMSpVOptions::with_threads(2))
                .prepare();
            let y = op.run(&x);
            assert!(y.approx_same_entries(&expected, 1e-9), "{kind} diverged through Mxv");
        }
    }

    #[test]
    fn one_descriptor_serves_single_and_batch() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let mut op = Mxv::over(&a).semiring(&PlusTimes).prepare();
        let single = op.run(&x);
        let batch = op.run_batch(&SparseVecBatch::from_single(&x));
        assert_eq!(batch.k(), 1);
        assert_eq!(batch.lane_vec(0), single);
        assert_eq!(op.algorithm_kind(), AlgorithmKind::Adaptive);
        assert_eq!(op.batch_algorithm_kind(), BatchAlgorithmKind::Adaptive);
        assert_eq!(op.mask_mode(), None);
        let info = op.last_batch_run_info().expect("batched run recorded its resolution");
        assert_ne!(info.kernel, BatchAlgorithmKind::Adaptive, "info must be concrete");
        assert_ne!(info.backend, sparse_substrate::SpaBackend::Auto);
    }

    #[test]
    fn shared_mask_filters_in_kernel_like_the_post_filter_oracle() {
        let a = erdos_renyi(150, 6.0, 11);
        let x = random_sparse_vec(150, 30, 4);
        let bits = MaskBits::from_indices(150, (0..150).step_by(3));
        for mode in [MaskMode::Keep, MaskMode::Complement] {
            let mut op = Mxv::over(&a).semiring(&PlusTimes).mask(&bits, mode).prepare();
            let y = op.run(&x);
            let mut oracle = spmspv_reference(&a, &x, &PlusTimes);
            oracle.retain(|i, _| match mode {
                MaskMode::Keep => bits.contains(i),
                MaskMode::Complement => !bits.contains(i),
            });
            assert!(y.approx_same_entries(&oracle, 1e-12), "{mode:?} diverged");
        }
    }

    #[test]
    fn mask_mut_grows_the_visited_set_between_runs() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let mut op = Mxv::over(&a).semiring(&PlusTimes).masked(MaskMode::Complement).prepare();
        let before = op.run(&x);
        let first_row = before.iter().next().expect("non-empty product").0;
        op.mask_mut().insert(first_row);
        let after = op.run(&x);
        assert!(after.get(first_row).is_none(), "newly masked row must vanish");
        assert_eq!(after.nnz(), before.nnz() - 1);
        op.mask_clear();
        assert_eq!(op.run(&x).nnz(), before.nnz());
    }

    #[test]
    fn per_lane_masks_filter_each_lane_independently() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let batch = SparseVecBatch::from_lanes(&[x.clone(), x.clone()]).unwrap();
        let mut op =
            Mxv::over(&a).semiring(&PlusTimes).lane_masks(2, MaskMode::Complement).prepare();
        let unmasked = spmspv_reference(&a, &x, &PlusTimes);
        let lane1_first = unmasked.iter().next().unwrap().0;
        op.lane_mask_mut(1).insert(lane1_first);
        let y = op.run_batch(&batch);
        assert_eq!(y.lane_vec(0).nnz(), unmasked.nnz(), "lane 0 unmasked");
        assert!(y.lane_vec(1).get(lane1_first).is_none(), "lane 1 masked");
        assert_eq!(op.lane_mask_count(), Some(2));
    }

    #[test]
    fn retain_lanes_tracks_retirement() {
        let a = fixtures::tridiagonal(10);
        let mut op: PreparedMxv<'_, f64, usize, Select2ndMin> =
            Mxv::over(&a).semiring(&Select2ndMin).lane_masks(3, MaskMode::Complement).prepare();
        op.lane_mask_mut(0).insert(0);
        op.lane_mask_mut(2).insert(2);
        op.retain_lanes(&[false, true, true]);
        assert_eq!(op.lane_mask_count(), Some(2));
        // The surviving masks kept their contents and shifted down.
        assert!(!op.lane_mask_mut(0).contains(0));
        assert!(op.lane_mask_mut(1).contains(2));
    }

    #[test]
    fn every_batch_selector_agrees_with_fused() {
        let a = erdos_renyi(120, 5.0, 7);
        let lanes: Vec<_> = (0..3).map(|l| random_sparse_vec(120, 20, l as u64)).collect();
        let batch = SparseVecBatch::from_lanes(&lanes).unwrap();
        let bits = MaskBits::from_indices(120, (0..120).step_by(2));
        let run = |kind: BatchAlgorithmKind| {
            let mut op = Mxv::over(&a)
                .semiring(&PlusTimes)
                .batch_algorithm(kind)
                .mask(&bits, MaskMode::Keep)
                .prepare();
            op.run_batch(&batch)
        };
        let fused = run(BatchAlgorithmKind::Bucket);
        for kind in BatchAlgorithmKind::all().into_iter().skip(1) {
            assert_eq!(fused, run(kind), "{kind} disagrees with the fused batch under a mask");
        }
    }

    #[test]
    fn try_run_batch_catches_kernel_panics_as_errors() {
        use crate::engine::EngineError;
        let a = fixtures::tridiagonal(6);
        let x = SparseVec::from_pairs(6, vec![(0, 1.0)]).unwrap();
        let batch = SparseVecBatch::from_lanes(&[x.clone(), x.clone()]).unwrap();
        // 3 lane masks against a 2-lane batch trips a kernel assertion; the
        // fallible entry point must surface it, not unwind.
        let mut op = Mxv::over(&a)
            .semiring(&PlusTimes)
            .batch_algorithm(BatchAlgorithmKind::Naive)
            .lane_masks(3, MaskMode::Keep)
            .prepare();
        let err = op.try_run_batch(&batch).map(drop).expect_err("mismatched lane masks must fail");
        match err {
            EngineError::KernelFailed(msg) => {
                assert!(msg.contains("lanes"), "panic message lost: {msg}")
            }
            other => panic!("expected KernelFailed, got {other:?}"),
        }
        // A healthy call through the same entry point still succeeds.
        let mut ok = Mxv::over(&a).semiring(&PlusTimes).prepare();
        let y = ok.try_run_batch(&batch).expect("healthy batch run");
        assert_eq!(y.lane_vec(0), ok.run(&x));
    }

    #[test]
    #[should_panic(expected = "mask covers 4 rows but the matrix has 8 output rows")]
    fn undersized_mask_is_rejected_at_description_time() {
        let a = fixtures::figure1_matrix();
        let _ = Mxv::over(&a).semiring(&PlusTimes).mask(&MaskBits::new(4), MaskMode::Keep);
    }

    #[test]
    #[should_panic(expected = "per-lane mask has 3 lanes but the input batch has 2 lanes")]
    fn lane_mask_count_mismatch_panics_on_every_batch_family() {
        let a = fixtures::tridiagonal(6);
        let x = SparseVec::from_pairs(6, vec![(0, 1.0)]).unwrap();
        let batch = SparseVecBatch::from_lanes(&[x.clone(), x]).unwrap();
        let mut op = Mxv::over(&a)
            .semiring(&PlusTimes)
            .batch_algorithm(BatchAlgorithmKind::Naive)
            .lane_masks(3, MaskMode::Keep)
            .prepare();
        let _ = op.run_batch(&batch);
    }

    #[test]
    #[should_panic(expected = "per-lane masks apply to run_batch")]
    fn single_run_under_per_lane_masks_panics() {
        let a = fixtures::tridiagonal(4);
        let x = SparseVec::from_pairs(4, vec![(0, 1.0)]).unwrap();
        let mut op = Mxv::over(&a).semiring(&PlusTimes).lane_masks(2, MaskMode::Keep).prepare();
        let _ = op.run(&x);
    }
}
