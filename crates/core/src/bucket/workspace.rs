//! Pre-allocated, reusable workspace of the SpMSpV-bucket algorithm.
//!
//! §III-A ("Memory allocation"): *"we allocate enough memory for all buckets
//! and for the SPA in advance and pass them to the SpMSpV-bucket algorithm"*,
//! because allocation cost would otherwise dominate iterative workloads such
//! as BFS. The workspace owns the dense SPA arrays (sized `m`, allocated
//! once) and the shared bucket entry buffer, which keeps its capacity across
//! multiplications and never exceeds `O(nnz(A))` entries.

use sparse_substrate::Scalar;

/// Reusable buffers shared by every multiplication of one
/// [`super::SpMSpVBucket`] instance.
#[derive(Debug)]
pub struct BucketWorkspace<Y> {
    /// Dense SPA values, indexed by matrix row. Entries are only meaningful
    /// where the matching stamp equals the current generation.
    pub(crate) spa_values: Vec<Y>,
    /// Generation stamp per SPA slot; `stamp[i] == generation` means slot `i`
    /// was initialized during the current multiplication. This realizes the
    /// paper's "initialize only the entries of SPA to be accessed" rule with
    /// an O(1) logical reset between multiplications.
    pub(crate) spa_stamps: Vec<u64>,
    generation: u64,
    /// Shared bucket buffer: all buckets laid out back to back, entries are
    /// `(row, scaled value)` pairs. Capacity is retained across calls.
    pub(crate) entries: Vec<(usize, Y)>,
}

impl<Y: Scalar> BucketWorkspace<Y> {
    /// Allocates the SPA for an `m`-row matrix. This is the only `O(m)`
    /// allocation in the algorithm's lifetime.
    pub fn new(m: usize) -> Self {
        BucketWorkspace {
            spa_values: vec![Y::default(); m],
            spa_stamps: vec![0; m],
            generation: 0,
            entries: Vec::new(),
        }
    }

    /// Starts a new multiplication: all SPA slots become logically
    /// uninitialized without touching the dense arrays.
    pub(crate) fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// The current generation stamp.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of SPA slots (matrix rows).
    pub fn spa_len(&self) -> usize {
        self.spa_values.len()
    }

    /// Current capacity of the shared bucket buffer, in entries.
    pub fn bucket_capacity(&self) -> usize {
        self.entries.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_workspace_is_sized_to_rows() {
        let ws: BucketWorkspace<f64> = BucketWorkspace::new(17);
        assert_eq!(ws.spa_len(), 17);
        assert_eq!(ws.bucket_capacity(), 0);
        assert_eq!(ws.generation(), 0);
    }

    #[test]
    fn generation_bumps_monotonically() {
        let mut ws: BucketWorkspace<usize> = BucketWorkspace::new(4);
        ws.bump_generation();
        ws.bump_generation();
        assert_eq!(ws.generation(), 2);
    }
}
