//! `ESTIMATE-BUCKETS` (Algorithm 2) and the bucket geometry helpers.
//!
//! A preprocessing pass over the selected columns counts how many scaled
//! entries each thread will contribute to each bucket. Prefix sums over that
//! `t × nb` count matrix give (a) the storage layout of the buckets inside
//! one contiguous buffer and (b) an exclusive write window per
//! `(thread, bucket)` pair, which is what makes the bucketing step of
//! Algorithm 1 free of synchronization.

use rayon::prelude::*;
use sparse_substrate::{CscMatrix, Scalar, SparseVec};

/// Bucket that row `i` of an `m`-row matrix maps to when `nb` buckets are
/// used: `⌊i · nb / m⌋` (line 5 of Algorithm 1).
#[inline]
pub fn bucket_of(i: usize, m: usize, nb: usize) -> usize {
    debug_assert!(i < m);
    (i * nb) / m
}

/// The contiguous row range `[lo, hi)` owned by bucket `b`: exactly the rows
/// `i` with `bucket_of(i, m, nb) == b`. The ranges of all buckets partition
/// `0..m`, which is what lets Step 2 hand each bucket a disjoint slice of
/// the SPA.
pub fn bucket_row_ranges(m: usize, nb: usize) -> Vec<std::ops::Range<usize>> {
    (0..nb)
        .map(|b| {
            let lo = (b * m).div_ceil(nb);
            let hi = ((b + 1) * m).div_ceil(nb);
            lo..hi
        })
        .collect()
}

/// Output of [`estimate_buckets`]: everything Step 1 needs to write without
/// synchronization and Step 2 needs to find its bucket's entries.
#[derive(Debug, Clone)]
pub struct BucketPlan {
    /// `boffset[k][b]`: number of entries thread `k` will insert into bucket
    /// `b` (Algorithm 2's output).
    pub boffset: Vec<Vec<usize>>,
    /// `bucket_starts[b]`: position of bucket `b`'s first entry in the shared
    /// bucket buffer; `bucket_starts[nb]` is the total entry count.
    pub bucket_starts: Vec<usize>,
    /// `write_offsets[k][b]`: position where thread `k` writes its first
    /// entry of bucket `b` (exclusive window start).
    pub write_offsets: Vec<Vec<usize>>,
}

impl BucketPlan {
    /// Derives the bucket layout and per-thread write windows from a
    /// per-`(thread, bucket)` count matrix via prefix sums — the second half
    /// of Algorithm 2, shared by the single-vector and batched kernels
    /// (which differ only in how they count).
    pub fn from_boffset(boffset: Vec<Vec<usize>>, nb: usize) -> Self {
        let t = boffset.len();
        let mut bucket_starts = vec![0usize; nb + 1];
        for b in 0..nb {
            let size: usize = (0..t).map(|k| boffset[k][b]).sum();
            bucket_starts[b + 1] = bucket_starts[b] + size;
        }

        let mut write_offsets = vec![vec![0usize; nb]; t];
        for b in 0..nb {
            let mut cursor = bucket_starts[b];
            for k in 0..t {
                write_offsets[k][b] = cursor;
                cursor += boffset[k][b];
            }
        }

        BucketPlan { boffset, bucket_starts, write_offsets }
    }

    /// Total number of scaled entries that will be produced
    /// (= `Σ_{j: x(j)≠0} nnz(A(:,j))`, the paper's `d·f`).
    pub fn total_entries(&self) -> usize {
        *self.bucket_starts.last().expect("bucket_starts is never empty")
    }

    /// Number of buckets in the plan.
    pub fn num_buckets(&self) -> usize {
        self.bucket_starts.len() - 1
    }

    /// Entries thread `k` contributes to bucket `b`.
    pub fn boffset_for(&self, k: usize, b: usize) -> usize {
        self.boffset[k][b]
    }

    /// Number of entries that land in bucket `b` across all threads.
    pub fn bucket_size(&self, b: usize) -> usize {
        self.bucket_starts[b + 1] - self.bucket_starts[b]
    }
}

/// Algorithm 2: counts per-(thread, bucket) contributions in parallel, then
/// derives bucket layout and per-thread write windows with prefix sums
/// (the prefix sums are `O(t·nb)` work on the calling thread, matching the
/// paper's "on the master thread" note for Step 3's prefix sum).
pub fn estimate_buckets<A: Scalar, X: Scalar>(
    matrix: &CscMatrix<A>,
    x: &SparseVec<X>,
    chunks: &[std::ops::Range<usize>],
    nb: usize,
    m: usize,
) -> BucketPlan {
    let boffset: Vec<Vec<usize>> = chunks
        .par_iter()
        .map(|chunk| {
            let mut counts = vec![0usize; nb];
            for k in chunk.clone() {
                let j = x.indices()[k];
                let (rows, _) = matrix.column(j);
                for &i in rows {
                    counts[bucket_of(i, m, nb)] += 1;
                }
            }
            counts
        })
        .collect();

    BucketPlan::from_boffset(boffset, nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::even_ranges;
    use sparse_substrate::fixtures::{figure1_matrix, figure1_vector};
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
    use sparse_substrate::ops::required_multiplications;

    #[test]
    fn bucket_of_partitions_rows() {
        for &(m, nb) in &[(8usize, 4usize), (10, 3), (7, 7), (100, 96), (5, 16)] {
            let ranges = bucket_row_ranges(m, nb);
            assert_eq!(ranges.len(), nb);
            // ranges are contiguous and cover 0..m
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[nb - 1].end, m);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // membership agrees with bucket_of
            for i in 0..m {
                let b = bucket_of(i, m, nb);
                assert!(ranges[b].contains(&i), "row {i} not in range of bucket {b}");
            }
        }
    }

    #[test]
    fn figure1_counts_match_the_paper() {
        // Figure 1 uses 4 buckets over 8 rows: rows 0-1, 2-3, 4-5, 6-7.
        let a = figure1_matrix();
        let x = figure1_vector();
        let chunks = even_ranges(x.nnz(), 1);
        let plan = estimate_buckets(&a, &x, &chunks, 4, 8);
        assert_eq!(plan.total_entries(), 7);
        // Buckets receive: rows {0,0}=2, {2,3}=2, {4,4}=2, {6}=1
        assert_eq!(plan.bucket_size(0), 2);
        assert_eq!(plan.bucket_size(1), 2);
        assert_eq!(plan.bucket_size(2), 2);
        assert_eq!(plan.bucket_size(3), 1);
    }

    #[test]
    fn totals_equal_required_multiplications() {
        let a = erdos_renyi(300, 5.0, 2);
        let x = random_sparse_vec(300, 60, 3);
        for threads in [1usize, 2, 5] {
            let chunks = even_ranges(x.nnz(), threads);
            let plan = estimate_buckets(&a, &x, &chunks, 4 * threads, a.nrows());
            assert_eq!(plan.total_entries(), required_multiplications(&a, &x));
        }
    }

    #[test]
    fn write_windows_are_disjoint_and_cover_buckets() {
        let a = erdos_renyi(200, 4.0, 5);
        let x = random_sparse_vec(200, 50, 7);
        let t = 3;
        let nb = 12;
        let chunks = even_ranges(x.nnz(), t);
        let plan = estimate_buckets(&a, &x, &chunks, nb, a.nrows());
        for b in 0..nb {
            // windows within bucket b: [write_offsets[k][b], +boffset[k][b])
            let mut cursor = plan.bucket_starts[b];
            for k in 0..t {
                assert_eq!(plan.write_offsets[k][b], cursor);
                cursor += plan.boffset[k][b];
            }
            assert_eq!(cursor, plan.bucket_starts[b + 1]);
        }
    }

    #[test]
    fn empty_vector_plan() {
        let a = figure1_matrix();
        let x = sparse_substrate::SparseVec::<f64>::new(8);
        let chunks = even_ranges(x.nnz(), 1);
        let plan = estimate_buckets(&a, &x, &chunks, 4, 8);
        assert_eq!(plan.total_entries(), 0);
        assert_eq!(plan.num_buckets(), 4);
    }
}
