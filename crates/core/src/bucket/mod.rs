//! The SpMSpV-bucket algorithm (Algorithm 1 + Algorithm 2 of the paper).
//!
//! The algorithm is vector-driven and work-efficient: its total work is
//! `O(d·f)` (the number of required multiplications) regardless of the
//! thread count, and the only `O(m)` cost — allocating the SPA — is paid
//! once at construction and amortized across every subsequent multiplication
//! (exactly the pre-allocation strategy §III-A prescribes for iterative
//! algorithms such as BFS).
//!
//! Parallel structure, per multiplication:
//!
//! ```text
//!  estimate   Boffset[k][b]  = entries thread k will send to bucket b   (Alg. 2)
//!  (prefix)   write window of thread k in bucket b = exclusive range
//!  bucketing  scatter (row, A(i,j) ⊗ x(j)) into buckets, lock-free      (Step 1)
//!  merge      per-bucket SPA merge, one bucket at a time per thread     (Step 2)
//!  output     prefix sum over per-bucket unique counts, then gather     (Step 3)
//! ```

pub mod estimate;
mod workspace;

pub use estimate::{bucket_of, bucket_row_ranges, BucketPlan};
pub use workspace::BucketWorkspace;

use std::marker::PhantomData;
use std::time::Instant;

use rayon::prelude::*;
use sparse_substrate::{CscMatrix, Scalar, Semiring, SparseVec};

use crate::algorithm::{SpMSpV, SpMSpVOptions};
use crate::disjoint::{split_by_boundaries, split_ranges, SliceWriter};
use crate::executor::{even_ranges, Executor};
use crate::masked::MaskView;
use crate::timing::StepTimings;

/// The paper's work-efficient, synchronization-avoiding SpMSpV algorithm,
/// prepared for one matrix and reusable across many input vectors.
pub struct SpMSpVBucket<'a, A, X, S: Semiring<A, X>> {
    matrix: &'a CscMatrix<A>,
    options: SpMSpVOptions,
    executor: Executor,
    workspace: BucketWorkspace<S::Output>,
    _marker: PhantomData<fn(X, S)>,
}

impl<'a, A, X, S> SpMSpVBucket<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    /// Prepares the algorithm for `matrix` with the given options.
    ///
    /// Allocates the `O(m)` SPA once; buckets grow lazily up to
    /// `O(nnz(A))` and are then reused.
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        let executor = options.build_executor();
        let workspace = BucketWorkspace::new(matrix.nrows());
        SpMSpVBucket { matrix, options, executor, workspace, _marker: PhantomData }
    }

    /// Prepares the algorithm reusing an existing executor (so several
    /// algorithm instances — e.g. inside one BFS — share a single pool).
    pub fn with_executor(
        matrix: &'a CscMatrix<A>,
        options: SpMSpVOptions,
        executor: Executor,
    ) -> Self {
        let workspace = BucketWorkspace::new(matrix.nrows());
        SpMSpVBucket { matrix, options, executor, workspace, _marker: PhantomData }
    }

    /// The options this instance was built with.
    pub fn options(&self) -> &SpMSpVOptions {
        &self.options
    }

    /// Computes `y ← A ⊕.⊗ x` and also returns the per-step wall-clock
    /// breakdown used by the Figure 6 experiment.
    pub fn multiply_with_timings(
        &mut self,
        x: &SparseVec<X>,
        semiring: &S,
    ) -> (SparseVec<S::Output>, StepTimings) {
        self.multiply_masked_with_timings(x, semiring, None)
    }

    /// Computes `y ← ⟨mask⟩ (A ⊕.⊗ x)` with the per-step breakdown.
    ///
    /// The mask is consulted **inside Step 2** (the per-bucket SPA merge):
    /// masked-out rows are skipped before they touch the SPA, so they never
    /// enter the unique-index lists, the output gather, or a post-filter
    /// pass — the mask's entire cost is one bitmap probe per bucket entry,
    /// accounted under `merge` in the returned timings.
    pub fn multiply_masked_with_timings(
        &mut self,
        x: &SparseVec<X>,
        semiring: &S,
        mask: Option<MaskView<'_>>,
    ) -> (SparseVec<S::Output>, StepTimings) {
        let m = self.matrix.nrows();
        let n = self.matrix.ncols();
        assert_eq!(
            x.len(),
            n,
            "input vector has dimension {} but the matrix has {} columns",
            x.len(),
            n
        );
        let mut timings = StepTimings::default();
        if x.is_empty() {
            return (SparseVec::new(m), timings);
        }

        // The paper assumes at most f threads take part (§III-B); with fewer
        // nonzeros than threads the extra threads would only add overhead.
        // We additionally require a minimum amount of input per thread
        // (work-proportional thread count): BFS on high-diameter graphs
        // issues thousands of multiplications whose frontiers hold only a
        // handful of vertices, and fanning those out to every core costs more
        // in scheduling than the multiplication itself. This is the same
        // observation §IV-D makes ("our work-efficient algorithm might not
        // scale well when the vector is very sparse ... due to the scarcity
        // of work for all threads").
        const MIN_NNZ_PER_THREAD: usize = 32;
        let t = self.executor.threads().min(x.nnz().div_ceil(MIN_NNZ_PER_THREAD)).max(1);
        let nb = (self.options.buckets_per_thread * t).max(1);

        // Sorted variant: keep the input sorted for cache-friendly column
        // access (Figure 2's "with sorting" curve).
        let sorted_holder;
        let x_ref: &SparseVec<X> = if self.options.sorted_output && !x.is_sorted() {
            sorted_holder = x.sorted();
            &sorted_holder
        } else {
            x
        };

        let chunks = even_ranges(x_ref.nnz(), t);

        // ---------------- Estimate (Algorithm 2) ----------------
        let t0 = Instant::now();
        let plan = self
            .executor
            .install(|| estimate::estimate_buckets(self.matrix, x_ref, &chunks, nb, m));
        timings.estimate = t0.elapsed();

        // ---------------- Step 1: bucketing ----------------
        let t1 = Instant::now();
        let total = plan.total_entries();
        let ws = &mut self.workspace;
        ws.entries.clear();
        ws.entries.reserve(total);
        {
            let writer = SliceWriter::new(&mut ws.entries.spare_capacity_mut()[..total]);
            let matrix = self.matrix;
            let staging = self.options.staging_buffer;
            let write_offsets = &plan.write_offsets;
            self.executor.install(|| {
                chunks.par_iter().zip(write_offsets.par_iter()).enumerate().for_each(
                    |(thread_id, (chunk, offsets))| {
                        let mut cursor = offsets.clone();
                        let mut stage: Vec<(usize, usize, S::Output)> = Vec::with_capacity(staging);
                        for k in chunk.clone() {
                            let j = x_ref.indices()[k];
                            let xv = &x_ref.values()[k];
                            let (rows, vals) = matrix.column(j);
                            for (&i, av) in rows.iter().zip(vals.iter()) {
                                let b = bucket_of(i, m, nb);
                                let prod = semiring.multiply(av, xv);
                                if staging == 0 {
                                    // SAFETY: cursor[b] lies inside this
                                    // thread's exclusive window for bucket b
                                    // (pre-computed by estimate_buckets) and
                                    // is bumped after every write, so no slot
                                    // is written twice.
                                    unsafe { writer.write(cursor[b], (i, prod)) };
                                    cursor[b] += 1;
                                } else {
                                    stage.push((b, i, prod));
                                    if stage.len() == staging {
                                        flush_stage(&writer, &mut stage, &mut cursor);
                                    }
                                }
                            }
                        }
                        if !stage.is_empty() {
                            flush_stage(&writer, &mut stage, &mut cursor);
                        }
                        // Postcondition: each cursor reached the end of its
                        // exclusive window.
                        debug_assert!((0..cursor.len())
                            .all(|b| { cursor[b] == offsets[b] + plan.boffset_for(thread_id, b) }));
                    },
                );
            });
        }
        // SAFETY: estimate_buckets counted exactly `total` entries and the
        // loop above wrote every one of them at a distinct offset; the Rayon
        // scope has ended, so all writes happened-before this point.
        unsafe { ws.entries.set_len(total) };
        timings.bucketing = t1.elapsed();

        // ---------------- Step 2: per-bucket SPA merge ----------------
        let t2 = Instant::now();
        let row_ranges = bucket_row_ranges(m, nb);
        ws.bump_generation();
        let generation = ws.generation();
        let sorted_output = self.options.sorted_output;
        let uinds: Vec<Vec<usize>> = {
            let spa_val_slices = split_ranges(&mut ws.spa_values, &row_ranges);
            let spa_stamp_slices = split_ranges(&mut ws.spa_stamps, &row_ranges);
            let entry_slices = split_by_boundaries(&ws.entries, &plan.bucket_starts);
            self.executor.install(|| {
                entry_slices
                    .into_par_iter()
                    .zip(spa_val_slices.into_par_iter())
                    .zip(spa_stamp_slices.into_par_iter())
                    .zip(row_ranges.par_iter())
                    .map(|(((bucket_entries, spa_vals), spa_stamps), range)| {
                        let lo = range.start;
                        // Reserve for the worst case (every entry unique) to
                        // avoid repeated growth inside the hot loop.
                        let mut uind = Vec::with_capacity(bucket_entries.len());
                        for &(i, ref v) in bucket_entries {
                            if let Some(mask) = mask {
                                if !mask.keeps(i) {
                                    continue;
                                }
                            }
                            let local = i - lo;
                            if spa_stamps[local] != generation {
                                spa_stamps[local] = generation;
                                spa_vals[local] = *v;
                                uind.push(i);
                            } else {
                                spa_vals[local] = semiring.add(spa_vals[local], *v);
                            }
                        }
                        if sorted_output {
                            uind.sort_unstable();
                        }
                        uind
                    })
                    .collect()
            })
        };
        timings.merge = t2.elapsed();

        // ---------------- Step 3: output ----------------
        let t3 = Instant::now();
        let mut out_starts = Vec::with_capacity(nb + 1);
        out_starts.push(0usize);
        for u in &uinds {
            out_starts.push(out_starts.last().unwrap() + u.len());
        }
        let y_nnz = *out_starts.last().unwrap();
        let mut out_indices = vec![0usize; y_nnz];
        let mut out_values = vec![S::Output::default(); y_nnz];
        {
            let out_ranges: Vec<std::ops::Range<usize>> =
                out_starts.windows(2).map(|w| w[0]..w[1]).collect();
            let idx_slices = split_ranges(&mut out_indices, &out_ranges);
            let val_slices = split_ranges(&mut out_values, &out_ranges);
            let spa_values = &ws.spa_values;
            let row_ranges = &row_ranges;
            self.executor.install(|| {
                uinds
                    .par_iter()
                    .zip(idx_slices.into_par_iter())
                    .zip(val_slices.into_par_iter())
                    .zip(row_ranges.par_iter())
                    .for_each(|(((uind, idx_out), val_out), range)| {
                        debug_assert!(uind.iter().all(|&i| range.contains(&i)));
                        for (k, &i) in uind.iter().enumerate() {
                            idx_out[k] = i;
                            val_out[k] = spa_values[i];
                        }
                    });
            });
        }
        let y = SparseVec::from_parts(m, out_indices, out_values)
            .expect("bucket output indices are in bounds by construction");
        timings.output = t3.elapsed();

        (y, timings)
    }
}

/// Flushes a thread-private staging buffer into the shared bucket storage.
/// Batching the irregular bucket writes behind a small sequential buffer is
/// the cache optimization of §III-A.
#[inline]
fn flush_stage<Y: Scalar>(
    writer: &SliceWriter<'_, (usize, Y)>,
    stage: &mut Vec<(usize, usize, Y)>,
    cursor: &mut [usize],
) {
    for &(b, i, v) in stage.iter() {
        // SAFETY: same exclusive-window argument as the direct-write path.
        unsafe { writer.write(cursor[b], (i, v)) };
        cursor[b] += 1;
    }
    stage.clear();
}

impl<'a, A, X, S> SpMSpV<A, X, S> for SpMSpVBucket<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "SpMSpV-bucket"
    }

    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn multiply(&mut self, x: &SparseVec<X>, semiring: &S) -> SparseVec<S::Output> {
        self.multiply_with_timings(x, semiring).0
    }

    fn multiply_masked(
        &mut self,
        x: &SparseVec<X>,
        semiring: &S,
        mask: Option<MaskView<'_>>,
    ) -> SparseVec<S::Output> {
        self.multiply_masked_with_timings(x, semiring, mask).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec, rmat, RmatParams};
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::{fixtures, PlusTimes, Select2ndMin};

    #[test]
    fn figure1_example() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(2));
        let y = alg.multiply(&x, &PlusTimes);
        let expected = spmspv_reference(&a, &x, &PlusTimes);
        assert!(y.approx_same_entries(&expected, 1e-9));
        assert!(y.is_sorted());
    }

    #[test]
    fn empty_input_vector() {
        let a = fixtures::figure1_matrix();
        let x = SparseVec::new(8);
        let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::default());
        let y = alg.multiply(&x, &PlusTimes);
        assert!(y.is_empty());
        assert_eq!(y.len(), 8);
    }

    #[test]
    fn matches_reference_on_random_matrices_all_thread_counts() {
        let a = erdos_renyi(400, 6.0, 7);
        for threads in [1usize, 2, 3, 4, 8] {
            for f in [1usize, 5, 50, 400] {
                let x = random_sparse_vec(400, f, 1000 + f as u64);
                let expected = spmspv_reference(&a, &x, &PlusTimes);
                let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(threads));
                let y = alg.multiply(&x, &PlusTimes);
                assert!(
                    y.approx_same_entries(&expected, 1e-9),
                    "mismatch at threads={threads}, nnz(x)={f}"
                );
            }
        }
    }

    #[test]
    fn unsorted_variant_produces_the_same_entries() {
        let a = rmat(9, 8, RmatParams::graph500(), 21);
        let x = random_sparse_vec(a.ncols(), 300, 9);
        let expected = spmspv_reference(&a, &x, &PlusTimes);
        let mut unsorted = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(4).sorted(false));
        let y = unsorted.multiply(&x, &PlusTimes);
        assert!(y.approx_same_entries(&expected, 1e-9));
    }

    #[test]
    fn workspace_is_reused_across_calls() {
        let a = erdos_renyi(300, 5.0, 3);
        let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(2));
        for seed in 0..5u64 {
            let x = random_sparse_vec(300, 40, seed);
            let expected = spmspv_reference(&a, &x, &PlusTimes);
            let y = alg.multiply(&x, &PlusTimes);
            assert!(y.approx_same_entries(&expected, 1e-9), "call with seed {seed} diverged");
        }
    }

    #[test]
    fn staging_buffer_on_and_off_agree() {
        let a = erdos_renyi(500, 8.0, 13);
        let x = random_sparse_vec(500, 120, 5);
        let mut direct = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(4).staging_buffer(0));
        let mut staged = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(4).staging_buffer(8));
        let y1 = direct.multiply(&x, &PlusTimes);
        let y2 = staged.multiply(&x, &PlusTimes);
        assert!(y1.approx_same_entries(&y2, 1e-9));
    }

    #[test]
    fn more_buckets_than_entries_is_fine() {
        // nb can exceed the number of output rows touched; empty buckets must
        // be handled gracefully.
        let a = fixtures::tridiagonal(50);
        let x = SparseVec::from_pairs(50, vec![(0, 1.0)]).unwrap();
        let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(8).buckets_per_thread(16));
        let y = alg.multiply(&x, &PlusTimes);
        let expected = spmspv_reference(&a, &x, &PlusTimes);
        assert!(y.approx_same_entries(&expected, 1e-9));
    }

    #[test]
    fn select2nd_semiring_for_bfs_parents() {
        let a = rmat(8, 8, RmatParams::graph500(), 4);
        let n = a.ncols();
        let x = SparseVec::from_pairs(n, vec![(3, 3usize), (100, 100usize)]).unwrap();
        let expected = spmspv_reference(&a, &x, &Select2ndMin);
        let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(4));
        let y = alg.multiply(&x, &Select2ndMin);
        assert!(y.same_entries(&expected));
    }

    #[test]
    fn timings_cover_all_steps() {
        let a = erdos_renyi(2000, 8.0, 99);
        let x = random_sparse_vec(2000, 500, 4);
        let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(2));
        let (y, t) = alg.multiply_with_timings(&x, &PlusTimes);
        assert!(!y.is_empty());
        assert!(t.total() > std::time::Duration::ZERO);
        // every phase should have been entered (non-zero or at least measured)
        let f = t.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn dimension_mismatch_panics() {
        let a = fixtures::figure1_matrix();
        let x = SparseVec::<f64>::from_pairs(9, vec![(0, 1.0)]).unwrap();
        let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::default());
        let _ = alg.multiply(&x, &PlusTimes);
    }
}
