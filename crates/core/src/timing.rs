//! Per-step timing instrumentation (Figure 6 of the paper).
//!
//! The SpMSpV-bucket algorithm has four distinct phases — estimate,
//! bucketing, SPA merge, output — and the paper analyses how each one scales
//! with thread count and vector density. [`StepTimings`] captures one
//! multiplication's breakdown; [`StepTimings`] values can be summed across
//! the many multiplications of a BFS run.

use std::ops::AddAssign;
use std::time::Duration;

/// Wall-clock duration of each phase of one (or several accumulated)
/// SpMSpV-bucket multiplications.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepTimings {
    /// Algorithm 2: per-(thread, bucket) entry counting + prefix sums.
    pub estimate: Duration,
    /// Step 1: scattering scaled entries into buckets.
    pub bucketing: Duration,
    /// Step 2: per-bucket SPA merge.
    pub merge: Duration,
    /// Step 3: concatenation into the output vector (plus optional sorting).
    pub output: Duration,
}

impl StepTimings {
    /// Total time across the four phases.
    pub fn total(&self) -> Duration {
        self.estimate + self.bucketing + self.merge + self.output
    }

    /// The four phases as `(name, duration)` pairs, in pipeline order —
    /// the names double as the `batch.<phase>` histogram suffixes in
    /// [`crate::obs`].
    pub fn phases(&self) -> [(&'static str, Duration); 4] {
        [
            ("estimate", self.estimate),
            ("bucketing", self.bucketing),
            ("merge", self.merge),
            ("output", self.output),
        ]
    }

    /// Fraction of the total spent in each phase, in the order
    /// (estimate, bucketing, merge, output). Returns zeros for an empty
    /// timing.
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            self.estimate.as_secs_f64() / total,
            self.bucketing.as_secs_f64() / total,
            self.merge.as_secs_f64() / total,
            self.output.as_secs_f64() / total,
        ]
    }
}

impl AddAssign for StepTimings {
    fn add_assign(&mut self, rhs: Self) {
        self.estimate += rhs.estimate;
        self.bucketing += rhs.bucketing;
        self.merge += rhs.merge;
        self.output += rhs.output;
    }
}

impl std::fmt::Display for StepTimings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "estimate {:.3} ms | bucketing {:.3} ms | merge {:.3} ms | output {:.3} ms",
            self.estimate.as_secs_f64() * 1e3,
            self.bucketing.as_secs_f64() * 1e3,
            self.merge.as_secs_f64() * 1e3,
            self.output.as_secs_f64() * 1e3,
        )
    }
}

/// Wall-clock breakdown of one (or several accumulated) serving-engine
/// flushes — the coalescer's counterpart of [`StepTimings`].
///
/// A flush has three regular phases: *assemble* (draining the request queue,
/// grouping compatible requests, building the fused [`sparse_substrate::SparseVecBatch`] and
/// installing per-lane masks), *execute* (the fused batched
/// multiplications), and *demux* (scattering per-lane results back to the
/// tickets) — plus *recover*, the time spent re-running failed groups on the
/// oracle kernel, zero on every healthy flush. `execute` dominating is the
/// designed-for regime: it means the serving layer's bookkeeping is
/// amortized away by the fused kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushTimings {
    /// Queue drain, request grouping, batch assembly, mask installation.
    pub assemble: Duration,
    /// The fused batched multiplications.
    pub execute: Duration,
    /// Per-lane result scatter back to the waiting tickets.
    pub demux: Duration,
    /// Degraded retries: re-running a failed group on the oracle kernel.
    pub recover: Duration,
}

impl FlushTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.assemble + self.execute + self.demux + self.recover
    }

    /// The four phases as `(name, duration)` pairs — the names double as
    /// the `engine.flush.<phase>` histogram suffixes in [`crate::obs`].
    pub fn phases(&self) -> [(&'static str, Duration); 4] {
        [
            ("assemble", self.assemble),
            ("execute", self.execute),
            ("demux", self.demux),
            ("recover", self.recover),
        ]
    }

    /// Fraction of the total spent in each phase, in the order
    /// (assemble, execute, demux, recover). Returns zeros for an empty
    /// timing.
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            self.assemble.as_secs_f64() / total,
            self.execute.as_secs_f64() / total,
            self.demux.as_secs_f64() / total,
            self.recover.as_secs_f64() / total,
        ]
    }
}

impl AddAssign for FlushTimings {
    fn add_assign(&mut self, rhs: Self) {
        self.assemble += rhs.assemble;
        self.execute += rhs.execute;
        self.demux += rhs.demux;
        self.recover += rhs.recover;
    }
}

impl std::fmt::Display for FlushTimings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "assemble {:.3} ms | execute {:.3} ms | demux {:.3} ms",
            self.assemble.as_secs_f64() * 1e3,
            self.execute.as_secs_f64() * 1e3,
            self.demux.as_secs_f64() * 1e3,
        )?;
        if !self.recover.is_zero() {
            write!(f, " | recover {:.3} ms", self.recover.as_secs_f64() * 1e3)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_timings_total_fractions_and_display() {
        let t = FlushTimings {
            assemble: Duration::from_millis(10),
            execute: Duration::from_millis(80),
            demux: Duration::from_millis(10),
            recover: Duration::ZERO,
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        let f = t.fractions();
        assert!((f[1] - 0.8).abs() < 1e-9);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(FlushTimings::default().fractions(), [0.0; 4]);
        let mut acc = t;
        acc += t;
        assert_eq!(acc.execute, Duration::from_millis(160));
        assert!(t.to_string().contains("execute 80.000 ms"), "unexpected display: {t}");
        assert!(
            !t.to_string().contains("recover"),
            "a healthy flush must not advertise recovery time: {t}"
        );
        let degraded = FlushTimings { recover: Duration::from_millis(5), ..t };
        assert_eq!(degraded.total(), Duration::from_millis(105));
        assert!(
            degraded.to_string().contains("recover 5.000 ms"),
            "unexpected display: {degraded}"
        );
    }

    #[test]
    fn total_and_fractions() {
        let t = StepTimings {
            estimate: Duration::from_millis(10),
            bucketing: Duration::from_millis(20),
            merge: Duration::from_millis(50),
            output: Duration::from_millis(20),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        let f = t.fractions();
        assert!((f[0] - 0.1).abs() < 1e-9);
        assert!((f[2] - 0.5).abs() < 1e-9);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phases_mirror_the_fields_in_order() {
        let t = StepTimings {
            estimate: Duration::from_millis(1),
            bucketing: Duration::from_millis(2),
            merge: Duration::from_millis(3),
            output: Duration::from_millis(4),
        };
        let names: Vec<&str> = t.phases().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, ["estimate", "bucketing", "merge", "output"]);
        assert_eq!(t.phases().iter().map(|&(_, d)| d).sum::<Duration>(), t.total());
        let ft = FlushTimings {
            assemble: Duration::from_millis(1),
            execute: Duration::from_millis(2),
            demux: Duration::from_millis(3),
            recover: Duration::from_millis(4),
        };
        let names: Vec<&str> = ft.phases().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, ["assemble", "execute", "demux", "recover"]);
        assert_eq!(ft.phases().iter().map(|&(_, d)| d).sum::<Duration>(), ft.total());
    }

    #[test]
    fn empty_timings_have_zero_fractions() {
        let t = StepTimings::default();
        assert_eq!(t.total(), Duration::ZERO);
        assert_eq!(t.fractions(), [0.0; 4]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = StepTimings {
            estimate: Duration::from_millis(1),
            bucketing: Duration::from_millis(2),
            merge: Duration::from_millis(3),
            output: Duration::from_millis(4),
        };
        a += a;
        assert_eq!(a.total(), Duration::from_millis(20));
        assert_eq!(a.merge, Duration::from_millis(6));
    }

    #[test]
    fn display_renders_milliseconds() {
        let t = StepTimings { merge: Duration::from_millis(5), ..Default::default() };
        let s = t.to_string();
        assert!(s.contains("merge 5.000 ms"), "unexpected display: {s}");
    }
}
