//! Output masks for SpMSpV — the GraphBLAS-style extension the paper lists
//! as future work (§V: "GraphBLAS effort is in the process of defining masked
//! operations, including SpMSpV").
//!
//! A mask restricts which output rows may appear in `y`. The dominant use is
//! BFS: the complement of the "already visited" set masks the product so the
//! next frontier only contains undiscovered vertices. Since this PR the mask
//! is applied **inside** the kernels — [`crate::SpMSpV::multiply_masked`]
//! and [`crate::SpMSpVBatch::multiply_batch_masked`] consult a [`MaskView`]
//! during the SPA-merge step, so a masked multiplication never materializes
//! the masked-out rows, let alone pays a post-filter pass over the output.
//!
//! The membership set itself is a [`sparse_substrate::MaskBits`] bitmap owned
//! by the caller (or by a [`crate::ops::PreparedMxv`] descriptor); the views
//! here are cheap `Copy` borrows handed to one multiplication.

use sparse_substrate::{MaskBits, Scalar, Semiring, SparseVec};

use crate::algorithm::SpMSpV;

/// Whether the mask selects the rows where it is set, or their complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskMode {
    /// Keep output entries whose row is in the mask.
    Keep,
    /// Keep output entries whose row is *not* in the mask
    /// (the BFS "unvisited" use-case).
    Complement,
}

/// A borrowed output mask for one single-vector multiplication: a bitmap plus
/// the interpretation mode. `Copy`, one word of state — cheap enough to pass
/// down into the per-bucket merge loops.
#[derive(Debug, Clone, Copy)]
pub struct MaskView<'m> {
    bits: &'m MaskBits,
    mode: MaskMode,
}

impl<'m> MaskView<'m> {
    /// Wraps a bitmap with an interpretation mode.
    pub fn new(bits: &'m MaskBits, mode: MaskMode) -> Self {
        MaskView { bits, mode }
    }

    /// The underlying bitmap.
    #[inline]
    pub fn bits(&self) -> &'m MaskBits {
        self.bits
    }

    /// The interpretation mode.
    #[inline]
    pub fn mode(&self) -> MaskMode {
        self.mode
    }

    /// Whether output row `i` survives the mask.
    #[inline]
    pub fn keeps(&self, i: usize) -> bool {
        match self.mode {
            MaskMode::Keep => self.bits.contains(i),
            MaskMode::Complement => !self.bits.contains(i),
        }
    }
}

/// A borrowed output mask for one batched multiplication: either one bitmap
/// shared by every lane, or one bitmap per lane (multi-source BFS, where each
/// source maintains its own visited set).
#[derive(Debug, Clone, Copy)]
pub enum BatchMaskView<'m> {
    /// Every lane is filtered by the same mask.
    Shared(MaskView<'m>),
    /// Lane `l` is filtered by `masks[l]`; the slice length must equal the
    /// batch width `k`.
    PerLane {
        /// One bitmap per lane.
        masks: &'m [MaskBits],
        /// Interpretation shared by all lanes.
        mode: MaskMode,
    },
}

impl<'m> BatchMaskView<'m> {
    /// Whether output row `i` of lane `lane` survives the mask.
    #[inline]
    pub fn keeps(&self, i: usize, lane: usize) -> bool {
        self.lane_view(lane).keeps(i)
    }

    /// The single-vector view of one lane (used by fallbacks that serve the
    /// batch lane by lane).
    #[inline]
    pub fn lane_view(&self, lane: usize) -> MaskView<'m> {
        match self {
            BatchMaskView::Shared(view) => *view,
            BatchMaskView::PerLane { masks, mode } => MaskView::new(&masks[lane], *mode),
        }
    }

    /// Number of lanes the view can serve, if lane-specific.
    pub fn lane_count(&self) -> Option<usize> {
        match self {
            BatchMaskView::Shared(_) => None,
            BatchMaskView::PerLane { masks, .. } => Some(masks.len()),
        }
    }

    /// Asserts that a lane-specific view covers exactly `k` lanes (no-op for
    /// a shared mask). Every batched entry point calls this, so all batch
    /// families reject a mismatched per-lane mask with the same message.
    pub fn check_lanes(&self, k: usize) {
        if let Some(lanes) = self.lane_count() {
            assert_eq!(
                lanes, k,
                "per-lane mask has {lanes} lanes but the input batch has {k} lanes"
            );
        }
    }
}

/// Wraps any [`SpMSpV`] implementation with an output mask.
///
/// Deprecated shim: masking is now a first-class argument of the kernels
/// ([`SpMSpV::multiply_masked`]) and of the [`crate::ops::Mxv`] descriptor
/// (`Mxv::over(&a).semiring(&s).masked(mode)`), which apply it during the
/// SPA merge instead of post-filtering. This wrapper now forwards to
/// `multiply_masked`, so it no longer pays the post-filter pass either — but
/// new code should program against `Mxv`. Kept for one release.
#[deprecated(
    since = "0.2.0",
    note = "use `spmspv::ops::Mxv` (`.masked(mode)` / `.mask(&bits, mode)`) or \
            `SpMSpV::multiply_masked` directly; this wrapper will be removed"
)]
pub struct MaskedSpMSpV<Alg> {
    inner: Alg,
    mask: MaskBits,
    mode: MaskMode,
}

#[allow(deprecated)]
impl<Alg> MaskedSpMSpV<Alg> {
    /// Wraps `inner` with an initially empty mask over `nrows` output rows.
    pub fn new(inner: Alg, nrows: usize, mode: MaskMode) -> Self {
        MaskedSpMSpV { inner, mask: MaskBits::new(nrows), mode }
    }

    /// Adds row `i` to the mask.
    pub fn set(&mut self, i: usize) {
        self.mask.insert(i);
    }

    /// Adds every listed row to the mask.
    pub fn set_all(&mut self, rows: impl IntoIterator<Item = usize>) {
        self.mask.extend(rows);
    }

    /// Removes every row from the mask, keeping the allocation so the wrapper
    /// can be reused across runs (e.g. BFS restarts) without reallocating.
    pub fn clear(&mut self) {
        self.mask.clear();
    }

    /// Whether row `i` is currently in the mask.
    pub fn contains(&self, i: usize) -> bool {
        self.mask.contains(i)
    }

    /// Number of rows currently in the mask (O(1), tracked incrementally).
    pub fn mask_len(&self) -> usize {
        self.mask.count()
    }

    /// Access to the wrapped algorithm.
    pub fn inner_mut(&mut self) -> &mut Alg {
        &mut self.inner
    }
}

#[allow(deprecated)]
impl<A, X, S, Alg> SpMSpV<A, X, S> for MaskedSpMSpV<Alg>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
    Alg: SpMSpV<A, X, S>,
{
    fn name(&self) -> &'static str {
        "masked"
    }

    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn multiply(&mut self, x: &SparseVec<X>, semiring: &S) -> SparseVec<S::Output> {
        self.inner.multiply_masked(x, semiring, Some(MaskView::new(&self.mask, self.mode)))
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::algorithm::SpMSpVOptions;
    use crate::bucket::SpMSpVBucket;
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::{fixtures, PlusTimes};

    #[test]
    fn mask_views_interpret_modes() {
        let bits = MaskBits::from_indices(6, [1, 4]);
        let keep = MaskView::new(&bits, MaskMode::Keep);
        let comp = MaskView::new(&bits, MaskMode::Complement);
        assert!(keep.keeps(1) && !keep.keeps(0));
        assert!(!comp.keeps(1) && comp.keeps(0));
        assert_eq!(keep.mode(), MaskMode::Keep);
        assert_eq!(keep.bits().count(), 2);
    }

    #[test]
    fn batch_mask_views_shared_and_per_lane() {
        let shared_bits = MaskBits::from_indices(5, [2]);
        let shared = BatchMaskView::Shared(MaskView::new(&shared_bits, MaskMode::Complement));
        assert!(!shared.keeps(2, 0) && !shared.keeps(2, 7));
        assert!(shared.keeps(3, 0));
        assert_eq!(shared.lane_count(), None);

        let lanes = vec![MaskBits::from_indices(5, [0]), MaskBits::from_indices(5, [1])];
        let per_lane = BatchMaskView::PerLane { masks: &lanes, mode: MaskMode::Keep };
        assert!(per_lane.keeps(0, 0) && !per_lane.keeps(0, 1));
        assert!(per_lane.keeps(1, 1) && !per_lane.keeps(1, 0));
        assert_eq!(per_lane.lane_count(), Some(2));
        assert!(per_lane.lane_view(1).keeps(1));
    }

    #[test]
    fn complement_mask_drops_visited_rows() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let unmasked = spmspv_reference(&a, &x, &PlusTimes);
        let inner = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(2));
        let mut masked = MaskedSpMSpV::new(inner, 8, MaskMode::Complement);
        masked.set_all([0usize, 4]);
        let y = masked.multiply(&x, &PlusTimes);
        assert!(y.get(0).is_none());
        assert!(y.get(4).is_none());
        assert_eq!(y.nnz(), unmasked.nnz() - 2);
        for (i, v) in y.iter() {
            assert_eq!(unmasked.get(i), Some(v));
        }
    }

    #[test]
    fn keep_mask_retains_only_masked_rows() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let inner = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(1));
        let mut masked = MaskedSpMSpV::new(inner, 8, MaskMode::Keep);
        masked.set(2);
        masked.set(3);
        let y = masked.multiply(&x, &PlusTimes);
        let rows: Vec<usize> = y.iter().map(|(i, _)| i).collect();
        assert_eq!(rows, vec![2, 3]);
    }

    #[test]
    fn clear_empties_the_mask() {
        let a = fixtures::tridiagonal(6);
        let inner: SpMSpVBucket<'_, f64, f64, PlusTimes> =
            SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(1));
        let mut masked = MaskedSpMSpV::new(inner, 6, MaskMode::Keep);
        masked.set_all(0..6);
        assert_eq!(masked.mask_len(), 6);
        masked.clear();
        assert_eq!(masked.mask_len(), 0);
        assert!(!masked.contains(3));
    }
}
