//! Masked SpMSpV — the GraphBLAS-style extension the paper lists as future
//! work (§V: "GraphBLAS effort is in the process of defining masked
//! operations, including SpMSpV").
//!
//! A mask restricts which output rows may appear in `y`. The dominant use is
//! BFS: the complement of the "already visited" set masks the product so the
//! next frontier only contains undiscovered vertices, without a separate
//! filtering pass over `y`.

use sparse_substrate::{Scalar, Semiring, SparseVec};

use crate::algorithm::SpMSpV;

/// Whether the mask selects the rows where it is set, or their complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskMode {
    /// Keep output entries whose row is in the mask.
    Keep,
    /// Keep output entries whose row is *not* in the mask
    /// (the BFS "unvisited" use-case).
    Complement,
}

/// Wraps any [`SpMSpV`] implementation with an output mask.
///
/// The mask lives in the wrapper as a dense boolean array sized to the
/// output dimension, so membership tests are O(1) and the mask can be
/// updated incrementally between multiplications (as BFS does when it marks
/// newly visited vertices).
pub struct MaskedSpMSpV<Alg> {
    inner: Alg,
    mask: Vec<bool>,
    mode: MaskMode,
}

impl<Alg> MaskedSpMSpV<Alg> {
    /// Wraps `inner` with an initially empty mask.
    pub fn new(inner: Alg, nrows: usize, mode: MaskMode) -> Self {
        MaskedSpMSpV { inner, mask: vec![false; nrows], mode }
    }

    /// Adds row `i` to the mask.
    pub fn set(&mut self, i: usize) {
        self.mask[i] = true;
    }

    /// Adds every listed row to the mask.
    pub fn set_all(&mut self, rows: impl IntoIterator<Item = usize>) {
        for i in rows {
            self.mask[i] = true;
        }
    }

    /// Removes every row from the mask.
    pub fn clear(&mut self) {
        self.mask.iter_mut().for_each(|b| *b = false);
    }

    /// Whether row `i` is currently in the mask.
    pub fn contains(&self, i: usize) -> bool {
        self.mask[i]
    }

    /// Number of rows currently in the mask.
    pub fn mask_len(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// Access to the wrapped algorithm.
    pub fn inner_mut(&mut self) -> &mut Alg {
        &mut self.inner
    }

    fn keeps(&self, i: usize) -> bool {
        match self.mode {
            MaskMode::Keep => self.mask[i],
            MaskMode::Complement => !self.mask[i],
        }
    }
}

impl<A, X, S, Alg> SpMSpV<A, X, S> for MaskedSpMSpV<Alg>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
    Alg: SpMSpV<A, X, S>,
{
    fn name(&self) -> &'static str {
        "masked"
    }

    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn multiply(&mut self, x: &SparseVec<X>, semiring: &S) -> SparseVec<S::Output> {
        let mut y = self.inner.multiply(x, semiring);
        y.retain(|i, _| self.keeps(i));
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::SpMSpVOptions;
    use crate::bucket::SpMSpVBucket;
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::{fixtures, PlusTimes};

    #[test]
    fn complement_mask_drops_visited_rows() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let unmasked = spmspv_reference(&a, &x, &PlusTimes);
        let inner = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(2));
        let mut masked = MaskedSpMSpV::new(inner, 8, MaskMode::Complement);
        masked.set_all([0usize, 4]);
        let y = masked.multiply(&x, &PlusTimes);
        assert!(y.get(0).is_none());
        assert!(y.get(4).is_none());
        assert_eq!(y.nnz(), unmasked.nnz() - 2);
        for (i, v) in y.iter() {
            assert_eq!(unmasked.get(i), Some(v));
        }
    }

    #[test]
    fn keep_mask_retains_only_masked_rows() {
        let a = fixtures::figure1_matrix();
        let x = fixtures::figure1_vector();
        let inner = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(1));
        let mut masked = MaskedSpMSpV::new(inner, 8, MaskMode::Keep);
        masked.set(2);
        masked.set(3);
        let y = masked.multiply(&x, &PlusTimes);
        let rows: Vec<usize> = y.iter().map(|(i, _)| i).collect();
        assert_eq!(rows, vec![2, 3]);
    }

    #[test]
    fn clear_empties_the_mask() {
        let a = fixtures::tridiagonal(6);
        let inner: SpMSpVBucket<'_, f64, f64, PlusTimes> =
            SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(1));
        let mut masked = MaskedSpMSpV::new(inner, 6, MaskMode::Keep);
        masked.set_all(0..6);
        assert_eq!(masked.mask_len(), 6);
        masked.clear();
        assert_eq!(masked.mask_len(), 0);
        assert!(!masked.contains(3));
    }
}
