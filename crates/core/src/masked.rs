//! Output masks for SpMSpV — the GraphBLAS-style extension the paper lists
//! as future work (§V: "GraphBLAS effort is in the process of defining masked
//! operations, including SpMSpV").
//!
//! A mask restricts which output rows may appear in `y`. The dominant use is
//! BFS: the complement of the "already visited" set masks the product so the
//! next frontier only contains undiscovered vertices. Since this PR the mask
//! is applied **inside** the kernels — [`crate::SpMSpV::multiply_masked`]
//! and [`crate::SpMSpVBatch::multiply_batch_masked`] consult a [`MaskView`]
//! during the SPA-merge step, so a masked multiplication never materializes
//! the masked-out rows, let alone pays a post-filter pass over the output.
//!
//! The membership set itself is a [`sparse_substrate::MaskBits`] bitmap owned
//! by the caller (or by a [`crate::ops::PreparedMxv`] descriptor); the views
//! here are cheap `Copy` borrows handed to one multiplication. Per-lane
//! bitmaps travel as `Arc<MaskBits>` so iterative engine clients
//! (multi-source BFS) can hand the same visited set to every flush without
//! copying `O(n)` bits per level.

use std::sync::Arc;

use sparse_substrate::MaskBits;

/// Whether the mask selects the rows where it is set, or their complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskMode {
    /// Keep output entries whose row is in the mask.
    Keep,
    /// Keep output entries whose row is *not* in the mask
    /// (the BFS "unvisited" use-case).
    Complement,
}

/// A borrowed output mask for one single-vector multiplication: a bitmap plus
/// the interpretation mode. `Copy`, one word of state — cheap enough to pass
/// down into the per-bucket merge loops.
#[derive(Debug, Clone, Copy)]
pub struct MaskView<'m> {
    bits: &'m MaskBits,
    mode: MaskMode,
}

impl<'m> MaskView<'m> {
    /// Wraps a bitmap with an interpretation mode.
    pub fn new(bits: &'m MaskBits, mode: MaskMode) -> Self {
        MaskView { bits, mode }
    }

    /// The underlying bitmap.
    #[inline]
    pub fn bits(&self) -> &'m MaskBits {
        self.bits
    }

    /// The interpretation mode.
    #[inline]
    pub fn mode(&self) -> MaskMode {
        self.mode
    }

    /// Whether output row `i` survives the mask.
    #[inline]
    pub fn keeps(&self, i: usize) -> bool {
        match self.mode {
            MaskMode::Keep => self.bits.contains(i),
            MaskMode::Complement => !self.bits.contains(i),
        }
    }
}

/// A borrowed output mask for one batched multiplication: either one bitmap
/// shared by every lane, or one bitmap per lane (multi-source BFS, where each
/// source maintains its own visited set).
#[derive(Debug, Clone, Copy)]
pub enum BatchMaskView<'m> {
    /// Every lane is filtered by the same mask.
    Shared(MaskView<'m>),
    /// Lane `l` is filtered by `masks[l]`; the slice length must equal the
    /// batch width `k`.
    PerLane {
        /// One shared-ownership bitmap per lane (the engine moves each
        /// request's `Arc` here without cloning the bits).
        masks: &'m [Arc<MaskBits>],
        /// Interpretation shared by all lanes.
        mode: MaskMode,
    },
}

impl<'m> BatchMaskView<'m> {
    /// Whether output row `i` of lane `lane` survives the mask.
    #[inline]
    pub fn keeps(&self, i: usize, lane: usize) -> bool {
        self.lane_view(lane).keeps(i)
    }

    /// The single-vector view of one lane (used by fallbacks that serve the
    /// batch lane by lane).
    #[inline]
    pub fn lane_view(&self, lane: usize) -> MaskView<'m> {
        match self {
            BatchMaskView::Shared(view) => *view,
            BatchMaskView::PerLane { masks, mode } => MaskView::new(masks[lane].as_ref(), *mode),
        }
    }

    /// Number of lanes the view can serve, if lane-specific.
    pub fn lane_count(&self) -> Option<usize> {
        match self {
            BatchMaskView::Shared(_) => None,
            BatchMaskView::PerLane { masks, .. } => Some(masks.len()),
        }
    }

    /// Asserts that a lane-specific view covers exactly `k` lanes (no-op for
    /// a shared mask). Every batched entry point calls this, so all batch
    /// families reject a mismatched per-lane mask with the same message.
    pub fn check_lanes(&self, k: usize) {
        if let Some(lanes) = self.lane_count() {
            assert_eq!(
                lanes, k,
                "per-lane mask has {lanes} lanes but the input batch has {k} lanes"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_views_interpret_modes() {
        let bits = MaskBits::from_indices(6, [1, 4]);
        let keep = MaskView::new(&bits, MaskMode::Keep);
        let comp = MaskView::new(&bits, MaskMode::Complement);
        assert!(keep.keeps(1) && !keep.keeps(0));
        assert!(!comp.keeps(1) && comp.keeps(0));
        assert_eq!(keep.mode(), MaskMode::Keep);
        assert_eq!(keep.bits().count(), 2);
    }

    #[test]
    fn batch_mask_views_shared_and_per_lane() {
        let shared_bits = MaskBits::from_indices(5, [2]);
        let shared = BatchMaskView::Shared(MaskView::new(&shared_bits, MaskMode::Complement));
        assert!(!shared.keeps(2, 0) && !shared.keeps(2, 7));
        assert!(shared.keeps(3, 0));
        assert_eq!(shared.lane_count(), None);

        let lanes = vec![
            Arc::new(MaskBits::from_indices(5, [0])),
            Arc::new(MaskBits::from_indices(5, [1])),
        ];
        let per_lane = BatchMaskView::PerLane { masks: &lanes, mode: MaskMode::Keep };
        assert!(per_lane.keeps(0, 0) && !per_lane.keeps(0, 1));
        assert!(per_lane.keeps(1, 1) && !per_lane.keeps(1, 0));
        assert_eq!(per_lane.lane_count(), Some(2));
        assert!(per_lane.lane_view(1).keeps(1));
    }
}
