//! The common interface every SpMSpV implementation exposes.

use sparse_substrate::{CscMatrix, Scalar, Semiring, SpaBackend, SparseVec};

use crate::adaptive::AdaptiveConfig;
use crate::executor::Executor;
use crate::masked::MaskView;

/// Tuning knobs shared by the parallel algorithms.
#[derive(Debug, Clone)]
pub struct SpMSpVOptions {
    /// Number of worker threads (`t`). `0` means all logical CPUs.
    pub threads: usize,
    /// Buckets per thread (`nb = buckets_per_thread · t`). The paper uses 4.
    pub buckets_per_thread: usize,
    /// Whether the output vector must be sorted by index. The paper's
    /// "sorted" variant (Figure 2) also keeps the input sorted for cache
    /// locality; when this flag is set and the input is unsorted, the
    /// algorithm sorts an internal copy first.
    pub sorted_output: bool,
    /// Size (in entries) of the per-thread staging buffer used to batch
    /// writes into the buckets (§III-A "Cache efficiency"). `0` disables the
    /// optimization and writes straight into the buckets.
    pub staging_buffer: usize,
    /// Which [`sparse_substrate::BatchAccumulator`] backend the batched
    /// kernels merge through. [`SpaBackend::Auto`] (the default) lets each
    /// call pick from the measured triple count, `m`, `k` and the mask —
    /// see [`crate::adaptive`].
    pub spa_backend: SpaBackend,
    /// Cost-model constants for [`SpaBackend::Auto`] and the `Adaptive`
    /// algorithm families. Unset fields fall back to the one-shot
    /// calibration pass ([`AdaptiveConfig::resolve`]).
    pub adaptive: AdaptiveConfig,
}

impl Default for SpMSpVOptions {
    fn default() -> Self {
        SpMSpVOptions {
            threads: 0,
            buckets_per_thread: 4,
            sorted_output: true,
            staging_buffer: 512,
            spa_backend: SpaBackend::Auto,
            adaptive: AdaptiveConfig::default(),
        }
    }
}

impl SpMSpVOptions {
    /// Convenience constructor pinning the thread count.
    pub fn with_threads(threads: usize) -> Self {
        SpMSpVOptions { threads, ..Default::default() }
    }

    /// Builder-style setter for [`SpMSpVOptions::sorted_output`].
    pub fn sorted(mut self, sorted: bool) -> Self {
        self.sorted_output = sorted;
        self
    }

    /// Builder-style setter for [`SpMSpVOptions::buckets_per_thread`].
    pub fn buckets_per_thread(mut self, k: usize) -> Self {
        self.buckets_per_thread = k.max(1);
        self
    }

    /// Builder-style setter for [`SpMSpVOptions::staging_buffer`].
    pub fn staging_buffer(mut self, entries: usize) -> Self {
        self.staging_buffer = entries;
        self
    }

    /// Builder-style setter for [`SpMSpVOptions::spa_backend`].
    pub fn spa_backend(mut self, backend: SpaBackend) -> Self {
        self.spa_backend = backend;
        self
    }

    /// Builder-style setter for [`SpMSpVOptions::adaptive`].
    pub fn adaptive(mut self, config: AdaptiveConfig) -> Self {
        self.adaptive = config;
        self
    }

    /// Materializes the executor implied by `threads`.
    pub fn build_executor(&self) -> Executor {
        Executor::new(self.threads)
    }
}

/// A prepared SpMSpV computation `y ← A ⊕.⊗ x` over a fixed matrix.
///
/// Implementations hold whatever matrix representation and pre-allocated
/// workspace they need (the paper stresses that buckets and the SPA are
/// allocated once and reused across the many multiplications of an iterative
/// algorithm such as BFS), so `multiply` can be called repeatedly with
/// different input vectors.
pub trait SpMSpV<A: Scalar, X: Scalar, S: Semiring<A, X>>: Send {
    /// Human-readable algorithm name, as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Number of matrix rows (`m`, the dimension of `y`).
    fn nrows(&self) -> usize;

    /// Number of matrix columns (`n`, the dimension of `x`).
    fn ncols(&self) -> usize;

    /// Computes `y ← A ⊕.⊗ x`.
    ///
    /// The output follows the sortedness convention of the implementation's
    /// options: sorted by index when `sorted_output` is set (the default),
    /// otherwise in unspecified order. Entries are unique either way.
    fn multiply(&mut self, x: &SparseVec<X>, semiring: &S) -> SparseVec<S::Output>;

    /// Computes `y ← ⟨mask⟩ (A ⊕.⊗ x)`: like [`SpMSpV::multiply`], but only
    /// output rows the mask keeps may appear in `y`.
    ///
    /// The default implementation post-filters an unmasked product, which is
    /// correct for any implementation; every algorithm in this crate
    /// overrides it to consult the mask **during its merge step**, so masked
    /// rows are never accumulated and no output-sized filter pass runs.
    /// Result entries (rows, values, and order) are identical either way.
    fn multiply_masked(
        &mut self,
        x: &SparseVec<X>,
        semiring: &S,
        mask: Option<MaskView<'_>>,
    ) -> SparseVec<S::Output> {
        let mut y = self.multiply(x, semiring);
        if let Some(mask) = mask {
            y.retain(|i, _| mask.keeps(i));
        }
        y
    }
}

/// Builds a boxed [`SpMSpV`] instance of the requested algorithm family,
/// generic over the semiring — the single dispatch point the [`crate::ops`]
/// descriptor (and the per-semiring helpers in `spmspv-graphs`) build on.
pub fn build_algorithm<'a, A, X, S>(
    matrix: &'a CscMatrix<A>,
    kind: AlgorithmKind,
    options: SpMSpVOptions,
) -> Box<dyn SpMSpV<A, X, S> + 'a>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + 'a,
{
    use crate::adaptive::AdaptiveSpMSpV;
    use crate::baselines::{CombBlasHeap, CombBlasSpa, GraphMatSpMSpV, SequentialSpa, SortBased};
    use crate::bucket::SpMSpVBucket;
    match kind {
        AlgorithmKind::Bucket => Box::new(SpMSpVBucket::new(matrix, options)),
        AlgorithmKind::CombBlasSpa => Box::new(CombBlasSpa::new(matrix, options)),
        AlgorithmKind::CombBlasHeap => Box::new(CombBlasHeap::new(matrix, options)),
        AlgorithmKind::GraphMat => Box::new(GraphMatSpMSpV::new(matrix, options)),
        AlgorithmKind::SortBased => Box::new(SortBased::new(matrix, options)),
        AlgorithmKind::Sequential => Box::new(SequentialSpa::new(matrix, options)),
        AlgorithmKind::Adaptive => Box::new(AdaptiveSpMSpV::new(matrix, options)),
    }
}

/// Identifier for each algorithm family, used by the benchmark harness to
/// enumerate competitors exactly as the paper's figures do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// The paper's SpMSpV-bucket algorithm.
    Bucket,
    /// CombBLAS row-split algorithm with a per-piece SPA.
    CombBlasSpa,
    /// CombBLAS row-split algorithm with heap-based merging.
    CombBlasHeap,
    /// GraphMat-style matrix-driven algorithm (DCSC + bitvector).
    GraphMat,
    /// Sort-based vector-driven algorithm (Yang et al., GPU origin).
    SortBased,
    /// Sequential SPA-based reference.
    Sequential,
    /// Cost-model dispatch per call between [`AlgorithmKind::Bucket`] and
    /// [`AlgorithmKind::Sequential`] from the frontier's estimated flops
    /// ([`crate::adaptive::AdaptiveSpMSpV`]).
    Adaptive,
}

impl AlgorithmKind {
    /// All parallel algorithms compared in Figures 3–5.
    pub fn paper_competitors() -> [AlgorithmKind; 4] {
        [
            AlgorithmKind::Bucket,
            AlgorithmKind::CombBlasSpa,
            AlgorithmKind::CombBlasHeap,
            AlgorithmKind::GraphMat,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::Bucket => "SpMSpV-bucket",
            AlgorithmKind::CombBlasSpa => "CombBLAS-SPA",
            AlgorithmKind::CombBlasHeap => "CombBLAS-heap",
            AlgorithmKind::GraphMat => "GraphMat",
            AlgorithmKind::SortBased => "SpMSpV-sort",
            AlgorithmKind::Sequential => "Sequential-SPA",
            AlgorithmKind::Adaptive => "Adaptive",
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_match_the_paper() {
        let o = SpMSpVOptions::default();
        assert_eq!(o.buckets_per_thread, 4);
        assert!(o.sorted_output);
    }

    #[test]
    fn builder_setters_compose() {
        let o =
            SpMSpVOptions::with_threads(2).sorted(false).buckets_per_thread(8).staging_buffer(0);
        assert_eq!(o.threads, 2);
        assert!(!o.sorted_output);
        assert_eq!(o.buckets_per_thread, 8);
        assert_eq!(o.staging_buffer, 0);
        assert_eq!(o.build_executor().threads(), 2);
    }

    #[test]
    fn buckets_per_thread_floor_is_one() {
        let o = SpMSpVOptions::default().buckets_per_thread(0);
        assert_eq!(o.buckets_per_thread, 1);
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(AlgorithmKind::Bucket.label(), "SpMSpV-bucket");
        assert_eq!(AlgorithmKind::GraphMat.to_string(), "GraphMat");
        assert_eq!(AlgorithmKind::paper_competitors().len(), 4);
    }
}
