//! Deterministic fault-injection sites for chaos testing the serving layer.
//!
//! A *failpoint* is a named site in production code — the flush path, the
//! batched kernels — where a test can inject a fault: a panic, a delay, or
//! an error. Sites are consulted with [`act`]; tests arm them through a
//! scoped `FailGuard` returned by `arm` (both compiled only with the
//! `failpoints` cargo feature), so a fault plan cannot outlive its test.
//! Without the feature, [`act`] compiles to an inlined `Ok(())` and the
//! registry does not exist, so release binaries carry zero overhead and
//! zero injectable surface.
//!
//! The sites threaded through this crate:
//!
//! | site | where | sensible actions |
//! |---|---|---|
//! | `engine.flush.assemble` | [`crate::engine::Engine::flush`], after the queue drain | panic (serve-loop crash recovery), delay |
//! | `engine.flush.execute`  | per fused group, before the kernel runs | error / panic (group failure + degrade), delay |
//! | `engine.flush.demux`    | per fused group, before results are scattered | delay (deadline races) |
//! | `batch.merge`           | [`crate::SpMSpVBucketBatch`], entering the merge step | panic ("panic in merge") |
//! | `shard.flush.<s>`       | [`crate::shard::ShardedEngine`], before shard `s`'s engine flushes | error (single-shard outage: only tickets routed through shard `s` fail) |
//! | `net.host.byzantine.wrong_id.<s>` | [`crate::net::ShardHost`] for shard `s`, before a reply is encoded | error (reply carries a corrupted correlation id → router quarantines) |
//! | `net.host.byzantine.bad_index.<s>` | [`crate::net::ShardHost`] for shard `s`, after a non-empty `Partial` is encoded | error (first partial index overwritten with `u64::MAX` → decode rejects) |
//! | `net.host.byzantine.truncate.<s>` | [`crate::net::ShardHost`] for shard `s`, after the flush reply batch is encoded | error (frame cut mid-header and the connection dropped → `Truncated`) |
//!
//! Arming is process-global (the sites are static program points), so tests
//! that arm failpoints must serialize themselves — take a shared
//! `static Mutex<()>` — and rely on `FailGuard` to disarm on every exit
//! path, panicking assertions included.
//!
//! ```
//! # #[cfg(feature = "failpoints")] {
//! use std::time::Duration;
//! use spmspv::failpoint::{self, FailAction};
//!
//! let _guard = failpoint::arm("doc.example", FailAction::Delay(Duration::ZERO), Some(1));
//! assert!(failpoint::act("doc.example").is_ok()); // first hit: the delay fires
//! assert_eq!(failpoint::hits("doc.example"), 1);
//! # }
//! ```

use std::time::Duration;

/// What an armed failpoint does when its site is hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Panic at the site with this message (exercises `catch_unwind`
    /// isolation and unwind-safety of the surrounding code).
    Panic(String),
    /// Sleep this long at the site (exercises deadlines and linger/timeout
    /// interplay).
    Delay(Duration),
    /// Report an error from the site: [`act`] returns `Err` with this
    /// message (exercises non-panic error propagation).
    Error(String),
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::FailAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    struct Armed {
        action: FailAction,
        /// `Some(n)`: fire on the next `n` hits, then fall dormant.
        /// `None`: fire on every hit while armed.
        remaining: Option<usize>,
    }

    #[derive(Default)]
    struct Registry {
        armed: HashMap<String, Armed>,
        /// Total times each site *fired* (dormant hits don't count), kept
        /// after disarm so tests can assert their fault plan ran.
        hits: HashMap<String, usize>,
    }

    fn registry() -> MutexGuard<'static, Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        // A panic *injected by a failpoint* unwinds through this lock's
        // scope only after the guard is dropped (see `act`), but a test that
        // panics while holding an unrelated assertion poisons nothing here;
        // tolerate poisoning anyway so one broken test cannot wedge the rest.
        REGISTRY
            .get_or_init(|| Mutex::new(Registry::default()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Scoped arming handle: dropping it disarms its site (on every exit
    /// path out of a test, panicking assertions included).
    #[must_use = "dropping the guard disarms the failpoint immediately"]
    pub struct FailGuard {
        site: String,
    }

    impl Drop for FailGuard {
        fn drop(&mut self) {
            registry().armed.remove(&self.site);
        }
    }

    /// Arms `site` with `action`, firing on the next `times` hits
    /// (`None` = every hit while armed). Re-arming a site replaces its
    /// previous plan. Returns the scoped guard that disarms on drop.
    pub fn arm(site: &str, action: FailAction, times: Option<usize>) -> FailGuard {
        registry().armed.insert(site.to_string(), Armed { action, remaining: times });
        FailGuard { site: site.to_string() }
    }

    /// Consults `site`: sleeps, panics, or returns `Err` per the armed
    /// action; `Ok(())` when the site is unarmed or its shots are spent.
    pub fn act(site: &str) -> Result<(), String> {
        let fired: Option<FailAction> = {
            let mut reg = registry();
            let fire = match reg.armed.get_mut(site) {
                None => None,
                Some(armed) => match &mut armed.remaining {
                    Some(0) => None,
                    Some(n) => {
                        *n -= 1;
                        Some(armed.action.clone())
                    }
                    None => Some(armed.action.clone()),
                },
            };
            if fire.is_some() {
                *reg.hits.entry(site.to_string()).or_insert(0) += 1;
            }
            fire
            // The registry lock drops HERE, before any panic/sleep below —
            // an injected fault must never hold the registry hostage.
        };
        if fired.is_some() {
            crate::obs::record_failpoint_hit(site);
        }
        match fired {
            None => Ok(()),
            Some(FailAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FailAction::Error(msg)) => Err(msg),
            Some(FailAction::Panic(msg)) => panic!("failpoint {site}: {msg}"),
        }
    }

    /// How many times `site` has fired since process start (survives
    /// disarm, so tests can assert their fault plan actually ran).
    pub fn hits(site: &str) -> usize {
        registry().hits.get(site).copied().unwrap_or(0)
    }

    /// Disarms every site (test hygiene for suites that cannot rely on
    /// guard scoping alone).
    pub fn disarm_all() {
        registry().armed.clear();
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{act, arm, disarm_all, hits, FailGuard};

/// Consults a failpoint site. Compiled without the `failpoints` feature this
/// is an inlined no-op: sites cost nothing and cannot be armed.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn act(_site: &str) -> Result<(), String> {
    Ok(())
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; these tests serialize on it.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_site_is_ok() {
        let _s = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(act("fp.never-armed"), Ok(()));
    }

    #[test]
    fn error_action_fires_exactly_times_then_falls_dormant() {
        let _s = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = hits("fp.err");
        let guard = arm("fp.err", FailAction::Error("boom".into()), Some(2));
        assert_eq!(act("fp.err"), Err("boom".into()));
        assert_eq!(act("fp.err"), Err("boom".into()));
        assert_eq!(act("fp.err"), Ok(()), "shots spent: site falls dormant");
        assert_eq!(hits("fp.err"), before + 2);
        drop(guard);
        assert_eq!(act("fp.err"), Ok(()));
    }

    #[test]
    fn guard_drop_disarms_and_rearming_replaces() {
        let _s = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        {
            let _g = arm("fp.scoped", FailAction::Error("a".into()), None);
            assert_eq!(act("fp.scoped"), Err("a".into()));
            // Re-arm replaces the plan while the old guard is still live.
            let _g2 = arm("fp.scoped", FailAction::Error("b".into()), None);
            assert_eq!(act("fp.scoped"), Err("b".into()));
        }
        assert_eq!(act("fp.scoped"), Ok(()), "all guards gone: disarmed");
    }

    #[test]
    fn panic_action_panics_with_site_and_message() {
        let _s = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _g = arm("fp.panic", FailAction::Panic("kaboom".into()), Some(1));
        let err = std::panic::catch_unwind(|| {
            let _ = act("fp.panic");
        })
        .expect_err("armed panic site must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("fp.panic") && msg.contains("kaboom"), "payload: {msg}");
        assert_eq!(act("fp.panic"), Ok(()), "single shot spent by the panic");
    }

    #[test]
    fn delay_action_sleeps_inline() {
        let _s = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _g = arm("fp.delay", FailAction::Delay(std::time::Duration::from_millis(15)), Some(1));
        let t0 = std::time::Instant::now();
        assert_eq!(act("fp.delay"), Ok(()));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
    }
}
