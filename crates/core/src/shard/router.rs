//! The scatter/merge router: [`ShardedEngine`] and its session handle.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sparse_substrate::{CscMatrix, Scalar, Semiring, SparseVec};

use crate::engine::{
    Engine, EngineConfig, EngineError, FlushOutcome, MxvRequest, Ticket, TicketShared,
};
use crate::failpoint;
use crate::obs::{Counter, Gauge, Histogram, Registry, TraceKind};
use crate::stats::EngineStats;

use super::transport::{InProcess, ShardTransport, WireRequest};
use super::{merge_partials, ShardMsg, ShardPlan};

/// One routed request awaiting its shards' partials: the client-facing
/// ticket slot plus the owning shards it fanned out to, in ascending shard
/// order (the merge fold order). The per-shard sub-requests live in the
/// transport.
struct Routed<Y> {
    id: u64,
    session: u64,
    shared: Arc<TicketShared<Y>>,
    fanout: Vec<usize>,
    deadline: Option<Instant>,
}

/// The `shard.*` metric family, resolved once at construction.
pub(crate) struct ShardMetrics {
    registry: Registry,
    /// `shard.requests` — requests routed through the scatter path.
    requests: Arc<Counter>,
    /// `shard.flushes` — router flushes that resolved at least one request.
    flushes: Arc<Counter>,
    /// `shard.failed` — tickets failed by a shard-side error.
    failed: Arc<Counter>,
    /// `shard.fanout` — owning shards per routed request.
    fanout: Arc<Histogram>,
    /// `shard.merge.time` — per-flush ⊕-merge latency.
    merge_time: Arc<Histogram>,
    /// `shard.queue_depth.<s>` — sub-requests queued for shard `s`.
    queue_depth: Vec<Arc<Gauge>>,
}

impl ShardMetrics {
    fn new(registry: Registry, shards: usize) -> Self {
        let queue_depth =
            (0..shards).map(|s| registry.gauge(&format!("shard.queue_depth.{s}"))).collect();
        ShardMetrics {
            requests: registry.counter("shard.requests"),
            flushes: registry.counter("shard.flushes"),
            failed: registry.counter("shard.failed"),
            fanout: registry.histogram("shard.fanout"),
            merge_time: registry.histogram("shard.merge.time"),
            queue_depth,
            registry,
        }
    }
}

/// What one [`ShardedEngine::flush`] did. The per-shard engine outcomes are
/// kept whole (indexed by shard; all-zero for shards with nothing queued)
/// so callers can attribute lanes, timeouts, and degradations to the shard
/// that produced them.
#[derive(Debug, Clone, Default)]
pub struct ShardFlushOutcome {
    /// Routed requests resolved by this flush (merged + failed + retired).
    pub requests: usize,
    /// Requests whose partials merged into a delivered result.
    pub merged: usize,
    /// Requests failed by a shard error (single-shard outage, sub-request
    /// failure, overload inside a shard).
    pub failed: usize,
    /// Requests already cancelled when the flush reached them.
    pub retired: usize,
    /// Requests that missed their deadline (counted within `failed`'s
    /// complement — a timeout is its own bucket, not a shard failure).
    pub timeouts: usize,
    /// Shards whose engines actually flushed.
    pub shards_flushed: usize,
    /// Total lanes executed across all shard engines.
    pub lanes: usize,
    /// Wall time of the parallel shard-flush phase.
    pub execute_time: Duration,
    /// Wall time spent ⊕-merging partials into final outputs.
    pub merge_time: Duration,
    /// Each shard engine's own [`FlushOutcome`], indexed by shard. For a
    /// remote transport these carry the summary the host ships back
    /// (lanes, requests, execute time).
    pub per_shard: Vec<FlushOutcome>,
    /// The error message of every request failed by a shard error this
    /// flush, in resolution order. Failures originating from a remote
    /// shard carry their `shard <s>:` prefix, so multi-process outages
    /// stay attributable in logs.
    pub failures: Vec<String>,
}

/// A fleet of column-range shard engines behind one engine-shaped front
/// door. See the [module docs](super) for the partitioning and merge
/// contract.
///
/// The router is flush-driven, like [`Engine`] in its synchronous style:
/// submit through [`ShardedEngine::submit`] or a [`ShardSession`], then
/// [`ShardedEngine::flush`] to scatter-execute-merge everything queued.
///
/// *Where* the shard engines live is the transport's business:
/// [`ShardedEngine::partition`] keeps them in-process, while
/// [`ShardedEngine::connect`](crate::net) reaches
/// [`ShardHost`](crate::net::ShardHost) daemons over TCP — the routing,
/// merge, and failure semantics are identical.
pub struct ShardedEngine<A: Scalar, X: Scalar, S: Semiring<A, X> + Clone + 'static> {
    plan: ShardPlan,
    nrows: usize,
    semiring: S,
    transport: Box<dyn ShardTransport<X, S::Output>>,
    pending: Mutex<Vec<Routed<S::Output>>>,
    metrics: ShardMetrics,
    next_session: AtomicU64,
    next_request: AtomicU64,
    marker: PhantomData<fn() -> A>,
}

impl<A, X, S> ShardedEngine<A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + Clone + 'static,
{
    /// Partitions `matrix` into `shards` nnz-balanced column ranges (via
    /// [`ShardPlan::balanced`]) and starts one default-configured engine
    /// per shard. The plan may hold fewer shards than asked for when the
    /// matrix cannot support more (see [`ShardPlan::balanced`]).
    pub fn partition(matrix: &CscMatrix<A>, semiring: S, shards: usize) -> Self {
        let plan = ShardPlan::balanced(matrix, shards);
        Self::partition_with(matrix, semiring, plan, EngineConfig::default())
    }

    /// [`ShardedEngine::partition`] with an explicit plan and per-shard
    /// engine configuration. Each shard engine **owns** its sub-matrix
    /// (`matrix` is only borrowed to slice it), so the router has no
    /// lifetime tie to the caller's matrix.
    pub fn partition_with(
        matrix: &CscMatrix<A>,
        semiring: S,
        plan: ShardPlan,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(
            plan.ncols(),
            matrix.ncols(),
            "shard plan covers {} columns but the matrix has {}",
            plan.ncols(),
            matrix.ncols()
        );
        let engines: Vec<Engine<'static, A, X, S>> = matrix
            .column_split(plan.bounds())
            .into_iter()
            .map(|sub| Engine::load_with(sub, semiring.clone(), config.clone()))
            .collect();
        let registry = Registry::new(config.obs.clone());
        Self::from_transport(
            plan,
            matrix.nrows(),
            semiring,
            registry,
            Box::new(InProcess::new(engines)),
        )
    }

    /// Assembles a router over an already-built transport. The shared
    /// entry point of [`ShardedEngine::partition_with`] (in-process) and
    /// [`ShardedEngine::connect`](crate::net) (sockets).
    pub(crate) fn from_transport(
        plan: ShardPlan,
        nrows: usize,
        semiring: S,
        registry: Registry,
        transport: Box<dyn ShardTransport<X, S::Output>>,
    ) -> Self {
        let metrics = ShardMetrics::new(registry, transport.num_shards());
        ShardedEngine {
            plan,
            nrows,
            semiring,
            transport,
            pending: Mutex::new(Vec::new()),
            metrics,
            next_session: AtomicU64::new(1),
            next_request: AtomicU64::new(0),
            marker: PhantomData,
        }
    }

    /// The column partition this router scatters by.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shard engines behind the router.
    pub fn num_shards(&self) -> usize {
        self.transport.num_shards()
    }

    /// Output dimension (rows of the original matrix — every shard keeps
    /// full output height).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Input dimension (columns of the original matrix).
    pub fn ncols(&self) -> usize {
        self.plan.ncols()
    }

    /// Routed requests submitted and not yet resolved by a flush.
    pub fn pending(&self) -> usize {
        crate::engine::lock(&self.pending).len()
    }

    /// The router's own observability registry: the `shard.*` metric
    /// family (plus `net.*` for a socket transport). Per-shard engine
    /// registries are reachable through [`ShardedEngine::shard_obs`].
    pub fn obs(&self) -> &Registry {
        &self.metrics.registry
    }

    /// Shard `s`'s engine registry (the `engine.*` family for that shard).
    ///
    /// # Panics
    ///
    /// When the shard lives in another process — its registry is local to
    /// the [`ShardHost`](crate::net::ShardHost) that owns it.
    pub fn shard_obs(&self, s: usize) -> &Registry {
        self.transport.shard_obs(s).expect("shard observability is local to the shard host process")
    }

    /// Shard `s`'s own engine stats (one addend of
    /// [`ShardedEngine::stats`]).
    ///
    /// # Panics
    ///
    /// When the shard lives in another process (see
    /// [`ShardedEngine::shard_obs`]).
    pub fn shard_stats(&self, s: usize) -> EngineStats {
        self.transport.shard_stats(s).expect("shard stats are local to the shard host process")
    }

    /// The sum of every *local* shard engine's [`EngineStats`] — existing
    /// engine dashboards read a sharded deployment through the same shape.
    /// For a remote transport this is empty (each host owns its stats);
    /// the router's own telemetry lives in [`ShardedEngine::obs`].
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for s in 0..self.transport.num_shards() {
            if let Some(stats) = self.transport.shard_stats(s) {
                total.absorb(&stats);
            }
        }
        total
    }

    /// Opens a session handle; its still-queued requests can be retired
    /// together with [`ShardSession::close`].
    pub fn session(&self) -> ShardSession<'_, A, X, S> {
        ShardSession { router: self, id: self.next_session.fetch_add(1, Ordering::Relaxed) }
    }

    /// Submits an anonymous request. Scattering happens here: the frontier
    /// is sliced per owning shard ([`SparseVec::slice_remap`]), packed
    /// through the [`ShardMsg`] protocol, and queued into the transport.
    /// The returned ticket resolves at the next [`ShardedEngine::flush`].
    pub fn submit(&self, request: MxvRequest<X>) -> Ticket<S::Output> {
        self.submit_tagged(0, request)
    }

    fn submit_tagged(&self, session: u64, request: MxvRequest<X>) -> Ticket<S::Output> {
        assert_eq!(
            request.frontier.len(),
            self.plan.ncols(),
            "request frontier has dimension {} but the matrix has {} columns",
            request.frontier.len(),
            self.plan.ncols()
        );
        let id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let (ticket, shared) = Ticket::detached();
        let mut fanout = Vec::new();
        for s in 0..self.transport.num_shards() {
            let slice = request.frontier.slice_remap(self.plan.range(s));
            if slice.nnz() == 0 {
                continue;
            }
            // The remaining budget at submit time; a socket transport
            // recomputes it at write time so queue wait is clamped out.
            let budget = request
                .deadline
                .map(|d| d.saturating_duration_since(Instant::now()).as_micros() as u64);
            self.transport.enqueue(WireRequest {
                request: id,
                shard: s,
                slice,
                deadline_micros: budget,
                deadline: request.deadline,
                mask: request.mask.clone(),
                algorithm: request.algorithm,
            });
            self.metrics.queue_depth[s].set(self.transport.queued(s) as u64);
            fanout.push(s);
        }
        self.metrics.requests.inc();
        self.metrics.fanout.record(fanout.len() as u64);
        crate::engine::lock(&self.pending).push(Routed {
            id,
            session,
            shared,
            fanout,
            deadline: request.deadline,
        });
        ticket
    }

    /// Scatter-execute-merge for everything queued: flushes every involved
    /// shard **in parallel** through the transport, then folds each
    /// request's partials with the semiring's `⊕` in ascending shard order
    /// and resolves its ticket. Every routed request resolves before this
    /// returns; a shard failure resolves only the tickets routed through
    /// that shard.
    pub fn flush(&self) -> ShardFlushOutcome {
        let routed: Vec<Routed<S::Output>> = {
            let mut p = crate::engine::lock(&self.pending);
            p.drain(..).collect()
        };
        let shards = self.transport.num_shards();
        let mut outcome = ShardFlushOutcome {
            per_shard: vec![FlushOutcome::default(); shards],
            ..ShardFlushOutcome::default()
        };
        let involved = self.transport.involved();
        if routed.is_empty() && involved.is_empty() {
            return outcome;
        }
        if self.metrics.registry.enabled() {
            self.metrics.registry.trace(TraceKind::FlushBegin { requests: routed.len() });
        }

        // Single-shard outage injection: a downed shard is not flushed at
        // all this round; only tickets routed through it fail.
        let mut down: Vec<Option<String>> = vec![None; shards];
        for &s in &involved {
            if let Err(msg) = failpoint::act(&format!("shard.flush.{s}")) {
                down[s] = Some(msg);
            }
        }

        // Clients that cancelled between submit and flush: the transport
        // drops their sub-requests without producing replies.
        let retired: Vec<u64> =
            routed.iter().filter(|r| !r.shared.is_pending()).map(|r| r.id).collect();

        let exchange = self.transport.exchange(&down, &retired);
        outcome.per_shard = exchange.per_shard;
        outcome.shards_flushed = exchange.shards_flushed;
        outcome.execute_time = exchange.execute_time;
        for &s in &involved {
            self.metrics.queue_depth[s].set(self.transport.queued(s) as u64);
        }
        outcome.lanes = outcome.per_shard.iter().map(|o| o.lanes).sum();

        let mut replies: HashMap<(u64, usize), ShardMsg<X, S::Output>> =
            exchange.replies.into_iter().map(|msg| ((msg.request(), msg.shard()), msg)).collect();

        for r in routed {
            outcome.requests += 1;
            if retired.contains(&r.id) {
                outcome.retired += 1;
                continue;
            }
            let mut partials: Vec<SparseVec<S::Output>> = Vec::with_capacity(r.fanout.len());
            let mut error: Option<EngineError> = None;
            for &s in &r.fanout {
                let result = match replies.remove(&(r.id, s)) {
                    Some(reply) => reply.into_result().expect("partial or error"),
                    // The transport contract says every live sub-request
                    // gets a reply; a hole is a transport fault.
                    None => Err(EngineError::KernelFailed(format!(
                        "shard {s}: no reply for the sub-request"
                    ))),
                };
                match result {
                    Ok(y) => partials.push(y),
                    // First error in ascending shard order wins.
                    Err(e) => error = error.or(Some(e)),
                }
            }
            match error {
                Some(EngineError::DeadlineExceeded) => {
                    outcome.timeouts += 1;
                    r.shared.fail(EngineError::DeadlineExceeded);
                }
                Some(e) => {
                    outcome.failed += 1;
                    self.metrics.failed.inc();
                    outcome.failures.push(e.to_string());
                    r.shared.fail(e);
                }
                None => {
                    // Deadline re-check at merge time: a result assembled
                    // too late is never delivered as if it were fresh.
                    if r.deadline.is_some_and(|d| Instant::now() >= d) {
                        outcome.timeouts += 1;
                        r.shared.fail(EngineError::DeadlineExceeded);
                        continue;
                    }
                    let t_merge = Instant::now();
                    let y = merge_partials(self.nrows, &partials, |a, b| self.semiring.add(a, b));
                    outcome.merge_time += t_merge.elapsed();
                    outcome.merged += 1;
                    r.shared.fulfil(y);
                }
            }
        }
        if outcome.requests > 0 {
            self.metrics.flushes.inc();
            self.metrics.merge_time.record_duration(outcome.merge_time);
        }
        outcome
    }

    /// Retires every still-pending routed request of `session` (and its
    /// shard sub-requests); their tickets resolve as
    /// [`EngineError::Cancelled`]. Returns how many were retired.
    fn retire_session(&self, session: u64) -> usize {
        let retired: Vec<Routed<S::Output>> = {
            let mut p = crate::engine::lock(&self.pending);
            let (gone, keep) = p.drain(..).partition(|r| r.session == session);
            *p = keep;
            gone
        };
        let ids: Vec<u64> = retired.iter().map(|r| r.id).collect();
        self.transport.retire(&ids);
        for r in &retired {
            r.shared.fail(EngineError::Cancelled);
        }
        retired.len()
    }
}

impl<A, X, S> Drop for ShardedEngine<A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + Clone + 'static,
{
    fn drop(&mut self) {
        // Resolve router-level tickets before the transport drops (a local
        // transport's engines fail their sub-tickets with `Disconnected`
        // in turn).
        let routed: Vec<Routed<S::Output>> = {
            let mut p = crate::engine::lock(&self.pending);
            p.drain(..).collect()
        };
        for r in routed {
            r.shared.fail(EngineError::Disconnected);
        }
    }
}

/// A logical client of a [`ShardedEngine`] — the sharded counterpart of
/// [`crate::engine::Session`]. Dropping (or [`ShardSession::close`]-ing)
/// the handle retires its still-queued requests as
/// [`EngineError::Cancelled`].
pub struct ShardSession<'r, A: Scalar, X: Scalar, S: Semiring<A, X> + Clone + 'static> {
    router: &'r ShardedEngine<A, X, S>,
    id: u64,
}

impl<'r, A, X, S> ShardSession<'r, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + Clone + 'static,
{
    /// This session's router-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submits a request under this session. See [`ShardedEngine::submit`].
    pub fn submit(&self, request: MxvRequest<X>) -> Ticket<S::Output> {
        self.router.submit_tagged(self.id, request)
    }

    /// Closes the session, retiring its still-queued requests. Returns how
    /// many were retired.
    pub fn close(self) -> usize {
        let retired = self.router.retire_session(self.id);
        std::mem::forget(self);
        retired
    }
}

impl<'r, A, X, S> Drop for ShardSession<'r, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + Clone + 'static,
{
    fn drop(&mut self) {
        self.router.retire_session(self.id);
    }
}
