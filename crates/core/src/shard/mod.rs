//! Shard-parallel serving: 1D column-partitioned engines behind a
//! scatter/merge router.
//!
//! The source paper frames work-efficient SpMSpV as the *node-level* kernel
//! inside CombBLAS's distributed, 1D/2D-partitioned matrix world. This
//! module is the serving stack's first step into that world: a
//! [`ShardPlan`] splits the matrix by **column ranges** (CombBLAS-style 1D,
//! balanced by nnz rather than width), each range becomes a standalone
//! sub-matrix owned by its own [`Engine`](crate::engine::Engine), and a
//! [`ShardedEngine`] router presents the familiar
//! `Session`/`MxvRequest`/`Ticket` surface on top of the fleet.
//!
//! ## Why column partitioning composes
//!
//! A shard owning columns `[lo, hi)` holds an `nrows × (hi − lo)` slice of
//! the matrix — **full output height**. For any semiring `(⊕, ⊗)`:
//!
//! ```text
//! y = A ⊗ x = ⊕ₚ Aₚ ⊗ xₚ        xₚ = x sliced to [lo, hi), re-based to 0
//! ```
//!
//! so the router only has to do three cheap things per request:
//!
//! 1. **Scatter** — slice the frontier by each shard's index range
//!    ([`SparseVec::slice_remap`](sparse_substrate::SparseVec::slice_remap))
//!    and submit one sub-request per *owning* shard (shards whose slice is
//!    empty are skipped entirely; the `shard.fanout` histogram records how
//!    many shards each request actually touched). Output masks cover rows,
//!    which every shard shares, so the same `Arc`'d mask bitmap travels to
//!    each sub-request untouched, and deadlines propagate verbatim.
//! 2. **Execute** — flush every involved shard engine in parallel
//!    ([`ShardedEngine::flush`] runs one scoped thread per shard). Each
//!    shard engine coalesces, panic-isolates, and degrades exactly as a
//!    standalone engine would: the fault-tolerance semantics of the engine
//!    layer compose per shard.
//! 3. **Merge** — fold the full-height partial outputs with the semiring's
//!    `⊕` in ascending shard order ([`merge_partials`]). Because shard `p`'s
//!    partial is itself a left-fold over ascending columns, the merged fold
//!    order is the global ascending-column order — the same order a
//!    single unsharded engine reduces in.
//!
//! ## Failure semantics
//!
//! One shard's [`EngineError`](crate::engine::EngineError) fails **only the
//! tickets routed through it**: a request whose frontier never touches the
//! failed shard's columns resolves normally. A sub-request that exceeds its
//! deadline inside a shard surfaces as `DeadlineExceeded` on the routed
//! ticket. Dropping the router fails every still-queued ticket with
//! `Disconnected`, exactly like dropping an engine.
//!
//! ## Transports
//!
//! Everything that crosses the router↔shard boundary is expressed as a
//! [`ShardMsg`] — a plain-data enum (frontier slice / partial result /
//! error) with no `Arc`s, borrows, handles, or `Instant`s in its payload.
//! The per-shard hop itself is pluggable: the router drives a
//! [`ShardTransport`], with [`transport::InProcess`] submitting into shard
//! engines in this address space (the [`ShardedEngine::partition`] path)
//! and [`crate::net::TcpTransport`] carrying the same frames over sockets
//! to [`crate::net::ShardHost`] daemons
//! ([`ShardedEngine::connect`](crate::net)), optionally N replicas deep
//! per shard ([`ShardedEngine::connect_replicated`](crate::net)) with
//! mid-flush failover, per-replica circuit breakers, and byzantine-frame
//! quarantine. The router logic — scatter, fan-out bookkeeping, merge,
//! failure isolation — is written against the message shape, so results
//! are bit-identical across transports (and across failovers: every
//! replica of a shard serves the same column slice, verified at dial time
//! against the plan's structural fingerprint).
//!
//! ## Observability
//!
//! The router owns its own [`Registry`](crate::obs::Registry) with the
//! `shard.*` metric family (see the [`crate::obs`] taxonomy): routing
//! fan-out, per-shard queue depth gauges, and the merge-time histogram.
//! [`ShardedEngine::stats`] returns the **sum** of the per-shard
//! [`EngineStats`](crate::stats::EngineStats) (via
//! [`EngineStats::absorb`](crate::stats::EngineStats::absorb)), so existing
//! engine dashboards read a sharded deployment unchanged.

mod merge;
mod messages;
mod plan;
mod router;
pub mod transport;

pub use merge::merge_partials;
pub use messages::ShardMsg;
pub use plan::ShardPlan;
pub use router::{ShardFlushOutcome, ShardSession, ShardedEngine};
pub use transport::ShardTransport;
