//! The router's per-shard hop, factored behind [`ShardTransport`].
//!
//! [`ShardedEngine`](super::ShardedEngine) scatters, gathers, and merges;
//! *how* a sub-request reaches its shard engine is the transport's
//! business. [`InProcess`] is the original path — one [`Engine`] per shard
//! in this address space — and [`crate::net::TcpTransport`] carries the
//! same protocol over sockets to [`crate::net::ShardHost`] processes,
//! failing over between replica hosts of a shard without the router
//! noticing. The router is written purely against [`ShardMsg`]-shaped
//! replies, so the transports are behaviorally interchangeable (the shard
//! property suite asserts bit-identical results across them, replicated
//! fleets with killed primaries included).

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sparse_substrate::{MaskBits, Scalar, Semiring, SparseVec};

use crate::batch::BatchAlgorithmKind;
use crate::engine::{Engine, EngineError, FlushOutcome, MxvRequest, Ticket};
use crate::masked::MaskMode;
use crate::obs::Registry;
use crate::stats::EngineStats;

use super::ShardMsg;

/// One routed sub-request handed to a transport: the frontier slice
/// (re-based to the shard's column range) plus the sidecars that ride
/// outside [`ShardMsg`] — the shared output mask, the algorithm hint, and
/// both flavors of the deadline (absolute for in-process engines and the
/// gather-side re-check; relative for the wire).
pub struct WireRequest<X> {
    /// Router-unique request id.
    pub request: u64,
    /// Destination shard.
    pub shard: usize,
    /// The frontier slice, re-based to the shard's local columns.
    pub slice: SparseVec<X>,
    /// Remaining deadline budget in microseconds at submit time. A socket
    /// transport recomputes this at write time so queue wait is clamped
    /// out of the budget too.
    pub deadline_micros: Option<u64>,
    /// The router-local absolute deadline.
    pub deadline: Option<Instant>,
    /// Output mask sidecar (full output height — every shard shares it).
    pub mask: Option<(Arc<MaskBits>, MaskMode)>,
    /// Batched-algorithm hint sidecar.
    pub algorithm: Option<BatchAlgorithmKind>,
}

/// What one [`ShardTransport::exchange`] produced: the gathered replies in
/// wire shape plus the execution telemetry the router folds into its
/// [`ShardFlushOutcome`](super::ShardFlushOutcome).
pub struct Exchange<X, Y> {
    /// One `Partial`/`Error` reply per live sub-request, keyed by
    /// `(request, shard)`.
    pub replies: Vec<ShardMsg<X, Y>>,
    /// Each shard engine's own flush outcome, indexed by shard. A remote
    /// transport fills in the summary fields its host ships back (lanes,
    /// requests, execute time); a downed shard's slot stays default.
    pub per_shard: Vec<FlushOutcome>,
    /// Shards whose engines actually flushed.
    pub shards_flushed: usize,
    /// Wall time of the parallel scatter/execute/gather phase.
    pub execute_time: Duration,
}

/// How sub-requests reach shard engines and replies come back. Implemented
/// by [`InProcess`] (shard engines in this address space) and
/// [`crate::net::TcpTransport`] (shard engines behind
/// [`crate::net::ShardHost`] daemons).
///
/// The contract mirrors the router's flush discipline: [`enqueue`]d
/// requests sit until [`exchange`], which must produce exactly one reply
/// per enqueued request that is neither `retired` nor silently dropped —
/// a transport failure is an `Error` reply, never a missing one.
///
/// [`enqueue`]: ShardTransport::enqueue
/// [`exchange`]: ShardTransport::exchange
pub trait ShardTransport<X: Scalar, Y: Scalar>: Send + Sync {
    /// Number of shards behind this transport.
    fn num_shards(&self) -> usize;

    /// Queues one sub-request for its shard.
    fn enqueue(&self, request: WireRequest<X>);

    /// Sub-requests currently queued for `shard` (feeds the
    /// `shard.queue_depth.<s>` gauge).
    fn queued(&self, shard: usize) -> usize;

    /// Shards that have work to flush.
    fn involved(&self) -> Vec<usize>;

    /// Drops queued sub-requests whose request id is in `ids` (session
    /// close / client cancel): no reply will be produced for them.
    fn retire(&self, ids: &[u64]);

    /// Flushes every involved shard and gathers replies. `down[s]` carries
    /// an injected outage for shard `s` (the `shard.flush.<s>` failpoint):
    /// the shard must not execute, and its sub-requests must come back as
    /// `KernelFailed` errors. `retired` lists request ids cancelled after
    /// enqueue; their sub-requests produce no reply.
    fn exchange(&self, down: &[Option<String>], retired: &[u64]) -> Exchange<X, Y>;

    /// Shard `s`'s engine stats — `None` when the shard lives in another
    /// process (its stats are local to the host).
    fn shard_stats(&self, shard: usize) -> Option<EngineStats>;

    /// Shard `s`'s engine registry — `None` when the shard is remote.
    fn shard_obs(&self, shard: usize) -> Option<&Registry>;
}

/// One sub-request awaiting its shard's reply: `(request id, shard,
/// ticket)`.
type Inflight<Y> = (u64, usize, Ticket<Y>);

/// The original transport: one [`Engine`] per shard in this process,
/// sub-requests submitted straight into its queue. Sub-request tickets are
/// held here between `enqueue` and `exchange`.
pub struct InProcess<A: Scalar, X: Scalar, S: Semiring<A, X> + Clone + 'static> {
    engines: Vec<Engine<'static, A, X, S>>,
    inflight: Mutex<Vec<Inflight<S::Output>>>,
}

impl<A, X, S> InProcess<A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + Clone + 'static,
{
    /// Wraps a fleet of shard engines (index = shard).
    pub fn new(engines: Vec<Engine<'static, A, X, S>>) -> Self {
        InProcess { engines, inflight: Mutex::new(Vec::new()) }
    }
}

impl<A, X, S> ShardTransport<X, S::Output> for InProcess<A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X> + Clone + 'static,
{
    fn num_shards(&self) -> usize {
        self.engines.len()
    }

    fn enqueue(&self, request: WireRequest<X>) {
        // Round-trip the slice through the wire shape: the transport is
        // written against the protocol, not against in-process access.
        let msg: ShardMsg<X, S::Output> = ShardMsg::frontier(
            request.request,
            request.shard,
            request.slice,
            request.deadline_micros,
        );
        let sub = MxvRequest {
            frontier: msg.into_frontier().expect("just packed a frontier"),
            mask: request.mask,
            algorithm: request.algorithm,
            deadline: request.deadline,
        };
        let ticket = self.engines[request.shard].submit(sub);
        crate::engine::lock(&self.inflight).push((request.request, request.shard, ticket));
    }

    fn queued(&self, shard: usize) -> usize {
        self.engines[shard].pending()
    }

    fn involved(&self) -> Vec<usize> {
        (0..self.engines.len()).filter(|&s| self.engines[s].pending() > 0).collect()
    }

    fn retire(&self, ids: &[u64]) {
        let mut inflight = crate::engine::lock(&self.inflight);
        inflight.retain(|(id, _, ticket)| {
            if ids.contains(id) {
                ticket.cancel();
                false
            } else {
                true
            }
        });
    }

    fn exchange(&self, down: &[Option<String>], retired: &[u64]) -> Exchange<X, S::Output> {
        let entries: Vec<(u64, usize, Ticket<S::Output>)> = {
            let mut inflight = crate::engine::lock(&self.inflight);
            inflight.drain(..).collect()
        };
        let involved = self.involved();
        let mut per_shard = vec![FlushOutcome::default(); self.engines.len()];
        let mut shards_flushed = 0;

        // A downed shard's engine is not flushed at all this round; its
        // sub-requests stay queued (their cancelled lanes drain at the
        // next flush) and come back as errors below.
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<(usize, _)> = involved
                .iter()
                .filter(|&&s| down[s].is_none())
                .map(|&s| (s, scope.spawn(move || self.engines[s].flush())))
                .collect();
            for (s, handle) in handles {
                per_shard[s] = handle.join().expect("shard flush thread panicked");
                shards_flushed += 1;
            }
        });
        let execute_time = t0.elapsed();

        let mut replies = Vec::with_capacity(entries.len());
        for (id, s, ticket) in entries {
            if retired.contains(&id) {
                // Client cancelled between submit and flush: drop the
                // sub-ticket too so the shard queue sheds the dead lane.
                ticket.cancel();
                continue;
            }
            if let Some(msg) = &down[s] {
                ticket.cancel();
                replies.push(ShardMsg::error(id, s, EngineError::KernelFailed(msg.clone())));
                continue;
            }
            let reply = match ticket.try_take() {
                Some(Ok(y)) => ShardMsg::partial(id, s, y),
                Some(Err(e)) => ShardMsg::error(id, s, e),
                None => {
                    ticket.cancel();
                    ShardMsg::error(
                        id,
                        s,
                        EngineError::KernelFailed("shard never flushed the sub-request".into()),
                    )
                }
            };
            replies.push(reply);
        }
        Exchange { replies, per_shard, shards_flushed, execute_time }
    }

    fn shard_stats(&self, shard: usize) -> Option<EngineStats> {
        Some(self.engines[shard].stats())
    }

    fn shard_obs(&self, shard: usize) -> Option<&Registry> {
        Some(self.engines[shard].obs())
    }
}
