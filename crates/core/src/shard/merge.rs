//! Merging per-shard partial products into the request's final output.
//!
//! Each shard returns a *full-height* partial (its sub-matrix keeps every
//! row), so merging is a pure element-wise `⊕`-fold. Order matters for
//! bit-identity with an unsharded engine: shard `p`'s partial is a left-fold
//! over its columns in ascending order, so folding partials in **ascending
//! shard order** reproduces the global ascending-column fold exactly.

use sparse_substrate::{Scalar, SparseVec};

/// Folds full-height shard partials into one output vector with the
/// semiring's `add`, in ascending shard order (`partials[0]` must be the
/// lowest-column shard's result, and so on).
///
/// A row present in several partials is folded left-to-right across them; a
/// row present in exactly one passes through untouched (no spurious
/// `add(zero, v)` is introduced, matching what a single engine's kernel
/// would have produced). When every partial is index-sorted — the kernels'
/// steady state — a k-way cursor merge produces sorted output in one linear
/// pass; otherwise a stable sort by row index (which preserves the
/// shard-order of equal rows) restores the fold order first.
pub fn merge_partials<Y, F>(len: usize, partials: &[SparseVec<Y>], mut add: F) -> SparseVec<Y>
where
    Y: Scalar,
    F: FnMut(Y, Y) -> Y,
{
    for p in partials {
        assert_eq!(p.len(), len, "shard partial has wrong output dimension");
    }
    match partials {
        [] => SparseVec::new(len),
        [only] => only.clone(),
        many if many.iter().all(|p| p.is_sorted()) => merge_sorted(len, many, &mut add),
        many => merge_unsorted(len, many, &mut add),
    }
}

/// K-way cursor merge over index-sorted partials. `k` is the shard fan-out
/// of one request — small — so a linear min-scan over cursors beats a heap.
fn merge_sorted<Y, F>(len: usize, partials: &[SparseVec<Y>], add: &mut F) -> SparseVec<Y>
where
    Y: Scalar,
    F: FnMut(Y, Y) -> Y,
{
    let mut out = SparseVec::new(len);
    let mut cursors = vec![0usize; partials.len()];
    loop {
        let mut row = usize::MAX;
        for (p, &c) in partials.iter().zip(&cursors) {
            if let Some(&i) = p.indices().get(c) {
                row = row.min(i);
            }
        }
        if row == usize::MAX {
            return out;
        }
        // Fold this row's contributions in ascending shard order.
        let mut acc: Option<Y> = None;
        for (p, c) in partials.iter().zip(cursors.iter_mut()) {
            if p.indices().get(*c) == Some(&row) {
                let v = p.values()[*c];
                acc = Some(match acc {
                    None => v,
                    Some(a) => add(a, v),
                });
                *c += 1;
            }
        }
        out.push(row, acc.expect("row came from some cursor"));
    }
}

/// Fallback for unsorted partials: flatten in shard order, stable-sort by
/// row (preserving shard order within a row), fold runs.
fn merge_unsorted<Y, F>(len: usize, partials: &[SparseVec<Y>], add: &mut F) -> SparseVec<Y>
where
    Y: Scalar,
    F: FnMut(Y, Y) -> Y,
{
    let mut entries: Vec<(usize, Y)> = Vec::with_capacity(partials.iter().map(|p| p.nnz()).sum());
    for p in partials {
        entries.extend(p.iter().map(|(i, v)| (i, *v)));
    }
    entries.sort_by_key(|&(i, _)| i);
    let mut out = SparseVec::new(len);
    let mut run: Option<(usize, Y)> = None;
    for (i, v) in entries {
        run = Some(match run {
            Some((ri, rv)) if ri == i => (ri, add(rv, v)),
            Some((ri, rv)) => {
                out.push(ri, rv);
                (i, v)
            }
            None => (i, v),
        });
    }
    if let Some((ri, rv)) = run {
        out.push(ri, rv);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(len: usize, pairs: &[(usize, f64)]) -> SparseVec<f64> {
        SparseVec::from_pairs(len, pairs.to_vec()).unwrap()
    }

    #[test]
    fn disjoint_rows_concatenate() {
        let merged =
            merge_partials(6, &[sv(6, &[(0, 1.0), (4, 4.0)]), sv(6, &[(2, 2.0)])], |a, b| a + b);
        assert_eq!(merged, sv(6, &[(0, 1.0), (2, 2.0), (4, 4.0)]));
        assert!(merged.is_sorted());
    }

    #[test]
    fn overlapping_rows_fold_in_shard_order() {
        // Non-commutative "add" exposes fold order: keep the left operand's
        // sign, sum magnitudes.
        let order_sensitive = |a: f64, b: f64| a.signum() * (a.abs() + b.abs());
        let merged = merge_partials(
            3,
            &[sv(3, &[(1, -1.0)]), sv(3, &[(1, 2.0)]), sv(3, &[(1, 4.0)])],
            order_sensitive,
        );
        // Shard 0 first: (((-1) ⊕ 2) ⊕ 4) = -7, not +7.
        assert_eq!(merged, sv(3, &[(1, -7.0)]));
    }

    #[test]
    fn single_partial_passes_through_even_unsorted() {
        let mut p = SparseVec::new(4);
        p.push(3, 9.0);
        p.push(0, 1.0);
        let merged = merge_partials(4, &[p.clone()], |a, b| a + b);
        assert_eq!(merged, p, "single shard: no re-ordering, no touching values");
    }

    #[test]
    fn unsorted_partials_take_the_sort_fallback_and_agree() {
        let mut a = SparseVec::new(5);
        a.push(4, 1.0);
        a.push(0, 2.0);
        let b = sv(5, &[(0, 3.0), (4, 5.0)]);
        let merged = merge_partials(5, &[a, b], |x, y| x + y);
        assert_eq!(merged, sv(5, &[(0, 5.0), (4, 6.0)]));
    }

    #[test]
    fn empty_input_is_empty_output() {
        let merged: SparseVec<f64> = merge_partials(7, &[], |a, _| a);
        assert_eq!(merged.nnz(), 0);
        assert_eq!(merged.len(), 7);
    }

    #[test]
    #[should_panic(expected = "wrong output dimension")]
    fn dimension_mismatch_is_rejected() {
        let _ = merge_partials(4, &[sv(3, &[])], |a: f64, _| a);
    }
}
