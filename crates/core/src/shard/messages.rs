//! The process-agnostic router ↔ shard protocol.
//!
//! Every payload that crosses the shard boundary is a [`ShardMsg`]: plain
//! owned data — `Vec`s of scalars, `u64` request ids, `String` errors —
//! with no `Arc`s, borrows, thread handles, or `Instant`s. The in-process
//! [`ShardedEngine`](super::ShardedEngine) routes these directly; a socket
//! transport only needs an encoding for this enum (and a mask/deadline
//! sidecar, both already plain data) to host shards out-of-process. See the
//! [module docs](super) for the transport-readiness contract.

use sparse_substrate::{Scalar, SparseVec};

use crate::engine::EngineError;

/// One message of the scatter/merge protocol. `X` is the input element
/// type, `Y` the semiring's output type.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardMsg<X, Y> {
    /// Router → shard: one request's frontier slice, re-based to the
    /// shard's local column range (`indices[i] < len`, where `len` is the
    /// width of the shard's sub-matrix).
    Frontier {
        /// Router-unique request id, echoed by the shard's reply.
        request: u64,
        /// Destination shard.
        shard: usize,
        /// Local (re-based) dimension of the slice = shard width.
        len: usize,
        /// Shard-local indices of the slice's entries.
        indices: Vec<usize>,
        /// Values parallel to `indices`.
        values: Vec<X>,
        /// Deadline budget in microseconds from send time (`None` = no
        /// deadline). Relative, not absolute: wall clocks don't cross
        /// process boundaries.
        deadline_micros: Option<u64>,
    },
    /// Shard → router: one full-height partial product, to be ⊕-merged
    /// with the other owning shards' partials.
    Partial {
        /// Echoed request id.
        request: u64,
        /// Responding shard.
        shard: usize,
        /// Global output dimension (= matrix rows).
        len: usize,
        /// Global row indices of the partial's entries.
        indices: Vec<usize>,
        /// Values parallel to `indices`.
        values: Vec<Y>,
    },
    /// Shard → router: the sub-request failed. Fails only the tickets
    /// routed through this shard.
    Error {
        /// Echoed request id.
        request: u64,
        /// Failing shard.
        shard: usize,
        /// What went wrong (already plain data — its only payload is the
        /// `KernelFailed` message string).
        error: EngineError,
    },
}

impl<X: Scalar, Y: Scalar> ShardMsg<X, Y> {
    /// Packs a frontier slice for the wire (consumes the slice — the
    /// message owns its payload).
    pub fn frontier(
        request: u64,
        shard: usize,
        slice: SparseVec<X>,
        deadline_micros: Option<u64>,
    ) -> Self {
        let (len, indices, values) = slice.into_parts();
        ShardMsg::Frontier { request, shard, len, indices, values, deadline_micros }
    }

    /// Packs a shard's partial product.
    pub fn partial(request: u64, shard: usize, partial: SparseVec<Y>) -> Self {
        let (len, indices, values) = partial.into_parts();
        ShardMsg::Partial { request, shard, len, indices, values }
    }

    /// Packs a shard failure.
    pub fn error(request: u64, shard: usize, error: EngineError) -> Self {
        ShardMsg::Error { request, shard, error }
    }

    /// The request this message belongs to.
    pub fn request(&self) -> u64 {
        match self {
            ShardMsg::Frontier { request, .. }
            | ShardMsg::Partial { request, .. }
            | ShardMsg::Error { request, .. } => *request,
        }
    }

    /// The shard this message is addressed to (`Frontier`) or from
    /// (`Partial` / `Error`).
    pub fn shard(&self) -> usize {
        match self {
            ShardMsg::Frontier { shard, .. }
            | ShardMsg::Partial { shard, .. }
            | ShardMsg::Error { shard, .. } => *shard,
        }
    }

    /// Unpacks a `Frontier` payload back into a local sparse vector (the
    /// shard side of the protocol). `None` for other variants.
    pub fn into_frontier(self) -> Option<SparseVec<X>> {
        match self {
            ShardMsg::Frontier { len, indices, values, .. } => {
                Some(SparseVec::from_parts(len, indices, values).expect("slice was a valid vector"))
            }
            _ => None,
        }
    }

    /// Unpacks the router side of the protocol: `Ok(partial)` for a
    /// `Partial`, `Err(error)` for an `Error`. `None` for a `Frontier`.
    pub fn into_result(self) -> Option<Result<SparseVec<Y>, EngineError>> {
        match self {
            ShardMsg::Partial { len, indices, values, .. } => {
                Some(Ok(SparseVec::from_parts(len, indices, values)
                    .expect("partial was a valid vector")))
            }
            ShardMsg::Error { error, .. } => Some(Err(error)),
            ShardMsg::Frontier { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_roundtrips_through_plain_parts() {
        let slice = SparseVec::from_pairs(5, vec![(1, 2.0), (4, 8.0)]).unwrap();
        let msg: ShardMsg<f64, f64> = ShardMsg::frontier(7, 2, slice.clone(), Some(1500));
        assert_eq!(msg.request(), 7);
        assert_eq!(msg.shard(), 2);
        match &msg {
            ShardMsg::Frontier { len, deadline_micros, .. } => {
                assert_eq!(*len, 5);
                assert_eq!(*deadline_micros, Some(1500));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(msg.into_frontier(), Some(slice));
    }

    #[test]
    fn partial_and_error_unpack_as_results() {
        let partial = SparseVec::from_pairs(4, vec![(0, 1.0)]).unwrap();
        let ok: ShardMsg<f64, f64> = ShardMsg::partial(3, 1, partial.clone());
        assert_eq!(ok.into_result(), Some(Ok(partial)));
        let err: ShardMsg<f64, f64> =
            ShardMsg::error(3, 1, EngineError::KernelFailed("boom".into()));
        assert_eq!(err.request(), 3);
        assert_eq!(err.into_result(), Some(Err(EngineError::KernelFailed("boom".into()))));
        // A frontier is not a result, and vice versa.
        let f: ShardMsg<f64, f64> = ShardMsg::frontier(1, 0, SparseVec::new(2), None);
        assert!(f.into_result().is_none());
        let p: ShardMsg<f64, f64> = ShardMsg::partial(1, 0, SparseVec::new(2));
        assert!(p.into_frontier().is_none());
    }
}
