//! Column-range partition plans, balanced by nnz.
//!
//! CombBLAS splits a matrix 1D by giving every processor a contiguous range
//! of columns. Splitting by *width* (equal column counts) is trivially
//! unfair on power-law graphs — one hub column can carry more entries than
//! a thousand tail columns — so [`ShardPlan::balanced`] walks the CSC
//! `colptr` prefix sums and places each boundary where the *entry count*
//! crosses the next `total · s / shards` threshold instead.

use sparse_substrate::{CscMatrix, DcscMatrix, Scalar};

/// A 1D column partition: `shards + 1` non-decreasing boundaries over
/// `0..=ncols`. Shard `s` owns columns `[bounds[s], bounds[s + 1])`.
///
/// Construction never panics on degenerate inputs: an empty matrix yields a
/// single trivial shard, and a plan never has more shards than columns (nor
/// more shards than can each receive at least one column), so callers may
/// ask for "8 shards" of a 3-column matrix and get a valid 3-shard plan.
/// Plans may additionally carry one expected matrix [fingerprint] per shard
/// (see [`ShardPlan::with_fingerprints_of`]); the remote router checks them
/// against what each host advertises at dial time, so a misconfigured or
/// stale host is rejected before it can pollute a merge. Plans without
/// fingerprints skip that check (ranges and dimensions are always verified).
///
/// [fingerprint]: CscMatrix::fingerprint
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    ncols: usize,
    bounds: Vec<usize>,
    fingerprints: Option<Vec<u64>>,
}

impl ShardPlan {
    /// An nnz-balanced plan over `matrix` with at most `shards` shards.
    ///
    /// Boundaries are placed where the cumulative entry count crosses each
    /// `total · s / shards` threshold, then deduplicated: when the nnz mass
    /// is too concentrated to support `shards` distinct pieces (e.g. all
    /// entries in one column), the plan simply has fewer shards. `shards ==
    /// 0` is treated as 1.
    pub fn balanced<T: Scalar>(matrix: &CscMatrix<T>, shards: usize) -> ShardPlan {
        Self::from_prefix_nnz(matrix.ncols(), matrix.colptr(), shards)
    }

    /// [`ShardPlan::balanced`] for a hypersparse [`DcscMatrix`]: the prefix
    /// sums are reconstructed from the stored (non-empty) columns only, in
    /// `O(nzc)`, without materializing an `O(ncols)` `colptr`.
    pub fn balanced_dcsc<T: Scalar>(matrix: &DcscMatrix<T>, shards: usize) -> ShardPlan {
        // Cumulative nnz *after* each non-empty column, as (col_id, cum).
        let mut cum = 0usize;
        let marks: Vec<(usize, usize)> = matrix
            .iter_columns()
            .map(|(j, rows, _)| {
                cum += rows.len();
                (j, cum)
            })
            .collect();
        let total = cum;
        let shards = shards.max(1);
        if total == 0 {
            return Self::uniform(matrix.ncols(), shards);
        }
        let mut bounds = vec![0usize];
        for s in 1..shards {
            let target = total * s / shards;
            // First stored column whose cumulative count exceeds the target
            // is the largest valid boundary with ≤ target mass to its left —
            // the same cut `from_prefix_nnz` derives from a dense `colptr`.
            let cut =
                marks.iter().find(|&&(_, c)| c > target).map(|&(j, _)| j).unwrap_or(matrix.ncols());
            Self::push_bound(&mut bounds, cut, matrix.ncols());
        }
        Self::finish(bounds, matrix.ncols())
    }

    /// A width-balanced plan (equal column counts, ignoring nnz) — the
    /// baseline the nnz-balanced plan is measured against, and the fallback
    /// for matrices whose entry distribution is unknown.
    pub fn uniform(ncols: usize, shards: usize) -> ShardPlan {
        let shards = shards.max(1).min(ncols.max(1));
        let mut bounds = vec![0usize];
        for s in 1..shards {
            Self::push_bound(&mut bounds, s * ncols / shards, ncols);
        }
        Self::finish(bounds, ncols)
    }

    /// The balancing core, shared by CSC (whose `colptr` *is* the prefix-sum
    /// array) and any caller with cumulative per-column entry counts.
    /// `prefix` must have `ncols + 1` non-decreasing entries with
    /// `prefix[0] == 0`.
    pub fn from_prefix_nnz(ncols: usize, prefix: &[usize], shards: usize) -> ShardPlan {
        assert_eq!(prefix.len(), ncols + 1, "prefix sums must have ncols + 1 entries");
        let total = *prefix.last().expect("ncols + 1 >= 1 entries");
        let shards = shards.max(1);
        if total == 0 {
            // No mass to balance: fall back to width balance so an all-empty
            // (or entirely empty) matrix still spreads columns sensibly.
            return Self::uniform(ncols, shards);
        }
        let mut bounds = vec![0usize];
        for s in 1..shards {
            let target = total * s / shards;
            // partition_point: first column index whose cumulative nnz
            // exceeds the target — boundaries land between columns, never
            // splitting one column's entries.
            let cut = prefix.partition_point(|&c| c <= target).saturating_sub(1);
            Self::push_bound(&mut bounds, cut, ncols);
        }
        Self::finish(bounds, ncols)
    }

    /// Appends a candidate boundary, keeping bounds strictly increasing and
    /// inside `(last, ncols)`; unsatisfiable candidates are dropped (fewer
    /// shards), never clamped into overlap.
    fn push_bound(bounds: &mut Vec<usize>, cut: usize, ncols: usize) {
        let last = *bounds.last().expect("bounds start with 0");
        if cut > last && cut < ncols {
            bounds.push(cut);
        }
    }

    fn finish(mut bounds: Vec<usize>, ncols: usize) -> ShardPlan {
        bounds.push(ncols);
        ShardPlan { ncols, bounds, fingerprints: None }
    }

    /// Builds a plan from explicit boundaries. `bounds` must start at 0, end
    /// at `ncols`, and increase strictly in between (no empty shards).
    ///
    /// # Panics
    ///
    /// When the boundary list is not a valid strict partition.
    pub fn from_bounds(ncols: usize, bounds: Vec<usize>) -> ShardPlan {
        assert!(
            bounds.first() == Some(&0) && bounds.last() == Some(&ncols),
            "bounds must span 0..={ncols} (got {bounds:?})"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) || ncols == 0 && bounds.len() == 2,
            "bounds must be strictly increasing (got {bounds:?})"
        );
        ShardPlan { ncols, bounds, fingerprints: None }
    }

    /// Attaches the expected per-shard matrix fingerprints, computed from
    /// the full matrix by hashing each shard's column slice — exactly the
    /// digest a correctly-loaded [`ShardHost`](crate::net::ShardHost)
    /// advertises in its `Welcome`. A fingerprinted plan makes the remote
    /// dial handshake reject hosts whose slice structurally differs from
    /// what the router will merge against.
    ///
    /// # Panics
    ///
    /// When `matrix` does not have the plan's column count.
    pub fn with_fingerprints_of<T: Scalar>(self, matrix: &CscMatrix<T>) -> ShardPlan {
        assert_eq!(
            matrix.ncols(),
            self.ncols,
            "fingerprint matrix has {} columns, plan covers {}",
            matrix.ncols(),
            self.ncols
        );
        let fps = (0..self.num_shards()).map(|s| matrix.column_slice(self.range(s)).fingerprint());
        let fingerprints = Some(fps.collect());
        ShardPlan { fingerprints, ..self }
    }

    /// Attaches explicit per-shard fingerprints (one per shard), for callers
    /// that computed them out of band (e.g. from a manifest rather than the
    /// assembled matrix).
    ///
    /// # Panics
    ///
    /// When the list length does not match the shard count.
    pub fn with_fingerprints(self, fingerprints: Vec<u64>) -> ShardPlan {
        assert_eq!(
            fingerprints.len(),
            self.num_shards(),
            "expected {} fingerprints, got {}",
            self.num_shards(),
            fingerprints.len()
        );
        ShardPlan { fingerprints: Some(fingerprints), ..self }
    }

    /// The expected matrix fingerprint for shard `s`, when the plan carries
    /// fingerprints. `None` means "don't verify".
    pub fn fingerprint(&self, s: usize) -> Option<u64> {
        self.fingerprints.as_ref().map(|fps| fps[s])
    }

    /// Number of shards in the plan (≥ 1).
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total columns the plan partitions.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The boundary array: `num_shards() + 1` entries spanning `0..=ncols`.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// The column range shard `s` owns.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Which shard owns column `col`.
    ///
    /// # Panics
    ///
    /// When `col >= ncols`.
    pub fn owner(&self, col: usize) -> usize {
        assert!(col < self.ncols, "column {col} out of range for {} columns", self.ncols);
        self.bounds.partition_point(|&b| b <= col) - 1
    }
}

impl std::fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} shards over {} columns [", self.num_shards(), self.ncols)?;
        for (s, w) in self.bounds.windows(2).enumerate() {
            if s > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}..{}", w[0], w[1])?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, rmat, RmatParams};
    use sparse_substrate::CooMatrix;

    fn plan_nnz<T: Scalar>(a: &CscMatrix<T>, plan: &ShardPlan) -> Vec<usize> {
        (0..plan.num_shards()).map(|s| plan.range(s).map(|j| a.column_nnz(j)).sum()).collect()
    }

    fn assert_valid(plan: &ShardPlan, ncols: usize) {
        assert_eq!(plan.bounds().first(), Some(&0));
        assert_eq!(plan.bounds().last(), Some(&ncols));
        assert!(plan.num_shards() >= 1);
        assert!(plan.bounds().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn balanced_splits_follow_nnz_not_width() {
        // A power-law-ish matrix: the nnz-balanced plan must put far fewer
        // columns in the hub-heavy prefix than the uniform plan would.
        let a = rmat(10, 8, RmatParams::graph500(), 42);
        let plan = ShardPlan::balanced(&a, 4);
        assert_valid(&plan, a.ncols());
        let loads = plan_nnz(&a, &plan);
        let widest = loads.iter().max().unwrap();
        let uniform_loads = plan_nnz(&a, &ShardPlan::uniform(a.ncols(), 4));
        let uniform_widest = uniform_loads.iter().max().unwrap();
        assert!(
            widest <= uniform_widest,
            "nnz balance ({loads:?}) must not be worse than width balance ({uniform_loads:?})"
        );
        // No shard exceeds its fair share by more than one column's worth.
        let fair = a.nnz() / plan.num_shards();
        let max_col = a.max_column_degree();
        assert!(*widest <= fair + max_col, "widest {widest} vs fair {fair} + max col {max_col}");
    }

    #[test]
    fn owner_and_range_agree() {
        let a = erdos_renyi(100, 4.0, 7);
        let plan = ShardPlan::balanced(&a, 5);
        for col in 0..a.ncols() {
            let s = plan.owner(col);
            assert!(plan.range(s).contains(&col), "column {col} not in its owner's range");
        }
    }

    #[test]
    fn empty_matrix_yields_single_trivial_shard() {
        let a: CscMatrix<f64> = CscMatrix::empty(0, 0);
        let plan = ShardPlan::balanced(&a, 4);
        assert_valid(&plan, 0);
        assert_eq!(plan.num_shards(), 1);
        assert_eq!(plan.range(0), 0..0);
    }

    #[test]
    fn matrix_with_no_entries_balances_by_width() {
        let a: CscMatrix<f64> = CscMatrix::empty(6, 12);
        let plan = ShardPlan::balanced(&a, 3);
        assert_valid(&plan, 12);
        assert_eq!(plan.num_shards(), 3);
        assert_eq!(plan.bounds(), &[0, 4, 8, 12]);
    }

    #[test]
    fn all_nnz_in_one_column_collapses_to_fewer_shards() {
        // Every entry in column 2 of a 5-column matrix: no boundary can
        // separate the mass, so the plan must not panic and must stay valid.
        let mut coo = CooMatrix::new(8, 5);
        for i in 0..8 {
            coo.push(i, 2, 1.0);
        }
        let a = CscMatrix::from_coo(coo, |x, _| x);
        for shards in [1, 2, 3, 7] {
            let plan = ShardPlan::balanced(&a, shards);
            assert_valid(&plan, 5);
            assert!(plan.num_shards() <= shards.max(1));
            // Whatever the split, every entry is owned exactly once.
            assert_eq!(plan_nnz(&a, &plan).iter().sum::<usize>(), a.nnz());
        }
    }

    #[test]
    fn more_shards_than_columns_caps_at_columns() {
        let a = erdos_renyi(3, 2.0, 1);
        let plan = ShardPlan::balanced(&a, 16);
        assert_valid(&plan, 3);
        assert!(plan.num_shards() <= 3);
        let uniform = ShardPlan::uniform(3, 16);
        assert_eq!(uniform.num_shards(), 3);
    }

    #[test]
    fn zero_shards_is_treated_as_one() {
        let a = erdos_renyi(10, 2.0, 3);
        let plan = ShardPlan::balanced(&a, 0);
        assert_eq!(plan.num_shards(), 1);
        assert_eq!(plan.range(0), 0..10);
    }

    #[test]
    fn dcsc_plan_matches_csc_plan() {
        for seed in [3u64, 11, 29] {
            let a = rmat(8, 6, RmatParams::graph500(), seed);
            let d = DcscMatrix::from_csc(&a);
            for shards in [1, 2, 3, 7] {
                assert_eq!(
                    ShardPlan::balanced(&a, shards),
                    ShardPlan::balanced_dcsc(&d, shards),
                    "seed {seed}, {shards} shards"
                );
            }
        }
    }

    #[test]
    fn from_bounds_validates() {
        let plan = ShardPlan::from_bounds(10, vec![0, 4, 10]);
        assert_eq!(plan.num_shards(), 2);
        assert_eq!(plan.owner(4), 1);
        assert_eq!(plan.to_string(), "2 shards over 10 columns [0..4, 4..10]");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_bounds_rejects_empty_shards() {
        let _ = ShardPlan::from_bounds(10, vec![0, 4, 4, 10]);
    }

    #[test]
    fn fingerprints_match_per_shard_slices() {
        let a = rmat(8, 6, RmatParams::graph500(), 17);
        let plan = ShardPlan::balanced(&a, 3);
        assert_eq!(plan.fingerprint(0), None, "plain plans carry no fingerprints");
        let plan = plan.with_fingerprints_of(&a);
        for s in 0..plan.num_shards() {
            assert_eq!(
                plan.fingerprint(s),
                Some(a.column_slice(plan.range(s)).fingerprint()),
                "shard {s}"
            );
        }
        // Distinct shards of an rmat graph hash differently.
        assert_ne!(plan.fingerprint(0), plan.fingerprint(1));
    }
}
