//! Density-driven dispatch: pick the kernel family and SPA backend per call.
//!
//! The paper's central claim is *work-efficiency*: the bucket algorithm does
//! `O(flops)` work where SPA-based competitors pay `O(m)` (or `O(m·k)`
//! batched) for accumulator setup. Generation stamps already removed the
//! setup cost from every backend in this workspace, but the *constant
//! factors* still cross over with frontier density and batch width:
//!
//! * a dense `m × k` accumulator scatters over a working set proportional to
//!   `m · k` — cheap per touch, cache-hostile when the output is sparse;
//! * a hashed accumulator touches `O(flops)` memory — compact and
//!   cache-friendly for sparse outputs, but pays a probe per touch;
//! * index-major vs lane-major dense layouts trade merge locality (lanes of
//!   one row adjacent) against gather locality (rows of one lane adjacent);
//! * for `k = 1` the fused batch pipeline is pure overhead over the
//!   single-vector kernel, and for tiny frontiers the parallel pipeline is
//!   overhead over the sequential SPA.
//!
//! [`AdaptiveSpMSpV`] (single-vector) and [`AdaptiveBatch`] (batched) sit in
//! front of the fixed kernels and resolve these trade-offs per call from
//! `(frontier nnz, k, m, mask)`. The crossover constants live in
//! [`AdaptiveConfig`]: every field is optional, and unset fields fall back
//! to the **one-shot calibration pass** ([`calibration`]) — which today
//! derives the hashed-fill crossover from a dense-scatter vs hashed-probe
//! micro-benchmark and carries static, dev-container-measured defaults for
//! the rest — run at most once per process, and only if some field is
//! actually unset.
//!
//! Because every fixed kernel in this workspace reduces each `(row, lane)`
//! in ascending-column order and emits sorted lanes (under the default
//! options), the dispatcher's choice never changes the result — adaptive
//! output is bit-identical to whichever fixed configuration it delegates
//! to, which the property tests assert.

use std::sync::OnceLock;
use std::time::Instant;

use sparse_substrate::{CscMatrix, Scalar, Semiring, SpaBackend, SparseVec, SparseVecBatch};

use crate::algorithm::{AlgorithmKind, SpMSpV, SpMSpVOptions};
use crate::baselines::SequentialSpa;
use crate::batch::{
    BatchAlgorithmKind, BatchRunInfo, CombBlasSpaBatch, NaiveBatch, SpMSpVBatch, SpMSpVBucketBatch,
};
use crate::bucket::SpMSpVBucket;
use crate::masked::{BatchMaskView, MaskMode, MaskView};

/// Crossover constants for the adaptive dispatchers. Every field is
/// optional: `None` falls back to the one-shot [`calibration`] pass (see
/// [`AdaptiveConfig::resolve`]), `Some` pins the constant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptiveConfig {
    /// Single-vector: estimated flops at or below which the sequential SPA
    /// beats the parallel bucket pipeline's fixed costs.
    pub sequential_flops_cutoff: Option<usize>,
    /// Batched: widths `k` at or below this run as independent single-vector
    /// calls ([`NaiveBatch`]) — fusing one lane is pure overhead.
    pub naive_k_cutoff: Option<usize>,
    /// Batched, single-threaded: minimum width for the *wide-batch naive
    /// band* — at large `k`, per-lane single-vector calls keep every
    /// accumulator at `O(m)` instead of `O(m·k)`, which beats fusion for
    /// moderate per-lane work.
    pub naive_wide_min_k: Option<usize>,
    /// Batched, single-threaded: minimum estimated flops **per lane** for
    /// the wide-batch naive band (below it, `k` kernel launches dominate).
    pub naive_min_flops_per_lane: Option<usize>,
    /// Batched, single-threaded: fused-accumulator footprint `m·k` (slots)
    /// at or above which per-lane naive calls win outright — each lane's
    /// `O(m)` accumulator stays TLB/cache-friendly where one `O(m·k)`
    /// accumulator (any layout) scatters over tens of megabytes.
    pub fused_max_slots: Option<usize>,
    /// Batched: estimated flops at or below which (single-threaded) the
    /// one-pass row-split kernel beats the three-pass fused bucket pipeline.
    pub rowsplit_flops_cutoff: Option<usize>,
    /// Batched/single-vector, single-threaded: largest row count `m` at
    /// which a flat sequential SPA pass (row-split with one piece, or the
    /// sequential kernel) still wins for non-tiny frontiers — beyond it the
    /// `O(m)` accumulator's scatter is miss-dominated and the per-lane
    /// bucket kernel takes over.
    pub rowsplit_max_m: Option<usize>,
    /// Backend: accumulator fill (`triples / (m·k)`, mask-adjusted) at or
    /// below which the hashed backend's compact working set beats dense
    /// direct addressing.
    pub hashed_max_fill: Option<f64>,
    /// Backend: minimum dense slot count `m·k` for the hashed backend to be
    /// considered at all — below it the dense accumulator fits cache-side
    /// working sets and direct addressing beats probing at any fill.
    pub hashed_min_slots: Option<usize>,
    /// Backend: minimum `k` for the lane-major dense layout to pay (below
    /// it, gather strides are short either way).
    pub lane_major_min_k: Option<usize>,
    /// Backend: maximum mean activations per fused column for lane-major
    /// (heavily shared columns favor index-major, whose `k` lane slots of
    /// one row share a cache line).
    pub lane_major_max_overlap: Option<f64>,
}

impl AdaptiveConfig {
    /// Builder-style setter for [`AdaptiveConfig::sequential_flops_cutoff`].
    pub fn sequential_flops_cutoff(mut self, flops: usize) -> Self {
        self.sequential_flops_cutoff = Some(flops);
        self
    }

    /// Builder-style setter for [`AdaptiveConfig::naive_k_cutoff`].
    pub fn naive_k_cutoff(mut self, k: usize) -> Self {
        self.naive_k_cutoff = Some(k);
        self
    }

    /// Builder-style setter for [`AdaptiveConfig::naive_wide_min_k`].
    pub fn naive_wide_min_k(mut self, k: usize) -> Self {
        self.naive_wide_min_k = Some(k);
        self
    }

    /// Builder-style setter for
    /// [`AdaptiveConfig::naive_min_flops_per_lane`].
    pub fn naive_min_flops_per_lane(mut self, flops: usize) -> Self {
        self.naive_min_flops_per_lane = Some(flops);
        self
    }

    /// Builder-style setter for [`AdaptiveConfig::fused_max_slots`].
    pub fn fused_max_slots(mut self, slots: usize) -> Self {
        self.fused_max_slots = Some(slots);
        self
    }

    /// Builder-style setter for [`AdaptiveConfig::rowsplit_flops_cutoff`].
    pub fn rowsplit_flops_cutoff(mut self, flops: usize) -> Self {
        self.rowsplit_flops_cutoff = Some(flops);
        self
    }

    /// Builder-style setter for [`AdaptiveConfig::rowsplit_max_m`].
    pub fn rowsplit_max_m(mut self, m: usize) -> Self {
        self.rowsplit_max_m = Some(m);
        self
    }

    /// Builder-style setter for [`AdaptiveConfig::hashed_max_fill`].
    pub fn hashed_max_fill(mut self, fill: f64) -> Self {
        self.hashed_max_fill = Some(fill);
        self
    }

    /// Builder-style setter for [`AdaptiveConfig::hashed_min_slots`].
    pub fn hashed_min_slots(mut self, slots: usize) -> Self {
        self.hashed_min_slots = Some(slots);
        self
    }

    /// Builder-style setter for [`AdaptiveConfig::lane_major_min_k`].
    pub fn lane_major_min_k(mut self, k: usize) -> Self {
        self.lane_major_min_k = Some(k);
        self
    }

    /// Builder-style setter for [`AdaptiveConfig::lane_major_max_overlap`].
    pub fn lane_major_max_overlap(mut self, overlap: f64) -> Self {
        self.lane_major_max_overlap = Some(overlap);
        self
    }

    /// Fills the unset fields from the one-shot [`calibration`] pass and
    /// returns the concrete constants the dispatchers consult. The probe
    /// only runs (once per process) if a calibrated field is actually
    /// unset — a fully pinned config never pays for it.
    pub fn resolve(&self) -> ResolvedAdaptive {
        ResolvedAdaptive {
            sequential_flops_cutoff: self
                .sequential_flops_cutoff
                .unwrap_or_else(|| calibration().sequential_flops_cutoff),
            naive_k_cutoff: self.naive_k_cutoff.unwrap_or(1),
            naive_wide_min_k: self.naive_wide_min_k.unwrap_or(4),
            naive_min_flops_per_lane: self.naive_min_flops_per_lane.unwrap_or(512),
            fused_max_slots: self.fused_max_slots.unwrap_or(1 << 22),
            rowsplit_flops_cutoff: self
                .rowsplit_flops_cutoff
                .unwrap_or_else(|| calibration().rowsplit_flops_cutoff),
            rowsplit_max_m: self.rowsplit_max_m.unwrap_or(1 << 17),
            hashed_max_fill: self.hashed_max_fill.unwrap_or_else(|| calibration().hashed_max_fill),
            hashed_min_slots: self.hashed_min_slots.unwrap_or(1 << 21),
            lane_major_min_k: self.lane_major_min_k.unwrap_or(16),
            lane_major_max_overlap: self.lane_major_max_overlap.unwrap_or(1.5),
        }
    }
}

/// [`AdaptiveConfig`] with every constant resolved. See the field docs
/// there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedAdaptive {
    /// See [`AdaptiveConfig::sequential_flops_cutoff`].
    pub sequential_flops_cutoff: usize,
    /// See [`AdaptiveConfig::naive_k_cutoff`].
    pub naive_k_cutoff: usize,
    /// See [`AdaptiveConfig::naive_wide_min_k`].
    pub naive_wide_min_k: usize,
    /// See [`AdaptiveConfig::naive_min_flops_per_lane`].
    pub naive_min_flops_per_lane: usize,
    /// See [`AdaptiveConfig::fused_max_slots`].
    pub fused_max_slots: usize,
    /// See [`AdaptiveConfig::rowsplit_flops_cutoff`].
    pub rowsplit_flops_cutoff: usize,
    /// See [`AdaptiveConfig::rowsplit_max_m`].
    pub rowsplit_max_m: usize,
    /// See [`AdaptiveConfig::hashed_max_fill`].
    pub hashed_max_fill: f64,
    /// See [`AdaptiveConfig::hashed_min_slots`].
    pub hashed_min_slots: usize,
    /// See [`AdaptiveConfig::lane_major_min_k`].
    pub lane_major_min_k: usize,
    /// See [`AdaptiveConfig::lane_major_max_overlap`].
    pub lane_major_max_overlap: f64,
}

/// What the one-shot micro-probe measured on this machine.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Nanoseconds per dense generation-stamped scatter over a
    /// larger-than-cache footprint (the dense backend's sparse-output
    /// regime).
    pub dense_ns_per_op: f64,
    /// Nanoseconds per open-addressing probe-and-insert in a cache-resident
    /// table (the hashed backend's regime at low fill).
    pub hashed_ns_per_op: f64,
    /// Probe-derived [`ResolvedAdaptive::hashed_max_fill`] (the one
    /// constant the timing probe actually informs today).
    pub hashed_max_fill: f64,
    /// Static default for [`ResolvedAdaptive::sequential_flops_cutoff`]
    /// (measured once on the reference dev container, not probe-derived).
    pub sequential_flops_cutoff: usize,
    /// Static default for [`ResolvedAdaptive::rowsplit_flops_cutoff`]
    /// (measured once on the reference dev container, not probe-derived).
    pub rowsplit_flops_cutoff: usize,
}

/// The one-shot calibration pass: runs once per process (behind a
/// [`OnceLock`]), in well under a millisecond, and is only consulted for
/// [`AdaptiveConfig`] fields the caller left unset. It times
///
/// 1. a generation-stamped scatter over a dense footprint much larger than
///    cache (what the dense backends pay per triple when the output is
///    sparse relative to `m × k`), and
/// 2. a probe-and-insert loop in a small open-addressing table (what the
///    hashed backend pays per triple in the same regime),
///
/// then scales the default fill crossover by the measured cost ratio: the
/// cheaper hashing is relative to missy dense scatter on this machine, the
/// denser the accumulator may be while hashing still wins.
pub fn calibration() -> &'static Calibration {
    static CAL: OnceLock<Calibration> = OnceLock::new();
    CAL.get_or_init(|| {
        crate::obs::record_calibration();
        // 8 MiB of stamps + 8 MiB of values: larger than typical L2/L3
        // slices, so the dense probe is miss-dominated like the real
        // sparse-output regime.
        const DENSE_SLOTS: usize = 1 << 20;
        const HASH_CAP: usize = 1 << 14; // cache-resident, like a real table
        const OPS: usize = 1 << 15;
        const LCG_MUL: u64 = 6364136223846793005;
        const LCG_ADD: u64 = 1442695040888963407;

        let mut stamps = vec![0u64; DENSE_SLOTS];
        let mut values = vec![0u64; DENSE_SLOTS];
        let mut state = 0x9E37_79B9u64;
        let t0 = Instant::now();
        for op in 0..OPS {
            state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
            let s = (state >> 24) as usize & (DENSE_SLOTS - 1);
            if stamps[s] == 1 {
                values[s] = values[s].wrapping_add(op as u64);
            } else {
                stamps[s] = 1;
                values[s] = op as u64;
            }
        }
        let dense = t0.elapsed();
        std::hint::black_box(&values);

        let mut keys = vec![0u64; HASH_CAP];
        let mut hstamps = vec![0u64; HASH_CAP];
        let mut hvalues = vec![0u64; HASH_CAP];
        let mut state = 0x517C_C1B7u64;
        let t1 = Instant::now();
        for op in 0..OPS {
            state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
            // Keys drawn from half the table's capacity, so the load factor
            // stays ≤ ½ (like the real windows) and probes terminate.
            let key = (state >> 24) & (HASH_CAP as u64 / 2 - 1);
            let mut pos = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (HASH_CAP - 1);
            loop {
                if hstamps[pos] != 1 {
                    hstamps[pos] = 1;
                    keys[pos] = key;
                    hvalues[pos] = op as u64;
                    break;
                }
                if keys[pos] == key {
                    hvalues[pos] = hvalues[pos].wrapping_add(op as u64);
                    break;
                }
                pos = (pos + 1) & (HASH_CAP - 1);
            }
        }
        let hashed = t1.elapsed();
        std::hint::black_box(&hvalues);

        let dense_ns = (dense.as_nanos() as f64 / OPS as f64).max(0.01);
        let hashed_ns = (hashed.as_nanos() as f64 / OPS as f64).max(0.01);
        // Base crossover 1/32, scaled by how much cheaper (or dearer)
        // hashing is than missy dense scatter here, clamped to sane bounds.
        // The clamp ceiling is deliberately low: the probe overstates dense
        // misses because the real merge is already cache-blocked per bucket,
        // and `hashed_min_slots` separately keeps cache-resident dense
        // accumulators out of the hashed path entirely.
        let hashed_max_fill = (0.03125 * dense_ns / hashed_ns).clamp(1.0 / 128.0, 1.0 / 16.0);
        Calibration {
            dense_ns_per_op: dense_ns,
            hashed_ns_per_op: hashed_ns,
            hashed_max_fill,
            sequential_flops_cutoff: 256,
            // Measured on the dev container: with one worker the row-split
            // baseline degenerates to a single fused-SPA pass with none of
            // the bucket pipeline's fixed costs, and stays ahead of the
            // fused bucket kernel well past a million flops.
            rowsplit_flops_cutoff: 1 << 22,
        }
    })
}

/// Resolved thread count an options value implies (mirrors
/// [`crate::executor::Executor::new`] without building a pool).
fn resolved_threads(options: &SpMSpVOptions) -> usize {
    if options.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        options.threads
    }
}

/// Estimated multiplications for a frontier of `nnz` entries against
/// `matrix` (mean column degree × nnz — exact counting would cost a pass
/// over the frontier, which dispatch must not). Shared with the kernels'
/// `SpaBackend::Auto` paths so every dispatch site uses one estimator.
pub(crate) fn estimated_flops<A: Scalar>(matrix: &CscMatrix<A>, nnz: usize) -> usize {
    let cols = matrix.ncols().max(1);
    nnz.saturating_mul(matrix.nnz()) / cols
}

/// Picks the SPA backend for one batched merge, from the **exact** triple
/// count the estimate pass produced, the accumulator shape, the fused
/// input's column-sharing profile, and the mask's keep fraction (masked-out
/// triples never occupy a slot, so the effective fill is lower).
pub fn choose_backend(
    triples: usize,
    m: usize,
    k: usize,
    fused_cols: usize,
    activations: usize,
    keep_fraction: f64,
    cfg: &ResolvedAdaptive,
) -> SpaBackend {
    let slots = (m * k).max(1);
    let fill = (triples as f64 * keep_fraction.clamp(0.0, 1.0)) / slots as f64;
    if slots >= cfg.hashed_min_slots && fill <= cfg.hashed_max_fill {
        return SpaBackend::Hashed;
    }
    let overlap = activations as f64 / fused_cols.max(1) as f64;
    if k >= cfg.lane_major_min_k && overlap <= cfg.lane_major_max_overlap {
        return SpaBackend::DenseLaneMajor;
    }
    SpaBackend::DenseIndexMajor
}

/// The fraction of `(row, lane)` slots a mask lets through — `1.0` when
/// unmasked, the mean keep probability otherwise.
pub(crate) fn keep_fraction(mask: Option<&BatchMaskView<'_>>) -> f64 {
    let of_view = |view: &MaskView<'_>| {
        let len = view.bits().len().max(1) as f64;
        let set = view.bits().count() as f64;
        match view.mode() {
            MaskMode::Keep => set / len,
            MaskMode::Complement => 1.0 - set / len,
        }
    };
    match mask {
        None => 1.0,
        Some(BatchMaskView::Shared(view)) => of_view(view),
        Some(BatchMaskView::PerLane { masks, mode }) => {
            if masks.is_empty() {
                return 1.0;
            }
            let sum: f64 =
                masks.iter().map(|bits| of_view(&MaskView::new(bits.as_ref(), *mode))).sum();
            sum / masks.len() as f64
        }
    }
}

/// [`AlgorithmKind::Adaptive`]: dispatches each single-vector call between
/// the parallel bucket kernel and the sequential SPA from the frontier's
/// estimated flops. Both delegates are instantiated lazily and keep their
/// workspaces across calls, exactly like a fixed-family descriptor.
///
/// The sequential delegate is only eligible when it is bit-compatible with
/// the bucket kernel's reduction order (sorted input under sorted output,
/// or unsorted output), so switching families mid-traversal never changes a
/// result.
pub struct AdaptiveSpMSpV<'a, A, X, S: Semiring<A, X>> {
    matrix: &'a CscMatrix<A>,
    options: SpMSpVOptions,
    resolved: ResolvedAdaptive,
    threads: usize,
    bucket: Option<SpMSpVBucket<'a, A, X, S>>,
    sequential: Option<SequentialSpa<'a, A, S::Output>>,
    last: Option<AlgorithmKind>,
}

impl<'a, A, X, S> AdaptiveSpMSpV<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    /// Prepares the dispatcher (no kernel is instantiated until the first
    /// call needs it).
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        let resolved = options.adaptive.resolve();
        let threads = resolved_threads(&options);
        AdaptiveSpMSpV {
            matrix,
            options,
            resolved,
            threads,
            bucket: None,
            sequential: None,
            last: None,
        }
    }

    /// The fixed family the most recent call delegated to (`None` before
    /// the first call).
    pub fn last_choice(&self) -> Option<AlgorithmKind> {
        self.last
    }

    fn choose(&self, x: &SparseVec<X>) -> AlgorithmKind {
        let flops = estimated_flops(self.matrix, x.nnz());
        // The sequential SPA accumulates in the frontier's storage order;
        // the bucket kernel accumulates in ascending-column order. They are
        // bit-identical only when those coincide.
        let order_compatible = !self.options.sorted_output || x.is_sorted();
        // With one worker the parallel pipeline's fixed costs never pay
        // until the working set outgrows a single SPA pass, so the
        // single-thread cutoff is the (much larger) row-split one — but
        // only while m is small enough that the flat O(m) SPA's scatter
        // stays cache-friendly.
        let cutoff = if self.threads == 1 && self.matrix.nrows() <= self.resolved.rowsplit_max_m {
            self.resolved.sequential_flops_cutoff.max(self.resolved.rowsplit_flops_cutoff)
        } else {
            self.resolved.sequential_flops_cutoff
        };
        if order_compatible && flops <= cutoff {
            AlgorithmKind::Sequential
        } else {
            AlgorithmKind::Bucket
        }
    }
}

impl<'a, A, X, S> SpMSpV<A, X, S> for AdaptiveSpMSpV<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "Adaptive"
    }

    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn multiply(&mut self, x: &SparseVec<X>, semiring: &S) -> SparseVec<S::Output> {
        self.multiply_masked(x, semiring, None)
    }

    fn multiply_masked(
        &mut self,
        x: &SparseVec<X>,
        semiring: &S,
        mask: Option<MaskView<'_>>,
    ) -> SparseVec<S::Output> {
        let choice = self.choose(x);
        self.last = Some(choice);
        crate::obs::record_adaptive_single(choice);
        match choice {
            AlgorithmKind::Sequential => {
                let seq = self
                    .sequential
                    .get_or_insert_with(|| SequentialSpa::new(self.matrix, self.options.clone()));
                SpMSpV::<A, X, S>::multiply_masked(seq, x, semiring, mask)
            }
            _ => {
                let bucket = self
                    .bucket
                    .get_or_insert_with(|| SpMSpVBucket::new(self.matrix, self.options.clone()));
                bucket.multiply_masked(x, semiring, mask)
            }
        }
    }
}

/// [`BatchAlgorithmKind::Adaptive`]: dispatches each batched call between
/// the fused bucket kernel, the per-lane naive fallback, and the row-split
/// baseline from `(total nnz, k, m, threads)`; the SPA backend inside the
/// bucket delegate stays on [`SpaBackend::Auto`] unless the options pin it,
/// so family and backend adapt together. Delegates are lazy and keep their
/// workspaces across calls.
pub struct AdaptiveBatch<'a, A, X, S: Semiring<A, X>> {
    matrix: &'a CscMatrix<A>,
    options: SpMSpVOptions,
    resolved: ResolvedAdaptive,
    threads: usize,
    bucket: Option<SpMSpVBucketBatch<'a, A, X, S>>,
    naive: Option<NaiveBatch<'a, A, X, S>>,
    rowsplit: Option<CombBlasSpaBatch<'a, A, X, S>>,
    last: Option<BatchRunInfo>,
}

impl<'a, A, X, S> AdaptiveBatch<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    /// Prepares the dispatcher (no kernel is instantiated until the first
    /// call needs it).
    pub fn new(matrix: &'a CscMatrix<A>, options: SpMSpVOptions) -> Self {
        let resolved = options.adaptive.resolve();
        let threads = resolved_threads(&options);
        AdaptiveBatch {
            matrix,
            options,
            resolved,
            threads,
            bucket: None,
            naive: None,
            rowsplit: None,
            last: None,
        }
    }

    /// The fixed `(kernel, backend)` the most recent call delegated to
    /// (`None` before the first call).
    pub fn last_choice(&self) -> Option<BatchRunInfo> {
        self.last
    }

    /// The family a batch of this shape dispatches to (exposed so tests and
    /// the bench can compare the adaptive run against its delegate).
    pub fn choose(&self, total_nnz: usize, k: usize) -> BatchAlgorithmKind {
        let flops = estimated_flops(self.matrix, total_nnz);
        let r = &self.resolved;
        if self.threads == 1 && flops <= r.rowsplit_flops_cutoff {
            // Single-threaded regime, measured on the batch_scaling sweep
            // (see BENCH_batch_scaling.json). Per-lane naive calls win when
            // each lane carries enough work to amortize its kernel launch,
            // or when the fused accumulator's m·k footprint is so large
            // that any one-accumulator layout scatters over tens of
            // megabytes — per-lane O(m) accumulators stay TLB/cache
            // friendly. The single fused-SPA row-split pass (no estimate/
            // bucket/gather costs, no multi-piece duplication) takes what
            // is left, provided m itself is small enough that its flat
            // scatter is not miss-dominated — past that, naive again.
            let per_lane = flops / k.max(1);
            if k >= r.naive_wide_min_k && per_lane >= r.naive_min_flops_per_lane {
                return BatchAlgorithmKind::Naive;
            }
            if self.matrix.nrows().saturating_mul(k) >= r.fused_max_slots {
                return BatchAlgorithmKind::Naive;
            }
            if self.matrix.nrows() <= r.rowsplit_max_m || per_lane <= r.sequential_flops_cutoff {
                return BatchAlgorithmKind::CombBlasRowSplit;
            }
            return BatchAlgorithmKind::Naive;
        }
        if k <= r.naive_k_cutoff {
            return BatchAlgorithmKind::Naive;
        }
        // Past the single-pass cutoff (or with real parallelism) bulk work
        // amortizes the fused accumulator — the bucket pipeline's cache-
        // blocked merge is built for exactly this regime, so the footprint
        // rule above deliberately does not extend here.
        BatchAlgorithmKind::Bucket
    }
}

impl<'a, A, X, S> SpMSpVBatch<A, X, S> for AdaptiveBatch<'a, A, X, S>
where
    A: Scalar,
    X: Scalar,
    S: Semiring<A, X>,
{
    fn name(&self) -> &'static str {
        "Adaptive-batch"
    }

    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn multiply_batch(&mut self, x: &SparseVecBatch<X>, semiring: &S) -> SparseVecBatch<S::Output> {
        self.multiply_batch_masked(x, semiring, None)
    }

    fn multiply_batch_masked(
        &mut self,
        x: &SparseVecBatch<X>,
        semiring: &S,
        mask: Option<&BatchMaskView<'_>>,
    ) -> SparseVecBatch<S::Output> {
        let kernel = self.choose(x.total_nnz(), x.k());
        crate::obs::record_adaptive_batch_kernel(kernel);
        let (y, info) = match kernel {
            BatchAlgorithmKind::Naive => {
                let naive = self
                    .naive
                    .get_or_insert_with(|| NaiveBatch::new(self.matrix, self.options.clone()));
                let y = naive.multiply_batch_masked(x, semiring, mask);
                (y, naive.last_run_info())
            }
            BatchAlgorithmKind::CombBlasRowSplit => {
                let rowsplit = self.rowsplit.get_or_insert_with(|| {
                    CombBlasSpaBatch::new(self.matrix, self.options.clone())
                });
                let y = rowsplit.multiply_batch_masked(x, semiring, mask);
                (y, rowsplit.last_run_info())
            }
            _ => {
                let bucket = self.bucket.get_or_insert_with(|| {
                    SpMSpVBucketBatch::new(self.matrix, self.options.clone())
                });
                let y = bucket.multiply_batch_masked(x, semiring, mask);
                (y, bucket.last_run_info())
            }
        };
        if info.is_some() {
            self.last = info;
        }
        y
    }

    fn last_run_info(&self) -> Option<BatchRunInfo> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
    use sparse_substrate::ops::spmspv_reference;
    use sparse_substrate::PlusTimes;

    #[test]
    fn calibration_is_sane_and_cached() {
        let c1 = calibration();
        let c2 = calibration();
        assert!(std::ptr::eq(c1, c2), "calibration must run once");
        assert!(c1.dense_ns_per_op > 0.0 && c1.hashed_ns_per_op > 0.0);
        assert!((1.0 / 128.0..=0.25).contains(&c1.hashed_max_fill));
    }

    #[test]
    fn config_overrides_beat_calibration() {
        let r = AdaptiveConfig::default()
            .hashed_max_fill(0.125)
            .hashed_min_slots(9)
            .sequential_flops_cutoff(7)
            .naive_k_cutoff(2)
            .rowsplit_flops_cutoff(11)
            .lane_major_min_k(3)
            .lane_major_max_overlap(2.0)
            .resolve();
        assert_eq!(r.hashed_max_fill, 0.125);
        assert_eq!(r.hashed_min_slots, 9);
        assert_eq!(r.sequential_flops_cutoff, 7);
        assert_eq!(r.naive_k_cutoff, 2);
        assert_eq!(r.rowsplit_flops_cutoff, 11);
        assert_eq!(r.lane_major_min_k, 3);
        assert_eq!(r.lane_major_max_overlap, 2.0);
        // Unset fields come from calibration / static defaults.
        let d = AdaptiveConfig::default().resolve();
        assert_eq!(d.naive_k_cutoff, 1);
        assert_eq!(d.hashed_min_slots, 1 << 21);
        assert_eq!(d.fused_max_slots, 1 << 22);
        assert_eq!(d.rowsplit_max_m, 1 << 17);
        assert_eq!(d.hashed_max_fill, calibration().hashed_max_fill);
    }

    #[test]
    fn backend_choice_follows_fill_k_and_overlap() {
        let cfg = AdaptiveConfig::default()
            .hashed_max_fill(1.0 / 32.0)
            .hashed_min_slots(1)
            .lane_major_min_k(16)
            .lane_major_max_overlap(1.5)
            .resolve();
        // Sparse output → hashed.
        assert_eq!(choose_backend(100, 10_000, 32, 90, 100, 1.0, &cfg), SpaBackend::Hashed);
        // Dense output, wide batch, disjoint lanes → lane-major.
        assert_eq!(
            choose_backend(50_000, 10_000, 32, 45_000, 50_000, 1.0, &cfg),
            SpaBackend::DenseLaneMajor
        );
        // Dense output, heavy column sharing → index-major.
        assert_eq!(
            choose_backend(50_000, 10_000, 32, 5_000, 50_000, 1.0, &cfg),
            SpaBackend::DenseIndexMajor
        );
        // Narrow batch never goes lane-major.
        assert_eq!(
            choose_backend(50_000, 10_000, 4, 45_000, 50_000, 1.0, &cfg),
            SpaBackend::DenseIndexMajor
        );
        // A selective keep-mask reduces effective fill into hashed range.
        assert_eq!(
            choose_backend(50_000, 10_000, 32, 45_000, 50_000, 0.01, &cfg),
            SpaBackend::Hashed
        );
    }

    #[test]
    fn single_adaptive_matches_its_delegates() {
        let a = erdos_renyi(300, 6.0, 5);
        let opts = SpMSpVOptions::with_threads(2)
            .adaptive(AdaptiveConfig::default().sequential_flops_cutoff(64));
        for nnz in [1usize, 4, 200] {
            let x = random_sparse_vec(300, nnz, 7 + nnz as u64).sorted();
            let mut adaptive: AdaptiveSpMSpV<'_, f64, f64, PlusTimes> =
                AdaptiveSpMSpV::new(&a, opts.clone());
            let y = adaptive.multiply(&x, &PlusTimes);
            let choice = adaptive.last_choice().expect("ran above");
            let mut fixed = crate::build_algorithm::<f64, f64, PlusTimes>(
                &a,
                choice,
                SpMSpVOptions::with_threads(2),
            );
            assert_eq!(y, fixed.multiply(&x, &PlusTimes), "adaptive ≠ its {choice} delegate");
            let expected = spmspv_reference(&a, &x, &PlusTimes);
            assert!(y.approx_same_entries(&expected, 1e-9));
        }
    }

    #[test]
    fn tiny_sorted_frontiers_go_sequential_big_ones_bucket() {
        let a = erdos_renyi(500, 8.0, 3);
        let opts = SpMSpVOptions::with_threads(4)
            .adaptive(AdaptiveConfig::default().sequential_flops_cutoff(32));
        let mut adaptive: AdaptiveSpMSpV<'_, f64, f64, PlusTimes> = AdaptiveSpMSpV::new(&a, opts);
        let tiny = random_sparse_vec(500, 2, 1).sorted();
        let _ = adaptive.multiply(&tiny, &PlusTimes);
        assert_eq!(adaptive.last_choice(), Some(AlgorithmKind::Sequential));
        let big = random_sparse_vec(500, 400, 2).sorted();
        let _ = adaptive.multiply(&big, &PlusTimes);
        assert_eq!(adaptive.last_choice(), Some(AlgorithmKind::Bucket));
        // Unsorted frontier under sorted output: reduction orders differ,
        // so the dispatcher must stay on the bucket kernel.
        let unsorted =
            sparse_substrate::SparseVec::from_pairs(500, vec![(9, 1.0), (2, 1.0), (5, 1.0)])
                .unwrap();
        assert!(!unsorted.is_sorted());
        let _ = adaptive.multiply(&unsorted, &PlusTimes);
        assert_eq!(adaptive.last_choice(), Some(AlgorithmKind::Bucket));
    }

    #[test]
    fn batch_adaptive_family_decision() {
        let a = erdos_renyi(400, 6.0, 9);
        let opts = SpMSpVOptions::with_threads(1)
            .adaptive(AdaptiveConfig::default().rowsplit_flops_cutoff(64));
        let adaptive: AdaptiveBatch<'_, f64, f64, PlusTimes> = AdaptiveBatch::new(&a, opts);
        assert_eq!(adaptive.choose(100, 1), BatchAlgorithmKind::Naive);
        assert_eq!(adaptive.choose(4, 8), BatchAlgorithmKind::CombBlasRowSplit);
        assert_eq!(adaptive.choose(1_000, 8), BatchAlgorithmKind::Bucket);
        // Wide-batch naive band: enough per-lane work, bounded total.
        let wide: AdaptiveBatch<'_, f64, f64, PlusTimes> =
            AdaptiveBatch::new(&a, SpMSpVOptions::with_threads(1));
        assert_eq!(wide.choose(1_600, 16), BatchAlgorithmKind::Naive);
        assert_eq!(wide.choose(64, 16), BatchAlgorithmKind::CombBlasRowSplit, "too little/lane");
        assert_eq!(wide.choose(1_600, 2), BatchAlgorithmKind::CombBlasRowSplit, "too narrow");
        // Multi-threaded: row-split duplicates work, never chosen.
        let opts = SpMSpVOptions::with_threads(4)
            .adaptive(AdaptiveConfig::default().rowsplit_flops_cutoff(64));
        let adaptive: AdaptiveBatch<'_, f64, f64, PlusTimes> = AdaptiveBatch::new(&a, opts);
        assert_eq!(adaptive.choose(4, 8), BatchAlgorithmKind::Bucket);
    }
}
