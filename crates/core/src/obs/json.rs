//! Minimal hand-rolled JSON value type (the workspace builds offline, so
//! there is no serde). Originally grown in `crates/bench` for machine-
//! readable reports; it lives here so [`crate::obs::Snapshot`] can export
//! itself without a bench dependency, and the bench crate re-exports it.

use std::time::Duration;

/// A JSON value for reports and observability snapshots. Build with the
/// constructors, serialize with [`Json::render`]; objects preserve
/// insertion order so reports diff cleanly across PRs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so counts render exactly).
    Int(i64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Microseconds of a [`Duration`] as a JSON number (the unit every
    /// timing in the reports uses).
    pub fn micros(d: Duration) -> Json {
        Json::Num(d.as_secs_f64() * 1e6)
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a decimal point / exponent, so the value
                    // stays a float on round-trip.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_every_variant() {
        let j = Json::obj([
            ("name", Json::str("batch_scaling")),
            ("smoke", Json::Bool(false)),
            ("k", Json::Int(64)),
            ("micros", Json::Num(12.5)),
            ("nan", Json::Num(f64::NAN)),
            ("none", Json::Null),
            ("tags", Json::Arr(vec![Json::str("a\"b"), Json::Int(-3)])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"batch_scaling","smoke":false,"k":64,"micros":12.5,"nan":null,"none":null,"tags":["a\"b",-3]}"#
        );
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(Json::str("a\nb\t\u{1}").render(), "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn json_micros_and_floats_round_trip_as_numbers() {
        assert_eq!(Json::micros(Duration::from_micros(250)).render(), "250.0");
        assert_eq!(Json::Num(3.0).render(), "3.0", "floats must keep a decimal point");
    }
}
