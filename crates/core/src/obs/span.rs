//! RAII phase timers: a [`Span`] measures wall-clock time from `enter` to
//! `stop` (or drop) and records the elapsed nanoseconds into a
//! [`Histogram`].

use std::time::{Duration, Instant};

use super::metrics::Histogram;

/// Times one pipeline phase into a histogram. Created with [`Span::enter`];
/// recording happens on [`Span::stop`] (which also hands back the elapsed
/// time, so callers can thread it into [`crate::timing::FlushTimings`]-style
/// accumulators) or on drop, whichever comes first — early returns and
/// unwinds still produce a sample.
#[must_use = "a Span records when stopped or dropped; binding it to `_` times nothing"]
pub struct Span<'a> {
    hist: Option<&'a Histogram>,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts timing into `hist`.
    #[inline]
    pub fn enter(hist: &'a Histogram) -> Span<'a> {
        Span { hist: Some(hist), start: Instant::now() }
    }

    /// Starts a disabled span: still measures (so [`Span::stop`] returns a
    /// real duration) but records nothing. Lets call sites keep one code
    /// path whether observability is on or off.
    #[inline]
    pub fn disabled() -> Span<'static> {
        Span { hist: None, start: Instant::now() }
    }

    /// Time elapsed so far, without ending the span.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span, records the sample, and returns the elapsed time.
    #[inline]
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if let Some(hist) = self.hist.take() {
            hist.record_duration(elapsed);
        }
        elapsed
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(hist) = self.hist.take() {
            hist.record_duration(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_records_exactly_once() {
        let h = Histogram::new();
        let span = Span::enter(&h);
        std::thread::sleep(Duration::from_millis(2));
        let d = span.stop();
        assert!(d >= Duration::from_millis(2));
        assert_eq!(h.count(), 1, "stop consumed the span; drop must not double-record");
        assert!(h.sum() >= 2_000_000);
    }

    #[test]
    fn drop_records_implicitly() {
        let h = Histogram::new();
        {
            let _span = Span::enter(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn disabled_span_measures_but_records_nothing() {
        let span = Span::disabled();
        let d = span.stop();
        assert!(d >= Duration::ZERO);
    }
}
