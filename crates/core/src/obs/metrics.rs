//! Atomic metric primitives: [`Counter`], [`Gauge`], and the log-linear
//! [`Histogram`]. All three are lock-free on the write path — a record is a
//! handful of `Relaxed` atomic operations — and readable at any time from
//! any thread. Readers see each atomic individually consistent but the set
//! is not snapshotted under a lock; a concurrent recorder can make `count`
//! and the bucket array disagree by the in-flight sample, which is fine for
//! observability.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An instantaneous level (queue depth, in-flight work, high-water marks).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Raises the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Lowers the level by `n`, saturating at zero (concurrent raisers and
    /// lowerers can interleave; a gauge must never wrap to `u64::MAX`).
    #[inline]
    pub fn sub(&self, n: u64) {
        if n != 0 {
            let _ = self.0.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
        }
    }

    /// Raises the level to `v` if it is above the current value
    /// (high-water-mark semantics).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Sub-bucket resolution: each power-of-two range splits into
/// `2^SUB_BITS = 16` linear sub-buckets, bounding the relative error of any
/// reconstructed value by `1/16` (midpoint representatives halve that).
const SUB_BITS: u32 = 4;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Values below `SUB_COUNT` get one exact bucket each (indices `0..16`);
/// each magnitude `m = 4..=63` above that contributes 16 buckets, so the
/// largest index is `16 + 59*16 + 15 = 975`.
pub const NUM_BUCKETS: usize = 976;

/// HDR-style log-linear histogram over `u64` values.
///
/// Recording is lock-free (five `Relaxed` atomic ops: bucket, count, sum,
/// min, max) and never allocates; the full `u64` range is covered by
/// [`NUM_BUCKETS`] buckets (~7.6 KiB). `sum`, `count`, `min`, and `max` are
/// exact; quantiles are estimated from bucket midpoints with relative error
/// bounded by `1/16` (exact for values below 16, and clamped into
/// `[min, max]` so single-value histograms report exactly).
///
/// The unit of recorded values is a convention of the metric name — see the
/// [`crate::obs`] module docs (registry histograms in this workspace record
/// nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            buckets.into_boxed_slice().try_into().expect("NUM_BUCKETS-sized allocation");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in: values below 16 map to themselves; a
    /// value with most-significant bit `m ≥ 4` maps to
    /// `16 + (m-4)·16 + ((v >> (m-4)) & 15)`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB_COUNT {
            v as usize
        } else {
            let m = 63 - v.leading_zeros();
            let shift = m - SUB_BITS;
            (SUB_COUNT as u32 + (m - SUB_BITS) * SUB_COUNT as u32) as usize
                + ((v >> shift) & (SUB_COUNT - 1)) as usize
        }
    }

    /// The inclusive `[lo, hi]` value range of bucket `idx`
    /// (the inverse of [`Histogram::bucket_index`]).
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        assert!(idx < NUM_BUCKETS, "bucket index {idx} out of range");
        if idx < SUB_COUNT as usize {
            (idx as u64, idx as u64)
        } else {
            let g = (idx - SUB_COUNT as usize) / SUB_COUNT as usize; // magnitude − SUB_BITS
            let s = ((idx - SUB_COUNT as usize) % SUB_COUNT as usize) as u64;
            let lo = (SUB_COUNT + s) << g;
            let width = 1u64 << g;
            (lo, lo + (width - 1))
        }
    }

    /// Records one value (lock-free, five `Relaxed` atomics).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`, ~584
    /// years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Exact sum of recorded values (wraps past `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Folds another histogram into this one (bucket-wise atomic adds), so
    /// per-thread histograms can be combined without locking.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Relaxed);
            if n != 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`): the midpoint of the
    /// bucket holding the nearest-rank sample, clamped into `[min, max]`.
    /// Relative error ≤ 1/16; exact when the histogram holds one distinct
    /// value or only values below 16. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of the histogram for quantile math, merging,
    /// and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u16, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Relaxed);
                (n != 0).then_some((i as u16, n))
            })
            .collect();
        // Recompute count from the buckets so the snapshot is internally
        // consistent even if a concurrent `record` raced us between loads.
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Relaxed) },
            max: self.max.load(Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`]: sparse non-empty buckets plus the
/// exact `count`/`sum`/`min`/`max`. Supports the same quantile math and
/// merging, and is what [`crate::obs::Snapshot`] exports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(bucket index, samples)`, ascending by index.
    pub buckets: Vec<(u16, u64)>,
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile; see [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the ceil(q·n)-th smallest sample, clamped to [1, n].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (lo, hi) = Histogram::bucket_bounds(idx as usize);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into this snapshot. Merging is commutative and
    /// associative: the result carries the union of the samples.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: Vec<(u16, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&p), None) => {
                    merged.push(p);
                    a.next();
                }
                (None, Some(&&p)) => {
                    merged.push(p);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "gauge saturates instead of wrapping");
        g.record_max(7);
        g.record_max(5);
        assert_eq!(g.get(), 7);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        for v in (0u64..4096).chain([u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1]) {
            let idx = Histogram::bucket_index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} not in [{lo}, {hi}] (idx {idx})");
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Bucket ranges tile the axis: each bucket starts where the previous
        // ended.
        for idx in 1..NUM_BUCKETS {
            let (_, prev_hi) = Histogram::bucket_bounds(idx - 1);
            let (lo, _) = Histogram::bucket_bounds(idx);
            assert_eq!(lo, prev_hi + 1, "seam between buckets {} and {idx}", idx - 1);
        }
    }

    #[test]
    fn exact_aggregates_survive_bucketing() {
        let h = Histogram::new();
        for v in [0u64, 1, 15, 16, 17, 1000, 123_456_789] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 123_457_838);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 123_456_789);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 37);
        }
        let mut last = 0;
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let e = h.quantile(q);
            assert!(e >= last, "quantiles must be monotone in q");
            assert!(e >= h.min() && e <= h.max());
            last = e;
        }
    }

    #[test]
    fn merge_combines_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(500);
        b.record(50_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 50_505);
        assert_eq!((a.min(), a.max()), (5, 50_000));
        let mut sa = a.snapshot();
        let direct = {
            let h = Histogram::new();
            for v in [5, 500, 50_000] {
                h.record(v);
            }
            h.snapshot()
        };
        assert_eq!(sa, direct);
        sa.merge(&HistogramSnapshot::default());
        assert_eq!(sa, direct, "merging an empty snapshot is a no-op");
    }
}
