//! Structured flush-level trace events and the bounded ring they live in.
//!
//! A [`TraceEvent`] is a cheap, allocation-light record of one serving-layer
//! decision: a flush starting, a group being fused, an adaptive choice, a
//! degrade retry, a failpoint firing. Events land in an [`EventRing`] — a
//! bounded FIFO that drops its oldest entries under pressure (the drop count
//! is reported, never hidden) and can sample (keep every Nth event) when a
//! deployment wants traces cheaper still.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::batch::{BatchAlgorithmKind, BatchRunInfo};

/// What happened. Variants mirror the serving stack's decision points; see
/// the [`crate::obs`] module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A flush drained the queue and started work.
    FlushBegin {
        /// Requests drained into this flush.
        requests: usize,
    },
    /// The coalescer fused one compatible group into a batch.
    GroupFused {
        /// Kernel family the group resolved to.
        kernel: BatchAlgorithmKind,
        /// Lanes fused into the batch.
        lanes: usize,
        /// Whether the group carries a mask.
        masked: bool,
        /// Request id of the group's first lane (ties the trace to tickets).
        first_id: u64,
    },
    /// The adaptive layer (or a fixed kernel's `Auto` backend) resolved a
    /// concrete `(kernel, backend)` pair.
    AdaptiveChoice(
        /// What executed.
        BatchRunInfo,
    ),
    /// A failed group was retried on the one-shot naive fallback.
    DegradeRetry {
        /// The kernel family that failed.
        from: BatchAlgorithmKind,
    },
    /// A kernel panicked or failed; the panic was contained.
    KernelFailure(
        /// The panic/error message.
        String,
    ),
    /// The overload policy took action at admission.
    Overload {
        /// Requests shed (oldest-first) to make room.
        shed: usize,
        /// Requests rejected outright.
        rejected: usize,
    },
    /// Lanes missed their deadline and were retired unserved.
    DeadlineExpired {
        /// Lanes whose deadline expired.
        lanes: usize,
    },
    /// An armed failpoint fired.
    FailpointHit(
        /// The failpoint site name.
        String,
    ),
    /// One traversal level completed (emitted by `multi_bfs`).
    Level {
        /// Level number (0-based).
        level: usize,
        /// Sources still active at this level.
        active_lanes: usize,
    },
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceKind::FlushBegin { requests } => write!(f, "flush.begin requests={requests}"),
            TraceKind::GroupFused { kernel, lanes, masked, first_id } => write!(
                f,
                "group.fused kernel={} lanes={lanes} masked={masked} first_id={first_id}",
                kernel.label()
            ),
            TraceKind::AdaptiveChoice(info) => write!(f, "adaptive.choice {info}"),
            TraceKind::DegradeRetry { from } => {
                write!(f, "degrade.retry from={}", from.label())
            }
            TraceKind::KernelFailure(msg) => write!(f, "kernel.failure {msg}"),
            TraceKind::Overload { shed, rejected } => {
                write!(f, "overload shed={shed} rejected={rejected}")
            }
            TraceKind::DeadlineExpired { lanes } => write!(f, "deadline.expired lanes={lanes}"),
            TraceKind::FailpointHit(site) => write!(f, "failpoint.hit site={site}"),
            TraceKind::Level { level, active_lanes } => {
                write!(f, "bfs.level level={level} active_lanes={active_lanes}")
            }
        }
    }
}

/// One entry in the trace ring.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number (counts every *offered* event, sampled-out
    /// ones included, so gaps reveal the sampling).
    pub seq: u64,
    /// Microseconds since the owning registry was created.
    pub micros: u64,
    /// What happened.
    pub kind: TraceKind,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>10}µs #{}] {}", self.micros, self.seq, self.kind)
    }
}

/// Bounded FIFO of trace events. Pushing is one sequence-number fetch-add
/// plus (for kept events) a short mutex hold; when the ring is full the
/// oldest event is evicted and counted in `dropped`.
#[derive(Debug)]
pub struct EventRing {
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    sample_every: usize,
    entries: Mutex<VecDeque<TraceEvent>>,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events, keeping every
    /// `sample_every`-th offered event (0/1 = keep all).
    pub fn new(capacity: usize, sample_every: usize) -> Self {
        EventRing {
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity,
            sample_every: sample_every.max(1),
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Offers an event at `micros` since registry start. Sampled-out events
    /// only pay the sequence fetch-add.
    pub fn push(&self, micros: u64, kind: TraceKind) {
        let seq = self.seq.fetch_add(1, Relaxed);
        if self.capacity == 0 || !seq.is_multiple_of(self.sample_every as u64) {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if entries.len() >= self.capacity {
            entries.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        entries.push_back(TraceEvent { seq, micros, kind });
    }

    /// Events currently in the ring, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted because the ring was full (sampled-out events are not
    /// drops — their sequence gaps document the sampling instead).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Total events ever offered (kept, sampled-out, and dropped alike).
    pub fn offered(&self) -> u64 {
        self.seq.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let ring = EventRing::new(2, 1);
        for i in 0..5usize {
            ring.push(i as u64, TraceKind::FlushBegin { requests: i });
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.offered(), 5);
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let ring = EventRing::new(64, 3);
        for i in 0..9usize {
            ring.push(0, TraceKind::FlushBegin { requests: i });
        }
        let seqs: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 3, 6]);
        assert_eq!(ring.dropped(), 0, "sampling is not dropping");
    }

    #[test]
    fn events_render_human_readable() {
        let e = TraceEvent {
            seq: 7,
            micros: 1234,
            kind: TraceKind::GroupFused {
                kernel: BatchAlgorithmKind::Bucket,
                lanes: 6,
                masked: true,
                first_id: 42,
            },
        };
        let s = e.to_string();
        assert!(s.contains("group.fused") && s.contains("lanes=6") && s.contains("#7"), "{s}");
    }
}
