//! Unified observability: a dependency-free metrics registry, RAII phase
//! spans, and a bounded structured-event ring for flush-level traces.
//!
//! The serving stack grew four disconnected telemetry surfaces —
//! [`crate::stats::EngineStats`], [`crate::timing::FlushTimings`], [`crate::ChoiceCounts`],
//! [`crate::BatchRunInfo`] — all manually threaded and none with
//! distributions. This module replaces the bookkeeping underneath them: the
//! engine records into a [`Registry`] of atomic [`Counter`]s, [`Gauge`]s,
//! and log-linear [`Histogram`]s, and `EngineStats` becomes a *view* over
//! that registry. The paper's own evaluation method (per-step breakdowns of
//! the SpMSpV pipeline) is mirrored by per-phase histograms for both the
//! kernel steps and the flush phases.
//!
//! Two registries exist:
//!
//! * **per-engine** — every [`crate::engine::Engine`] owns one (reachable
//!   via `Engine::obs()`); all `engine.*` metrics live there, so two engines
//!   in one process never mix their numbers;
//! * **process-global** — [`global()`]; kernel-, adaptive-, executor-, and
//!   failpoint-level metrics live there because those layers are shared
//!   below the engine boundary.
//!
//! # Metric taxonomy
//!
//! Histograms record **nanoseconds** unless noted; counters are unitless
//! event counts; gauges are instantaneous levels. `<kernel>` ranges over
//! `bucket` | `naive` | `rowsplit` (the fixed batch families, see
//! [`kernel_slug`]) and `<backend>` over `dense` | `lanemajor` | `hashed`
//! (the concrete SPA backends, see [`backend_slug`]).
//!
//! **Per-engine registry**
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `engine.requests` | counter | requests admitted by `submit` |
//! | `engine.retired` | counter | lanes retired unserved (deadline, shed, session close) |
//! | `engine.flushes` | counter | flushes that executed ≥ 1 batch |
//! | `engine.fused_batches` | counter | fused batches executed |
//! | `engine.lanes_executed` | counter | lanes across all fused batches |
//! | `engine.timeouts` | counter | lanes failed with `DeadlineExceeded` |
//! | `engine.rejected` | counter | admissions refused under `OverloadPolicy::Reject` |
//! | `engine.shed` | counter | queued lanes dropped under `OverloadPolicy::ShedOldest` |
//! | `engine.panics_recovered` | counter | kernel panics/failures contained by the flush |
//! | `engine.degraded_flushes` | counter | flushes that served a group via the naive degrade retry |
//! | `engine.choice.<kernel>.<backend>` | counter | lanes executed per resolved `(kernel, backend)` |
//! | `engine.queue.depth` | gauge | requests currently queued |
//! | `engine.widest_flush` | gauge | high-water mark of lanes in one flush |
//! | `engine.queue.wait` | histogram | ns from `submit` to flush drain, one sample per request |
//! | `engine.flush.assemble` | histogram | ns grouping + assembling frontiers (per flush segment) |
//! | `engine.flush.execute` | histogram | ns inside the batched kernel (per fused group) |
//! | `engine.flush.demux` | histogram | ns scattering lanes back to tickets (per fused group) |
//! | `engine.flush.recover` | histogram | ns in the naive degrade retry (only on failure) |
//!
//! **Per-router registry** (each [`crate::shard::ShardedEngine`] owns one,
//! reachable via `ShardedEngine::obs()`; `<s>` ranges over shard indices)
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `shard.requests` | counter | requests routed through the scatter path |
//! | `shard.flushes` | counter | router flushes that resolved ≥ 1 request |
//! | `shard.failed` | counter | tickets failed by a shard-side error |
//! | `shard.fanout` | histogram | owning shards per routed request (a count, not ns) |
//! | `shard.merge.time` | histogram | ns ⊕-merging partials, one sample per flush |
//! | `shard.queue_depth.<s>` | gauge | sub-requests queued in shard `s`'s engine |
//!
//! A router connected over sockets ([`crate::shard::ShardedEngine::connect`])
//! adds the transport family to the same registry:
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `net.bytes.out` | counter | wire bytes written (frontiers, flushes, goodbyes) |
//! | `net.bytes.in` | counter | wire bytes read (partials, errors, done frames) |
//! | `net.reconnects` | counter | successful re-dials after a connection loss |
//! | `net.connections` | gauge | replica connections currently established |
//! | `net.handshake.rejected` | counter | dials refused because the host's `Welcome` contradicts the plan |
//! | `net.health.probes` | counter | heartbeat pings + half-open re-dial probes issued |
//! | `net.health.failures` | counter | probes that found a replica dead or unreachable |
//! | `net.health.unhealthy` | gauge | replicas currently circuit-breaker-tripped |
//! | `net.encode.time` | histogram | ns encoding outbound frames, one sample per frame |
//! | `net.decode.time` | histogram | ns decoding inbound frames, one sample per frame |
//! | `net.rpc.time` | histogram | ns for one shard's full flush exchange (write → `Done`) |
//! | `shard.replica.failovers` | counter | batches re-sent to a sibling replica after a failed attempt |
//! | `shard.replica.quarantined` | counter | connections severed for a byzantine frame |
//! | `shard.replica.trips` | counter | circuit-breaker trips (threshold, byzantine, mismatch, heartbeat) |
//!
//! **Process-global registry** ([`global()`])
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `batch.estimate` | histogram | ns in the bucket kernel's estimate/plan step |
//! | `batch.bucketing` | histogram | ns scattering triples into buckets |
//! | `batch.merge` | histogram | ns merging buckets through the SPA backend |
//! | `batch.output` | histogram | ns emitting the output lanes |
//! | `batch.backend.<backend>` | counter | batched merges per concrete SPA backend |
//! | `adaptive.batch.<kernel>` | counter | batched calls per family the dispatcher chose |
//! | `adaptive.single.sequential` | counter | single-vector calls dispatched to the sequential SPA |
//! | `adaptive.single.bucket` | counter | single-vector calls dispatched to the bucket kernel |
//! | `adaptive.calibrations` | counter | one-shot calibration probes run (0 or 1 per process) |
//! | `executor.threads` | gauge | high-water mark of worker threads in any pool built |
//! | `executor.inflight` | gauge | `install`/`scope` calls currently inside a pool |
//! | `failpoint.hits` | counter | armed failpoints fired (only with the `failpoints` feature) |
//!
//! # Trace events
//!
//! [`TraceKind`] covers the serving stack's decision points: `flush.begin`,
//! `group.fused` (kernel, lanes, masked, first request id),
//! `adaptive.choice`, `degrade.retry`, `kernel.failure`, `overload`,
//! `deadline.expired`, `failpoint.hit`, and `bfs.level` (from
//! `multi_bfs`). Events carry a sequence number and microseconds since
//! registry creation, live in a bounded ring ([`ObsConfig::ring_capacity`]),
//! and can be sampled ([`ObsConfig::sample_every`]).
//!
//! # Overhead
//!
//! A histogram record is five `Relaxed` atomic ops; a counter bump is one;
//! a kept trace event is a fetch-add plus a short mutex hold on the ring.
//! With [`ObsConfig::disabled`] the engine skips histogram samples and
//! traces entirely but keeps its counters (they are single atomic adds and
//! [`crate::stats::EngineStats`] must stay exact); the global helpers become
//! one-load no-ops. The `batch_scaling` CI smoke holds the enabled/disabled
//! gap under 5%.
//!
//! # Export
//!
//! [`Registry::snapshot`] returns a plain-data [`Snapshot`]; `to_json`
//! renders the machine-readable form (validated in CI), `Display` renders a
//! human dashboard, and `merge` folds several snapshots (e.g. the global
//! and an engine's) into one report.
//!
//! ```
//! use spmspv::obs::{ObsConfig, Registry};
//!
//! let reg = Registry::new(ObsConfig::default());
//! reg.counter("demo.requests").add(3);
//! reg.histogram("demo.latency").record(1_500);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("demo.requests"), Some(3));
//! assert!(snap.to_json().render().contains("\"demo.latency\""));
//! ```

mod events;
pub mod json;
mod metrics;
mod span;

pub use events::{EventRing, TraceEvent, TraceKind};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use sparse_substrate::SpaBackend;

use crate::algorithm::AlgorithmKind;
use crate::batch::BatchAlgorithmKind;
use crate::timing::StepTimings;

/// Observability configuration: the off switch, trace sampling, and ring
/// sizing. Metrics themselves are cheap enough to have no knobs beyond
/// `enabled`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. Off: histogram samples and trace events are skipped
    /// (engine counters still run so [`crate::stats::EngineStats`] stays exact).
    pub enabled: bool,
    /// Keep every Nth trace event (0/1 = keep all). Metrics are never
    /// sampled.
    pub sample_every: usize,
    /// Bounded trace-ring capacity; the oldest events are evicted (and
    /// counted as dropped) under pressure.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { enabled: true, sample_every: 1, ring_capacity: 256 }
    }
}

impl ObsConfig {
    /// Everything off: no histogram samples, no traces.
    pub fn disabled() -> Self {
        ObsConfig { enabled: false, ..ObsConfig::default() }
    }

    /// Builder-style setter for [`ObsConfig::sample_every`].
    pub fn sample_every(mut self, n: usize) -> Self {
        self.sample_every = n;
        self
    }

    /// Builder-style setter for [`ObsConfig::ring_capacity`].
    pub fn ring_capacity(mut self, n: usize) -> Self {
        self.ring_capacity = n;
        self
    }
}

/// Short stable slug for a batch kernel family, used in metric names
/// (`engine.choice.<kernel>.<backend>`, `adaptive.batch.<kernel>`).
pub fn kernel_slug(kind: BatchAlgorithmKind) -> &'static str {
    match kind {
        BatchAlgorithmKind::Bucket => "bucket",
        BatchAlgorithmKind::Naive => "naive",
        BatchAlgorithmKind::CombBlasRowSplit => "rowsplit",
        BatchAlgorithmKind::Adaptive => "adaptive",
    }
}

/// Short stable slug for an SPA backend, used in metric names.
pub fn backend_slug(backend: SpaBackend) -> &'static str {
    match backend {
        SpaBackend::DenseIndexMajor => "dense",
        SpaBackend::DenseLaneMajor => "lanemajor",
        SpaBackend::Hashed => "hashed",
        SpaBackend::Auto => "auto",
    }
}

type Named<T> = Mutex<Vec<(String, Arc<T>)>>;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn get_or_create<T: Default>(table: &Named<T>, name: &str) -> Arc<T> {
    let mut table = lock(table);
    if let Some((_, v)) = table.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::<T>::default();
    table.push((name.to_string(), Arc::clone(&v)));
    v
}

/// A set of named metrics plus one trace ring. Handles returned by
/// [`Registry::counter`]/[`gauge`](Registry::gauge)/
/// [`histogram`](Registry::histogram) are `Arc`s: look them up once, record
/// through the handle lock-free forever after.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    config: ObsConfig,
    start: Instant,
    counters: Named<Counter>,
    gauges: Named<Gauge>,
    histograms: Named<Histogram>,
    ring: EventRing,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(ObsConfig::default())
    }
}

impl Registry {
    /// Creates a registry with the given configuration.
    pub fn new(config: ObsConfig) -> Self {
        Registry {
            enabled: AtomicBool::new(config.enabled),
            ring: EventRing::new(config.ring_capacity, config.sample_every),
            config,
            start: Instant::now(),
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
        }
    }

    /// The configuration this registry was built with.
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// Whether histogram samples and traces are being collected.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Flips collection at runtime (counters keep running either way).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Relaxed);
    }

    /// Returns (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// Returns (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// Returns (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Offers a trace event to the ring (no-op when disabled).
    pub fn trace(&self, kind: TraceKind) {
        if !self.enabled() {
            return;
        }
        let micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.ring.push(micros, kind);
    }

    /// Events currently in the trace ring, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.events()
    }

    /// A point-in-time copy of every metric and the trace ring.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock(&self.counters).iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            gauges: lock(&self.gauges).iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
            events: self.ring.events(),
            dropped_events: self.ring.dropped(),
        }
    }
}

/// The process-global registry: kernel-, adaptive-, executor-, and
/// failpoint-level metrics (everything below the per-engine boundary).
/// Built on first use with [`ObsConfig::default`]; flip collection with
/// [`Registry::set_enabled`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Plain-data copy of a [`Registry`] (and mergeable across registries).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` per counter, in creation order.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` per gauge, in creation order.
    pub gauges: Vec<(String, u64)>,
    /// `(name, data)` per histogram, in creation order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Trace-ring contents, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring under pressure.
    pub dropped_events: u64,
}

impl Snapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Level of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Data of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Folds `other` into this snapshot: counters add, gauges take the max,
    /// histograms merge, events concatenate (ordered by timestamp). Used to
    /// combine an engine's registry with [`global()`] into one report.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = (*mine).max(*v),
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.micros);
        self.dropped_events += other.dropped_events;
    }

    /// Machine-readable form (the shape CI validates): objects keyed by
    /// metric name, histograms expanded into exact aggregates plus
    /// p50/p90/p95/p99.
    pub fn to_json(&self) -> Json {
        let int = |v: u64| Json::Int(i64::try_from(v).unwrap_or(i64::MAX));
        let counters = Json::Obj(self.counters.iter().map(|(n, v)| (n.clone(), int(*v))).collect());
        let gauges = Json::Obj(self.gauges.iter().map(|(n, v)| (n.clone(), int(*v))).collect());
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(n, h)| {
                    (
                        n.clone(),
                        Json::obj([
                            ("count", int(h.count)),
                            ("sum", int(h.sum)),
                            ("min", int(h.min)),
                            ("max", int(h.max)),
                            ("mean", Json::Num(h.mean())),
                            ("p50", int(h.quantile(0.50))),
                            ("p90", int(h.quantile(0.90))),
                            ("p95", int(h.quantile(0.95))),
                            ("p99", int(h.quantile(0.99))),
                        ]),
                    )
                })
                .collect(),
        );
        let events = Json::Arr(
            self.events
                .iter()
                .map(|e| {
                    Json::obj([
                        ("seq", int(e.seq)),
                        ("micros", int(e.micros)),
                        ("what", Json::str(e.kind.to_string())),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
            ("events", events),
            ("dropped_events", int(self.dropped_events)),
        ])
    }
}

/// Renders a nanosecond quantity at human scale (`ns`/`µs`/`ms`/`s`).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.3}s", ns as f64 / 1e9),
    }
}

impl std::fmt::Display for Snapshot {
    /// The human dashboard: counters, gauges, histograms (treated as
    /// nanoseconds, the registry convention), and the trace tail.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name_w = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (n, v) in &self.counters {
                writeln!(f, "  {n:<name_w$}  {v:>12}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (n, v) in &self.gauges {
                writeln!(f, "  {n:<name_w$}  {v:>12}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "histograms (ns): {:>w$} {:>10} {:>10} {:>10} {:>10}",
                "count",
                "p50",
                "p95",
                "p99",
                "max",
                w = name_w.saturating_sub(5)
            )?;
            for (n, h) in &self.histograms {
                writeln!(
                    f,
                    "  {n:<name_w$}  {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.count,
                    fmt_ns(h.quantile(0.50)),
                    fmt_ns(h.quantile(0.95)),
                    fmt_ns(h.quantile(0.99)),
                    fmt_ns(h.max),
                )?;
            }
        }
        if !self.events.is_empty() || self.dropped_events > 0 {
            writeln!(f, "events ({} shown, {} dropped):", self.events.len(), self.dropped_events)?;
            for e in &self.events {
                writeln!(f, "  {e}")?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Cached hot-path helpers for the process-global registry. Each caches its
// Arc handles in a OnceLock so the steady-state cost is one enabled-load
// plus the atomic bumps themselves (the global registry never drops a
// handle, so the cache cannot go stale).

/// Records the bucket kernel's per-step breakdown into the `batch.*`
/// histograms (no-op when the global registry is disabled).
pub fn record_batch_phases(timings: &StepTimings) {
    let g = global();
    if !g.enabled() {
        return;
    }
    static H: OnceLock<[Arc<Histogram>; 4]> = OnceLock::new();
    let h = H.get_or_init(|| {
        ["batch.estimate", "batch.bucketing", "batch.merge", "batch.output"]
            .map(|name| g.histogram(name))
    });
    for (i, (_, d)) in timings.phases().iter().enumerate() {
        h[i].record_duration(*d);
    }
}

/// Counts a batched merge's concrete SPA backend (`batch.backend.<slug>`).
pub fn record_backend_choice(backend: SpaBackend) {
    let g = global();
    if !g.enabled() {
        return;
    }
    static C: OnceLock<[Arc<Counter>; 3]> = OnceLock::new();
    let c = C.get_or_init(|| {
        SpaBackend::concrete().map(|b| g.counter(&format!("batch.backend.{}", backend_slug(b))))
    });
    if let Some(i) = SpaBackend::concrete().iter().position(|b| *b == backend) {
        c[i].inc();
    }
}

/// Counts a batched adaptive dispatch decision (`adaptive.batch.<slug>`).
pub fn record_adaptive_batch_kernel(kind: BatchAlgorithmKind) {
    let g = global();
    if !g.enabled() {
        return;
    }
    static C: OnceLock<[Arc<Counter>; 3]> = OnceLock::new();
    let c = C.get_or_init(|| {
        BatchAlgorithmKind::fixed()
            .map(|k| g.counter(&format!("adaptive.batch.{}", kernel_slug(k))))
    });
    if let Some(i) = BatchAlgorithmKind::fixed().iter().position(|k| *k == kind) {
        c[i].inc();
    }
}

/// Counts a single-vector adaptive dispatch decision
/// (`adaptive.single.sequential` / `adaptive.single.bucket`).
pub fn record_adaptive_single(kind: AlgorithmKind) {
    let g = global();
    if !g.enabled() {
        return;
    }
    static C: OnceLock<[Arc<Counter>; 2]> = OnceLock::new();
    let c = C.get_or_init(|| {
        [g.counter("adaptive.single.sequential"), g.counter("adaptive.single.bucket")]
    });
    match kind {
        AlgorithmKind::Sequential => c[0].inc(),
        _ => c[1].inc(),
    }
}

/// Counts one run of the one-shot adaptive calibration probe.
pub fn record_calibration() {
    let g = global();
    if g.enabled() {
        g.counter("adaptive.calibrations").inc();
    }
}

/// The executor pool gauges: worker-thread high-water mark and in-flight
/// `install`/`scope` depth.
pub fn executor_gauges() -> (Arc<Gauge>, Arc<Gauge>) {
    static G: OnceLock<(Arc<Gauge>, Arc<Gauge>)> = OnceLock::new();
    let (threads, inflight) =
        G.get_or_init(|| (global().gauge("executor.threads"), global().gauge("executor.inflight")));
    (Arc::clone(threads), Arc::clone(inflight))
}

/// Records a fired failpoint: bumps `failpoint.hits` and traces the site.
#[cfg(feature = "failpoints")]
pub fn record_failpoint_hit(site: &str) {
    let g = global();
    if !g.enabled() {
        return;
    }
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| g.counter("failpoint.hits")).inc();
    g.trace(TraceKind::FailpointHit(site.to_string()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn registry_handles_are_shared_and_ordered() {
        let reg = Registry::new(ObsConfig::default());
        let a = reg.counter("z.second");
        let b = reg.counter("a.first");
        let a2 = reg.counter("z.second");
        assert!(Arc::ptr_eq(&a, &a2), "same name must return the same handle");
        a.add(2);
        b.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("z.second".into(), 2), ("a.first".into(), 1)]);
    }

    #[test]
    fn disabled_registry_skips_traces_but_counters_run() {
        let reg = Registry::new(ObsConfig::disabled());
        reg.counter("c").inc();
        reg.trace(TraceKind::FlushBegin { requests: 1 });
        assert!(!reg.enabled());
        assert_eq!(reg.snapshot().counter("c"), Some(1));
        assert!(reg.events().is_empty());
        reg.set_enabled(true);
        reg.trace(TraceKind::FlushBegin { requests: 2 });
        assert_eq!(reg.events().len(), 1);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_merges_histograms() {
        let a = Registry::new(ObsConfig::default());
        let b = Registry::new(ObsConfig::default());
        a.counter("shared").add(2);
        b.counter("shared").add(3);
        b.counter("only.b").inc();
        a.gauge("depth").set(5);
        b.gauge("depth").set(9);
        a.histogram("lat").record(100);
        b.histogram("lat").record(300);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("shared"), Some(5));
        assert_eq!(merged.counter("only.b"), Some(1));
        assert_eq!(merged.gauge("depth"), Some(9), "gauges merge by max");
        let h = merged.histogram("lat").unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 100, 300));
    }

    #[test]
    fn json_export_has_the_validated_shape() {
        let reg = Registry::new(ObsConfig::default());
        reg.counter("engine.requests").add(4);
        reg.histogram("engine.queue.wait").record(1000);
        reg.trace(TraceKind::DeadlineExpired { lanes: 2 });
        let rendered = reg.snapshot().to_json().render();
        for needle in [
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"events\"",
            "\"dropped_events\"",
            "\"engine.requests\":4",
            "\"p99\"",
            "deadline.expired",
        ] {
            assert!(rendered.contains(needle), "missing {needle} in {rendered}");
        }
    }

    #[test]
    fn dashboard_display_mentions_every_section() {
        let reg = Registry::new(ObsConfig::default());
        reg.counter("engine.requests").add(4);
        reg.gauge("engine.queue.depth").set(1);
        reg.histogram("engine.flush.execute").record_duration(Duration::from_micros(250));
        reg.trace(TraceKind::FlushBegin { requests: 4 });
        let text = reg.snapshot().to_string();
        for needle in ["counters:", "gauges:", "histograms", "events", "250.0µs", "flush.begin"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn slugs_cover_every_variant() {
        for k in BatchAlgorithmKind::all() {
            assert!(!kernel_slug(k).is_empty());
        }
        for b in SpaBackend::concrete() {
            assert_ne!(backend_slug(b), "auto");
        }
        assert_eq!(backend_slug(SpaBackend::Auto), "auto");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(2_500), "2.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.500s");
    }
}
