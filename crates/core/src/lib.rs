//! # spmspv
//!
//! A work-efficient parallel sparse matrix–sparse vector multiplication
//! library, reproducing *"A Work-Efficient Parallel Sparse Matrix-Sparse
//! Vector Multiplication Algorithm"* (Azad & Buluç, IPDPS 2017).
//!
//! The centerpiece is [`SpMSpVBucket`], the paper's three-step bucket
//! algorithm:
//!
//! 1. **Estimate** (Algorithm 2): count, per `(thread, bucket)` pair, how
//!    many scaled entries the thread will produce, so every thread gets an
//!    exclusive, pre-computed write window — no locks, no atomics.
//! 2. **Bucketing** (Step 1): scatter `(row, A(i,j) ⊗ x(j))` pairs from the
//!    selected matrix columns into row-range buckets.
//! 3. **SPA merge** (Step 2): merge each bucket independently with a
//!    partially-initialized sparse accumulator.
//! 4. **Output** (Step 3): concatenate the buckets' unique indices into the
//!    result vector with a prefix sum.
//!
//! The [`batch`] module extends the same machinery to sparse
//! *multi-vectors*: [`SpMSpVBucketBatch`] serves `k` frontiers (multi-source
//! BFS, batched personalized PageRank) with **one** traversal of the
//! matrix's column structure, against the [`NaiveBatch`] fallback of `k`
//! independent single-vector calls.
//!
//! The crate also contains faithful re-implementations of the baselines the
//! paper compares against — [`baselines::CombBlasSpa`],
//! [`baselines::CombBlasHeap`], [`baselines::GraphMatSpMSpV`],
//! [`baselines::SortBased`], and the sequential reference
//! [`baselines::SequentialSpa`] — all behind the common [`SpMSpV`] trait so
//! graph algorithms and benchmarks can swap them freely.
//!
//! ## Quick example
//!
//! ```
//! use sparse_substrate::{fixtures, PlusTimes};
//! use spmspv::{SpMSpV, SpMSpVBucket, SpMSpVOptions};
//!
//! let a = fixtures::figure1_matrix();
//! let x = fixtures::figure1_vector();
//! let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::default());
//! let y = alg.multiply(&x, &PlusTimes);
//! assert_eq!(y.nnz(), 5);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod algorithm;
pub mod baselines;
pub mod batch;
pub mod bucket;
pub mod disjoint;
pub mod executor;
pub mod masked;
pub mod stats;
pub mod timing;

pub use algorithm::{AlgorithmKind, SpMSpV, SpMSpVOptions};
pub use batch::{NaiveBatch, SpMSpVBatch, SpMSpVBucketBatch};
pub use bucket::SpMSpVBucket;
pub use executor::Executor;
pub use masked::{MaskMode, MaskedSpMSpV};
pub use stats::WorkStats;
pub use timing::StepTimings;
