//! # spmspv
//!
//! A work-efficient parallel sparse matrix–sparse vector multiplication
//! library, reproducing *"A Work-Efficient Parallel Sparse Matrix-Sparse
//! Vector Multiplication Algorithm"* (Azad & Buluç, IPDPS 2017).
//!
//! ## The `Mxv` operation API
//!
//! The front door of the crate is the [`ops::Mxv`] descriptor — **one**
//! GraphBLAS-style operation description that serves single vectors,
//! batches, and masks through the same object:
//!
//! ```
//! use sparse_substrate::{fixtures, PlusTimes, SparseVecBatch};
//! use spmspv::ops::Mxv;
//! use spmspv::{AlgorithmKind, MaskMode, SpMSpVOptions};
//!
//! let a = fixtures::figure1_matrix();
//! let x = fixtures::figure1_vector();
//!
//! let mut op = Mxv::over(&a)
//!     .semiring(&PlusTimes)                   // ⊕.⊗
//!     .algorithm(AlgorithmKind::Bucket)       // pluggable kernel family
//!     .masked(MaskMode::Complement)           // in-kernel output mask
//!     .options(SpMSpVOptions::default())
//!     .prepare();                             // workspaces allocated once
//!
//! let y = op.run(&x);                         // one frontier …
//! let ys = op.run_batch(&SparseVecBatch::from_single(&x)); // … or k at once
//! op.mask_mut().insert(3);                    // grow the visited set
//! # let _ = (y, ys);
//! ```
//!
//! Underneath, the descriptor drives the paper's three-step bucket
//! algorithm:
//!
//! 1. **Estimate** (Algorithm 2): count, per `(thread, bucket)` pair, how
//!    many scaled entries the thread will produce, so every thread gets an
//!    exclusive, pre-computed write window — no locks, no atomics.
//! 2. **Bucketing** (Step 1): scatter `(row, A(i,j) ⊗ x(j))` pairs from the
//!    selected matrix columns into row-range buckets.
//! 3. **SPA merge** (Step 2): merge each bucket independently with a
//!    partially-initialized sparse accumulator — and, when the descriptor is
//!    masked, drop masked-out rows *here*, before they cost anything more.
//! 4. **Output** (Step 3): concatenate the buckets' unique indices into the
//!    result vector with a prefix sum.
//!
//! The same descriptor executes batches through [`SpMSpVBucketBatch`]
//! (`k` frontiers in **one** traversal of the matrix's column structure) or
//! the [`NaiveBatch`] fallback, selected by [`batch::BatchAlgorithmKind`];
//! per-lane masks serve multi-source BFS, where every source keeps its own
//! visited set.
//!
//! ## Kernel layer
//!
//! The descriptor compiles down to two traits the benchmark harness and
//! power users can still drive directly:
//!
//! * [`SpMSpV`] — single-vector kernels: the paper's [`SpMSpVBucket`]
//!   plus faithful re-implementations of the baselines it compares against
//!   ([`baselines::CombBlasSpa`], [`baselines::CombBlasHeap`],
//!   [`baselines::GraphMatSpMSpV`], [`baselines::SortBased`],
//!   [`baselines::SequentialSpa`]);
//! * [`SpMSpVBatch`] — batched kernels ([`SpMSpVBucketBatch`],
//!   [`NaiveBatch`], [`CombBlasSpaBatch`]), merging through a pluggable
//!   [`SpaBackend`] (dense index-major, dense lane-major, or hashed
//!   accumulators — all generation-stamped, O(1) logical reset).
//!
//! `AlgorithmKind::Adaptive` / `BatchAlgorithmKind::Adaptive` (the
//! defaults) dispatch each call — see [`adaptive`] — to the fixed family
//! and backend a cost model predicts fastest for its shape; telemetry of
//! what was chosen flows through [`batch::BatchRunInfo`] and
//! [`stats::ChoiceCounts`].
//!
//! Both traits carry masked entry points (`multiply_masked`,
//! `multiply_batch_masked`) whose mask check lives **inside** each kernel's
//! merge loop; a default post-filtering implementation keeps third-party
//! implementations source-compatible.
//!
//! ## Migrating from the pre-`Mxv` entry points
//!
//! The deprecated shims of the previous release (`MaskedSpMSpV`,
//! `graphs::bfs_with`, `graphs::bfs_algorithm`, `graphs::numeric_algorithm`)
//! have been **removed**; the kernel traits themselves remain the supported
//! SPI beneath the descriptor.
//!
//! | removed / old | replacement |
//! |---|---|
//! | `SpMSpVBucket::new(&a, opts).multiply(&x, &s)` | `Mxv::over(&a).semiring(&s).options(opts).prepare().run(&x)` |
//! | `SpMSpVBucketBatch::new(&a, opts).multiply_batch(&xs, &s)` | `Mxv::over(&a).semiring(&s).options(opts).prepare().run_batch(&xs)` |
//! | `MaskedSpMSpV::new(alg, n, mode)` + `set`/`clear` | `Mxv::over(&a).semiring(&s).masked(mode)` + `mask_mut()` / `mask_clear()` |
//! | `graphs::bfs_algorithm(&a, kind, opts)` | `build_algorithm(&a, kind, opts)` (any semiring) |
//! | `graphs::numeric_algorithm(&a, kind, opts)` | `build_algorithm(&a, kind, opts)` |
//! | `graphs::bfs_with(&mut alg, &a, src)` | `graphs::bfs_prepared(&mut op, src)` on a `.masked(MaskMode::Complement)` descriptor |
//!
//! ## Serving many clients: the `engine` layer
//!
//! [`engine::Engine`] turns the descriptor into a serving front door: many
//! logical clients submit [`engine::MxvRequest`]s through
//! [`engine::Session`] handles, and a coalescer fuses compatible requests
//! into one batched multiplication per flush. The engine has full failure
//! semantics — per-request deadlines, [`engine::OverloadPolicy`] queue
//! policies, panic-isolated flushes with graceful degradation, and tickets
//! that always resolve (to a value or an [`engine::EngineError`], never a
//! hang). See the [`engine`] module docs; the [`failpoint`] module is the
//! deterministic fault-injection harness the chaos tests drive it with.
//!
//! ## Observability: the `obs` layer
//!
//! Everything above is instrumented through [`obs`]: each engine owns a
//! metrics [`Registry`] (atomic counters/gauges plus log-linear latency
//! histograms per flush phase and a structured trace ring), the kernel,
//! adaptive, executor, and failpoint layers record into the process-wide
//! [`obs::global`] registry, and [`stats::EngineStats`] is a *view* over
//! the engine's registry rather than parallel bookkeeping.
//! [`obs::Snapshot`] exports the whole thing as JSON or a human dashboard;
//! [`ObsConfig`] is the off switch. The module docs list every metric name
//! and its unit.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adaptive;
pub mod algorithm;
pub mod baselines;
pub mod batch;
pub mod bucket;
pub mod disjoint;
pub mod engine;
pub mod executor;
pub mod failpoint;
pub mod masked;
pub mod net;
pub mod obs;
pub mod ops;
pub mod shard;
pub mod stats;
pub mod timing;

pub use adaptive::{AdaptiveBatch, AdaptiveConfig, AdaptiveSpMSpV, ResolvedAdaptive};
pub use algorithm::{build_algorithm, AlgorithmKind, SpMSpV, SpMSpVOptions};
pub use batch::{
    build_batch_algorithm, BatchAlgorithmKind, BatchRunInfo, CombBlasSpaBatch, NaiveBatch,
    SpMSpVBatch, SpMSpVBucketBatch,
};
pub use bucket::SpMSpVBucket;
pub use engine::{Engine, EngineConfig, EngineError, MxvRequest, OverloadPolicy, Session, Ticket};
pub use executor::Executor;
pub use masked::{BatchMaskView, MaskMode, MaskView};
pub use net::{ShardHost, TcpConfig, TcpTransport};
pub use obs::{ObsConfig, Registry};
pub use ops::{Mxv, MxvOp, PreparedMxv};
pub use shard::{ShardFlushOutcome, ShardMsg, ShardPlan, ShardSession, ShardedEngine};
pub use sparse_substrate::SpaBackend;
pub use stats::{ChoiceCounts, WorkStats};
pub use timing::StepTimings;
