//! Lock-free disjoint writes into shared buffers.
//!
//! Step 1 of Algorithm 1 has every thread write scaled matrix entries into
//! shared per-bucket storage. The paper avoids synchronization by running
//! Algorithm 2 (`ESTIMATE-BUCKETS`) first: a `t × nb` count matrix plus a
//! prefix sum gives each thread an exclusive *write window* inside every
//! bucket, so writes can proceed without locks or atomics.
//!
//! [`DisjointWriter`] is the narrow unsafe primitive that expresses "many
//! threads write to statically disjoint positions of one buffer". All other
//! parallelism in the crate uses safe Rayon iterators or `split_at_mut`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

/// A shared, uninitialized buffer that multiple threads may fill
/// concurrently at **disjoint** positions.
///
/// # Safety contract
///
/// * Each index in `0..len` must be written by **at most one** thread over
///   the writer's lifetime (the SpMSpV-bucket algorithm writes each index
///   exactly once, at the offsets pre-computed by `ESTIMATE-BUCKETS`).
/// * [`DisjointWriter::assume_filled`] may only be called after every index
///   in `0..len` has been written and all writing threads have been joined
///   (the Rayon scope ending provides the necessary happens-before edge).
pub struct DisjointWriter<T> {
    buf: Vec<UnsafeCell<MaybeUninit<T>>>,
}

// SAFETY: the buffer is only accessed through `write` at caller-guaranteed
// disjoint indices, so concurrent shared access never aliases a slot.
unsafe impl<T: Send> Sync for DisjointWriter<T> {}
unsafe impl<T: Send> Send for DisjointWriter<T> {}

impl<T> DisjointWriter<T> {
    /// Allocates an uninitialized buffer of `len` slots.
    pub fn new(len: usize) -> Self {
        let mut buf = Vec::with_capacity(len);
        buf.resize_with(len, || UnsafeCell::new(MaybeUninit::uninit()));
        DisjointWriter { buf }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when the buffer has no slots.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes `value` into slot `idx`.
    ///
    /// # Safety
    ///
    /// `idx` must be in bounds and no other thread may ever write the same
    /// `idx` (see the type-level contract). The debug assertion catches the
    /// bounds half of the contract in test builds.
    #[inline]
    pub unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.buf.len(), "DisjointWriter index {idx} out of bounds");
        // SAFETY: caller guarantees exclusive access to this slot.
        unsafe {
            (*self.buf[idx].get()).write(value);
        }
    }

    /// Converts the buffer into an initialized `Vec<T>`.
    ///
    /// # Safety
    ///
    /// Every slot must have been written exactly once and all writers must
    /// have completed (happens-before established, e.g. by joining the
    /// threads or ending the parallel scope).
    pub unsafe fn assume_filled(self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.buf.len());
        for cell in self.buf {
            // SAFETY: caller guarantees the slot was initialized.
            out.push(unsafe { cell.into_inner().assume_init() });
        }
        out
    }
}

/// A borrowing variant of [`DisjointWriter`] over the *spare capacity* of a
/// reusable `Vec`, so the paper's "allocate the buckets once, reuse them for
/// every multiplication" optimization (§III-A, *Memory allocation*) carries
/// over: the backing `Vec<T>` lives in the algorithm's workspace and only
/// grows when a larger multiplication comes along.
///
/// # Safety contract
///
/// Same as [`DisjointWriter`]: each index written by at most one thread, and
/// the caller may only `Vec::set_len` after every index has been written and
/// the writers have been joined.
pub struct SliceWriter<'a, T> {
    ptr: *mut MaybeUninit<T>,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [MaybeUninit<T>]>,
}

// SAFETY: access is restricted to caller-guaranteed disjoint slots.
unsafe impl<T: Send> Sync for SliceWriter<'_, T> {}
unsafe impl<T: Send> Send for SliceWriter<'_, T> {}

impl<'a, T> SliceWriter<'a, T> {
    /// Wraps a spare-capacity slice (e.g. `vec.spare_capacity_mut()`).
    pub fn new(slice: &'a mut [MaybeUninit<T>]) -> Self {
        SliceWriter { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: std::marker::PhantomData }
    }

    /// Number of writable slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` into slot `idx`.
    ///
    /// # Safety
    ///
    /// `idx < len` and no other thread ever writes the same `idx`.
    #[inline]
    pub unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.len, "SliceWriter index {idx} out of bounds");
        // SAFETY: caller guarantees bounds and exclusivity.
        unsafe { (*self.ptr.add(idx)).write(value) };
    }
}

/// Splits a shared slice at the given boundary positions
/// (`boundaries[0] == 0`, last boundary == `slice.len()`). This is how both
/// bucket kernels carve the shared entry buffer into per-bucket views using
/// the `bucket_starts` prefix sums of their plan.
pub fn split_by_boundaries<'s, T>(slice: &'s [T], boundaries: &[usize]) -> Vec<&'s [T]> {
    boundaries.windows(2).map(|w| &slice[w[0]..w[1]]).collect()
}

/// Splits a mutable slice into the given consecutive, non-overlapping
/// ranges. The ranges must be sorted, contiguous from 0 and cover the whole
/// slice (exactly what bucket row-ranges and output windows look like), so
/// the split is expressible entirely in safe code via `split_at_mut`.
pub fn split_ranges<'a, T>(
    mut slice: &'a mut [T],
    ranges: &[std::ops::Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0usize;
    for r in ranges {
        assert_eq!(r.start, consumed, "ranges must be contiguous from 0");
        let (head, tail) = slice.split_at_mut(r.end - r.start);
        out.push(head);
        slice = tail;
        consumed = r.end;
    }
    assert!(slice.is_empty(), "ranges must cover the whole slice");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_threaded_fill_roundtrips() {
        let w = DisjointWriter::new(10);
        for i in 0..10 {
            unsafe { w.write(i, i * i) };
        }
        let v = unsafe { w.assume_filled() };
        assert_eq!(v, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_disjoint_writes_from_scoped_threads() {
        let n = 10_000;
        let w = DisjointWriter::new(n);
        std::thread::scope(|s| {
            let w = &w;
            for t in 0..4 {
                s.spawn(move || {
                    // Thread t writes indices congruent to t mod 4: disjoint.
                    let mut i = t;
                    while i < n {
                        unsafe { w.write(i, i as u64 * 3) };
                        i += 4;
                    }
                });
            }
        });
        let v = unsafe { w.assume_filled() };
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn empty_writer() {
        let w: DisjointWriter<u8> = DisjointWriter::new(0);
        assert!(w.is_empty());
        let v = unsafe { w.assume_filled() };
        assert!(v.is_empty());
    }

    #[test]
    fn slice_writer_fills_spare_capacity_of_reused_vec() {
        let mut buf: Vec<usize> = Vec::new();
        for round in 1..4usize {
            let total = round * 1000;
            buf.clear();
            buf.reserve(total);
            {
                let writer = SliceWriter::new(&mut buf.spare_capacity_mut()[..total]);
                std::thread::scope(|s| {
                    let w = &writer;
                    for t in 0..2 {
                        s.spawn(move || {
                            let mut i = t;
                            while i < total {
                                unsafe { w.write(i, i + round) };
                                i += 2;
                            }
                        });
                    }
                });
            }
            // SAFETY: every slot in 0..total was written above.
            unsafe { buf.set_len(total) };
            assert!(buf.iter().enumerate().all(|(i, &x)| x == i + round));
        }
    }

    #[test]
    fn split_ranges_gives_disjoint_mutable_views() {
        let mut data = vec![0u32; 10];
        let ranges = vec![0..3, 3..3, 3..10];
        let parts = split_ranges(&mut data, &ranges);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 3);
        assert_eq!(parts[1].len(), 0);
        assert_eq!(parts[2].len(), 7);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn split_ranges_rejects_gaps() {
        let mut data = vec![0u32; 5];
        let _ = split_ranges(&mut data, &[0..2, 3..5]);
    }

    #[test]
    #[should_panic(expected = "cover the whole slice")]
    fn split_ranges_rejects_short_coverage() {
        let mut data = vec![0u32; 5];
        let _ = split_ranges(&mut data, &[0..2, 2..4]);
    }
}
