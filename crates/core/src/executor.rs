//! Thread-pool management.
//!
//! The paper's experiments pin the number of OpenMP threads per run
//! (1, 2, 4, …, 24 on Edison; up to 64 on KNL). We mirror that with a
//! dedicated Rayon pool of exactly `threads` workers so strong-scaling
//! sweeps are meaningful and the per-thread `Boffset` table of Algorithm 2
//! has a fixed, known number of rows.

use std::sync::Arc;

/// A fixed-size thread pool shared by the SpMSpV algorithms.
#[derive(Clone)]
pub struct Executor {
    pool: Arc<rayon::ThreadPool>,
    threads: usize,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor").field("threads", &self.threads).finish()
    }
}

impl Executor {
    /// Creates an executor with exactly `threads` worker threads
    /// (`0` means "all logical CPUs").
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 { num_cpus() } else { threads };
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("spmspv-{i}"))
            .build()
            .expect("failed to build thread pool");
        crate::obs::executor_gauges().0.record_max(threads as u64);
        Executor { pool: Arc::new(pool), threads }
    }

    /// Number of worker threads (`t` in the paper's notation).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` inside the pool so nested Rayon parallelism uses exactly
    /// this pool's workers.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let _depth = InflightGuard::enter();
        self.pool.install(f)
    }

    /// Runs a scope inside the pool; used for the "one task per logical
    /// thread" pattern Algorithm 1/2 needs.
    pub fn scope<'scope, R: Send>(&self, f: impl FnOnce(&rayon::Scope<'scope>) -> R + Send) -> R {
        let _depth = InflightGuard::enter();
        self.pool.scope(f)
    }
}

/// Keeps the `executor.inflight` gauge equal to the number of
/// `install`/`scope` calls currently inside a pool — decrements on drop, so
/// an unwinding kernel cannot leave the gauge stuck high.
struct InflightGuard;

impl InflightGuard {
    fn enter() -> Self {
        crate::obs::executor_gauges().1.add(1);
        InflightGuard
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        crate::obs::executor_gauges().1.sub(1);
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(0)
    }
}

/// Number of logical CPUs visible to the process.
pub fn num_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Splits `0..len` into `pieces` contiguous ranges of near-equal size.
/// Piece `p` is `[bounds(p), bounds(p+1))`. Used to chunk the nonzeros of
/// `x` across threads and the rows of the matrix across buckets.
pub fn even_ranges(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    assert!(pieces > 0);
    (0..pieces).map(|p| (p * len / pieces)..((p + 1) * len / pieces)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_reports_thread_count() {
        let ex = Executor::new(3);
        assert_eq!(ex.threads(), 3);
        let ex0 = Executor::new(0);
        assert!(ex0.threads() >= 1);
    }

    #[test]
    fn install_runs_inside_the_pool() {
        let ex = Executor::new(2);
        let inside = ex.install(rayon::current_num_threads);
        assert_eq!(inside, 2);
    }

    #[test]
    fn even_ranges_cover_everything_without_overlap() {
        for len in [0usize, 1, 7, 100, 101] {
            for pieces in [1usize, 2, 3, 8] {
                let ranges = even_ranges(len, pieces);
                assert_eq!(ranges.len(), pieces);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges[pieces - 1].end, len);
            }
        }
    }

    #[test]
    fn scope_spawns_parallel_tasks() {
        let ex = Executor::new(4);
        let counter = std::sync::atomic::AtomicUsize::new(0);
        ex.scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 8);
    }
}
