//! Batch-scaling bench: how does per-lane SpMSpV cost change as the batch
//! width `k` grows?
//!
//! Sweeps `k ∈ {1, 4, 16, 64}` on a scale-free R-MAT graph, comparing
//!
//! * `SpMSpV-bucket-batch` — one fused traversal of the union of active
//!   columns per call, and
//! * `Naive-batch` — `k` independent `SpMSpVBucket` calls,
//!
//! both driven through the unified [`Mxv`] descriptor, and prints a per-lane
//! amortization table (total time / k) after the criterion groups, which is
//! the quantity that shows whether batching pays: the fused kernel's
//! per-lane time should *fall* with `k` while the naive baseline's stays
//! flat.
//!
//! A second sweep benchmarks the **masked** batch — the BFS shape
//! `frontier ∧ ¬visited`, with half the vertices already visited — in the
//! two ways the workspace can compute it:
//!
//! * in-kernel: the descriptor's mask is consulted during the SPA merge,
//! * post-filter: an unmasked product followed by a filtering pass
//!   (`mask_filter_batch`, the pre-`Mxv` strategy).
//!
//! The printed step timings of the in-kernel run show the mask's entire
//! cost sitting inside the `merge` phase — estimate + bucketing + merge +
//! output account for the whole call, i.e. no extra full-vector post-filter
//! pass runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use sparse_substrate::gen::{random_sparse_vec, rmat, RmatParams};
use sparse_substrate::{MaskBits, PlusTimes, SparseVec, SparseVecBatch};
use spmspv::batch::mask_filter_batch;
use spmspv::engine::{Engine, EngineConfig, MxvRequest};
use spmspv::ops::Mxv;
use spmspv::{
    BatchAlgorithmKind, BatchMaskView, MaskMode, MaskView, SpMSpVBucketBatch, SpMSpVOptions,
};

const KS: [usize; 4] = [1, 4, 16, 64];
const FRONTIER_NNZ: usize = 512;

fn make_batch(n: usize, k: usize) -> SparseVecBatch<f64> {
    let lanes: Vec<SparseVec<f64>> =
        (0..k).map(|l| random_sparse_vec(n, FRONTIER_NNZ, 1000 + l as u64)).collect();
    SparseVecBatch::from_lanes(&lanes).expect("lanes share n")
}

/// A "visited" set covering roughly half the vertices (multiplicative-hash
/// spread, so it is not correlated with vertex ids).
fn make_visited(n: usize) -> MaskBits {
    MaskBits::from_indices(n, (0..n).filter(|v| (v.wrapping_mul(2654435761) >> 4) % 2 == 0))
}

fn bench_batch_scaling(c: &mut Criterion) {
    let a = rmat(13, 12, RmatParams::graph500(), 7);
    let n = a.ncols();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);

    let mut group = c.benchmark_group("batch_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for &k in &KS {
        let x = make_batch(n, k);
        for kind in BatchAlgorithmKind::all() {
            let mut op = Mxv::over(&a)
                .semiring(&PlusTimes)
                .batch_algorithm(kind)
                .options(SpMSpVOptions::with_threads(threads))
                .prepare::<f64>();
            group.bench_with_input(BenchmarkId::new(kind.label(), k), &x, |b, x| {
                b.iter(|| op.run_batch(x))
            });
        }
    }
    group.finish();

    let visited = make_visited(n);
    let mut masked_group = c.benchmark_group("batch_scaling_masked");
    masked_group.sample_size(10);
    masked_group.measurement_time(Duration::from_secs(2));
    for &k in &KS {
        let x = make_batch(n, k);
        let mut op = Mxv::over(&a)
            .semiring(&PlusTimes)
            .mask(&visited, MaskMode::Complement)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        masked_group.bench_with_input(BenchmarkId::new("in-kernel-mask", k), &x, |b, x| {
            b.iter(|| op.run_batch(x))
        });
        let mut unmasked = Mxv::over(&a)
            .semiring(&PlusTimes)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        let view = BatchMaskView::Shared(MaskView::new(&visited, MaskMode::Complement));
        masked_group.bench_with_input(BenchmarkId::new("post-filter", k), &x, |b, x| {
            b.iter(|| mask_filter_batch(&unmasked.run_batch(x), &view))
        });
    }
    masked_group.finish();

    // Per-lane amortization table (the headline number of this bench).
    eprintln!("\nper-lane time (total / k), frontier nnz = {FRONTIER_NNZ}, {threads} threads:");
    eprintln!("{:>4}  {:>18}  {:>18}  {:>8}", "k", "bucket-batch/lane", "naive/lane", "speedup");
    for &k in &KS {
        let x = make_batch(n, k);
        let mut fused = Mxv::over(&a)
            .semiring(&PlusTimes)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        let mut naive = Mxv::over(&a)
            .semiring(&PlusTimes)
            .batch_algorithm(BatchAlgorithmKind::Naive)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        let fused_lane = time_per_lane(k, || {
            fused.run_batch(&x);
        });
        let naive_lane = time_per_lane(k, || {
            naive.run_batch(&x);
        });
        eprintln!(
            "{:>4}  {:>16.1}us  {:>16.1}us  {:>7.2}x",
            k,
            fused_lane.as_secs_f64() * 1e6,
            naive_lane.as_secs_f64() * 1e6,
            naive_lane.as_secs_f64() / fused_lane.as_secs_f64().max(f64::EPSILON),
        );
    }

    // Masked per-lane table: the BFS shape frontier ∧ ¬visited, in-kernel
    // mask vs the pre-`Mxv` post-filter strategy.
    let view = BatchMaskView::Shared(MaskView::new(&visited, MaskMode::Complement));
    eprintln!("\nmasked per-lane time (¬visited over {} of {} vertices):", visited.count(), n);
    eprintln!("{:>4}  {:>18}  {:>18}  {:>8}", "k", "in-kernel/lane", "post-filter/lane", "saved");
    for &k in &KS {
        let x = make_batch(n, k);
        let mut masked = Mxv::over(&a)
            .semiring(&PlusTimes)
            .mask(&visited, MaskMode::Complement)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        let mut unmasked = Mxv::over(&a)
            .semiring(&PlusTimes)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        let in_kernel_lane = time_per_lane(k, || {
            masked.run_batch(&x);
        });
        let post_filter_lane = time_per_lane(k, || {
            mask_filter_batch(&unmasked.run_batch(&x), &view);
        });
        eprintln!(
            "{:>4}  {:>16.1}us  {:>16.1}us  {:>7.2}x",
            k,
            in_kernel_lane.as_secs_f64() * 1e6,
            post_filter_lane.as_secs_f64() * 1e6,
            post_filter_lane.as_secs_f64() / in_kernel_lane.as_secs_f64().max(f64::EPSILON),
        );
    }

    // Step-timing evidence that the in-kernel mask adds no extra pass: the
    // four phases of the bucket pipeline account for the whole masked call
    // (the mask probe is part of `merge`).
    let k = *KS.last().expect("KS non-empty");
    let x = make_batch(n, k);
    let mut kernel = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(threads));
    let (_, timings) = kernel.multiply_batch_masked_with_timings(&x, &PlusTimes, Some(&view));
    eprintln!("\nmasked step breakdown at k = {k} (mask cost lives inside `merge`):");
    eprintln!("  {timings}");
    eprintln!(
        "  phases sum to {:.3} ms — there is no post-filter step to account for.",
        timings.total().as_secs_f64() * 1e3
    );

    // Serving-engine coalescing table — the front-door workload the engine
    // exists for: k concurrent clients each ask for one small frontier
    // expansion (personalized-PageRank seeds / BFS probes over a hot vertex
    // set, SEED_NNZ nonzeros each). One Engine flush (queue drain, grouping,
    // fused batch, ticket demux — everything the serving layer pays) versus
    // what those clients would do without the engine: each prepares its own
    // single-vector `Mxv` descriptor over the shared matrix (a `PreparedMxv`
    // is `&mut self` — independent clients cannot share one) and calls
    // `run`. The engine must win in TOTAL time for k ≥ 4: coalescing plus
    // workspace pooling has to beat not-batching even after the
    // queue/ticket bookkeeping.
    eprintln!(
        "\nengine coalescing (one flush of k seed requests, {SEED_NNZ} nnz each, vs k \
         independent Mxv::run calls):"
    );
    eprintln!("{:>4}  {:>16}  {:>18}  {:>8}", "k", "engine flush", "k independent runs", "speedup");
    for &k in &KS {
        let lanes = make_seed_requests(n, k);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default().max_lanes(0).options(SpMSpVOptions::with_threads(threads)),
        );
        let engine_total = median_time(|| {
            let tickets: Vec<_> =
                lanes.iter().map(|x| engine.submit(MxvRequest::new(x.clone()))).collect();
            engine.flush();
            for t in tickets {
                let _ = t.try_take().expect("flush serves every request");
            }
        });
        let single_total = median_time(|| {
            for x in &lanes {
                let mut single = Mxv::over(&a)
                    .semiring(&PlusTimes)
                    .options(SpMSpVOptions::with_threads(threads))
                    .prepare::<f64>();
                let _ = single.run(x);
            }
        });
        eprintln!(
            "{:>4}  {:>14.1}us  {:>16.1}us  {:>7.2}x",
            k,
            engine_total.as_secs_f64() * 1e6,
            single_total.as_secs_f64() * 1e6,
            single_total.as_secs_f64() / engine_total.as_secs_f64().max(f64::EPSILON),
        );
    }
    let stats_engine = Engine::over(&a, PlusTimes);
    let tickets: Vec<_> = make_seed_requests(n, 16)
        .iter()
        .map(|x| stats_engine.submit(MxvRequest::new(x.clone())))
        .collect();
    stats_engine.flush();
    drop(tickets);
    eprintln!("  telemetry of a 16-request flush: {}", stats_engine.stats());
}

/// Frontier size of one serving request — the personalized-PageRank /
/// BFS-probe shape: a handful of seed vertices, not a bulk frontier.
const SEED_NNZ: usize = 8;

/// `k` client frontiers of [`SEED_NNZ`] vertices drawn from a 256-vertex hot
/// set (zipfian-serving assumption: popular vertices recur across clients),
/// spread over the id space by a multiplicative hash.
fn make_seed_requests(n: usize, k: usize) -> Vec<SparseVec<f64>> {
    (0..k)
        .map(|l| {
            let mut idx: Vec<usize> = (0..SEED_NNZ)
                .map(|e| ((e * 2654435761 + l * 40503 + 977) % 256) * (n / 256) + 3)
                .collect();
            idx.sort_unstable();
            idx.dedup();
            SparseVec::from_pairs(n, idx.into_iter().map(|i| (i, 1.0)).collect())
                .expect("hot-set indices are in range")
        })
        .collect()
}

/// Median-of-7 wall time of `f`.
fn median_time(mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut samples: Vec<Duration> = (0..7)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median-of-7 wall time of `f`, divided by the lane count.
fn time_per_lane(k: usize, f: impl FnMut()) -> Duration {
    median_time(f) / k as u32
}

criterion_group!(benches, bench_batch_scaling);
criterion_main!(benches);
