//! Batch-scaling bench: how does per-lane SpMSpV cost change as the batch
//! width `k` grows?
//!
//! Sweeps `k ∈ {1, 4, 16, 64}` on a scale-free R-MAT graph, comparing
//!
//! * `SpMSpVBucketBatch` — one fused traversal of the union of active
//!   columns per call, and
//! * `Naive-batch` — `k` independent `SpMSpVBucket` calls,
//!
//! and prints a per-lane amortization table (total time / k) after the
//! criterion groups, which is the quantity that shows whether batching
//! pays: the fused kernel's per-lane time should *fall* with `k` while the
//! naive baseline's stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use sparse_substrate::gen::{random_sparse_vec, rmat, RmatParams};
use sparse_substrate::{PlusTimes, SparseVec, SparseVecBatch};
use spmspv::batch::{NaiveBatch, SpMSpVBatch, SpMSpVBucketBatch};
use spmspv::SpMSpVOptions;

const KS: [usize; 4] = [1, 4, 16, 64];
const FRONTIER_NNZ: usize = 512;

fn make_batch(n: usize, k: usize) -> SparseVecBatch<f64> {
    let lanes: Vec<SparseVec<f64>> =
        (0..k).map(|l| random_sparse_vec(n, FRONTIER_NNZ, 1000 + l as u64)).collect();
    SparseVecBatch::from_lanes(&lanes).expect("lanes share n")
}

fn bench_batch_scaling(c: &mut Criterion) {
    let a = rmat(13, 12, RmatParams::graph500(), 7);
    let n = a.ncols();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);

    let mut group = c.benchmark_group("batch_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for &k in &KS {
        let x = make_batch(n, k);
        let mut fused = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(threads));
        group.bench_with_input(BenchmarkId::new("SpMSpV-bucket-batch", k), &x, |b, x| {
            b.iter(|| fused.multiply_batch(x, &PlusTimes))
        });
        let mut naive = NaiveBatch::new(&a, SpMSpVOptions::with_threads(threads));
        group.bench_with_input(BenchmarkId::new("Naive-batch", k), &x, |b, x| {
            b.iter(|| naive.multiply_batch(x, &PlusTimes))
        });
    }
    group.finish();

    // Per-lane amortization table (the headline number of this bench).
    eprintln!("\nper-lane time (total / k), frontier nnz = {FRONTIER_NNZ}, {threads} threads:");
    eprintln!("{:>4}  {:>18}  {:>18}  {:>8}", "k", "bucket-batch/lane", "naive/lane", "speedup");
    for &k in &KS {
        let x = make_batch(n, k);
        let mut fused = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(threads));
        let mut naive = NaiveBatch::new(&a, SpMSpVOptions::with_threads(threads));
        let fused_lane = time_per_lane(k, || {
            fused.multiply_batch(&x, &PlusTimes);
        });
        let naive_lane = time_per_lane(k, || {
            naive.multiply_batch(&x, &PlusTimes);
        });
        eprintln!(
            "{:>4}  {:>16.1}us  {:>16.1}us  {:>7.2}x",
            k,
            fused_lane.as_secs_f64() * 1e6,
            naive_lane.as_secs_f64() * 1e6,
            naive_lane.as_secs_f64() / fused_lane.as_secs_f64().max(f64::EPSILON),
        );
    }
}

/// Median-of-7 wall time of `f`, divided by the lane count.
fn time_per_lane(k: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut samples: Vec<Duration> = (0..7)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] / k as u32
}

criterion_group!(benches, bench_batch_scaling);
criterion_main!(benches);
