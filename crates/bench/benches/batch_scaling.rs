//! Batch-scaling bench: how does per-lane SpMSpV cost change with batch
//! width `k` and frontier density — and does the adaptive dispatch pick the
//! winning configuration at every point?
//!
//! The headline artifact is **`BENCH_batch_scaling.json`** (written to the
//! workspace root, override with `BENCH_BATCH_SCALING_OUT`): a
//! `(k × frontier-nnz × family × SPA-backend)` sweep on a scale-free R-MAT
//! graph, with the `Adaptive` family's resolved `(kernel, backend)` choice
//! and its ratio against the best fixed configuration recorded per point.
//! The perf trajectory across PRs is tracked through this file; the CI
//! smoke lane (`BATCH_SCALING_SMOKE=1`) runs a reduced sweep and asserts
//! the report is produced and well-formed.
//!
//! Full mode additionally runs the criterion groups and the per-lane
//! amortization / masked / engine-coalescing tables of earlier PRs:
//!
//! * per-lane time (total / k): the fused kernel's per-lane time should
//!   *fall* with `k` while the naive baseline's stays flat;
//! * masked batch (the BFS shape `frontier ∧ ¬visited`): in-kernel mask vs
//!   the pre-`Mxv` post-filter strategy, plus step timings proving the mask
//!   adds no extra pass;
//! * serving-engine coalescing: one `Engine` flush of `k` seed requests vs
//!   `k` independent single-vector `Mxv::run` calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use sparse_substrate::gen::{random_sparse_vec, rmat, RmatParams};
use sparse_substrate::{MaskBits, PlusTimes, SparseVec, SparseVecBatch};
use spmspv::batch::mask_filter_batch;
use spmspv::engine::{Engine, EngineConfig, MxvRequest};
use spmspv::ops::Mxv;
use spmspv::{
    BatchAlgorithmKind, BatchMaskView, MaskMode, MaskView, SpMSpVBucketBatch, SpMSpVOptions,
    SpaBackend,
};
use spmspv_bench::Json;

const KS: [usize; 4] = [1, 4, 16, 64];
const FRONTIER_NNZ: usize = 512;

/// Frontier sizes of the density sweep: seed probes, mid frontiers, bulk
/// frontiers.
const SWEEP_NNZ: [usize; 3] = [8, 64, 512];

/// The fixed `(family, backend)` configurations the sweep compares the
/// adaptive dispatch against. Backend varies where it matters: the naive
/// family runs `k` single-vector kernels (plain per-row SPA), so only the
/// bucket and row-split families sweep accumulator backends.
const FIXED_CONFIGS: [(BatchAlgorithmKind, SpaBackend); 6] = [
    (BatchAlgorithmKind::Bucket, SpaBackend::DenseIndexMajor),
    (BatchAlgorithmKind::Bucket, SpaBackend::DenseLaneMajor),
    (BatchAlgorithmKind::Bucket, SpaBackend::Hashed),
    (BatchAlgorithmKind::Naive, SpaBackend::DenseIndexMajor),
    (BatchAlgorithmKind::CombBlasRowSplit, SpaBackend::DenseIndexMajor),
    (BatchAlgorithmKind::CombBlasRowSplit, SpaBackend::Hashed),
];

fn smoke_mode() -> bool {
    std::env::var_os("BATCH_SCALING_SMOKE").is_some()
}

fn make_batch_with(n: usize, k: usize, nnz: usize) -> SparseVecBatch<f64> {
    let lanes: Vec<SparseVec<f64>> =
        (0..k).map(|l| random_sparse_vec(n, nnz, 1000 + l as u64)).collect();
    SparseVecBatch::from_lanes(&lanes).expect("lanes share n")
}

fn make_batch(n: usize, k: usize) -> SparseVecBatch<f64> {
    make_batch_with(n, k, FRONTIER_NNZ)
}

/// A "visited" set covering roughly half the vertices (multiplicative-hash
/// spread, so it is not correlated with vertex ids).
fn make_visited(n: usize) -> MaskBits {
    MaskBits::from_indices(n, (0..n).filter(|v| (v.wrapping_mul(2654435761) >> 4) % 2 == 0))
}

/// One sweep cell: the timed configuration plus, for the adaptive run, what
/// it resolved to.
struct CellResult {
    family: BatchAlgorithmKind,
    backend: SpaBackend,
    time: Duration,
    chose: Option<(BatchAlgorithmKind, SpaBackend)>,
}

/// Times one `(family, backend)` configuration on one `(k, nnz)` point.
fn time_config(
    a: &sparse_substrate::CscMatrix<f64>,
    x: &SparseVecBatch<f64>,
    family: BatchAlgorithmKind,
    backend: SpaBackend,
    threads: usize,
) -> CellResult {
    let mut op = Mxv::over(a)
        .semiring(&PlusTimes)
        .batch_algorithm(family)
        .options(SpMSpVOptions::with_threads(threads).spa_backend(backend))
        .prepare::<f64>();
    let time = median_time(|| {
        op.run_batch(x);
    });
    let chose = (family == BatchAlgorithmKind::Adaptive)
        .then(|| op.last_batch_run_info().map(|info| (info.kernel, info.backend)))
        .flatten();
    CellResult { family, backend, time, chose }
}

/// The `(k × frontier-nnz × family × backend)` sweep: prints the adaptive
/// scoreboard and writes `BENCH_batch_scaling.json`.
fn sweep_and_report(smoke: bool) {
    // Full scale 18 (262k vertices): at k ≥ 16 the dense m × k accumulator
    // (≥ 64 MB of values + stamps) far outgrows cache, which is the regime
    // the hashed backend exists for; smoke stays small enough for CI.
    // Override with BATCH_SCALING_SCALE to probe other graph sizes.
    let (mut scale, edge_factor) = if smoke { (10u32, 8usize) } else { (18, 12) };
    if let Some(s) = std::env::var("BATCH_SCALING_SCALE").ok().and_then(|s| s.parse().ok()) {
        scale = s;
    }
    let a = rmat(scale, edge_factor, RmatParams::graph500(), 7);
    let n = a.ncols();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let ks: &[usize] = if smoke { &KS[..2] } else { &KS };
    let nnzs: &[usize] = if smoke { &SWEEP_NNZ[..2] } else { &SWEEP_NNZ };

    eprintln!(
        "\n== adaptive dispatch sweep (rmat scale {scale}, n = {n}, nnz(A) = {}, {threads} \
         threads{}) ==",
        a.nnz(),
        if smoke { ", SMOKE" } else { "" },
    );
    eprintln!(
        "{:>4} {:>6}  {:>12}  {:>28}  {:>12}  {:>9}",
        "k", "nnz", "adaptive", "chose (kernel/backend)", "best fixed", "adpt/best"
    );

    let mut points = Vec::new();
    for &k in ks {
        for &nnz in nnzs {
            let x = make_batch_with(n, k, nnz);
            let mut configs = Vec::new();
            let mut cells: Vec<CellResult> = FIXED_CONFIGS
                .iter()
                .map(|&(family, backend)| time_config(&a, &x, family, backend, threads))
                .collect();
            cells.push(time_config(
                &a,
                &x,
                BatchAlgorithmKind::Adaptive,
                SpaBackend::Auto,
                threads,
            ));
            let best_fixed = cells[..FIXED_CONFIGS.len()]
                .iter()
                .min_by_key(|c| c.time)
                .expect("fixed configs are non-empty");
            let (best_time, best_family, best_backend) =
                (best_fixed.time, best_fixed.family, best_fixed.backend);
            let adaptive = cells.last().expect("adaptive cell pushed above");
            let ratio = adaptive.time.as_secs_f64() / best_time.as_secs_f64().max(f64::EPSILON);
            let (chose_kernel, chose_backend) =
                adaptive.chose.expect("adaptive run records its resolution");
            eprintln!(
                "{:>4} {:>6}  {:>10.1}us  {:>28}  {:>10.1}us  {:>8.2}x",
                k,
                nnz,
                adaptive.time.as_secs_f64() * 1e6,
                format!("{}/{}", chose_kernel.label(), chose_backend.label()),
                best_time.as_secs_f64() * 1e6,
                ratio,
            );
            for cell in &cells {
                let mut obj = vec![
                    ("family", Json::str(cell.family.label())),
                    ("backend", Json::str(cell.backend.label())),
                    ("micros", Json::micros(cell.time)),
                ];
                if let Some((ck, cb)) = cell.chose {
                    obj.push(("chose_family", Json::str(ck.label())));
                    obj.push(("chose_backend", Json::str(cb.label())));
                }
                configs.push(Json::obj(obj));
            }
            points.push(Json::obj([
                ("k", Json::Int(k as i64)),
                ("frontier_nnz", Json::Int(nnz as i64)),
                ("configs", Json::Arr(configs)),
                ("best_fixed_family", Json::str(best_family.label())),
                ("best_fixed_backend", Json::str(best_backend.label())),
                ("best_fixed_micros", Json::micros(best_time)),
                ("adaptive_micros", Json::micros(adaptive.time)),
                ("adaptive_vs_best", Json::Num(ratio)),
            ]));
        }
    }

    let report = Json::obj([
        ("bench", Json::str("batch_scaling")),
        ("smoke", Json::Bool(smoke)),
        (
            "matrix",
            Json::obj([
                ("generator", Json::str("rmat-graph500")),
                ("scale", Json::Int(scale as i64)),
                ("edge_factor", Json::Int(edge_factor as i64)),
                ("n", Json::Int(n as i64)),
                ("nnz", Json::Int(a.nnz() as i64)),
            ]),
        ),
        ("threads", Json::Int(threads as i64)),
        ("points", Json::Arr(points)),
    ]);
    let path = std::env::var("BENCH_BATCH_SCALING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch_scaling.json").to_string()
    });
    std::fs::write(&path, report.render() + "\n").expect("write bench report");
    eprintln!("report written to {path}");
}

fn bench_batch_scaling(c: &mut Criterion) {
    if smoke_mode() {
        // CI smoke lane: only the sweep + JSON report, at reduced scale.
        sweep_and_report(true);
        return;
    }
    sweep_and_report(false);

    let a = rmat(13, 12, RmatParams::graph500(), 7);
    let n = a.ncols();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);

    let mut group = c.benchmark_group("batch_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for &k in &KS {
        let x = make_batch(n, k);
        for kind in BatchAlgorithmKind::all() {
            let mut op = Mxv::over(&a)
                .semiring(&PlusTimes)
                .batch_algorithm(kind)
                .options(SpMSpVOptions::with_threads(threads))
                .prepare::<f64>();
            group.bench_with_input(BenchmarkId::new(kind.label(), k), &x, |b, x| {
                b.iter(|| op.run_batch(x))
            });
        }
    }
    group.finish();

    let visited = make_visited(n);
    let mut masked_group = c.benchmark_group("batch_scaling_masked");
    masked_group.sample_size(10);
    masked_group.measurement_time(Duration::from_secs(2));
    for &k in &KS {
        let x = make_batch(n, k);
        let mut op = Mxv::over(&a)
            .semiring(&PlusTimes)
            .batch_algorithm(BatchAlgorithmKind::Bucket)
            .mask(&visited, MaskMode::Complement)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        masked_group.bench_with_input(BenchmarkId::new("in-kernel-mask", k), &x, |b, x| {
            b.iter(|| op.run_batch(x))
        });
        let mut unmasked = Mxv::over(&a)
            .semiring(&PlusTimes)
            .batch_algorithm(BatchAlgorithmKind::Bucket)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        let view = BatchMaskView::Shared(MaskView::new(&visited, MaskMode::Complement));
        masked_group.bench_with_input(BenchmarkId::new("post-filter", k), &x, |b, x| {
            b.iter(|| mask_filter_batch(&unmasked.run_batch(x), &view))
        });
    }
    masked_group.finish();

    // Per-lane amortization table (fused bucket vs naive, both pinned so
    // the adaptive default does not blur the comparison).
    eprintln!("\nper-lane time (total / k), frontier nnz = {FRONTIER_NNZ}, {threads} threads:");
    eprintln!("{:>4}  {:>18}  {:>18}  {:>8}", "k", "bucket-batch/lane", "naive/lane", "speedup");
    for &k in &KS {
        let x = make_batch(n, k);
        let mut fused = Mxv::over(&a)
            .semiring(&PlusTimes)
            .batch_algorithm(BatchAlgorithmKind::Bucket)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        let mut naive = Mxv::over(&a)
            .semiring(&PlusTimes)
            .batch_algorithm(BatchAlgorithmKind::Naive)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        let fused_lane = time_per_lane(k, || {
            fused.run_batch(&x);
        });
        let naive_lane = time_per_lane(k, || {
            naive.run_batch(&x);
        });
        eprintln!(
            "{:>4}  {:>16.1}us  {:>16.1}us  {:>7.2}x",
            k,
            fused_lane.as_secs_f64() * 1e6,
            naive_lane.as_secs_f64() * 1e6,
            naive_lane.as_secs_f64() / fused_lane.as_secs_f64().max(f64::EPSILON),
        );
    }

    // Masked per-lane table: the BFS shape frontier ∧ ¬visited, in-kernel
    // mask vs the pre-`Mxv` post-filter strategy.
    let view = BatchMaskView::Shared(MaskView::new(&visited, MaskMode::Complement));
    eprintln!("\nmasked per-lane time (¬visited over {} of {} vertices):", visited.count(), n);
    eprintln!("{:>4}  {:>18}  {:>18}  {:>8}", "k", "in-kernel/lane", "post-filter/lane", "saved");
    for &k in &KS {
        let x = make_batch(n, k);
        let mut masked = Mxv::over(&a)
            .semiring(&PlusTimes)
            .batch_algorithm(BatchAlgorithmKind::Bucket)
            .mask(&visited, MaskMode::Complement)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        let mut unmasked = Mxv::over(&a)
            .semiring(&PlusTimes)
            .batch_algorithm(BatchAlgorithmKind::Bucket)
            .options(SpMSpVOptions::with_threads(threads))
            .prepare::<f64>();
        let in_kernel_lane = time_per_lane(k, || {
            masked.run_batch(&x);
        });
        let post_filter_lane = time_per_lane(k, || {
            mask_filter_batch(&unmasked.run_batch(&x), &view);
        });
        eprintln!(
            "{:>4}  {:>16.1}us  {:>16.1}us  {:>7.2}x",
            k,
            in_kernel_lane.as_secs_f64() * 1e6,
            post_filter_lane.as_secs_f64() * 1e6,
            post_filter_lane.as_secs_f64() / in_kernel_lane.as_secs_f64().max(f64::EPSILON),
        );
    }

    // Step-timing evidence that the in-kernel mask adds no extra pass: the
    // four phases of the bucket pipeline account for the whole masked call
    // (the mask probe is part of `merge`).
    let k = *KS.last().expect("KS non-empty");
    let x = make_batch(n, k);
    let mut kernel = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(threads));
    let (_, timings) = kernel.multiply_batch_masked_with_timings(&x, &PlusTimes, Some(&view));
    eprintln!("\nmasked step breakdown at k = {k} (mask cost lives inside `merge`):");
    let backend = kernel.last_backend().expect("kernel ran above");
    eprintln!("  {timings} (backend: {backend})");
    eprintln!(
        "  phases sum to {:.3} ms — there is no post-filter step to account for.",
        timings.total().as_secs_f64() * 1e3
    );

    // Serving-engine coalescing table — the front-door workload the engine
    // exists for: k concurrent clients each ask for one small frontier
    // expansion (personalized-PageRank seeds / BFS probes over a hot vertex
    // set, SEED_NNZ nonzeros each). One Engine flush (queue drain, grouping,
    // fused batch, ticket demux — everything the serving layer pays) versus
    // what those clients would do without the engine: each prepares its own
    // single-vector `Mxv` descriptor over the shared matrix (a `PreparedMxv`
    // is `&mut self` — independent clients cannot share one) and calls
    // `run`. The engine must win in TOTAL time for k ≥ 4: coalescing plus
    // workspace pooling has to beat not-batching even after the
    // queue/ticket bookkeeping.
    eprintln!(
        "\nengine coalescing (one flush of k seed requests, {SEED_NNZ} nnz each, vs k \
         independent Mxv::run calls):"
    );
    eprintln!("{:>4}  {:>16}  {:>18}  {:>8}", "k", "engine flush", "k independent runs", "speedup");
    for &k in &KS {
        let lanes = make_seed_requests(n, k);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default().max_lanes(0).options(SpMSpVOptions::with_threads(threads)),
        );
        let engine_total = median_time(|| {
            let tickets: Vec<_> =
                lanes.iter().map(|x| engine.submit(MxvRequest::new(x.clone()))).collect();
            engine.flush();
            for t in tickets {
                let _ = t.try_take().expect("flush serves every request").expect("served");
            }
        });
        let single_total = median_time(|| {
            for x in &lanes {
                let mut single = Mxv::over(&a)
                    .semiring(&PlusTimes)
                    .options(SpMSpVOptions::with_threads(threads))
                    .prepare::<f64>();
                let _ = single.run(x);
            }
        });
        eprintln!(
            "{:>4}  {:>14.1}us  {:>16.1}us  {:>7.2}x",
            k,
            engine_total.as_secs_f64() * 1e6,
            single_total.as_secs_f64() * 1e6,
            single_total.as_secs_f64() / engine_total.as_secs_f64().max(f64::EPSILON),
        );
    }
    let stats_engine = Engine::over(&a, PlusTimes);
    let tickets: Vec<_> = make_seed_requests(n, 16)
        .iter()
        .map(|x| stats_engine.submit(MxvRequest::new(x.clone())))
        .collect();
    stats_engine.flush();
    drop(tickets);
    eprintln!("  telemetry of a 16-request flush: {}", stats_engine.stats());
}

/// Frontier size of one serving request — the personalized-PageRank /
/// BFS-probe shape: a handful of seed vertices, not a bulk frontier.
const SEED_NNZ: usize = 8;

/// `k` client frontiers of [`SEED_NNZ`] vertices drawn from a 256-vertex hot
/// set (zipfian-serving assumption: popular vertices recur across clients),
/// spread over the id space by a multiplicative hash.
fn make_seed_requests(n: usize, k: usize) -> Vec<SparseVec<f64>> {
    (0..k)
        .map(|l| {
            let mut idx: Vec<usize> = (0..SEED_NNZ)
                .map(|e| ((e * 2654435761 + l * 40503 + 977) % 256) * (n / 256) + 3)
                .collect();
            idx.sort_unstable();
            idx.dedup();
            SparseVec::from_pairs(n, idx.into_iter().map(|i| (i, 1.0)).collect())
                .expect("hot-set indices are in range")
        })
        .collect()
}

/// Median wall time of `f`: 7 samples for slow cells, 21 for sub-millisecond
/// ones (where scheduler jitter would otherwise dominate the medians the
/// adaptive-vs-best comparison rests on). The cell is classified by the
/// first *post-warm-up* sample — the warm-up call alone would overstate
/// cells whose first call pays a large one-time allocation.
fn median_time(mut f: impl FnMut()) -> Duration {
    f(); // warm-up (pays first-call allocation)
    let t = Instant::now();
    f();
    let first = t.elapsed();
    let reps = if first < Duration::from_millis(1) { 21 } else { 7 };
    let mut samples: Vec<Duration> = std::iter::once(first)
        .chain((1..reps).map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        }))
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median-of-7 wall time of `f`, divided by the lane count.
fn time_per_lane(k: usize, f: impl FnMut()) -> Duration {
    median_time(f) / k as u32
}

criterion_group!(benches, bench_batch_scaling);
criterion_main!(benches);
