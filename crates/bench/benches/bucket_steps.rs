//! Criterion micro-benchmarks of the SpMSpV-bucket configuration space:
//! thread count, buckets per thread, staging buffer, sortedness — the knobs
//! §III-A discusses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse_substrate::gen::{random_sparse_vec, rmat, RmatParams};
use sparse_substrate::PlusTimes;
use spmspv::{SpMSpV, SpMSpVBucket, SpMSpVOptions};
use std::time::Duration;

fn bench_bucket_configurations(c: &mut Criterion) {
    let a = rmat(13, 12, RmatParams::graph500(), 3);
    let n = a.ncols();
    let x = random_sparse_vec(n, n / 50, 5);
    let max_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);

    let mut group = c.benchmark_group("bucket_threads");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let mut t = 1usize;
    while t <= max_threads {
        let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(t));
        group.bench_with_input(BenchmarkId::from_parameter(t), &x, |b, x| {
            b.iter(|| alg.multiply(x, &PlusTimes))
        });
        t *= 2;
    }
    group.finish();

    let mut group = c.benchmark_group("bucket_nb_per_thread");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for k in [1usize, 4, 16] {
        let mut alg =
            SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(max_threads).buckets_per_thread(k));
        group.bench_with_input(BenchmarkId::from_parameter(k), &x, |b, x| {
            b.iter(|| alg.multiply(x, &PlusTimes))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bucket_variants");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, opts) in [
        ("sorted_staged", SpMSpVOptions::with_threads(max_threads)),
        ("sorted_direct", SpMSpVOptions::with_threads(max_threads).staging_buffer(0)),
        ("unsorted", SpMSpVOptions::with_threads(max_threads).sorted(false)),
    ] {
        let mut alg = SpMSpVBucket::new(&a, opts);
        group.bench_with_input(BenchmarkId::from_parameter(name), &x, |b, x| {
            b.iter(|| alg.multiply(x, &PlusTimes))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bucket_configurations);
criterion_main!(benches);
