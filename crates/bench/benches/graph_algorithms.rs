//! Criterion benchmarks of the end-to-end graph algorithms built on SpMSpV
//! (BFS on both dataset families, PageRank, connected components).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse_substrate::gen::{rmat, triangular_mesh, RmatParams};
use spmspv::{AlgorithmKind, SpMSpVOptions};
use spmspv_graphs::{bfs, connected_components, pagerank_datadriven, PageRankOptions};
use std::time::Duration;

fn bench_graph_algorithms(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let scale_free = rmat(13, 10, RmatParams::graph500(), 9);
    let mesh = triangular_mesh(90, 90);

    let mut group = c.benchmark_group("bfs");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for kind in [AlgorithmKind::Bucket, AlgorithmKind::CombBlasSpa, AlgorithmKind::GraphMat] {
        group.bench_with_input(BenchmarkId::new("scale_free", kind.label()), &kind, |b, &k| {
            b.iter(|| bfs(&scale_free, 0, k, SpMSpVOptions::with_threads(threads)))
        });
        group.bench_with_input(BenchmarkId::new("mesh", kind.label()), &kind, |b, &k| {
            b.iter(|| bfs(&mesh, 0, k, SpMSpVOptions::with_threads(threads)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("applications");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("pagerank_datadriven", |b| {
        b.iter(|| {
            pagerank_datadriven(
                &scale_free,
                AlgorithmKind::Bucket,
                SpMSpVOptions::with_threads(threads),
                PageRankOptions { tolerance: 1e-7, ..Default::default() },
            )
        })
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| {
            connected_components(&mesh, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(threads))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_graph_algorithms);
criterion_main!(benches);
