//! Criterion micro-benchmarks comparing all SpMSpV algorithm families at
//! three input-vector densities (the micro-scale companion of Figure 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse_substrate::gen::{random_sparse_vec, rmat, RmatParams};
use sparse_substrate::PlusTimes;
use spmspv::ops::Mxv;
use spmspv::{AlgorithmKind, SpMSpVOptions};
use std::time::Duration;

fn bench_algorithms(c: &mut Criterion) {
    let a = rmat(13, 12, RmatParams::graph500(), 7);
    let n = a.ncols();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);

    let mut group = c.benchmark_group("spmspv_algorithms");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &f in &[64usize, n / 100, n / 4] {
        let x = random_sparse_vec(n, f, f as u64);
        for kind in [
            AlgorithmKind::Bucket,
            AlgorithmKind::CombBlasSpa,
            AlgorithmKind::CombBlasHeap,
            AlgorithmKind::GraphMat,
            AlgorithmKind::SortBased,
            AlgorithmKind::Sequential,
        ] {
            let mut op = Mxv::over(&a)
                .semiring(&PlusTimes)
                .algorithm(kind)
                .options(SpMSpVOptions::with_threads(threads))
                .prepare::<f64>();
            group.bench_with_input(BenchmarkId::new(kind.label(), f), &x, |b, x| {
                b.iter(|| op.run(x))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
