//! Criterion micro-benchmarks of the substrate: format construction,
//! conversion and column access — the operations the SpMSpV inner loops are
//! built from.

use criterion::{criterion_group, criterion_main, Criterion};
use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
use sparse_substrate::{BitVec, CscMatrix, DcscMatrix, Spa};
use std::time::Duration;

fn bench_formats(c: &mut Criterion) {
    let a = erdos_renyi(50_000, 8.0, 1);
    let x = random_sparse_vec(50_000, 2_000, 2);

    let mut group = c.benchmark_group("sparse_formats");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("csc_from_coo", |b| {
        let coo = a.to_coo();
        b.iter(|| CscMatrix::from_coo(coo.clone(), |p, q| p + q))
    });

    group.bench_function("dcsc_from_csc", |b| b.iter(|| DcscMatrix::from_csc(&a)));

    group.bench_function("csc_transpose", |b| b.iter(|| a.transpose()));

    group.bench_function("csc_row_split_8", |b| b.iter(|| a.row_split(8)));

    let dcsc = DcscMatrix::from_csc(&a);
    group.bench_function("selected_column_gather_csc", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for (j, _) in x.iter() {
                acc += a.column(j).0.len();
            }
            acc
        })
    });
    group.bench_function("selected_column_gather_dcsc", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for (j, _) in x.iter() {
                if let Some((rows, _)) = dcsc.column(j) {
                    acc += rows.len();
                }
            }
            acc
        })
    });

    group.bench_function("bitvec_build_and_probe", |b| {
        b.iter(|| {
            let bv = BitVec::from_sparse(&x);
            (0..50_000usize).filter(|&i| bv.contains(i)).count()
        })
    });

    group.bench_function("spa_accumulate_drain", |b| {
        let mut spa = Spa::new(50_000);
        b.iter(|| {
            for (j, v) in x.iter() {
                spa.accumulate(j, *v, |p, q| p + q);
            }
            spa.drain().len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
