//! Host platform description, printed at the top of every experiment
//! (the stand-in for Table III, which describes Edison and KNL).

use std::fmt::Write as _;

/// A human-readable summary of the machine the experiments run on.
pub fn platform_summary() -> String {
    let mut s = String::new();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = writeln!(s, "platform summary (stand-in for Table III)");
    let _ = writeln!(s, "  logical CPUs : {cores}");
    let _ = writeln!(s, "  os           : {}", std::env::consts::OS);
    let _ = writeln!(s, "  arch         : {}", std::env::consts::ARCH);
    if let Some(model) = cpu_model() {
        let _ = writeln!(s, "  cpu model    : {model}");
    }
    let _ = writeln!(
        s,
        "  note         : paper used Edison (2x12-core Ivy Bridge) and Cori (64-core KNL);"
    );
    let _ = writeln!(s, "                 absolute times are not comparable, scaling shapes are.");
    s
}

/// Best-effort CPU model string (Linux only; other platforms return `None`).
fn cpu_model() -> Option<String> {
    let info = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    info.lines()
        .find(|l| l.starts_with("model name"))
        .and_then(|l| l.split(':').nth(1))
        .map(|m| m.trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_cpu_count_and_arch() {
        let s = platform_summary();
        assert!(s.contains("logical CPUs"));
        assert!(s.contains(std::env::consts::ARCH));
    }
}
