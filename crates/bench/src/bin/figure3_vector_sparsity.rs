//! Figure 3: runtime of four SpMSpV algorithms as a function of nnz(x).
//!
//! Like the paper, the input vectors are the actual frontiers of a BFS on
//! the ljournal stand-in (so their sparsity pattern is realistic, not
//! uniform), and the sweep is run at 1 thread and at a "node-level" thread
//! count (the paper uses 12 = one Edison socket; we use half the machine).
//!
//! Usage: `cargo run --release -p spmspv-bench --bin figure3_vector_sparsity [small|large]`

use sparse_substrate::PlusTimes;
use spmspv::ops::Mxv;
use spmspv::{AlgorithmKind, SpMSpVOptions};
use spmspv_bench::datasets::{ljournal_standin, SuiteScale};
use spmspv_bench::platform_summary;
use spmspv_bench::report::best_of;
use spmspv_graphs::bfs_frontiers;

fn main() {
    let scale =
        std::env::args().nth(1).map(|s| SuiteScale::from_arg(&s)).unwrap_or(SuiteScale::Small);
    println!("{}", platform_summary());
    let d = ljournal_standin(scale);
    println!(
        "Figure 3: runtime vs nnz(x) on the {} stand-in ({} vertices, {} edges)\n",
        d.paper_name,
        d.vertices(),
        d.edges() / 2
    );

    // Real BFS frontiers provide the sweep over nnz(x).
    let mut frontiers = bfs_frontiers(&d.matrix, 0);
    frontiers.sort_by_key(|f| f.nnz());
    frontiers.dedup_by_key(|f| f.nnz());

    let max_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let node_threads = (max_threads / 2).max(2).min(max_threads);
    let kinds = AlgorithmKind::paper_competitors();

    for threads in [1usize, node_threads] {
        println!("--- {threads} thread(s) ---");
        print!("{:>12}", "nnz(x)");
        for kind in kinds {
            print!("  {:>16}", kind.label());
        }
        println!();
        for frontier in &frontiers {
            if frontier.nnz() == 0 {
                continue;
            }
            print!("{:>12}", frontier.nnz());
            for kind in kinds {
                let mut op = Mxv::over(&d.matrix)
                    .semiring(&PlusTimes)
                    .algorithm(kind)
                    .options(SpMSpVOptions::with_threads(threads))
                    .prepare::<f64>();
                let t = best_of(3, || op.run(frontier));
                print!("  {:>13.3} ms", t.as_secs_f64() * 1e3);
            }
            println!();
        }
        println!();
    }
    println!("expected shape (Fig. 3): for very sparse x, SpMSpV-bucket is orders of");
    println!("magnitude faster than GraphMat (flat O(nzc) cost) and clearly faster than");
    println!("CombBLAS-SPA (whole-vector scans); as x gets dense the algorithms converge,");
    println!("with CombBLAS-heap trailing because of its lg(f) merge factor.");
}
