//! Ablation: the price of synchronization avoidance.
//!
//! SpMSpV-bucket avoids locks/atomics in the bucketing step by running the
//! ESTIMATE-BUCKETS preprocessing pass (Algorithm 2), which re-reads the
//! selected columns once. This ablation quantifies (a) that extra pass as a
//! share of the total runtime across densities and thread counts, and
//! (b) the effect of the thread-private staging buffer (§III-A "Cache
//! efficiency") that batches the irregular bucket writes.
//!
//! Usage: `cargo run --release -p spmspv-bench --bin ablation_atomic [small|large]`

use sparse_substrate::gen::random_sparse_vec;
use sparse_substrate::PlusTimes;
use spmspv::{SpMSpV, SpMSpVBucket, SpMSpVOptions};
use spmspv_bench::datasets::{ljournal_standin, SuiteScale};
use spmspv_bench::report::{best_of, thread_sweep};

fn main() {
    let scale =
        std::env::args().nth(1).map(|s| SuiteScale::from_arg(&s)).unwrap_or(SuiteScale::Small);
    let d = ljournal_standin(scale);
    let n = d.matrix.ncols();
    println!(
        "Ablation: cost of the estimate pass and of the staging buffer ({} stand-in)\n",
        d.paper_name
    );

    println!("(a) estimate pass share of total SpMSpV-bucket time");
    println!("{:>8} {:>16} {:>16} {:>16}", "threads", "nnz(x)=200", "nnz(x)~0.2%", "nnz(x)~25%");
    for threads in thread_sweep() {
        print!("{threads:>8}");
        for f in [200usize, (n as f64 * 0.002) as usize, (n as f64 * 0.25) as usize] {
            let x = random_sparse_vec(n, f, 3);
            let mut alg = SpMSpVBucket::new(&d.matrix, SpMSpVOptions::with_threads(threads));
            let (_, t) = alg.multiply_with_timings(&x, &PlusTimes);
            print!("  {:>13.1} %", t.fractions()[0] * 100.0);
        }
        println!();
    }

    println!("\n(b) staging buffer on/off, full concurrency");
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    println!("{:>16} {:>18} {:>18}", "nnz(x)", "direct writes", "staged writes (512)");
    for f in [200usize, (n as f64 * 0.002) as usize, (n as f64 * 0.25) as usize] {
        let x = random_sparse_vec(n, f, 9);
        let mut direct =
            SpMSpVBucket::new(&d.matrix, SpMSpVOptions::with_threads(threads).staging_buffer(0));
        let mut staged =
            SpMSpVBucket::new(&d.matrix, SpMSpVOptions::with_threads(threads).staging_buffer(512));
        let td = best_of(3, || direct.multiply(&x, &PlusTimes));
        let ts = best_of(3, || staged.multiply(&x, &PlusTimes));
        println!(
            "{:>16} {:>15.3} ms {:>15.3} ms",
            f,
            td.as_secs_f64() * 1e3,
            ts.as_secs_f64() * 1e3
        );
    }
    println!("\ninterpretation: the estimate pass costs a roughly constant ~20-35% of the");
    println!("multiplication — the price paid so the bucketing step needs no atomics at");
    println!("all. It is the paper's deliberate trade-off: a second streaming read of the");
    println!("selected columns instead of per-entry synchronization.");
}
